# Convenience targets; everything also works as the plain commands in
# the README (the docs-check target verifies exactly that).

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test test-fast docs-check examples bench bench-compare bench-quick bench-baseline precommit

test:
	$(PYTHON) -m pytest -q

# Deselects @pytest.mark.slow (the full-PHY-heavy deep sweeps); the
# full `make test` still runs everything.
test-fast:
	$(PYTHON) -m pytest -q -m "not slow"

# The documented pre-commit gate: the fast test selection plus the
# CI-affordable benchmark comparison.
precommit: test-fast bench-quick

# Fails when README/ARCHITECTURE code blocks or the examples go stale.
docs-check:
	$(PYTHON) -m pytest -q tests/test_docs.py tests/test_examples_smoke.py

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

# One-command regression gate: fails when any tracked benchmark regresses
# >25% against the committed BENCH_core.json baseline.
bench: bench-compare

bench-compare:
	$(PYTHON) benchmarks/run_all.py --compare

# The CI-affordable gate: skips the 500-station tier and the kept
# reference implementations (each has a faster tracked sibling).
bench-quick:
	$(PYTHON) benchmarks/run_all.py --compare --quick

bench-baseline:
	$(PYTHON) benchmarks/run_all.py
