# Convenience targets; everything also works as the plain commands in
# the README (the docs-check target verifies exactly that).

PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test test-fast docs-check examples bench bench-compare bench-quick bench-baseline precommit invariant-smoke

test:
	$(PYTHON) -m pytest -q

# Deselects @pytest.mark.slow (the full-PHY-heavy deep sweeps); the
# full `make test` still runs everything.
test-fast:
	$(PYTHON) -m pytest -q -m "not slow"

# The documented pre-commit gate: the fast test selection, the
# CI-affordable benchmark comparison, and the invariant smoke.
precommit: test-fast bench-quick invariant-smoke

# Fast end-to-end invariant pass: runs a bursty and a faulty scenario
# under validation="cheap", so a broken conservation law fails the gate
# even if no unit test covers it.
invariant-smoke:
	$(PYTHON) -m repro.cli sweep --scenario dense-lan-20-bursty --protocols n+ --runs 1 --duration-ms 20 --validation cheap
	$(PYTHON) -m repro.cli sweep --scenario dense-lan-20-faulty --protocols n+ --runs 1 --duration-ms 20 --validation cheap

# Fails when README/ARCHITECTURE code blocks or the examples go stale.
docs-check:
	$(PYTHON) -m pytest -q tests/test_docs.py tests/test_examples_smoke.py

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

# One-command regression gate: fails when any tracked benchmark regresses
# >25% against the committed BENCH_core.json baseline.
bench: bench-compare

bench-compare:
	$(PYTHON) benchmarks/run_all.py --compare

# The CI-affordable gate: skips the 500-station tier and the kept
# reference implementations (each has a faster tracked sibling).
bench-quick:
	$(PYTHON) benchmarks/run_all.py --compare --quick

bench-baseline:
	$(PYTHON) benchmarks/run_all.py
