"""Exception hierarchy for the 802.11n+ reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a component is configured with inconsistent parameters.

    Also a :class:`ValueError`: bad parameter *values* (a malformed fault
    trace row, an out-of-range rate, an unparsable env override) are what
    this error reports, so generic ``except ValueError`` handlers treat
    it correctly.
    """


class DimensionError(ReproError):
    """Raised when array shapes or antenna counts are incompatible."""


class PrecodingError(ReproError):
    """Raised when no valid pre-coding vectors exist for a request.

    Typical causes: the transmitter asks for more streams than its free
    degrees of freedom (Claim 3.2), or the stacked nulling/alignment
    constraints are rank deficient in a way that leaves no usable null
    space.
    """


class DecodingError(ReproError):
    """Raised when a receiver cannot decode a frame (CRC failure, rank
    deficiency of the wanted-stream channel, or an unsupported bitrate)."""


class SynchronizationError(ReproError):
    """Raised when packet detection or symbol synchronization fails."""


class MediumAccessError(ReproError):
    """Raised on protocol violations in the MAC simulation, e.g. a node
    attempting to join more streams than the available degrees of freedom."""


class SimulationError(ReproError):
    """Raised by the discrete-event engine on scheduling errors."""


class InvariantViolation(ReproError):
    """Raised when a runtime invariant check fails during a simulation.

    The message names the violated checker, the round it fired in and the
    links involved; the structured fields (:attr:`checker`, :attr:`round`,
    :attr:`links`) carry the same information for programmatic handling
    (crash capsules serialize them).  Raised only when
    :attr:`repro.sim.runner.SimulationConfig.validation` is ``"cheap"``
    or ``"full"`` -- the default ``"off"`` never runs the checkers.
    """

    def __init__(self, checker: str, round_index: int, links=(), detail: str = ""):
        self.checker = checker
        self.round = int(round_index)
        self.links = tuple(links)
        message = f"invariant {checker!r} violated at round {self.round}"
        if self.links:
            message += f" on link(s) {', '.join(str(l) for l in self.links)}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
