"""DCF-style contention: contention windows, backoff and collision
resolution.

Both the primary contention (for an idle medium) and n+'s secondary
contention (for unused degrees of freedom, sensed through the projection
of §3.2) use 802.11's contention-window/backoff machinery.  The simulator
resolves each contention round in one step: every contender draws a
backoff counter, the smallest counter wins, and ties are collisions --
the standard "condensed" DCF model, which preserves the win/collision
statistics of slot-by-slot simulation for saturated sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.constants import CW_MAX, CW_MIN, DIFS_US, SLOT_TIME_US

__all__ = ["DcfContender", "ContentionRound", "resolve_contention"]


@dataclass
class DcfContender:
    """Per-node DCF state: the contention window and retry count.

    Attributes
    ----------
    node_id:
        Identifier of the contending node.
    cw_min, cw_max:
        Contention-window bounds (in slots).
    """

    node_id: int
    cw_min: int = CW_MIN
    cw_max: int = CW_MAX
    _cw: int = field(default=CW_MIN, repr=False)
    _fast_retransmit: bool = field(default=False, repr=False)

    def draw_backoff(self, rng: np.random.Generator) -> int:
        """Draw a uniform backoff counter from the current window."""
        return int(rng.integers(0, self.backoff_window + 1))

    def record_collision(self) -> None:
        """Binary exponential backoff after a collision."""
        self._cw = min(2 * (self._cw + 1) - 1, self.cw_max)
        self._fast_retransmit = False

    def record_success(self) -> None:
        """Reset the window after a successful transmission."""
        self._cw = self.cw_min
        self._fast_retransmit = False

    def arm_fast_retransmit(self) -> None:
        """Give the node a free pass in the next contention round.

        The ``fast-retransmit`` recovery policy arms this after a frame
        is NACKed by *channel loss* (not a collision): the retransmission
        contends with a zero backoff window instead of doubling the
        contention window, LinkGuardian-style link-local resend.  The
        pass is consumed by the next outcome either way -- a success
        resets the window, a collision falls back to exponential backoff.
        """
        self._fast_retransmit = True

    @property
    def contention_window(self) -> int:
        """Current contention window (slots)."""
        return self._cw

    @property
    def backoff_window(self) -> int:
        """Window actually used for the next draw (0 when fast-retransmit
        is armed, the contention window otherwise)."""
        return 0 if self._fast_retransmit else self._cw


@dataclass(frozen=True)
class ContentionRound:
    """Result of resolving one contention round.

    Attributes
    ----------
    winners:
        Node ids that start transmitting (more than one means collision).
    backoff_slots:
        The winning backoff value.
    start_delay_us:
        Time from the start of the round until the winners transmit
        (DIFS + backoff slots).
    collision:
        Whether two or more nodes picked the same smallest backoff.
    """

    winners: Tuple[int, ...]
    backoff_slots: int
    start_delay_us: float
    collision: bool


def resolve_contention(
    contenders: Sequence[DcfContender],
    rng: np.random.Generator,
    difs_us: float = DIFS_US,
    slot_us: float = SLOT_TIME_US,
) -> ContentionRound:
    """Resolve one contention round among ``contenders``.

    Every contender draws a backoff; the smallest value wins.  Ties are
    collisions: all tied nodes "transmit" and the caller treats their
    frames as lost.  The contention-window updates (doubling on collision,
    reset on success) are the caller's responsibility because it knows the
    eventual outcome of the transmission.

    Backoffs are drawn in ascending ``node_id`` order regardless of how
    the caller ordered ``contenders``, so the outcome of a seeded round
    depends only on *which* nodes contend, never on the iteration order
    of whatever container they came from.  All counters come from a
    single array-bounded ``rng.integers`` draw (one RNG call per round
    instead of one per contender -- the O(n_nodes) cost the batched round
    pipeline removes); each counter is uniform on the contender's own
    ``[0, cw]`` window exactly as :meth:`DcfContender.draw_backoff` draws
    it.
    """
    if not contenders:
        return ContentionRound(winners=(), backoff_slots=0, start_delay_us=difs_us, collision=False)
    ordered = sorted(contenders, key=lambda c: c.node_id)
    highs = np.array([c.backoff_window for c in ordered], dtype=np.int64)
    values = rng.integers(0, highs + 1)
    smallest = int(values.min())
    winners = tuple(
        c.node_id for c, value in zip(ordered, values) if value == smallest
    )
    return ContentionRound(
        winners=winners,
        backoff_slots=smallest,
        start_delay_us=difs_us + smallest * slot_us,
        collision=len(winners) > 1,
    )
