"""The protocol-variant framework: typed specs and a declarative registry.

A *variant* is a registered MAC protocol -- an agent class plus the typed
parameters it understands (:class:`ParamSpec`).  A :class:`ProtocolSpec`
is a value of one variant: a name plus validated parameter overrides.
Everything that used to take a bare protocol name (``run_simulation``,
the sweep grid, the CLI) now resolves its input through
:func:`resolve_protocol`, so a bare name, a ``(name, params)`` tuple, a
mapping and a ``ProtocolSpec`` are interchangeable and a bare name is
*exactly* a default-parameter spec -- same agent, same behaviour, same
cache digest.

Adding a variant is declarative::

    from repro.mac.variants import RECOVERY_PARAMS, register_variant

    class PatientMac(Dot11nMac):
        protocol_name = "patient"
        max_streams = 1

    register_variant(
        "patient",
        PatientMac,
        params=RECOVERY_PARAMS,
        description="single-stream 802.11n that keeps the shared knobs",
    )

and ``repro sweep --protocols "patient[retry_cap=3]"`` works, cache keys
and all.

Every built-in variant shares the *recovery family* of parameters
(:data:`RECOVERY_PARAMS`), wiring the retransmission policy applied when
an attempt fails on a lossy link:

``recovery="none"``
    Binary exponential backoff and retry-capped requeue -- the historical
    behaviour.
``recovery="fast-retransmit"``
    LinkGuardian-style link-local recovery: a NACKed frame (channel loss,
    not a collision) is resent immediately with a zero backoff window
    instead of doubling the contention window.
``recovery="erasure"``
    LINC-style coding: payloads ride as ``erasure_n`` coded fragments of
    which any ``erasure_k`` reconstruct the burst, so a loss episode must
    erase more than ``erasure_n - erasure_k`` fragments to cost the
    packet; receiver-side decodes are accounted in
    ``LinkMetrics.recovered_bits``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.constants import (
    DEFAULT_ERASURE_K,
    DEFAULT_ERASURE_N,
    MAX_RETRIES,
)
from repro.exceptions import ConfigurationError

__all__ = [
    "ParamSpec",
    "ProtocolLike",
    "ProtocolSpec",
    "ProtocolVariant",
    "RECOVERY_MODES",
    "RECOVERY_PARAMS",
    "available_variants",
    "parse_protocol",
    "register_variant",
    "resolve_protocol",
    "split_protocol_list",
    "variant",
]

#: Recovery policies every built-in variant understands (see module docs).
RECOVERY_MODES = ("none", "fast-retransmit", "erasure")

#: Anything :func:`resolve_protocol` accepts: a bare name (or its
#: ``name[k=v,...]`` string form), a spec, a ``(name, params)`` pair or a
#: ``{"name": ..., "params": ...}`` mapping.
ProtocolLike = Union[
    str, "ProtocolSpec", Tuple[str, Mapping[str, Any]], Mapping[str, Any]
]

_BOOL_WORDS = {
    "true": True,
    "false": False,
    "1": True,
    "0": False,
    "yes": True,
    "no": False,
    "on": True,
    "off": False,
}


@dataclass(frozen=True)
class ParamSpec:
    """One typed, validated protocol parameter.

    Attributes
    ----------
    name:
        Parameter name as it appears in specs and on the CLI.
    type:
        Expected python type (``int``, ``float``, ``str`` or ``bool``).
        Ints are accepted where floats are expected; bools are *not*
        accepted as ints (``True`` is a confusing retry cap).
    default:
        Value used when the parameter is omitted.  A spec that sets a
        parameter to its default is indistinguishable from one that
        omits it.
    choices:
        Optional closed set of allowed values.
    minimum:
        Optional inclusive lower bound for numeric parameters.
    """

    name: str
    type: type
    default: Any
    description: str = ""
    choices: Optional[Tuple[Any, ...]] = None
    minimum: Optional[float] = None

    def validate(self, value: Any) -> Any:
        """Return ``value`` coerced to the parameter's type, or raise."""
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if isinstance(value, bool) and self.type is not bool:
            raise ConfigurationError(
                f"parameter {self.name!r} expects {self.type.__name__}, got bool"
            )
        if not isinstance(value, self.type):
            raise ConfigurationError(
                f"parameter {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"parameter {self.name!r} must be one of "
                f"{', '.join(map(repr, self.choices))}; got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ConfigurationError(
                f"parameter {self.name!r} must be >= {self.minimum}; got {value!r}"
            )
        return value

    def parse(self, text: str) -> Any:
        """Parse a CLI string (``"3"``, ``"erasure"``...) into a value."""
        if self.type is bool:
            try:
                return self.validate(_BOOL_WORDS[text.strip().lower()])
            except KeyError:
                raise ConfigurationError(
                    f"parameter {self.name!r} expects a boolean, got {text!r}"
                ) from None
        if self.type in (int, float):
            try:
                value = self.type(text)
            except ValueError:
                raise ConfigurationError(
                    f"parameter {self.name!r} expects {self.type.__name__}, "
                    f"got {text!r}"
                ) from None
            return self.validate(value)
        return self.validate(text)


#: The shared recovery-family parameters (see the module docstring).
RECOVERY_PARAMS: Tuple[ParamSpec, ...] = (
    ParamSpec(
        "recovery",
        str,
        "none",
        description="loss-recovery policy applied on failed attempts",
        choices=RECOVERY_MODES,
    ),
    ParamSpec(
        "retry_cap",
        int,
        MAX_RETRIES,
        description="retransmission attempts before a frame is dropped",
        minimum=0,
    ),
    ParamSpec(
        "erasure_k",
        int,
        DEFAULT_ERASURE_K,
        description="data fragments needed to reconstruct an erasure-coded burst",
        minimum=1,
    ),
    ParamSpec(
        "erasure_n",
        int,
        DEFAULT_ERASURE_N,
        description="coded fragments carried per erasure-coded burst",
        minimum=1,
    ),
)


@dataclass(frozen=True)
class ProtocolVariant:
    """A registered protocol: its agent class and parameter schema."""

    name: str
    agent_class: type
    params: Tuple[ParamSpec, ...] = RECOVERY_PARAMS
    description: str = ""

    @property
    def supports_joining(self) -> bool:
        """Whether agents of this variant join ongoing transmissions."""
        return bool(getattr(self.agent_class, "supports_joining", False))

    def param(self, name: str) -> ParamSpec:
        """The :class:`ParamSpec` called ``name``, or raise listing them."""
        for spec in self.params:
            if spec.name == name:
                return spec
        known = ", ".join(spec.name for spec in self.params) or "(none)"
        raise ConfigurationError(
            f"protocol {self.name!r} has no parameter {name!r}; "
            f"known parameters: {known}"
        )

    def defaults(self) -> Dict[str, Any]:
        """``{param name: default value}`` of every parameter."""
        return {spec.name: spec.default for spec in self.params}

    def describe_params(self) -> str:
        """Human-readable ``name=default`` summary, for listings/errors."""
        return ", ".join(f"{spec.name}={spec.default!r}" for spec in self.params)


_VARIANTS: Dict[str, ProtocolVariant] = {}
_BUILTINS_REGISTERED = False


def register_variant(
    name: str,
    agent_class: type,
    params: Sequence[ParamSpec] = RECOVERY_PARAMS,
    description: str = "",
    overwrite: bool = False,
) -> ProtocolVariant:
    """Register a protocol variant under ``name``.

    ``params`` defaults to the shared recovery family; pass a different
    tuple (usually ``RECOVERY_PARAMS + (...,)``) to add knobs.  Duplicate
    names raise unless ``overwrite=True`` (meant for tests).
    """
    seen = set()
    for spec in params:
        if spec.name in seen:
            raise ConfigurationError(
                f"variant {name!r} declares parameter {spec.name!r} twice"
            )
        seen.add(spec.name)
    if not overwrite and name in _VARIANTS:
        raise ConfigurationError(f"protocol variant {name!r} is already registered")
    entry = ProtocolVariant(
        name=name,
        agent_class=agent_class,
        params=tuple(params),
        description=description,
    )
    _VARIANTS[name] = entry
    return entry


def _ensure_registered() -> None:
    """Register the built-in variants (lazily: agents import the simulator)."""
    global _BUILTINS_REGISTERED
    if _BUILTINS_REGISTERED:
        return
    from repro.mac.beamforming import BeamformingMac
    from repro.mac.dot11n import Dot11nMac
    from repro.mac.nplus import NPlusMac
    from repro.mac.plain_csma import CsmaMac

    _BUILTINS_REGISTERED = True
    for agent_class, description in (
        (CsmaMac, "single-stream DCF baseline (one antenna used per attempt)"),
        (Dot11nMac, "single-user spatial multiplexing over DCF (802.11n)"),
        (BeamformingMac, "multi-user beamforming from one transmitter"),
        (NPlusMac, "the paper's n+: joiners null/align into ongoing frames"),
    ):
        if agent_class.protocol_name not in _VARIANTS:
            register_variant(
                agent_class.protocol_name, agent_class, description=description
            )


def variant(name: str) -> ProtocolVariant:
    """Look up a registered variant, or raise listing what exists."""
    _ensure_registered()
    try:
        return _VARIANTS[name]
    except KeyError:
        listing = "; ".join(
            f"{entry.name} ({entry.describe_params()})"
            for entry in available_variants()
        )
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered variants: {listing}"
        ) from None


def available_variants() -> Tuple[ProtocolVariant, ...]:
    """All registered variants, sorted by name."""
    _ensure_registered()
    return tuple(_VARIANTS[name] for name in sorted(_VARIANTS))


@dataclass(frozen=True, init=False)
class ProtocolSpec:
    """A protocol name plus validated parameter overrides.

    Construction canonicalizes: parameters are validated against the
    variant's :class:`ParamSpec` schema and overrides equal to their
    default are dropped, so ``ProtocolSpec("n+")``,
    ``ProtocolSpec("n+", {"retry_cap": 7})`` and ``ProtocolSpec("n+",
    {})`` are the *same* value -- equal, same hash, same :attr:`key`,
    same :meth:`digest`.  A default-parameter spec's :attr:`key` is the
    bare name, which is what keeps pre-framework cache entries and result
    dictionaries addressable.
    """

    name: str
    overrides: Tuple[Tuple[str, Any], ...] = field(default=())

    def __init__(self, name: str, params: Optional[Mapping[str, Any]] = None) -> None:
        entry = variant(name)
        cleaned: Dict[str, Any] = {}
        for param_name in sorted(params or {}):
            spec = entry.param(param_name)
            value = spec.validate((params or {})[param_name])
            if value != spec.default:
                cleaned[param_name] = value
        resolved = entry.defaults()
        resolved.update(cleaned)
        if "erasure_k" in resolved and "erasure_n" in resolved:
            if resolved["erasure_k"] > resolved["erasure_n"]:
                raise ConfigurationError(
                    f"protocol {name!r}: erasure_k={resolved['erasure_k']} "
                    f"exceeds erasure_n={resolved['erasure_n']}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "overrides", tuple(sorted(cleaned.items())))

    # -- views ---------------------------------------------------------------

    @property
    def params(self) -> Dict[str, Any]:
        """The non-default overrides only."""
        return dict(self.overrides)

    def resolved_params(self) -> Dict[str, Any]:
        """Every parameter of the variant with overrides applied."""
        resolved = variant(self.name).defaults()
        resolved.update(self.overrides)
        return resolved

    @property
    def is_default(self) -> bool:
        """Whether this spec carries no overrides (a bare name)."""
        return not self.overrides

    @property
    def key(self) -> str:
        """Canonical string form: ``name`` or ``name[k=v,...]``.

        This is both the display label and the protocol coordinate of
        sweep cache keys and result dictionaries.  It round-trips through
        :func:`parse_protocol`, and for a default-parameter spec it is
        exactly the bare name.
        """
        if not self.overrides:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.overrides)
        return f"{self.name}[{inner}]"

    @property
    def agent_class(self) -> type:
        """The registered agent class of this spec's variant."""
        return variant(self.name).agent_class

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form with *fully resolved* parameters."""
        return {"name": self.name, "params": self.resolved_params()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProtocolSpec":
        """Inverse of :meth:`to_dict` (defaults are re-canonicalized away)."""
        return cls(payload["name"], payload.get("params"))

    def digest(self) -> str:
        """Stable content hash; equal for equal specs, name-only when default."""
        payload = {"name": self.name, "params": dict(self.overrides)}
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    def __str__(self) -> str:
        return self.key


def parse_protocol(text: str) -> ProtocolSpec:
    """Parse ``"name"`` or ``"name[k=v,k=v]"`` into a :class:`ProtocolSpec`.

    Values are parsed with the variant's own :meth:`ParamSpec.parse`, so
    ``"n+[recovery=erasure,retry_cap=3]"`` type-checks exactly like the
    python form ``("n+", {"recovery": "erasure", "retry_cap": 3})``.
    """
    text = text.strip()
    if "[" not in text:
        if "]" in text or "=" in text:
            raise ConfigurationError(f"malformed protocol spec {text!r}")
        return ProtocolSpec(text)
    if not text.endswith("]"):
        raise ConfigurationError(f"malformed protocol spec {text!r}")
    name, _, inner = text[:-1].partition("[")
    name = name.strip()
    entry = variant(name)
    params: Dict[str, Any] = {}
    for item in inner.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise ConfigurationError(
                f"malformed parameter {item!r} in protocol spec {text!r} "
                f"(expected key=value)"
            )
        key = key.strip()
        if key in params:
            raise ConfigurationError(
                f"duplicate parameter {key!r} in protocol spec {text!r}"
            )
        params[key] = entry.param(key).parse(value.strip())
    return ProtocolSpec(name, params)


def split_protocol_list(text: str) -> Tuple[str, ...]:
    """Split a comma-separated protocol list, respecting ``[...]`` params.

    ``"802.11n,n+[recovery=erasure,retry_cap=3]"`` splits into two items,
    not four.  Empty items are dropped.
    """
    items = []
    depth = 0
    current = []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    items.append("".join(current))
    return tuple(item.strip() for item in items if item.strip())


def resolve_protocol(value: Any) -> ProtocolSpec:
    """Coerce any accepted protocol form into a :class:`ProtocolSpec`.

    Accepted forms: a ``ProtocolSpec``; a string (``"n+"`` or
    ``"n+[retry_cap=3]"``); a mapping ``{"name": ..., "params": {...}}``;
    or a ``(name, params)`` pair.  Raises
    :class:`~repro.exceptions.ConfigurationError` on anything else.
    """
    if isinstance(value, ProtocolSpec):
        return value
    if isinstance(value, str):
        return parse_protocol(value)
    if isinstance(value, Mapping):
        if "name" not in value:
            raise ConfigurationError(
                f"protocol mapping needs a 'name' entry; got {dict(value)!r}"
            )
        unknown = set(value) - {"name", "params"}
        if unknown:
            raise ConfigurationError(
                f"protocol mapping has unknown entries {sorted(unknown)!r} "
                f"(expected 'name' and optional 'params')"
            )
        return ProtocolSpec(value["name"], value.get("params"))
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ConfigurationError(
                f"protocol tuple must be (name, params); got {value!r}"
            )
        name, params = value
        return ProtocolSpec(name, params)
    raise ConfigurationError(
        f"cannot interpret {value!r} as a protocol "
        f"(expected a name, ProtocolSpec, (name, params) or mapping)"
    )
