"""The plain-CSMA baseline: single-stream DCF.

The weakest rung of the protocol ladder (the ``do_nothing`` analogue of
LinkGuardian's solution family): nodes contend exactly like 802.11n but
the contention winner transmits a *single* spatial stream regardless of
how many antennas it has.  Comparing it against ``802.11n`` isolates the
gain of single-user spatial multiplexing the same way comparing
``802.11n`` against ``n+`` isolates the gain of joining.
"""

from __future__ import annotations

from repro.mac.dot11n import Dot11nMac

__all__ = ["CsmaMac"]


class CsmaMac(Dot11nMac):
    """Single-stream single-user transmission over DCF."""

    protocol_name = "csma"
    supports_joining = False
    max_streams = 1
