"""The L-threshold admission and power-control rule (§4).

Nulling and alignment suppress interference by a finite amount (about
25-27 dB on the paper's hardware).  A joiner whose raw signal would
arrive at an ongoing receiver more than L dB above the noise floor could
therefore still leave residual interference above the noise even after
nulling.  n+'s rule: estimate the interference power your signal would
create at each ongoing receiver; if it exceeds L dB above the noise,
reduce transmit power until it does not, and only then contend.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.constants import INTERFERENCE_ADMISSION_THRESHOLD_DB
from repro.utils.db import db_to_linear, linear_to_db

__all__ = ["interference_power_db", "admission_power_scale", "may_join_at_full_power"]


def interference_power_db(
    channel_to_receiver: np.ndarray,
    noise_power: float = 1.0,
    tx_power: float = 1.0,
) -> float:
    """Interference power (dB above the noise) an unprotected, un-precoded
    transmission would create at a receiver.

    Parameters
    ----------
    channel_to_receiver:
        Channel matrix/vector from the joiner to the receiver; for
        per-subcarrier channels pass shape ``(n_subcarriers, N, M)`` and
        the power is averaged across subcarriers.
    noise_power:
        Receiver noise power (linear, same normalisation as the channel).
    tx_power:
        The joiner's transmit power (linear).
    """
    h = np.asarray(channel_to_receiver, dtype=complex)
    # With total transmit power split evenly (and uncorrelated) across the
    # transmitter's antennas, the expected interference power at one
    # receive antenna is ``tx_power`` times the mean squared channel gain.
    average_gain = float(np.mean(np.abs(h) ** 2))
    power = tx_power * average_gain
    return float(linear_to_db(power / max(noise_power, 1e-30)))


def admission_power_scale(
    interference_levels_db: Iterable[float],
    threshold_db: float = INTERFERENCE_ADMISSION_THRESHOLD_DB,
) -> float:
    """Return the transmit-power scale factor (0 < scale <= 1) a joiner
    must apply so its strongest interference stays at or below the
    threshold.

    Parameters
    ----------
    interference_levels_db:
        Interference power, in dB above the noise floor, that the joiner's
        full-power signal would create at each ongoing receiver.
    threshold_db:
        The L threshold (27 dB by default).
    """
    levels = list(interference_levels_db)
    if not levels:
        return 1.0
    worst = max(levels)
    if worst <= threshold_db:
        return 1.0
    return float(db_to_linear(-(worst - threshold_db)))


def may_join_at_full_power(
    interference_levels_db: Sequence[float],
    threshold_db: float = INTERFERENCE_ADMISSION_THRESHOLD_DB,
) -> bool:
    """Whether the joiner needs no power reduction at all."""
    return admission_power_scale(interference_levels_db, threshold_db) >= 1.0
