"""The 802.11n baseline MAC.

This is the behaviour the paper compares against (§6): nodes contend with
plain carrier sense, and the contention winner uses all of its antennas
for single-user spatial multiplexing to *one* receiver.  Nobody transmits
while the medium is busy, regardless of how many antennas they have, and
an access point with several clients serves them one at a time.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.mac.agent import BaseMacAgent
from repro.mac.aggregation import airtime_for_bits
from repro.phy.rates import MCS_TABLE
from repro.sim.medium import Medium, ScheduledStream

__all__ = ["Dot11nMac"]


class Dot11nMac(BaseMacAgent):
    """Single-user spatial multiplexing over DCF (today's 802.11n)."""

    protocol_name = "802.11n"
    supports_joining = False
    #: Optional cap on concurrent spatial streams per attempt.  ``None``
    #: uses every usable antenna (802.11n); the plain-CSMA baseline
    #: subclass pins this to 1.
    max_streams: Optional[int] = None

    def _next_receiver_id(self) -> Optional[int]:
        """Round-robin over receivers that currently have traffic."""
        receiver_ids = [r.node_id for r in self.pair.receivers]
        for offset in range(len(receiver_ids)):
            candidate = receiver_ids[(self._round_robin + offset) % len(receiver_ids)]
            if self.queues[candidate].has_traffic:
                self._round_robin = (self._round_robin + offset + 1) % len(receiver_ids)
                return candidate
        return None

    def plan_initial(self, start_us: float, medium: Medium) -> List[ScheduledStream]:
        """One packet to one receiver, one stream per usable antenna."""
        receiver_id = self._next_receiver_id()
        if receiver_id is None:
            return []
        receiver = self.network.station(receiver_id)
        n_streams = min(self.n_antennas, receiver.n_antennas)
        if self.max_streams is not None:
            n_streams = min(n_streams, self.max_streams)
        packet = self.queues[receiver_id].head()
        if packet is None:
            return []
        # One packet's worth of queued data; if the head packet was partially
        # delivered in an earlier (fragmented) attempt only the remainder is
        # on the air, so attempted bits never exceed queued bits.
        payload_bits = self.queues[receiver_id].take_bits(packet.size_bits)
        if payload_bits == 0:
            return []
        join_order = medium.max_join_order() + 1

        streams: List[ScheduledStream] = []
        power = self._equal_power(n_streams)
        for index in range(n_streams):
            vector = np.zeros(self.n_antennas, dtype=complex)
            vector[index] = 1.0
            streams.append(
                ScheduledStream(
                    stream_id=medium.next_stream_id(),
                    transmitter_id=self.node_id,
                    receiver_id=receiver_id,
                    precoders=self._constant_precoders(vector),
                    power=power,
                    mcs=MCS_TABLE[0],
                    payload_bits=0,
                    start_us=start_us,
                    end_us=start_us,
                    join_order=join_order,
                )
            )
        streams[0].payload_bits = payload_bits

        # The receiver measures the (interference-free) effective SNR on the
        # header and feeds back the best bitrate.
        mcs = self._select_mcs(receiver_id, streams, medium.active_streams)
        duration = airtime_for_bits(mcs, payload_bits, n_streams)
        for stream in streams:
            stream.mcs = mcs
            stream.end_us = start_us + duration
        return streams
