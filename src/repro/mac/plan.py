"""Transmission planning: from overheard headers to pre-coders and power.

This module is the glue between the MIMO math (:mod:`repro.mimo`) and the
MAC protocols.  Given what a transmitter knows right before it starts --
the receivers it must protect (learned from light-weight RTS/CTS headers,
with channels obtained via reciprocity), its own receivers, and the
hardware limits -- it produces a :class:`TransmissionPlan`: one
per-subcarrier pre-coding vector per stream, plus the transmit-power scale
imposed by the L-threshold rule.

Two entry points:

* :func:`plan_initial_transmission` -- the first contention winner (or any
  802.11n-style transmitter on an idle medium); also covers multi-user
  beamforming to several own receivers.
* :func:`plan_join` -- a joiner that must not interfere with ongoing
  receivers (the heart of n+, §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.constants import INTERFERENCE_ADMISSION_THRESHOLD_DB
from repro.exceptions import DimensionError, PrecodingError
from repro.mac.power_control import admission_power_scale, interference_power_db
from repro.mimo.dof import InterferenceStrategy, choose_strategy, max_concurrent_streams
from repro.mimo.precoder import ReceiverConstraint, compute_precoders_batch
from repro.utils.linalg import orthonormal_complement

__all__ = [
    "ProtectedReceiver",
    "PlannedReceiver",
    "StreamPlan",
    "TransmissionPlan",
    "PlanCache",
    "stream_signature",
    "involved_node_ids",
    "receiver_decoding_subspace",
    "plan_initial_transmission",
    "plan_join",
]


def stream_signature(streams) -> tuple:
    """A hashable structural signature of a list of scheduled streams.

    Two stream lists with the same signature produce the same planning
    math under the static-channel invariant: channels are frozen per run
    and channel *estimates* are memoized per simulation
    (:meth:`repro.sim.network.Network.estimated_channel`), so every
    pre-coder, announced subspace and post-projection SNR is a pure
    function of *which* streams are on the air -- ``(transmitter,
    receiver, join order, ordinal within that triple)``, in order -- not
    of run-time identifiers like stream ids, payload sizes or start
    times.  This is what keys the :class:`PlanCache`.
    """
    signature = []
    counts: Dict[tuple, int] = {}
    for stream in streams:
        triple = (stream.transmitter_id, stream.receiver_id, stream.join_order)
        ordinal = counts.get(triple, 0)
        counts[triple] = ordinal + 1
        signature.append(triple + (ordinal,))
    return tuple(signature)


def involved_node_ids(*stream_lists, extra=()) -> frozenset:
    """Every node id touched by the given stream lists (plus ``extra``).

    This is the set whose channel epochs a configuration-keyed memo must
    include (via :meth:`repro.sim.network.Network.epoch_signature`): a
    fault bumping any involved link's epoch changes the signature and so
    retires exactly the entries that could have observed the old channel.
    Shared by the agents' measured-SNR memo and the fidelity engine's
    escalated-verdict memo so both invalidate identically.
    """
    involved = set(extra)
    for streams in stream_lists:
        for stream in streams:
            involved.add(stream.transmitter_id)
            involved.add(stream.receiver_id)
    return frozenset(involved)


class PlanCache:
    """Per-simulation memo of pure planning computations.

    Channels never change within a run and channel estimates are measured
    once per simulation, so the expensive per-round planning math --
    pre-coder decompositions (:func:`plan_initial_transmission`,
    :func:`plan_join`), announced decoding subspaces and the
    post-projection SNRs a receiver would feed back -- is a pure function
    of the contention configuration.  The cache maps a structural key
    (built from :func:`stream_signature` plus whatever else the
    computation depends on) to the computed value; after the first
    occurrence of each configuration the dominant per-round SVD work
    becomes a dictionary hit.

    Entries are never *evicted* within a run.  In a static network there
    is nothing to invalidate on; under fault injection
    (:mod:`repro.sim.faults`) the callers append the network's per-link
    **epoch signature**
    (:meth:`repro.sim.network.Network.epoch_signature`) to their keys,
    so an entry built before a link's channel changed simply stops being
    hit -- a fade invalidates exactly the entries that could have read
    the faded link, and the signature is ``()`` (key shape unchanged,
    zero cost) until a fault actually occurs.  The cache
    must not be shared across simulations (the runner creates one per
    :func:`repro.sim.runner.run_simulation`).  Cached arrays are shared
    by reference, so callers must treat them as read-only -- the same
    shared-view invariant the :class:`repro.sim.network.ChannelBank`
    *enforces* for the true channels (they are non-writable views; a
    would-be mutation raises instead of corrupting every plan built from
    the same memory).
    """

    def __init__(self) -> None:
        self._store: Dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple, compute):
        """The memoized value for ``key``, computing it on first use."""
        try:
            value = self._store[key]
        except KeyError:
            value = compute()
            self._store[key] = value
            self.misses += 1
            return value
        self.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._store)


@dataclass
class ProtectedReceiver:
    """A receiver of an ongoing stream that the joiner must protect.

    Attributes
    ----------
    receiver_id:
        Node identifier.
    n_antennas:
        N, the receiver's antenna count (from its CTS header).
    n_wanted_streams:
        n, the number of streams it is currently decoding.
    channel:
        ``(n_subcarriers, N, M)`` estimated channel from the joiner to
        this receiver (reciprocity from its overheard CTS).
    u_perp:
        ``(n_subcarriers, N, n)`` decoding subspace it announced, or
        ``None`` when it has no unwanted space (the joiner must null).
    """

    receiver_id: int
    n_antennas: int
    n_wanted_streams: int
    channel: np.ndarray
    u_perp: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.channel = np.asarray(self.channel, dtype=complex)
        if self.channel.ndim != 3:
            raise DimensionError(
                f"channel must have shape (n_subcarriers, N, M), got {self.channel.shape}"
            )
        if self.u_perp is not None:
            self.u_perp = np.asarray(self.u_perp, dtype=complex)
            if self.u_perp.ndim != 3:
                raise DimensionError(
                    f"u_perp must have shape (n_subcarriers, N, n), got {self.u_perp.shape}"
                )

    @property
    def strategy(self) -> InterferenceStrategy:
        """Null or align (Claim 3.1)."""
        return choose_strategy(self.n_antennas, self.n_wanted_streams)

    def constraint(self, subcarrier: int) -> ReceiverConstraint:
        """The per-subcarrier constraint this receiver imposes."""
        if self.strategy is InterferenceStrategy.NULL or self.u_perp is None:
            return ReceiverConstraint(channel=self.channel[subcarrier], u_perp=None)
        return ReceiverConstraint(
            channel=self.channel[subcarrier], u_perp=self.u_perp[subcarrier]
        )

    def constraint_rows_batch(self) -> np.ndarray:
        """Constraint rows of every subcarrier, ``(n_sub, n_constraints, M)``.

        Nulling contributes the channel itself (Claim 3.3); alignment
        contributes ``U_perp^H H`` per subcarrier (Eq. 6), computed here as
        one einsum over the whole stack.
        """
        if self.strategy is InterferenceStrategy.NULL or self.u_perp is None:
            return self.channel
        return np.einsum("knj,knm->kjm", self.u_perp.conj(), self.channel)

    @property
    def n_constraints(self) -> int:
        """Constraint rows this receiver contributes (= protected streams)."""
        if self.strategy is InterferenceStrategy.NULL or self.u_perp is None:
            return self.n_antennas
        return self.u_perp.shape[2]


@dataclass
class PlannedReceiver:
    """One of the transmitter's own receivers.

    Attributes
    ----------
    receiver_id:
        Node identifier.
    n_antennas:
        The receiver's antenna count.
    n_streams:
        Number of streams destined to it in this transmission.
    channel:
        ``(n_subcarriers, N, M)`` estimated channel from the transmitter.
    u_perp:
        ``(n_subcarriers, N, n)`` decoding subspace the receiver will use
        (orthogonal to the interference it already sees).  ``None`` means
        the receiver has no ongoing interference and uses its full space.
    """

    receiver_id: int
    n_antennas: int
    n_streams: int
    channel: np.ndarray
    u_perp: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.channel = np.asarray(self.channel, dtype=complex)
        if self.channel.ndim != 3:
            raise DimensionError(
                f"channel must have shape (n_subcarriers, N, M), got {self.channel.shape}"
            )
        if self.n_streams < 1:
            raise PrecodingError("a planned receiver must take at least one stream")
        if self.u_perp is not None:
            self.u_perp = np.asarray(self.u_perp, dtype=complex)

    def decoding_subspace(self, subcarrier: int) -> np.ndarray:
        """U-perp used on ``subcarrier``.

        Defaults to the first ``n_streams`` canonical directions when the
        receiver sees no ongoing interference (it then has one spare
        constraint row per wanted stream, as Claim 3.5 requires).
        """
        if self.u_perp is None:
            return np.eye(self.n_antennas, dtype=complex)[:, : self.n_streams]
        return self.u_perp[subcarrier]

    def decoding_subspace_batch(self, n_sub: int) -> np.ndarray:
        """U-perp on every subcarrier, ``(n_sub, N, n)``."""
        if self.u_perp is None:
            eye = np.eye(self.n_antennas, dtype=complex)[:, : self.n_streams]
            return np.broadcast_to(eye, (n_sub,) + eye.shape)
        return self.u_perp

    def constraint_rows_batch(self, n_sub: int) -> np.ndarray:
        """Rows ``U'_perp^H H'`` of every subcarrier (Claim 3.5)."""
        subspace = self.decoding_subspace_batch(n_sub)
        return np.einsum("knj,knm->kjm", subspace.conj(), self.channel)


@dataclass
class StreamPlan:
    """The plan of one spatial stream.

    Attributes
    ----------
    stream_index:
        Position of the stream within the transmission.
    receiver_id:
        Destination node.
    precoders:
        ``(n_subcarriers, M)`` pre-coding vectors (unit norm per
        subcarrier before power scaling).
    """

    stream_index: int
    receiver_id: int
    precoders: np.ndarray


@dataclass
class TransmissionPlan:
    """Everything a transmitter needs to start its (possibly joint)
    transmission.

    Attributes
    ----------
    transmitter_id:
        The transmitting node.
    streams:
        Per-stream plans.
    power_scale:
        Multiplicative transmit-power factor (<= 1) imposed by the
        L-threshold rule; 1.0 when no reduction was needed.
    protects:
        Receiver ids this transmission nulls/aligns at, mapped to the
        strategy used -- empty for a first contention winner.
    """

    transmitter_id: int
    streams: List[StreamPlan]
    power_scale: float = 1.0
    protects: Dict[int, InterferenceStrategy] = field(default_factory=dict)

    @property
    def n_streams(self) -> int:
        """Number of spatial streams in the plan."""
        return len(self.streams)

    def power_per_stream(self, total_power: float = 1.0) -> float:
        """Transmit power allocated to each stream (equal split)."""
        if not self.streams:
            return 0.0
        return total_power * self.power_scale / len(self.streams)


def receiver_decoding_subspace(
    n_antennas: int,
    n_streams: int,
    interference_directions: Optional[np.ndarray],
) -> np.ndarray:
    """The decoding subspace a receiver adopts for ``n_streams`` new
    wanted streams given the interference already on the air.

    Returns an ``(N, n_streams)`` orthonormal basis orthogonal to the
    interference directions; the receiver decodes by projecting onto it,
    and announces it (as U-perp) in its light-weight CTS.
    """
    if n_streams > n_antennas:
        raise PrecodingError(
            f"a receiver with {n_antennas} antennas cannot decode {n_streams} streams"
        )
    if interference_directions is None or np.asarray(interference_directions).size == 0:
        return np.eye(n_antennas, dtype=complex)[:, :n_streams]
    interference = np.asarray(interference_directions, dtype=complex)
    if interference.ndim == 1:
        interference = interference.reshape(-1, 1)
    complement = orthonormal_complement(interference)
    if complement.shape[1] < n_streams:
        raise PrecodingError(
            f"only {complement.shape[1]} interference-free dimensions remain, "
            f"cannot decode {n_streams} streams"
        )
    return complement[:, :n_streams]


def _n_subcarriers(arrays: Sequence[np.ndarray]) -> int:
    sizes = {np.asarray(a).shape[0] for a in arrays}
    if len(sizes) != 1:
        raise DimensionError(f"inconsistent subcarrier counts: {sorted(sizes)}")
    return sizes.pop()


def plan_initial_transmission(
    transmitter_id: int,
    n_tx_antennas: int,
    receivers: Sequence[PlannedReceiver],
    multi_user_beamforming: bool = False,
) -> TransmissionPlan:
    """Plan a transmission on an idle medium (the first contention winner).

    With a single receiver and no beamforming the transmitter simply maps
    one stream per antenna (802.11n spatial multiplexing).  With several
    receivers -- or ``multi_user_beamforming`` -- it zero-forces between
    its own receivers via Eq. 7 with no ongoing constraints.
    """
    receivers = list(receivers)
    if not receivers:
        raise PrecodingError("an initial transmission needs at least one receiver")
    total_streams = sum(r.n_streams for r in receivers)
    if total_streams > n_tx_antennas:
        raise PrecodingError(
            f"{total_streams} streams exceed the transmitter's {n_tx_antennas} antennas"
        )

    n_sub = _n_subcarriers([r.channel for r in receivers])

    if len(receivers) == 1 and not multi_user_beamforming:
        receiver = receivers[0]
        streams = []
        for index in range(receiver.n_streams):
            precoders = np.zeros((n_sub, n_tx_antennas), dtype=complex)
            precoders[:, index] = 1.0
            streams.append(
                StreamPlan(stream_index=index, receiver_id=receiver.receiver_id, precoders=precoders)
            )
        return TransmissionPlan(transmitter_id=transmitter_id, streams=streams)

    # Multi-user beamforming: solve Eq. 7 (with no ongoing receivers) on
    # every subcarrier at once, so each stream lands orthogonally to the
    # other receivers' decoding subspaces.
    stream_receivers: List[int] = []
    for receiver in receivers:
        stream_receivers.extend([receiver.receiver_id] * receiver.n_streams)
    own_rows = [r.constraint_rows_batch(n_sub) for r in receivers]
    precoders = compute_precoders_batch(
        n_tx_antennas,
        ongoing_rows=np.zeros((n_sub, 0, n_tx_antennas), dtype=complex),
        own_rows=np.concatenate(own_rows, axis=1),
        own_stream_counts=[r.n_streams for r in receivers],
        own_row_counts=[rows.shape[1] for rows in own_rows],
    )
    streams = [
        StreamPlan(stream_index=i, receiver_id=stream_receivers[i], precoders=precoders[:, i, :])
        for i in range(total_streams)
    ]
    return TransmissionPlan(transmitter_id=transmitter_id, streams=streams)


def plan_join(
    transmitter_id: int,
    n_tx_antennas: int,
    protected: Sequence[ProtectedReceiver],
    receivers: Sequence[PlannedReceiver],
    noise_power: float = 1.0,
    admission_threshold_db: float = INTERFERENCE_ADMISSION_THRESHOLD_DB,
    n_streams: Optional[int] = None,
) -> TransmissionPlan:
    """Plan a transmission that joins ongoing transmissions (§3.3).

    Parameters
    ----------
    transmitter_id:
        The joining node.
    n_tx_antennas:
        M, its antenna count.
    protected:
        The receivers of ongoing streams (from overheard headers).
    receivers:
        The joiner's own receivers.
    noise_power:
        Receiver noise power in the same normalisation as the channels
        (used by the L-threshold admission rule).
    admission_threshold_db:
        The L threshold.
    n_streams:
        Total new streams; defaults to the receivers' total, capped by
        Claim 3.2.

    Raises
    ------
    PrecodingError
        If the ongoing streams leave no degree of freedom for the joiner.
    """
    protected = list(protected)
    receivers = list(receivers)
    if not receivers:
        raise PrecodingError("a join needs at least one own receiver")

    k_ongoing = sum(p.n_constraints for p in protected)
    free = max_concurrent_streams(n_tx_antennas, k_ongoing)
    requested = sum(r.n_streams for r in receivers) if n_streams is None else n_streams
    if requested > free:
        raise PrecodingError(
            f"requested {requested} streams but only {free} degrees of freedom are free "
            f"({k_ongoing} ongoing constraints, {n_tx_antennas} antennas)"
        )

    n_sub = _n_subcarriers([p.channel for p in protected] + [r.channel for r in receivers])

    # L-threshold admission: how loud would the joiner be at each
    # protected receiver with no pre-coding at all?
    interference_levels = [
        interference_power_db(p.channel, noise_power=noise_power) for p in protected
    ]
    power_scale = admission_power_scale(interference_levels, admission_threshold_db)

    stream_receivers: List[int] = []
    for receiver in receivers:
        stream_receivers.extend([receiver.receiver_id] * receiver.n_streams)

    total_streams = len(stream_receivers)
    shared_rows = (
        np.concatenate([p.constraint_rows_batch() for p in protected], axis=1)
        if protected
        else np.zeros((n_sub, 0, n_tx_antennas), dtype=complex)
    )
    if len(receivers) == 1:
        precoders = compute_precoders_batch(
            n_tx_antennas,
            ongoing_rows=shared_rows,
            n_streams=total_streams,
        )
    else:
        own_rows = [r.constraint_rows_batch(n_sub) for r in receivers]
        precoders = compute_precoders_batch(
            n_tx_antennas,
            ongoing_rows=shared_rows,
            own_rows=np.concatenate(own_rows, axis=1),
            own_stream_counts=[r.n_streams for r in receivers],
            own_row_counts=[rows.shape[1] for rows in own_rows],
        )

    streams = [
        StreamPlan(stream_index=i, receiver_id=stream_receivers[i], precoders=precoders[:, i, :])
        for i in range(total_streams)
    ]
    protects = {p.receiver_id: p.strategy for p in protected}
    return TransmissionPlan(
        transmitter_id=transmitter_id,
        streams=streams,
        power_scale=power_scale,
        protects=protects,
    )
