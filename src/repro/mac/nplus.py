"""The 802.11n+ MAC protocol.

n+ behaves like 802.11 when the medium is idle (carrier sense, contention
window, random backoff).  The differences appear once somebody is
transmitting (§3.1):

* nodes with more antennas than the number of ongoing streams keep
  carrier sensing in the subspace orthogonal to those streams
  (multi-dimensional carrier sense, §3.2) and contend for the unused
  degrees of freedom;
* a secondary-contention winner joins the ongoing transmission, pre-coding
  its streams so they null at fully-loaded receivers and align inside the
  unwanted space of the others (§3.3), subject to the L-threshold power
  rule (§4);
* the joiner sizes its payload so its transmission ends together with the
  ongoing ones (fragmentation/aggregation), and its receiver picks the
  bitrate per packet from the post-projection effective SNR (§3.4).

Because the paper's heterogeneous scenario (Fig. 4) lets a single n+
transmitter serve several receivers at once, the idle-medium behaviour is
inherited from the multi-user beamforming planner; with a single receiver
it reduces to plain spatial multiplexing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.constants import (
    NPLUS_ACK_HEADER_EXTRA_SYMBOLS,
    NPLUS_DATA_HEADER_EXTRA_SYMBOLS,
    OFDM_SYMBOL_DURATION_US_10MHZ,
    SIFS_US,
)
from repro.exceptions import PrecodingError
from repro.mac.aggregation import bits_in_airtime
from repro.mac.beamforming import BeamformingMac, distribute_streams
from repro.mac.bitrate import choose_bitrate
from repro.mac.plan import (
    PlannedReceiver,
    ProtectedReceiver,
    plan_join,
    stream_signature,
)
from repro.mimo.dof import InterferenceStrategy, choose_strategy
from repro.phy.rates import MCS_TABLE
from repro.sim.link_abstraction import announced_decoding_subspace, interference_directions_at
from repro.sim.medium import Medium, ScheduledStream
from repro.utils import guarded

__all__ = ["NPlusMac"]


class NPlusMac(BeamformingMac):
    """The n+ protocol agent: contend for time *and* degrees of freedom."""

    protocol_name = "n+"
    supports_joining = True
    #: :meth:`can_join` is exactly the rule the batched round pipeline
    #: evaluates from :class:`~repro.sim.traffic.TrafficStateArrays`
    #: (see ``_BatchedEventDrivenLoop._join_eligible``); if a subclass
    #: overrides :meth:`can_join` with different semantics it must clear
    #: this flag so the runner falls back to the per-agent path.
    vectorized_join_eligibility = True

    # -- timing -------------------------------------------------------------------

    def header_duration_us(self) -> float:
        """The n+ data header carries one extra OFDM symbol (§3.5)."""
        return super().header_duration_us() + (
            NPLUS_DATA_HEADER_EXTRA_SYMBOLS * OFDM_SYMBOL_DURATION_US_10MHZ
        )

    def ack_duration_us(self) -> float:
        """The n+ ACK header adds the alignment space and bitrate feedback
        (about four OFDM symbols) plus one extra SIFS of the light-weight
        handshake."""
        return (
            super().ack_duration_us()
            + NPLUS_ACK_HEADER_EXTRA_SYMBOLS * OFDM_SYMBOL_DURATION_US_10MHZ
            + SIFS_US
        )

    # -- secondary contention ------------------------------------------------------

    def can_join(self, now_us: float, medium: Medium, min_airtime_us: float) -> bool:
        """Eligibility for secondary contention (multi-dimensional carrier
        sense says the next degree of freedom is free)."""
        if not medium.busy:
            return False
        if not self.has_traffic(now_us):
            return False
        used = medium.used_degrees_of_freedom
        if self.n_antennas <= used:
            return False
        if self.node_id in medium.transmitting_nodes():
            return False
        if self.node_id in medium.receiving_nodes():
            return False
        if medium.current_end_us - now_us < min_airtime_us:
            return False
        # At least one of our receivers must have a spare dimension left
        # after projecting out the ongoing streams.
        return any(
            self.network.station(r.node_id).n_antennas > used
            and self.queues[r.node_id].has_traffic
            for r in self.pair.receivers
        )

    def _protected_receivers(self, medium: Medium) -> List[ProtectedReceiver]:
        """Build the protection constraints from the overheard headers."""
        protected: List[ProtectedReceiver] = []
        for receiver_id in medium.receiving_nodes():
            wanted = medium.streams_to(receiver_id)
            station = self.network.station(receiver_id)
            n_wanted = len(wanted)
            strategy = choose_strategy(station.n_antennas, n_wanted)
            if strategy is InterferenceStrategy.NULL:
                u_perp = None
            else:
                others = [
                    s
                    for s in medium.active_streams
                    if s.receiver_id != receiver_id and not s.protects(receiver_id)
                ]
                u_perp = announced_decoding_subspace(self.network, receiver_id, wanted, others)
            protected.append(
                ProtectedReceiver(
                    receiver_id=receiver_id,
                    n_antennas=station.n_antennas,
                    n_wanted_streams=n_wanted,
                    channel=self.network.estimated_channel(
                        self.node_id, receiver_id, reciprocity=True
                    ),
                    u_perp=u_perp,
                )
            )
        return protected

    def _own_receivers(self, medium: Medium, max_streams: int) -> List[PlannedReceiver]:
        """Choose which of our receivers take the new streams and build
        their planning records."""
        used = medium.used_degrees_of_freedom
        candidates = []
        capacities = []
        for receiver in self.pair.receivers:
            if not self.queues[receiver.node_id].has_traffic:
                continue
            if self.link_quarantined(receiver.node_id):
                continue
            capacity = receiver.n_antennas - used
            if capacity <= 0:
                continue
            candidates.append(receiver)
            capacities.append(capacity)
        if not candidates:
            return []
        allocation = distribute_streams(max_streams, capacities)
        planned: List[PlannedReceiver] = []
        for receiver, n_streams in zip(candidates, allocation):
            if n_streams == 0:
                continue
            with guarded.capture_degradations() as capture:
                ongoing_at_receiver = interference_directions_at(
                    self.network, receiver.node_id, medium.active_streams
                )
                u_perp = _subspace_orthogonal_to(
                    ongoing_at_receiver, receiver.n_antennas, n_streams
                )
            if capture.triggered:
                # The orthogonal subspace at this receiver degraded (the
                # guards fell back); exclude it from the join and sit the
                # link out until its channel epoch changes.
                self.quarantine_link(receiver.node_id)
                continue
            planned.append(
                PlannedReceiver(
                    receiver_id=receiver.node_id,
                    n_antennas=receiver.n_antennas,
                    n_streams=n_streams,
                    channel=self.network.estimated_channel(self.node_id, receiver.node_id),
                    u_perp=u_perp,
                )
            )
        return planned

    def _join_plan_core(self, medium: Medium):
        """The expensive, pure part of a join: subspaces and pre-coders.

        Returns ``(plan, receivers)`` or ``None`` when no join is
        possible.  Under the static-channel invariant this is a pure
        function of the streams on the air and of which of our receivers
        are backlogged, so :meth:`plan_join` memoizes it by that
        configuration -- the airtime- and backlog-dependent payload
        sizing stays outside the cache.
        """
        used = medium.used_degrees_of_freedom
        max_new = self.n_antennas - used
        if max_new <= 0:
            return None
        # Measure every link this configuration can need in one batched
        # prefetch: the reciprocity estimates to all ongoing receivers
        # plus the forward estimates to our own candidate receivers.  A
        # no-op under the v2 draw contracts, which keep the lazy
        # one-link-at-a-time draw order (see Network.prefetch_estimates).
        self.network.prefetch_estimates(
            [(self.node_id, rid, True) for rid in medium.receiving_nodes()]
            + [
                (self.node_id, r.node_id, False)
                for r in self.pair.receivers
                if r.n_antennas > used and self.queues[r.node_id].has_traffic
            ]
        )
        protected = self._protected_receivers(medium)
        receivers = self._own_receivers(medium, max_new)
        if not receivers:
            return None
        with guarded.capture_degradations() as capture:
            try:
                plan = plan_join(
                    transmitter_id=self.node_id,
                    n_tx_antennas=self.n_antennas,
                    protected=protected,
                    receivers=receivers,
                    noise_power=self.network.noise_power,
                )
            except PrecodingError:
                plan = None
        if capture.triggered:
            # The joint pre-coder solve degraded: never transmit with the
            # fallback pre-coders.  The shared constraint matrix does not
            # say which link is at fault, so quarantine every planned one
            # (each lifts as soon as its channel epoch changes).
            for receiver in receivers:
                self.quarantine_link(receiver.receiver_id)
            return None
        if plan is None:
            return None
        return plan, receivers

    def plan_join(
        self, start_us: float, medium: Medium
    ) -> Optional[List[ScheduledStream]]:
        """Join the ongoing transmissions without interfering with them."""
        if any(self.link_quarantined(r.node_id) for r in self.pair.receivers):
            self.quarantined_rounds += 1
        backlogged = tuple(
            r.node_id for r in self.pair.receivers if self.queues[r.node_id].has_traffic
        )
        # Epoch signature over every node whose channel the join plan can
        # read: the joiner, the active streams' endpoints (protected
        # receivers) and its own receivers.  () in a static network.
        involved = {self.node_id}
        for stream in medium.active_streams:
            involved.add(stream.transmitter_id)
            involved.add(stream.receiver_id)
        for receiver in self.pair.receivers:
            involved.add(receiver.node_id)
        key = (
            "join-plan",
            self.node_id,
            stream_signature(medium.active_streams),
            backlogged,
            # Quarantine state can change *within* one channel epoch (links
            # are quarantined during planning), so the memo key must carry
            # it or a pre-quarantine plan would be replayed from cache.
            self._quarantine_signature(),
            self.network.epoch_signature(involved),
        )
        core = self._cached(key, lambda: self._join_plan_core(medium))
        if core is None:
            return None
        plan, receivers = core

        end_us = medium.current_end_us
        if end_us <= start_us:
            return None
        join_order = medium.max_join_order() + 1
        power = plan.power_per_stream()
        own_receiver_ids = [r.receiver_id for r in receivers]

        streams: List[ScheduledStream] = []
        for stream_plan in plan.streams:
            protected_map: Dict[int, InterferenceStrategy] = dict(plan.protects)
            for other in own_receiver_ids:
                if other != stream_plan.receiver_id:
                    protected_map[other] = InterferenceStrategy.ALIGN
            streams.append(
                ScheduledStream(
                    stream_id=medium.next_stream_id(),
                    transmitter_id=self.node_id,
                    receiver_id=stream_plan.receiver_id,
                    precoders=stream_plan.precoders,
                    power=power,
                    mcs=MCS_TABLE[0],
                    payload_bits=0,
                    start_us=start_us,
                    end_us=end_us,
                    join_order=join_order,
                    protected_receivers=protected_map,
                )
            )

        # Per-receiver bitrate (measured after projection, §3.4) and payload
        # sized to the remaining airtime (fragmentation/aggregation, §3.1).
        # A receiver whose post-projection effective SNR cannot sustain even
        # the most robust bitrate declines the join (it would only waste the
        # degree of freedom on a packet that cannot be decoded).
        airtime = end_us - start_us
        any_payload = False
        from repro.phy.esnr import esnr_for_modulation

        lowest = MCS_TABLE[0]
        for receiver in receivers:
            group = [s for s in streams if s.receiver_id == receiver.receiver_id]
            measured = self._measured_snrs(receiver.receiver_id, streams, medium.active_streams)
            viable = (
                esnr_for_modulation(measured, lowest.modulation)
                >= lowest.min_esnr_db + self.bitrate_margin_db
            )
            if not viable:
                group[0].payload_bits = 0
                continue
            mcs = choose_bitrate(measured, self.bitrate_margin_db)
            capacity = bits_in_airtime(mcs, airtime, len(group))
            backlog = self.queues[receiver.receiver_id].backlog_bits
            payload = min(capacity, backlog)
            group[0].payload_bits = payload
            for stream in group:
                stream.mcs = mcs
            if payload > 0:
                any_payload = True
        if not any_payload:
            return None
        return streams


def _subspace_orthogonal_to(
    directions: np.ndarray, n_antennas: int, n_streams: int
) -> np.ndarray:
    """Per-subcarrier decoding subspace orthogonal to given directions.

    ``directions`` has shape ``(n_subcarriers, N, k)``; the result has
    shape ``(n_subcarriers, N, n_streams)``.  All subcarriers are handled
    by one batched SVD.
    """
    from repro.utils.linalg import orthonormal_complement_batch

    return orthonormal_complement_batch(directions, n_streams)
