"""Per-packet bitrate selection (§3.4).

Because the set of concurrent transmitters changes from packet to packet,
the post-projection SNR -- and therefore the best bitrate -- changes too,
even when the channels themselves are static (Fig. 7).  n+ therefore
selects the bitrate of *each* packet from the effective SNR measured on
the light-weight RTS after projection, and feeds the decision back in the
light-weight CTS.

This module provides that per-packet selector, plus a conventional
historical-rate controller used as an ablation baseline
(``benchmarks/bench_ablation_bitrate.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.phy.esnr import select_mcs
from repro.phy.rates import MCS, MCS_TABLE

__all__ = ["choose_bitrate", "HistoricalRateController"]


def choose_bitrate(subcarrier_snrs_db: Sequence[float], margin_db: float = 0.0) -> MCS:
    """Pick the best MCS from per-subcarrier post-projection SNRs.

    This is a thin, intention-revealing wrapper over
    :func:`repro.phy.esnr.select_mcs`: the receiver measures the SNRs on
    the light-weight RTS (already projected orthogonal to ongoing
    transmissions), computes the effective SNR per candidate modulation
    and returns the fastest scheme expected to deliver the packet.
    """
    return select_mcs(subcarrier_snrs_db, MCS_TABLE, margin_db)


@dataclass
class HistoricalRateController:
    """A conventional rate controller that adapts from past outcomes.

    Used only as a baseline to show why per-packet selection matters when
    concurrent transmitters change between packets: the controller keeps an
    exponentially-weighted delivery estimate per MCS and picks the rate
    with the best expected throughput, like SampleRate-style algorithms.
    """

    ewma_weight: float = 0.25
    _delivery: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for mcs in MCS_TABLE:
            # Start optimistic so every rate gets sampled.
            self._delivery.setdefault(mcs.index, 1.0)

    def select(self) -> MCS:
        """Return the MCS with the highest expected throughput."""
        best = MCS_TABLE[0]
        best_score = -1.0
        for mcs in MCS_TABLE:
            score = self._delivery[mcs.index] * mcs.data_rate_mbps()
            if score > best_score:
                best_score = score
                best = mcs
        return best

    def record(self, mcs: MCS, delivered: bool) -> None:
        """Update the delivery estimate of ``mcs`` with one outcome."""
        old = self._delivery[mcs.index]
        sample = 1.0 if delivered else 0.0
        self._delivery[mcs.index] = (1 - self.ewma_weight) * old + self.ewma_weight * sample

    def delivery_estimate(self, mcs: MCS) -> float:
        """Current delivery-probability estimate for ``mcs``."""
        return self._delivery[mcs.index]
