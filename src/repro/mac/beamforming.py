"""The multi-user beamforming baseline (Aryafar et al. [7]).

When a multi-antenna access point with several clients wins the
contention, it pre-codes concurrent streams to all of them at once
(zero-forcing between its own receivers), e.g. two streams to one
2-antenna client and one to the other for a 3-antenna AP.  Unlike n+,
nobody joins an ongoing transmission: the beamformer still requires all
concurrent streams to originate at a single transmitter, which is exactly
the limitation Fig. 13(b) quantifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import PrecodingError
from repro.mac.agent import BaseMacAgent
from repro.mac.aggregation import airtime_for_bits
from repro.mac.plan import PlannedReceiver, plan_initial_transmission
from repro.mimo.dof import InterferenceStrategy
from repro.phy.rates import MCS_TABLE
from repro.sim.medium import Medium, ScheduledStream
from repro.utils import guarded

__all__ = ["BeamformingMac", "distribute_streams"]


def distribute_streams(n_tx_antennas: int, receiver_antennas: List[int]) -> List[int]:
    """Split ``n_tx_antennas`` streams across receivers.

    Every receiver gets at least one stream (as long as antennas remain);
    leftover streams go to the receivers with the most spare antennas --
    for a 3-antenna AP with two 2-antenna clients this yields the paper's
    "two to one client and one to the other".
    """
    allocation = [0] * len(receiver_antennas)
    remaining = n_tx_antennas
    # First pass: one stream each.
    for index in range(len(receiver_antennas)):
        if remaining == 0:
            break
        if receiver_antennas[index] > 0:
            allocation[index] = 1
            remaining -= 1
    # Second pass: fill up by spare receive antennas.
    changed = True
    while remaining > 0 and changed:
        changed = False
        for index in range(len(receiver_antennas)):
            if remaining == 0:
                break
            if allocation[index] < receiver_antennas[index]:
                allocation[index] += 1
                remaining -= 1
                changed = True
    return allocation


class BeamformingMac(BaseMacAgent):
    """Multi-user beamforming from a single transmitter, no joining."""

    protocol_name = "beamforming"
    supports_joining = False

    def _receivers_with_traffic(self) -> List[int]:
        return [r.node_id for r in self.pair.receivers if self.queues[r.node_id].has_traffic]

    def plan_initial(self, start_us: float, medium: Medium) -> List[ScheduledStream]:
        """Beamform to every backlogged receiver simultaneously."""
        candidates = self._receivers_with_traffic()
        receiver_ids = [r for r in candidates if not self.link_quarantined(r)]
        suppressed = len(receiver_ids) < len(candidates)
        if suppressed:
            self.quarantined_rounds += 1
        if not receiver_ids:
            return []
        antennas = [self.network.station(r).n_antennas for r in receiver_ids]
        allocation = distribute_streams(self.n_antennas, antennas)
        # Under the grouped draw contract, measure all of this
        # transmission's links in one stacked draw (no-op under v2).
        self.network.prefetch_estimates(
            (self.node_id, receiver_id, False)
            for receiver_id, n_streams in zip(receiver_ids, allocation)
            if n_streams > 0
        )
        receivers: List[PlannedReceiver] = []
        for receiver_id, n_streams in zip(receiver_ids, allocation):
            if n_streams == 0:
                continue
            receivers.append(
                PlannedReceiver(
                    receiver_id=receiver_id,
                    n_antennas=self.network.station(receiver_id).n_antennas,
                    n_streams=n_streams,
                    channel=self.network.estimated_channel(self.node_id, receiver_id),
                )
            )
        if not receivers:
            return []

        # The pre-coder decomposition is a pure function of which
        # receivers take how many streams (channel estimates are memoized
        # per simulation), so it is memoized by that allocation.
        def _compute():
            try:
                return plan_initial_transmission(
                    self.node_id,
                    self.n_antennas,
                    receivers,
                    multi_user_beamforming=len(receivers) > 1,
                )
            except PrecodingError:
                return None

        involved = {self.node_id}
        involved.update(r.receiver_id for r in receivers)
        key = (
            "initial-plan",
            self.node_id,
            tuple((r.receiver_id, r.n_streams) for r in receivers),
            self.network.epoch_signature(involved),
        )
        with guarded.capture_degradations() as capture:
            plan = self._cached(key, _compute)
        if capture.triggered:
            # A guarded fallback fired inside the decomposition: the
            # channel is numerically degenerate, so never transmit with the
            # fallback precoders -- decline the plan and quarantine the
            # links until their channel epoch changes.
            for planned in receivers:
                self.quarantine_link(planned.receiver_id)
            if not suppressed:
                self.quarantined_rounds += 1
            return []
        if plan is None:
            return []

        join_order = medium.max_join_order() + 1
        power = plan.power_per_stream()
        own_receiver_ids = [r.receiver_id for r in receivers]
        streams: List[ScheduledStream] = []
        for stream_plan in plan.streams:
            protected: Dict[int, InterferenceStrategy] = {
                other: InterferenceStrategy.ALIGN
                for other in own_receiver_ids
                if other != stream_plan.receiver_id
            }
            streams.append(
                ScheduledStream(
                    stream_id=medium.next_stream_id(),
                    transmitter_id=self.node_id,
                    receiver_id=stream_plan.receiver_id,
                    precoders=stream_plan.precoders,
                    power=power,
                    mcs=MCS_TABLE[0],
                    payload_bits=0,
                    start_us=start_us,
                    end_us=start_us,
                    join_order=join_order,
                    protected_receivers=protected,
                )
            )

        # Bitrate and payload per receiver.  The *primary* receiver (first in
        # the plan) transmits one full packet and its airtime sets the body
        # duration; the remaining receivers fragment or aggregate their
        # queued data to end at exactly the same time, as n+ requires of
        # anything sharing the medium (§3.1).
        primary = receivers[0]
        primary_group = [s for s in streams if s.receiver_id == primary.receiver_id]
        primary_mcs = self._select_mcs(primary.receiver_id, streams, medium.active_streams)
        primary_packet = self.queues[primary.receiver_id].head()
        primary_bits = (
            self.queues[primary.receiver_id].take_bits(primary_packet.size_bits)
            if primary_packet
            else 0
        )
        primary_group[0].payload_bits = primary_bits
        duration = airtime_for_bits(primary_mcs, primary_bits, len(primary_group))
        for stream in primary_group:
            stream.mcs = primary_mcs
        end_us = start_us + duration
        for stream in streams:
            stream.end_us = end_us

        from repro.mac.aggregation import bits_in_airtime

        for receiver in receivers[1:]:
            group = [s for s in streams if s.receiver_id == receiver.receiver_id]
            mcs = self._select_mcs(receiver.receiver_id, streams, medium.active_streams)
            capacity = bits_in_airtime(mcs, duration, len(group))
            payload_bits = min(capacity, self.queues[receiver.receiver_id].backlog_bits)
            group[0].payload_bits = payload_bits
            for stream in group:
                stream.mcs = mcs
        return streams
