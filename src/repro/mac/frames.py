"""MAC-layer frames: packets and the light-weight handshake headers.

n+ never sends standalone RTS/CTS control frames.  Instead the *data
header* plays the role of the RTS and the *ACK header* plays the role of
the CTS (§3.5, Fig. 8): both are transmitted right after the preamble and
before the corresponding body, and both carry the fields other nodes need
to contend for the remaining degrees of freedom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.constants import DEFAULT_PACKET_SIZE_BYTES

__all__ = ["Packet", "DataHeader", "AckHeader"]


@dataclass
class Packet:
    """A MAC-layer packet awaiting transmission.

    Attributes
    ----------
    source, destination:
        Node identifiers.
    size_bytes:
        Payload size.
    packet_id:
        Sequence number assigned by the traffic source.
    created_us:
        Creation time (for delay statistics).
    retries:
        Number of transmission attempts so far.
    """

    source: int
    destination: int
    size_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    packet_id: int = 0
    created_us: float = 0.0
    retries: int = 0

    @property
    def size_bits(self) -> int:
        """Payload size in bits."""
        return self.size_bytes * 8


@dataclass
class DataHeader:
    """The light-weight RTS: the data header sent ahead of the data body.

    Attributes
    ----------
    transmitter_id:
        The sending node.
    receiver_ids:
        Destination(s); more than one when a single node transmits
        concurrently to multiple receivers (Fig. 4).
    streams_per_receiver:
        Number of spatial streams destined to each receiver, aligned with
        ``receiver_ids``.
    n_antennas:
        Antennas the transmitter will use.
    duration_us:
        How long the body transmission will last.
    mcs_index:
        Bitrate of the body (may be revised by the ACK header's feedback).
    """

    transmitter_id: int
    receiver_ids: List[int]
    streams_per_receiver: List[int]
    n_antennas: int
    duration_us: float
    mcs_index: int = 0

    @property
    def n_streams(self) -> int:
        """Total spatial streams announced."""
        return int(sum(self.streams_per_receiver))


@dataclass
class AckHeader:
    """The light-weight CTS: the ACK header sent by a receiver.

    Attributes
    ----------
    receiver_id:
        The responding receiver.
    transmitter_id:
        The node it responds to.
    mcs_index:
        The bitrate the receiver selected from the measured effective SNR.
    decoding_subspace:
        U-perp per subcarrier (``(n_subcarriers, N, n)``) or a single
        ``(N, n)`` matrix; broadcast so later joiners can align inside the
        receiver's unwanted space (Claim 3.4).  ``None`` when the receiver
        has no spare dimensions (joiners must null).
    n_wanted_streams:
        n, the number of streams this receiver is decoding.
    n_antennas:
        N, the receiver's antenna count.
    """

    receiver_id: int
    transmitter_id: int
    mcs_index: int
    n_wanted_streams: int
    n_antennas: int
    decoding_subspace: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def has_unwanted_space(self) -> bool:
        """Whether joiners may align at this receiver instead of nulling."""
        return self.n_wanted_streams < self.n_antennas
