"""Medium-access control: the n+ protocol and its baselines.

* :mod:`repro.mac.frames` -- packets and the light-weight data/ACK headers.
* :mod:`repro.mac.handshake` -- the light-weight RTS/CTS handshake (§3.5):
  overhead accounting and differential encoding of the alignment space.
* :mod:`repro.mac.bitrate` -- per-packet ESNR-based bitrate selection
  (§3.4) plus a historical-rate controller used as an ablation baseline.
* :mod:`repro.mac.power_control` -- the L-threshold admission/power rule
  (§4, "Imperfections in Nulling and Alignment").
* :mod:`repro.mac.aggregation` -- fragmentation/aggregation so joiners end
  with the first contention winner (§3.1).
* :mod:`repro.mac.plan` -- the join policy: turning overheard headers and
  reciprocity channels into pre-coders, power scaling and a bitrate.
* :mod:`repro.mac.csma` -- DCF-style contention (DIFS, backoff, collisions).
* :mod:`repro.mac.retransmission` -- the retry queue.
* :mod:`repro.mac.dot11n` / :mod:`repro.mac.nplus` /
  :mod:`repro.mac.beamforming` -- the three protocol agents used in the
  evaluation (loaded lazily because they sit on top of the simulator).
"""

from repro.mac.aggregation import airtime_for_bits, bits_in_airtime
from repro.mac.bitrate import HistoricalRateController, choose_bitrate
from repro.mac.csma import ContentionRound, DcfContender, resolve_contention
from repro.mac.frames import AckHeader, DataHeader, Packet
from repro.mac.handshake import HandshakeOverhead, handshake_overhead
from repro.mac.plan import (
    PlannedReceiver,
    ProtectedReceiver,
    StreamPlan,
    TransmissionPlan,
    plan_initial_transmission,
    plan_join,
)
from repro.mac.power_control import admission_power_scale, interference_power_db
from repro.mac.retransmission import RetransmissionQueue

__all__ = [
    "Packet",
    "DataHeader",
    "AckHeader",
    "choose_bitrate",
    "HistoricalRateController",
    "admission_power_scale",
    "interference_power_db",
    "bits_in_airtime",
    "airtime_for_bits",
    "handshake_overhead",
    "HandshakeOverhead",
    "TransmissionPlan",
    "StreamPlan",
    "ProtectedReceiver",
    "PlannedReceiver",
    "plan_initial_transmission",
    "plan_join",
    "DcfContender",
    "ContentionRound",
    "resolve_contention",
    "RetransmissionQueue",
    "BaseMacAgent",
    "Dot11nMac",
    "NPlusMac",
    "BeamformingMac",
]

#: Agent classes are imported lazily (PEP 562) because they depend on the
#: simulation package, which in turn uses the lightweight MAC modules.
_LAZY_AGENTS = {
    "BaseMacAgent": ("repro.mac.agent", "BaseMacAgent"),
    "Dot11nMac": ("repro.mac.dot11n", "Dot11nMac"),
    "NPlusMac": ("repro.mac.nplus", "NPlusMac"),
    "BeamformingMac": ("repro.mac.beamforming", "BeamformingMac"),
}


def __getattr__(name: str):
    if name in _LAZY_AGENTS:
        import importlib

        module_name, attribute = _LAZY_AGENTS[name]
        module = importlib.import_module(module_name)
        value = getattr(module, attribute)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
