"""Retransmission bookkeeping (§4, "Retransmissions").

An n+ node keeps a packet in its queue until it is acknowledged.  Because
a joiner must always end with the ongoing transmissions, the same packet
may be fragmented differently -- or aggregated with other packets for the
same receiver -- on its next attempt; the queue therefore tracks how many
bits of each packet remain unacknowledged rather than treating packets as
atomic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.constants import MAX_RETRIES
from repro.mac.frames import Packet

__all__ = ["RetransmissionQueue"]


@dataclass
class _PendingPacket:
    packet: Packet
    remaining_bits: int


@dataclass
class RetransmissionQueue:
    """A per-destination FIFO of packets with partial-delivery tracking.

    Attributes
    ----------
    max_retries:
        Attempts after which a packet is dropped.
    """

    max_retries: int = MAX_RETRIES
    _pending: List[_PendingPacket] = field(default_factory=list)
    dropped_packets: int = 0
    delivered_packets: int = 0
    delivered_bits: int = 0

    # -- queue management ------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Add a new packet to the tail of the queue."""
        self._pending.append(_PendingPacket(packet=packet, remaining_bits=packet.size_bits))

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def has_traffic(self) -> bool:
        """Whether any bits are waiting to be sent."""
        return bool(self._pending)

    @property
    def backlog_bits(self) -> int:
        """Total unacknowledged bits in the queue."""
        return sum(p.remaining_bits for p in self._pending)

    def head(self) -> Optional[Packet]:
        """The packet at the head of the queue (None if empty)."""
        return self._pending[0].packet if self._pending else None

    # -- transmission outcomes ----------------------------------------------------

    def take_bits(self, capacity_bits: int) -> int:
        """Reserve up to ``capacity_bits`` of queued data for a transmission.

        Returns the number of bits actually reserved (FIFO order, possibly
        spanning several packets -- aggregation -- or part of one packet --
        fragmentation).  The reservation is logical: the bits stay in the
        queue until :meth:`acknowledge` or :meth:`fail` is called.
        """
        reserved = 0
        for pending in self._pending:
            if reserved >= capacity_bits:
                break
            reserved += min(pending.remaining_bits, capacity_bits - reserved)
        return reserved

    def acknowledge(self, delivered_bits: int) -> int:
        """Mark ``delivered_bits`` (FIFO order) as acknowledged.

        Returns the number of whole packets completed and removed.
        """
        completed = 0
        remaining = delivered_bits
        while remaining > 0 and self._pending:
            head = self._pending[0]
            taken = min(head.remaining_bits, remaining)
            head.remaining_bits -= taken
            remaining -= taken
            self.delivered_bits += taken
            if head.remaining_bits == 0:
                self._pending.pop(0)
                self.delivered_packets += 1
                completed += 1
        return completed

    def fail(self) -> None:
        """Record a failed attempt for the head packet; drop it after too
        many retries."""
        if not self._pending:
            return
        head = self._pending[0]
        head.packet.retries += 1
        if head.packet.retries > self.max_retries:
            self._pending.pop(0)
            self.dropped_packets += 1
