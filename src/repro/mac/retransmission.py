"""Retransmission bookkeeping (§4, "Retransmissions").

An n+ node keeps a packet in its queue until it is acknowledged.  Because
a joiner must always end with the ongoing transmissions, the same packet
may be fragmented differently -- or aggregated with other packets for the
same receiver -- on its next attempt; the queue therefore tracks how many
bits of each packet remain unacknowledged rather than treating packets as
atomic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.constants import MAX_RETRIES
from repro.mac.frames import Packet

__all__ = ["RetransmissionQueue"]


@dataclass
class _PendingPacket:
    packet: Packet
    remaining_bits: int


@dataclass
class RetransmissionQueue:
    """A per-destination FIFO of packets with partial-delivery tracking.

    Attributes
    ----------
    max_retries:
        Attempts after which a packet is dropped.
    """

    max_retries: int = MAX_RETRIES
    _pending: List[_PendingPacket] = field(default_factory=list)
    dropped_packets: int = 0
    dropped_bits: int = 0
    delivered_packets: int = 0
    delivered_bits: int = 0

    # -- queue management ------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Add a new packet to the tail of the queue."""
        self._pending.append(_PendingPacket(packet=packet, remaining_bits=packet.size_bits))

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def has_traffic(self) -> bool:
        """Whether any bits are waiting to be sent."""
        return bool(self._pending)

    @property
    def backlog_bits(self) -> int:
        """Total unacknowledged bits in the queue."""
        return sum(p.remaining_bits for p in self._pending)

    def head(self) -> Optional[Packet]:
        """The packet at the head of the queue (None if empty)."""
        return self._pending[0].packet if self._pending else None

    # -- transmission outcomes ----------------------------------------------------

    def take_bits(self, capacity_bits: int) -> int:
        """Reserve up to ``capacity_bits`` of queued data for a transmission.

        Returns the number of bits actually reserved (FIFO order, possibly
        spanning several packets -- aggregation -- or part of one packet --
        fragmentation).  The reservation is logical: the bits stay in the
        queue until :meth:`acknowledge` or :meth:`fail` is called.
        """
        reserved = 0
        for pending in self._pending:
            if reserved >= capacity_bits:
                break
            reserved += min(pending.remaining_bits, capacity_bits - reserved)
        return reserved

    def acknowledge(self, delivered_bits: int) -> int:
        """Mark ``delivered_bits`` (FIFO order) as acknowledged.

        Returns the number of whole packets completed and removed.  A
        partially-acknowledged head packet has made forward progress, so
        its retry count resets: retries only accumulate across attempts
        that delivered *nothing* of the packet, which is what keeps a
        slow-but-working link from spuriously dropping packets at the
        retry cap.
        """
        completed = 0
        remaining = delivered_bits
        while remaining > 0 and self._pending:
            head = self._pending[0]
            taken = min(head.remaining_bits, remaining)
            head.remaining_bits -= taken
            remaining -= taken
            self.delivered_bits += taken
            if head.remaining_bits == 0:
                self._pending.pop(0)
                self.delivered_packets += 1
                completed += 1
            else:
                head.packet.retries = 0
        return completed

    def fail(self, attempted_bits: Optional[int] = None) -> None:
        """Record a failed attempt; drop packets past the retry cap.

        ``attempted_bits`` is the size of the failed transmission (what
        :meth:`take_bits` reserved).  Every packet the attempt spanned is
        aged, so aggregated attempts cannot park all blame on the head
        packet while the rest of the FIFO stays forever young -- on a
        permanently faded link that would grow the pending queue without
        bound.  Packets past ``max_retries`` are dropped, with their
        unacknowledged bits counted in ``dropped_bits``.  ``None`` ages
        the head packet only (the pre-aggregation behaviour, kept for
        callers that fail one packet at a time).
        """
        if not self._pending:
            return
        if attempted_bits is None:
            span = 1
        else:
            span = 0
            covered = 0
            for pending in self._pending:
                if covered >= attempted_bits:
                    break
                covered += pending.remaining_bits
                span += 1
            span = max(span, 1)
        for pending in self._pending[:span]:
            pending.packet.retries += 1
        survivors = []
        for index, pending in enumerate(self._pending):
            if index < span and pending.packet.retries > self.max_retries:
                self.dropped_packets += 1
                self.dropped_bits += pending.remaining_bits
            else:
                survivors.append(pending)
        self._pending = survivors
