"""The base MAC agent shared by n+, 802.11n and the beamforming baseline.

An agent owns one traffic pair: it keeps per-receiver packet queues fed by
saturated (or Poisson) sources, carries the DCF contention state, knows
how to plan a transmission on an idle medium, and records the outcome of
every attempt.  The protocol-specific subclasses override how streams are
formed (single-user, multi-user beamforming) and whether/how the node
joins ongoing transmissions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_ERASURE_K,
    DEFAULT_ERASURE_N,
    HEADER_OFDM_SYMBOLS,
    MAX_RETRIES,
    OFDM_SYMBOL_DURATION_US_10MHZ,
    SIFS_US,
)
from repro.exceptions import MediumAccessError
from repro.mac.aggregation import airtime_for_bits
from repro.mac.bitrate import choose_bitrate
from repro.mac.csma import DcfContender
from repro.mac.plan import PlanCache, involved_node_ids, stream_signature
from repro.mac.retransmission import RetransmissionQueue
from repro.phy.rates import MCS
from repro.sim.link_abstraction import receiver_stream_snrs
from repro.sim.medium import Medium, ScheduledStream
from repro.sim.node import Station, TrafficPair
from repro.sim.traffic import SaturatedSource

__all__ = ["BaseMacAgent"]

#: Minimum queued packets kept per receiver so saturated sources never run dry.
_QUEUE_TARGET = 4


class BaseMacAgent:
    """Common machinery for all MAC protocol agents.

    Parameters
    ----------
    pair:
        The transmitter-receiver pair this agent drives.
    network:
        The :class:`repro.sim.network.Network` of the current run.
    rng:
        Random generator (backoff draws, delivery coin flips).
    packet_size_bytes:
        Payload size of generated packets (1500 in the paper).
    bitrate_margin_db:
        Safety margin subtracted from the measured effective SNR before
        choosing a bitrate.
    arrival_seed:
        Optional seed prefix (any sequence :func:`numpy.random.default_rng`
        accepts) for the Poisson arrival processes.  When given, every
        (transmitter, receiver) flow draws its arrivals from its own
        stream seeded ``(*arrival_seed, transmitter_id, receiver_id)``, so
        the arrival sequence of a flow is a pure function of the seed and
        the flow's endpoints -- independent of the order agents are
        created or refilled in.  When omitted, arrivals fall back to the
        shared ``rng`` (the historical behaviour, which interleaves draws
        across agents in refill order).
    plan_cache:
        Optional per-simulation :class:`~repro.mac.plan.PlanCache`.
        When given, the pure planning computations (pre-coder
        decompositions, measured post-projection SNRs) are memoized by
        contention configuration; omitting it recomputes every plan from
        scratch.  Both paths produce bit-identical metrics -- the cache
        only skips recomputation the static-channel invariant makes
        redundant.
    spec:
        Optional :class:`~repro.mac.variants.ProtocolSpec` carrying the
        variant parameters (the recovery family: ``recovery``,
        ``retry_cap``, ``erasure_k``/``erasure_n``).  Omitting it uses
        every default -- identical to a default-parameter spec, so
        pre-framework construction sites need not change.
    """

    protocol_name = "base"
    supports_joining = False
    #: Whether :meth:`can_join` is equivalent to the vectorized
    #: join-eligibility rule of the batched round pipeline (see
    #: ``repro.sim.runner._BatchedEventDrivenLoop``).  Joining protocols
    #: that set this advertise that the runner may skip their per-agent
    #: ``can_join`` calls in favour of the array computation.
    vectorized_join_eligibility = False

    def __init__(
        self,
        pair: TrafficPair,
        network,
        rng: np.random.Generator,
        packet_size_bytes: int = 1500,
        bitrate_margin_db: float = 0.0,
        packet_rate_pps: Optional[float] = None,
        arrival_seed: Optional[Sequence[int]] = None,
        plan_cache: Optional[PlanCache] = None,
        spec=None,
    ) -> None:
        self.pair = pair
        self.network = network
        self.rng = rng
        self.plan_cache = plan_cache
        self.bitrate_margin_db = bitrate_margin_db
        self.spec = spec
        params = spec.resolved_params() if spec is not None else {}
        self.recovery: str = params.get("recovery", "none")
        self.retry_cap: int = int(params.get("retry_cap", MAX_RETRIES))
        self.erasure_k: int = int(params.get("erasure_k", DEFAULT_ERASURE_K))
        self.erasure_n: int = int(params.get("erasure_n", DEFAULT_ERASURE_N))
        self.contender = DcfContender(node_id=pair.transmitter.node_id)
        self.queues: Dict[int, RetransmissionQueue] = {}
        self.sources: Dict[int, object] = {}
        self._traffic_listener = None
        self._receiver_antennas: Dict[int, int] = {
            receiver.node_id: receiver.n_antennas for receiver in pair.receivers
        }
        for receiver in pair.receivers:
            self.queues[receiver.node_id] = RetransmissionQueue(
                max_retries=self.retry_cap
            )
            if packet_rate_pps is None:
                self.sources[receiver.node_id] = SaturatedSource(
                    source_id=pair.transmitter.node_id,
                    destination_id=receiver.node_id,
                    packet_size_bytes=packet_size_bytes,
                )
            else:
                from repro.sim.traffic import PoissonSource

                if arrival_seed is None:
                    arrival_rng = rng
                else:
                    arrival_rng = np.random.default_rng(
                        (*arrival_seed, pair.transmitter.node_id, receiver.node_id)
                    )
                self.sources[receiver.node_id] = PoissonSource(
                    source_id=pair.transmitter.node_id,
                    destination_id=receiver.node_id,
                    rate_packets_per_second=packet_rate_pps,
                    rng=arrival_rng,
                    packet_size_bytes=packet_size_bytes,
                )
        self._round_robin = 0
        # receiver_id -> epoch signature of the link at quarantine time.
        # A link lands here when the numerical guards degraded one of its
        # planning decompositions; it sits out until the signature changes
        # (the channel moved to a new epoch), see quarantine_link().
        self._quarantine: Dict[int, tuple] = {}
        self.quarantined_rounds = 0

    # -- identity -----------------------------------------------------------------

    @property
    def node_id(self) -> int:
        """Id of the transmitting station."""
        return self.pair.transmitter.node_id

    @property
    def n_antennas(self) -> int:
        """Antenna count of the transmitting station."""
        return self.pair.transmitter.n_antennas

    @property
    def name(self) -> str:
        """Readable label of the pair."""
        return self.pair.name

    # -- traffic --------------------------------------------------------------------

    def attach_traffic_listener(self, listener) -> None:
        """Register the batched traffic-state arrays this agent reports to.

        ``listener`` is a :class:`~repro.sim.traffic.TrafficStateArrays`
        (or anything with its ``agent_refilled`` / ``agent_outcome``
        callbacks).  Once attached, every :meth:`refill` and
        :meth:`record_outcome` pushes the agent's new traffic state, which
        is what keeps the arrays incremental instead of rescanned.
        """
        self._traffic_listener = listener

    def _queue_snapshot(self) -> tuple:
        """``(backlogged, join_rx_antennas, queue_space)`` of the queues.

        ``queue_space`` -- some queue is below the refill target, i.e. a
        future refill could actually move packets -- is what lets the
        batched pipeline skip the no-op refills of agents whose queues are
        full even though arrivals are pending.
        """
        backlogged = False
        join_rx_antennas = 0
        queue_space = False
        for receiver_id, queue in self.queues.items():
            if len(queue) < _QUEUE_TARGET:
                queue_space = True
            if queue.has_traffic:
                backlogged = True
                antennas = self._receiver_antennas[receiver_id]
                if antennas > join_rx_antennas:
                    join_rx_antennas = antennas
        return backlogged, join_rx_antennas, queue_space

    def _next_source_arrival_us(self, now_us: float) -> float:
        """Earliest pending arrival across sources (``inf`` for saturated).

        Always-backlogged sources report ``inf`` rather than ``now``: their
        agents are kept backlogged by every refill, so the arrival column
        is only ever consulted for sources that can run dry -- reporting
        ``inf`` keeps saturated agents out of the due-for-refill mask.
        """
        earliest = float("inf")
        for source in self.sources.values():
            if getattr(source, "always_backlogged", False):
                continue
            arrival = source.next_packet_time_us(now_us)
            if arrival < earliest:
                earliest = arrival
        return earliest

    def refill(self, now_us: float) -> None:
        """Top up the per-receiver queues from the traffic sources."""
        for receiver_id, queue in self.queues.items():
            source = self.sources[receiver_id]
            while len(queue) < _QUEUE_TARGET and source.has_packet(now_us):
                queue.enqueue(source.next_packet(now_us))
        if self._traffic_listener is not None:
            backlogged, join_rx_antennas, queue_space = self._queue_snapshot()
            self._traffic_listener.agent_refilled(
                self.node_id,
                backlogged,
                self._next_source_arrival_us(now_us),
                join_rx_antennas,
                queue_space,
            )

    def has_traffic(self, now_us: float) -> bool:
        """Whether the agent wants to contend right now."""
        self.refill(now_us)
        return any(queue.has_traffic for queue in self.queues.values())

    def backlog_bits(self, receiver_id: int) -> int:
        """Unacknowledged bits queued for one receiver."""
        return self.queues[receiver_id].backlog_bits

    def next_traffic_time_us(self, now_us: float) -> float:
        """Earliest time this agent could want to contend again.

        ``now_us`` when a queue is already backlogged; otherwise the
        earliest upcoming arrival across the traffic sources.  The
        event-driven runner uses this to schedule the next contention poll
        directly at the end of an idle gap.
        """
        times: List[float] = []
        for receiver_id, queue in self.queues.items():
            if queue.has_traffic:
                return now_us
            times.append(self.sources[receiver_id].next_packet_time_us(now_us))
        return min(times) if times else float("inf")

    # -- timing helpers ----------------------------------------------------------------

    def header_duration_us(self) -> float:
        """Airtime of the light-weight data header."""
        return HEADER_OFDM_SYMBOLS * OFDM_SYMBOL_DURATION_US_10MHZ

    def ack_duration_us(self) -> float:
        """Airtime of the ACK exchange that follows the data bodies."""
        return SIFS_US + HEADER_OFDM_SYMBOLS * OFDM_SYMBOL_DURATION_US_10MHZ

    # -- plan caching -------------------------------------------------------------------

    def _cached(self, key: tuple, compute):
        """Memoize a pure planning computation in the per-simulation cache.

        Falls through to ``compute()`` when no cache is attached, so the
        cached and uncached paths stay interchangeable.
        """
        if self.plan_cache is None:
            return compute()
        return self.plan_cache.get(key, compute)

    # -- numerical quarantine -----------------------------------------------------------

    def quarantine_link(self, receiver_id: int) -> None:
        """Sit a link out after a guarded numerical fallback.

        Called by the planning layer when :mod:`repro.utils.guarded`
        reports that a decomposition feeding this link's plan degraded
        (non-finite or near-singular channel, typically mid-fade).  The
        link's current epoch signature is pinned; the quarantine lifts
        automatically the moment the signature changes (the fault layer
        bumped the channel), so a restored link resumes without any
        explicit un-quarantine call.
        """
        signature = self.network.epoch_signature((self.node_id, receiver_id))
        self._quarantine[receiver_id] = signature

    def link_quarantined(self, receiver_id: int) -> bool:
        """Whether a link is currently quarantined (auto-lifts on epoch change)."""
        pinned = self._quarantine.get(receiver_id)
        if pinned is None:
            return False
        current = self.network.epoch_signature((self.node_id, receiver_id))
        if current != pinned:
            del self._quarantine[receiver_id]
            return False
        return True

    def _quarantine_signature(self) -> tuple:
        """Sorted ids of the still-quarantined receivers, as a cache-key
        component: quarantine state can flip within one channel epoch
        (links are quarantined *during* planning), so plan memo keys must
        carry it explicitly."""
        return tuple(
            sorted(
                receiver_id
                for receiver_id in list(self._quarantine)
                if self.link_quarantined(receiver_id)
            )
        )

    # -- bitrate -------------------------------------------------------------------------

    def _measured_snrs(
        self,
        receiver_id: int,
        planned: Sequence[ScheduledStream],
        concurrent: Sequence[ScheduledStream],
    ) -> np.ndarray:
        """Per-subcarrier post-projection SNRs the receiver would measure on
        the light-weight RTS of the planned streams (worst stream governs
        every subcarrier because one failed stream fails the packet).

        Pure given the contention configuration (static channels, memoized
        estimates, no generator involved), so the result is memoized by
        the structural signatures of the planned and concurrent streams
        plus the channel-epoch signature of every involved node (``()``
        in a static network; a fade bumping any involved link changes
        the signature and so retires exactly the affected entries).
        """
        involved = involved_node_ids(
            planned, concurrent, extra=(self.node_id, receiver_id)
        )
        key = (
            "measured-snrs",
            receiver_id,
            stream_signature(planned),
            stream_signature(concurrent),
            self.network.epoch_signature(involved),
        )
        return self._cached(
            key, lambda: self._measured_snrs_fresh(receiver_id, planned, concurrent)
        )

    def _measured_snrs_fresh(
        self,
        receiver_id: int,
        planned: Sequence[ScheduledStream],
        concurrent: Sequence[ScheduledStream],
    ) -> np.ndarray:
        wanted = [s for s in planned if s.receiver_id == receiver_id]
        snrs = receiver_stream_snrs(
            self.network, receiver_id, wanted, list(concurrent) + list(planned)
        )
        per_stream = [snrs[s.stream_id] for s in wanted]
        if not per_stream:
            return np.array([0.0])
        return np.concatenate(per_stream)

    def _select_mcs(
        self,
        receiver_id: int,
        planned: Sequence[ScheduledStream],
        concurrent: Sequence[ScheduledStream],
    ) -> MCS:
        """The bitrate the receiver would feed back for the planned streams.

        The receiver measures the post-projection SNR of each of its wanted
        streams on the (light-weight) RTS given the transmissions on the
        air at that moment, computes the effective SNR and picks the
        fastest adequate MCS; the most constrained stream governs.
        """
        return choose_bitrate(
            self._measured_snrs(receiver_id, planned, concurrent), self.bitrate_margin_db
        )

    # -- planning (overridden by subclasses) ------------------------------------------------

    def plan_initial(self, start_us: float, medium: Medium) -> List[ScheduledStream]:
        """Plan a transmission on an idle medium.

        Subclasses implement the stream formation; the base class raises.
        """
        raise NotImplementedError

    def can_join(self, now_us: float, medium: Medium, min_airtime_us: float) -> bool:
        """Whether the agent is eligible for secondary contention."""
        return False

    def plan_join(
        self, start_us: float, medium: Medium
    ) -> Optional[List[ScheduledStream]]:
        """Plan a transmission joining the ongoing ones (n+ only)."""
        return None

    # -- outcomes -------------------------------------------------------------------------------

    def record_outcome(
        self, receiver_id: int, attempted_bits: int, delivered: bool,
        collided: bool = False,
    ) -> int:
        """Update queues and contention state after a transmission.

        ``collided`` distinguishes a contention collision from a channel
        loss (a NACKed frame): under the ``fast-retransmit`` recovery
        policy a channel loss arms a zero-backoff resend instead of
        doubling the contention window, while collisions always back off
        exponentially.  Returns the number of bits acknowledged.
        """
        if receiver_id not in self.queues:
            raise MediumAccessError(
                f"{self.name}: outcome for unknown receiver {receiver_id}"
            )
        queue = self.queues[receiver_id]
        if delivered:
            queue.acknowledge(attempted_bits)
            self.contender.record_success()
            acknowledged = attempted_bits
        else:
            queue.fail(attempted_bits)
            if self.recovery == "fast-retransmit" and not collided:
                self.contender.arm_fast_retransmit()
            else:
                self.contender.record_collision()
            acknowledged = 0
        if self._traffic_listener is not None:
            backlogged, join_rx_antennas, _ = self._queue_snapshot()
            self._traffic_listener.agent_outcome(self.node_id, backlogged, join_rx_antennas)
        return acknowledged

    # -- shared helpers for subclasses -------------------------------------------------------------

    def _equal_power(self, n_streams: int, power_scale: float = 1.0) -> float:
        """Per-stream transmit power with an equal split of the budget."""
        if n_streams <= 0:
            return 0.0
        return power_scale / n_streams

    def _constant_precoders(self, vector: np.ndarray) -> np.ndarray:
        """Tile a single pre-coding vector across all tracked subcarriers."""
        vector = np.asarray(vector, dtype=complex)
        return np.tile(vector, (self.network.n_subcarriers, 1))
