"""The light-weight RTS/CTS handshake (§3.5).

Instead of dedicated RTS/CTS control frames, n+ splits every data and ACK
frame into a *header* and a *body* and sends both headers before both
bodies (Fig. 8).  The extra cost over plain 802.11 is two SIFS intervals
plus a few OFDM symbols: the ACK header additionally carries the selected
bitrate and the receiver's alignment space, the latter differentially
encoded across OFDM subcarriers because the channel (and therefore the
alignment space) changes slowly with frequency.

This module implements the differential encoding/decoding of the
alignment space, the quantisation used to fit it into OFDM symbols, and
the overall overhead accounting reproduced in
``benchmarks/bench_handshake_overhead.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.constants import (
    HEADER_OFDM_SYMBOLS,
    NPLUS_ACK_HEADER_EXTRA_SYMBOLS,
    NPLUS_DATA_HEADER_EXTRA_SYMBOLS,
    NUM_DATA_SUBCARRIERS,
    OFDM_SYMBOL_DURATION_US_10MHZ,
    SIFS_US,
)
from repro.exceptions import DimensionError
from repro.phy.rates import MCS

__all__ = [
    "differential_encode_subspaces",
    "differential_decode_subspaces",
    "quantized_alignment_bits",
    "alignment_feedback_symbols",
    "HandshakeOverhead",
    "handshake_overhead",
]

#: Bits used to quantise the real and imaginary part of each subspace entry.
BITS_PER_COMPONENT = 8

#: Bits used for each *differential* entry (smaller range, fewer bits).
BITS_PER_DIFFERENTIAL_COMPONENT = 3

#: Coded bits carried by one feedback OFDM symbol (16-QAM, rate 1/2 -- the
#: ACK header is sent at a robust mid-range rate).
FEEDBACK_BITS_PER_SYMBOL = NUM_DATA_SUBCARRIERS * 4 // 2


def differential_encode_subspaces(subspaces: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Differentially encode per-subcarrier alignment spaces.

    Parameters
    ----------
    subspaces:
        Complex array of shape ``(n_subcarriers, N, n)``: the alignment
        space (U or U-perp) of each OFDM subcarrier.

    Returns
    -------
    (first, differences):
        ``first`` is the subspace of the first subcarrier; ``differences``
        has shape ``(n_subcarriers - 1, N, n)`` and holds
        ``U_i - U_{i-1}``.
    """
    subspaces = np.asarray(subspaces, dtype=complex)
    if subspaces.ndim != 3:
        raise DimensionError(
            f"subspaces must have shape (n_subcarriers, N, n), got {subspaces.shape}"
        )
    first = subspaces[0]
    differences = np.diff(subspaces, axis=0)
    return first, differences


def differential_decode_subspaces(first: np.ndarray, differences: np.ndarray) -> np.ndarray:
    """Invert :func:`differential_encode_subspaces`."""
    first = np.asarray(first, dtype=complex)
    differences = np.asarray(differences, dtype=complex)
    n_subcarriers = differences.shape[0] + 1
    out = np.empty((n_subcarriers, *first.shape), dtype=complex)
    out[0] = first
    out[1:] = first + np.cumsum(differences, axis=0)
    return out


def quantized_alignment_bits(subspaces: np.ndarray) -> int:
    """Number of feedback bits needed for the alignment space of a packet.

    The first subcarrier's subspace is sent at full precision
    (:data:`BITS_PER_COMPONENT` bits per real component); every later
    subcarrier only sends the difference from its predecessor, whose
    entries are small because the channel changes slowly with frequency
    and therefore need only :data:`BITS_PER_DIFFERENTIAL_COMPONENT` bits.
    Differences that round to zero cost nothing (run-length skipped).
    """
    first, differences = differential_encode_subspaces(subspaces)
    bits = 2 * BITS_PER_COMPONENT * first.size
    if differences.size:
        # A difference entry is "significant" when it exceeds the
        # differential quantisation step; only those are transmitted.
        scale = max(float(np.max(np.abs(first))), 1e-12)
        step = scale / (2 ** (BITS_PER_DIFFERENTIAL_COMPONENT - 1))
        significant = np.abs(differences) > step
        bits += 2 * BITS_PER_DIFFERENTIAL_COMPONENT * int(np.sum(significant))
        # One flag bit per entry to mark it significant or skipped.
        bits += differences.size
    return int(bits)


def alignment_feedback_symbols(subspaces: np.ndarray) -> int:
    """OFDM symbols needed to carry the differentially-encoded alignment
    space (the paper measures about three on testbed channels)."""
    bits = quantized_alignment_bits(subspaces)
    return int(np.ceil(bits / FEEDBACK_BITS_PER_SYMBOL))


@dataclass(frozen=True)
class HandshakeOverhead:
    """Breakdown of the light-weight handshake overhead for one exchange.

    Attributes
    ----------
    extra_sifs_us:
        The two extra SIFS intervals of Fig. 8(b).
    extra_symbols:
        Extra OFDM symbols added to the data and ACK headers.
    overhead_us:
        Total extra time versus a plain 802.11 DATA/ACK exchange.
    data_exchange_us:
        Duration of the data body at the chosen bitrate.
    fraction:
        ``overhead_us / (overhead_us + data_exchange_us)``.
    """

    extra_sifs_us: float
    extra_symbols: int
    overhead_us: float
    data_exchange_us: float
    fraction: float
    symbol_fraction: float


def handshake_overhead(
    mcs: MCS,
    payload_bytes: int = 1500,
    alignment_symbols: int = 3,
    n_streams: int = 1,
) -> HandshakeOverhead:
    """Compute the light-weight handshake overhead (§3.5).

    With the default three OFDM symbols of alignment feedback plus one
    symbol for bitrate and CRC, the overhead for a 1500-byte packet at
    18 Mb/s comes out to roughly 4 %, matching the paper's estimate.
    """
    extra_sifs = 2 * SIFS_US
    extra_symbols = alignment_symbols + 1 + NPLUS_DATA_HEADER_EXTRA_SYMBOLS
    extra_symbol_time = extra_symbols * OFDM_SYMBOL_DURATION_US_10MHZ
    data_time = mcs.airtime_us(payload_bytes * 8, n_streams=n_streams)
    overhead = extra_sifs + extra_symbol_time
    return HandshakeOverhead(
        extra_sifs_us=extra_sifs,
        extra_symbols=extra_symbols,
        overhead_us=overhead,
        data_exchange_us=data_time,
        fraction=overhead / (overhead + data_time),
        symbol_fraction=extra_symbol_time / (extra_symbol_time + data_time),
    )
