"""Fragmentation and aggregation so joiners end with the first winner.

n+ requires every transmission that joins the medium to finish at the
same time as the transmissions already on the air (§3.1); this keeps the
medium periodically idle so single-antenna nodes are not starved.  The
joiner therefore sizes its payload to the *remaining* airtime: it
fragments a packet that does not fit, or aggregates several queued
packets when there is room for more than one (as 802.11n A-MPDU
aggregation and ATM fragmentation do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.constants import OFDM_SYMBOL_DURATION_US_10MHZ
from repro.exceptions import MediumAccessError
from repro.mac.frames import Packet
from repro.phy.rates import MCS

__all__ = ["bits_in_airtime", "airtime_for_bits", "FragmentationDecision", "fill_airtime"]


def bits_in_airtime(mcs: MCS, airtime_us: float, n_streams: int = 1, bandwidth_mhz: float = 10.0) -> int:
    """Payload bits that fit in ``airtime_us`` at the given MCS.

    The airtime is rounded down to whole OFDM symbols.
    """
    if airtime_us <= 0:
        return 0
    if bandwidth_mhz == 10.0:
        symbol_us = OFDM_SYMBOL_DURATION_US_10MHZ
    else:
        symbol_us = 80.0 / bandwidth_mhz
    n_symbols = int(airtime_us // symbol_us)
    return int(n_symbols * mcs.data_bits_per_ofdm_symbol * n_streams)


def airtime_for_bits(mcs: MCS, bits: int, n_streams: int = 1, bandwidth_mhz: float = 10.0) -> float:
    """Airtime needed for ``bits`` of payload (whole OFDM symbols)."""
    return mcs.airtime_us(bits, bandwidth_mhz, n_streams)


@dataclass
class FragmentationDecision:
    """How a joiner fills the remaining airtime.

    Attributes
    ----------
    whole_packets:
        Packets transmitted in full (aggregation).
    fragment_bits:
        Bits of the next packet transmitted as a fragment (0 if none).
    total_bits:
        Total payload bits carried.
    """

    whole_packets: List[Packet]
    fragment_bits: int
    total_bits: int


def fill_airtime(
    queue: List[Packet],
    capacity_bits: int,
    allow_fragmentation: bool = True,
) -> FragmentationDecision:
    """Choose which queued packets (and fragment) fill ``capacity_bits``.

    Packets are taken in FIFO order.  The decision never mutates the
    queue; the caller removes/updates packets after the transmission is
    acknowledged.
    """
    if capacity_bits < 0:
        raise MediumAccessError("airtime capacity cannot be negative")
    whole: List[Packet] = []
    used = 0
    fragment_bits = 0
    for packet in queue:
        if used + packet.size_bits <= capacity_bits:
            whole.append(packet)
            used += packet.size_bits
        else:
            if allow_fragmentation:
                fragment_bits = max(0, capacity_bits - used)
                used += fragment_bits
            break
    return FragmentationDecision(
        whole_packets=whole, fragment_bits=fragment_bits, total_bits=used
    )
