"""Shared numerical and bit-twiddling utilities.

The :mod:`repro.utils` package collects the small, dependency-free helpers
that the PHY, MIMO and MAC layers build on:

* :mod:`repro.utils.linalg` -- null spaces, orthonormal complements and
  projections used by interference nulling, alignment and
  multi-dimensional carrier sense.
* :mod:`repro.utils.db` -- dB / linear power conversions.
* :mod:`repro.utils.bits` -- bit packing, CRC-32 and pseudo-random payloads.
* :mod:`repro.utils.validation` -- argument-checking helpers that raise the
  library's exception types.
"""

from repro.utils.db import (
    db_to_linear,
    linear_to_db,
    dbm_to_milliwatt,
    milliwatt_to_dbm,
    power_db,
    signal_power,
    snr_db,
)
from repro.utils.linalg import (
    null_space,
    orthonormal_basis,
    orthonormal_complement,
    project_onto_subspace,
    project_out_subspace,
    random_unitary,
    subspace_angle,
)

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_milliwatt",
    "milliwatt_to_dbm",
    "power_db",
    "signal_power",
    "snr_db",
    "null_space",
    "orthonormal_basis",
    "orthonormal_complement",
    "project_onto_subspace",
    "project_out_subspace",
    "random_unitary",
    "subspace_angle",
]
