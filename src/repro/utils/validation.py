"""Argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DimensionError

__all__ = [
    "require_positive_int",
    "require_positive",
    "require_in_range",
    "require_matrix_shape",
    "require_antenna_count",
    "as_channel_matrix",
]


def require_positive_int(value, name: str) -> int:
    """Return ``value`` as an ``int``; raise if it is not a positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def require_positive(value, name: str) -> float:
    """Return ``value`` as a float; raise if it is not strictly positive."""
    value = float(value)
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def require_in_range(value, low, high, name: str) -> float:
    """Return ``value`` as a float; raise unless ``low <= value <= high``."""
    value = float(value)
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def require_matrix_shape(matrix: np.ndarray, shape: Sequence[int], name: str) -> np.ndarray:
    """Return ``matrix`` as a complex array, checking its shape exactly."""
    arr = np.asarray(matrix, dtype=complex)
    if arr.shape != tuple(shape):
        raise DimensionError(f"{name} must have shape {tuple(shape)}, got {arr.shape}")
    return arr


def require_antenna_count(value, name: str, maximum: int = 8) -> int:
    """Validate an antenna count (1..maximum)."""
    count = require_positive_int(value, name)
    if count > maximum:
        raise ConfigurationError(f"{name} must be <= {maximum}, got {count}")
    return count


def as_channel_matrix(matrix: np.ndarray, n_rx: int, n_tx: int, name: str = "H") -> np.ndarray:
    """Return ``matrix`` as an ``(n_rx, n_tx)`` complex channel matrix."""
    arr = np.asarray(matrix, dtype=complex)
    if arr.ndim == 0:
        arr = arr.reshape(1, 1)
    elif arr.ndim == 1:
        if n_rx == 1:
            arr = arr.reshape(1, -1)
        elif n_tx == 1:
            arr = arr.reshape(-1, 1)
    if arr.shape != (n_rx, n_tx):
        raise DimensionError(f"{name} must have shape ({n_rx}, {n_tx}), got {arr.shape}")
    return arr
