"""Linear-algebra primitives for subspace manipulation.

Interference nulling, interference alignment and multi-dimensional carrier
sense all reduce to a handful of subspace operations on complex matrices:
computing null spaces (Claim 3.3 / 3.5 of the paper), orthonormal
complements (the "unwanted space" U and its complement U-perp, and the
projection plane used by carrier sense in Fig. 6), and projections of
received samples onto those subspaces.

All functions operate on complex ``numpy`` arrays.  Subspaces are always
represented by matrices whose *columns* form an orthonormal basis.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError
from repro.utils import guarded

__all__ = [
    "null_space",
    "null_space_batch",
    "orthonormal_basis",
    "orthonormal_complement",
    "orthonormal_complement_batch",
    "singular_value_ranks",
    "project_onto_subspace",
    "project_out_subspace",
    "projection_matrix",
    "random_unitary",
    "subspace_angle",
    "is_in_subspace",
]

#: Default relative tolerance used to decide which singular values are zero.
DEFAULT_RCOND = 1e-10


def _as_complex_matrix(a: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``a`` as a 2-D complex array, raising :class:`DimensionError`
    if it cannot be interpreted as a matrix."""
    arr = np.asarray(a, dtype=complex)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 1-D or 2-D, got shape {arr.shape}")
    return arr


def null_space(matrix: np.ndarray, rcond: float = DEFAULT_RCOND) -> np.ndarray:
    """Return an orthonormal basis of the (right) null space of ``matrix``.

    The null space of the stacked nulling/alignment constraint matrix is
    exactly the set of admissible pre-coding vectors (Claims 3.3-3.5).

    Parameters
    ----------
    matrix:
        A ``(rows, cols)`` complex matrix ``A``.
    rcond:
        Singular values below ``rcond * max(singular values)`` are treated
        as zero.

    Returns
    -------
    numpy.ndarray
        A ``(cols, k)`` matrix whose columns are orthonormal and satisfy
        ``A @ v ~= 0``.  ``k`` may be zero, in which case the returned
        array has shape ``(cols, 0)``.
    """
    a = _as_complex_matrix(matrix)
    if a.shape[0] == 0:
        # No constraints: the whole space is the null space.
        return np.eye(a.shape[1], dtype=complex)
    _, s, vh = np.linalg.svd(a, full_matrices=True)
    tol = rcond * (s[0] if s.size else 0.0)
    rank = int(np.sum(s > tol))
    return vh[rank:].conj().T


def singular_value_ranks(
    singular_values: np.ndarray, rcond: float = DEFAULT_RCOND
) -> np.ndarray:
    """Numerical ranks of a stack of matrices from their singular values.

    ``singular_values`` has shape ``(batch, n_sv)`` (as returned by a
    batched SVD); the tolerance is ``rcond * s_max`` per matrix, matching
    the single-matrix functions above so batched fast paths and their
    per-matrix fallbacks always agree on rank.
    """
    s = np.asarray(singular_values)
    tol = rcond * s[:, :1]
    return np.sum(s > tol, axis=1)


def null_space_batch(
    matrices: np.ndarray, n_vectors: int, rcond: float = DEFAULT_RCOND
) -> np.ndarray:
    """Null-space bases of a stack of matrices in one batched SVD.

    The per-subcarrier pre-coding math repeats :func:`null_space` once per
    OFDM subcarrier; this helper performs the whole stack at once.

    Parameters
    ----------
    matrices:
        Complex array of shape ``(batch, rows, cols)``.
    n_vectors:
        How many null-space directions to return per matrix.  Each matrix
        must have a null space of at least this dimension.
    rcond:
        Rank tolerance, as in :func:`null_space`.

    Returns
    -------
    numpy.ndarray
        Shape ``(batch, cols, n_vectors)``: per matrix, the first
        ``n_vectors`` columns that :func:`null_space` would return.

    Raises
    ------
    DimensionError
        If any matrix in the stack has a null space thinner than
        ``n_vectors`` -- only when guards are disabled
        (:mod:`repro.utils.guarded`).  With guards enabled (the
        default), deficient matrices instead fall back to the
        ``n_vectors`` *smallest*-singular-value directions (the
        deterministic pinned-rcond choice) and a degradation is noted
        so the MAC layer can quarantine the link.
    """
    a = np.asarray(matrices, dtype=complex)
    if a.ndim != 3:
        raise DimensionError(f"expected a stack of matrices, got shape {a.shape}")
    batch, rows, cols = a.shape
    if n_vectors < 0 or n_vectors > cols:
        raise DimensionError(f"cannot take {n_vectors} null-space vectors in dimension {cols}")
    if rows == 0:
        eye = np.eye(cols, dtype=complex)[:, :n_vectors]
        return np.broadcast_to(eye, (batch, cols, n_vectors)).copy()
    if guarded.guards_enabled():
        _, s, vh = guarded.svd_stack(a, full_matrices=True)
        ranks = singular_value_ranks(s, rcond)
        if np.any(guarded.ill_conditioned(s)):
            guarded.note_degradation("ill-conditioned-null-space")
        deficient = ranks + n_vectors > cols
        if np.any(deficient):
            guarded.note_degradation("null-space-deficit")
            ranks = np.where(deficient, cols - n_vectors, ranks)
    else:
        _, s, vh = np.linalg.svd(a, full_matrices=True)
        ranks = singular_value_ranks(s, rcond)
        if np.any(ranks + n_vectors > cols):
            raise DimensionError(
                f"a matrix in the stack has a null space of dimension smaller than {n_vectors}"
            )
    # Gather rows ``rank .. rank + n_vectors`` of each V^H, even when the
    # ranks differ across the stack.
    row_idx = ranks[:, None] + np.arange(n_vectors)[None, :]
    selected = vh[np.arange(batch)[:, None], row_idx, :]  # (batch, n_vectors, cols)
    return selected.conj().transpose(0, 2, 1)


def orthonormal_complement_batch(
    matrices: np.ndarray, n_vectors: int, rcond: float = DEFAULT_RCOND
) -> np.ndarray:
    """Orthonormal-complement bases of a stack of matrices at once.

    Parameters
    ----------
    matrices:
        Complex array of shape ``(batch, n, k)``.
    n_vectors:
        Number of complement directions to return per matrix.

    Returns
    -------
    numpy.ndarray
        Shape ``(batch, n, n_vectors)``: per matrix, the first
        ``n_vectors`` columns that :func:`orthonormal_complement` would
        return.

    Raises
    ------
    DimensionError
        If any matrix's complement has fewer than ``n_vectors``
        dimensions -- only when guards are disabled
        (:mod:`repro.utils.guarded`).  With guards enabled (the
        default), deficient matrices fall back to the ``n_vectors``
        weakest left-singular directions and a degradation is noted.
    """
    a = np.asarray(matrices, dtype=complex)
    if a.ndim != 3:
        raise DimensionError(f"expected a stack of matrices, got shape {a.shape}")
    batch, n, k = a.shape
    if n_vectors < 0 or n_vectors > n:
        raise DimensionError(f"cannot take {n_vectors} complement vectors in dimension {n}")
    if k == 0:
        eye = np.eye(n, dtype=complex)[:, :n_vectors]
        return np.broadcast_to(eye, (batch, n, n_vectors)).copy()
    if guarded.guards_enabled():
        u, s, _ = guarded.svd_stack(a, full_matrices=True)
        ranks = singular_value_ranks(s, rcond)
        if np.any(guarded.ill_conditioned(s)):
            guarded.note_degradation("ill-conditioned-complement")
        deficient = ranks + n_vectors > n
        if np.any(deficient):
            guarded.note_degradation("complement-deficit")
            ranks = np.where(deficient, n - n_vectors, ranks)
    else:
        u, s, _ = np.linalg.svd(a, full_matrices=True)
        ranks = singular_value_ranks(s, rcond)
        if np.any(ranks + n_vectors > n):
            raise DimensionError(
                f"a matrix in the stack has an orthogonal complement thinner than {n_vectors}"
            )
    col_idx = ranks[:, None] + np.arange(n_vectors)[None, :]
    selected = u[np.arange(batch)[:, None], :, col_idx]  # (batch, n_vectors, n)
    return selected.transpose(0, 2, 1)


def orthonormal_basis(matrix: np.ndarray, rcond: float = DEFAULT_RCOND) -> np.ndarray:
    """Return an orthonormal basis for the column space of ``matrix``.

    Used to turn a set of (possibly linearly dependent) channel vectors of
    ongoing transmissions into a clean basis of the occupied signal
    subspace (Fig. 6).
    """
    a = _as_complex_matrix(matrix)
    if a.shape[1] == 0:
        return np.zeros((a.shape[0], 0), dtype=complex)
    u, s, _ = np.linalg.svd(a, full_matrices=False)
    tol = rcond * (s[0] if s.size else 0.0)
    rank = int(np.sum(s > tol))
    return u[:, :rank]


def orthonormal_complement(matrix: np.ndarray, rcond: float = DEFAULT_RCOND) -> np.ndarray:
    """Return an orthonormal basis of the orthogonal complement of the
    column space of ``matrix``.

    This is the subspace a multi-antenna node projects onto in order to
    carrier sense "as if the medium were idle" (§3.2), and the U-perp
    matrix of Claim 3.4 when ``matrix`` spans the unwanted space U.

    The returned basis has ``n - rank(matrix)`` columns where ``n`` is the
    number of rows of ``matrix``.
    """
    a = _as_complex_matrix(matrix)
    n = a.shape[0]
    if a.shape[1] == 0:
        return np.eye(n, dtype=complex)
    u, s, _ = np.linalg.svd(a, full_matrices=True)
    tol = rcond * (s[0] if s.size else 0.0)
    rank = int(np.sum(s > tol))
    return u[:, rank:]


def projection_matrix(basis: np.ndarray) -> np.ndarray:
    """Return the orthogonal-projection matrix onto the span of ``basis``.

    ``basis`` need not be orthonormal; the projector is computed as
    ``B (B^H B)^-1 B^H`` via the pseudo-inverse.
    """
    b = _as_complex_matrix(basis, "basis")
    if b.shape[1] == 0:
        return np.zeros((b.shape[0], b.shape[0]), dtype=complex)
    return b @ np.linalg.pinv(b)


def project_onto_subspace(vectors: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """Project ``vectors`` onto the subspace spanned by the columns of
    ``basis`` and return the *coordinates* in that basis.

    Parameters
    ----------
    vectors:
        Shape ``(n,)`` or ``(n, t)``: one column per time sample.
    basis:
        Shape ``(n, k)`` with orthonormal columns.

    Returns
    -------
    numpy.ndarray
        Shape ``(k,)`` or ``(k, t)``: the coefficients ``basis^H @ vectors``.
    """
    b = _as_complex_matrix(basis, "basis")
    v = np.asarray(vectors, dtype=complex)
    squeeze = v.ndim == 1
    if squeeze:
        v = v.reshape(-1, 1)
    if v.shape[0] != b.shape[0]:
        raise DimensionError(
            f"vectors have dimension {v.shape[0]} but basis lives in dimension {b.shape[0]}"
        )
    coords = b.conj().T @ v
    return coords[:, 0] if squeeze else coords


def project_out_subspace(vectors: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """Remove from ``vectors`` every component lying in the span of
    ``basis`` and return the residual expressed in the original coordinates.

    This is the operation a receiver applies to cancel ongoing
    transmissions before decoding or carrier sensing.
    """
    b = _as_complex_matrix(basis, "basis")
    v = np.asarray(vectors, dtype=complex)
    squeeze = v.ndim == 1
    if squeeze:
        v = v.reshape(-1, 1)
    if v.shape[0] != b.shape[0]:
        raise DimensionError(
            f"vectors have dimension {v.shape[0]} but basis lives in dimension {b.shape[0]}"
        )
    if b.shape[1] == 0:
        residual = v
    else:
        ortho = orthonormal_basis(b)
        residual = v - ortho @ (ortho.conj().T @ v)
    return residual[:, 0] if squeeze else residual


def random_unitary(n: int, rng: np.random.Generator) -> np.ndarray:
    """Return a Haar-distributed ``n x n`` unitary matrix.

    Useful for generating random orthogonal signalling directions in tests
    and synthetic channels.
    """
    z = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    q, r = np.linalg.qr(z)
    # Normalise the phases so the distribution is Haar.
    d = np.diagonal(r)
    return q * (d / np.abs(d))


def subspace_angle(a: np.ndarray, b: np.ndarray) -> float:
    """Return the principal angle (radians) between the subspaces spanned by
    the columns of ``a`` and ``b``.

    The angle between a wanted stream and the interference directions
    determines the post-projection SNR (Fig. 7) and therefore the best
    bitrate (§3.4).
    """
    qa = orthonormal_basis(_as_complex_matrix(a))
    qb = orthonormal_basis(_as_complex_matrix(b))
    if qa.shape[1] == 0 or qb.shape[1] == 0:
        return float(np.pi / 2)
    sigma = np.linalg.svd(qa.conj().T @ qb, compute_uv=False)
    cos_theta = float(np.clip(sigma.max(), -1.0, 1.0))
    return float(np.arccos(cos_theta))


def is_in_subspace(vector: np.ndarray, basis: np.ndarray, tol: float = 1e-8) -> bool:
    """Return ``True`` if ``vector`` lies (numerically) inside the span of
    the columns of ``basis``."""
    v = np.asarray(vector, dtype=complex).reshape(-1)
    norm = np.linalg.norm(v)
    if norm == 0:
        return True
    residual = project_out_subspace(v, basis)
    return float(np.linalg.norm(residual)) <= tol * max(1.0, norm)
