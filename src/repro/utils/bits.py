"""Bit manipulation helpers: packing, CRC-32 and pseudo-random payloads."""

from __future__ import annotations

import zlib

import numpy as np

from repro.exceptions import DimensionError

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "random_bits",
    "random_payload",
    "crc32",
    "append_crc32",
    "check_crc32",
    "int_to_bits",
    "bits_to_int",
    "bit_errors",
    "bit_error_rate",
]

#: Length of the CRC-32 checksum in bits.
CRC32_LENGTH_BITS = 32


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand a byte string to a 0/1 integer array, MSB first."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr).astype(np.int8)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 array (MSB first) into bytes.

    The bit count must be a multiple of 8.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise DimensionError(f"bit count {bits.size} is not a multiple of 8")
    return np.packbits(bits).tobytes()


def random_bits(count: int, rng: np.random.Generator) -> np.ndarray:
    """Return ``count`` uniformly random bits as an int8 array."""
    return rng.integers(0, 2, size=count, dtype=np.int8)


def random_payload(num_bytes: int, rng: np.random.Generator) -> bytes:
    """Return ``num_bytes`` of uniformly random payload."""
    return rng.integers(0, 256, size=num_bytes, dtype=np.uint8).tobytes()


def crc32(bits: np.ndarray) -> np.ndarray:
    """Return the CRC-32 of a bit array as a 32-bit array (MSB first)."""
    padded = np.asarray(bits, dtype=np.uint8)
    remainder = (-padded.size) % 8
    if remainder:
        padded = np.concatenate([padded, np.zeros(remainder, dtype=np.uint8)])
    value = zlib.crc32(bits_to_bytes(padded)) & 0xFFFFFFFF
    return int_to_bits(value, CRC32_LENGTH_BITS)


def append_crc32(bits: np.ndarray) -> np.ndarray:
    """Return ``bits`` with their CRC-32 appended."""
    bits = np.asarray(bits, dtype=np.int8)
    return np.concatenate([bits, crc32(bits).astype(np.int8)])


def check_crc32(bits_with_crc: np.ndarray) -> bool:
    """Return ``True`` if the trailing 32 bits are the CRC-32 of the rest."""
    bits_with_crc = np.asarray(bits_with_crc, dtype=np.int8)
    if bits_with_crc.size < CRC32_LENGTH_BITS:
        return False
    payload = bits_with_crc[:-CRC32_LENGTH_BITS]
    received = bits_with_crc[-CRC32_LENGTH_BITS:]
    return bool(np.array_equal(crc32(payload).astype(np.int8), received))


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Return ``value`` as a ``width``-bit array, MSB first."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.int8)


def bits_to_int(bits: np.ndarray) -> int:
    """Interpret a bit array (MSB first) as an unsigned integer."""
    value = 0
    for bit in np.asarray(bits, dtype=np.int64):
        value = (value << 1) | int(bit)
    return value


def bit_errors(a: np.ndarray, b: np.ndarray) -> int:
    """Return the number of differing positions between two bit arrays."""
    a = np.asarray(a, dtype=np.int8)
    b = np.asarray(b, dtype=np.int8)
    if a.shape != b.shape:
        raise DimensionError(f"bit arrays differ in shape: {a.shape} vs {b.shape}")
    return int(np.sum(a != b))


def bit_error_rate(a: np.ndarray, b: np.ndarray) -> float:
    """Return the fraction of differing positions between two bit arrays."""
    a = np.asarray(a)
    if a.size == 0:
        return 0.0
    return bit_errors(a, b) / a.size
