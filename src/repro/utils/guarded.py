"""Guarded numerical kernels: never crash a run on a degenerate channel.

The fault layer (:mod:`repro.sim.faults`) deliberately drives channels
toward singularity -- a deep fade scales a stored channel tensor toward
zero -- and the batched decompositions fed by those channels
(:func:`repro.utils.linalg.null_space_batch` SVDs,
:func:`repro.mimo.precoder.compute_precoders_batch` solves,
:func:`repro.mimo.decoder.post_projection_snr_batch` pinvs) then either
raise ``LinAlgError``/``DimensionError`` and kill the whole run, or
silently propagate NaN/Inf into metrics.  This module is the middle
ground: condition-number and NaN/Inf guards that *fall back
deterministically* instead of raising:

1. non-finite matrices in a stack are replaced by all-zero matrices (a
   NaN-poisoned decomposition has no usable information anyway, and the
   zero matrix has well-defined null spaces, complements and
   pseudo-inverses);
2. singular or ill-conditioned systems are solved with a pseudo-inverse
   at the pinned :data:`GUARD_RCOND` (never a caller-tuned tolerance, so
   the fallback result is reproducible across call sites);
3. every fallback is *recorded* via :func:`note_degradation`, and the
   MAC planning layer wraps its computations in
   :func:`capture_degradations` -- a triggered capture quarantines the
   link for the current channel epoch
   (:meth:`repro.mac.agent.BaseMacAgent.quarantine_link`), which is the
   accounted, non-exceptional outcome the metrics surface as
   ``quarantined_rounds``.

Determinism contract: with guards *enabled* (the default) and
well-conditioned finite inputs, every wrapper returns bit-identical
results to the raw ``np.linalg`` call -- the guards only ever read the
inputs/outputs on the happy path.  With guards *disabled*
(:func:`guards_disabled`), the callers run exactly their pre-guard code
and raise exactly the historical exceptions; the test suite asserts the
disabled path bit-identical to the committed goldens.

The degradation state is process-global and not thread-safe, matching
the simulator's execution model (one simulation per process; the sweep
parallelises across processes, never threads).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Tuple

import numpy as np

__all__ = [
    "GUARD_RCOND",
    "CONDITION_LIMIT",
    "guards_enabled",
    "set_guards_enabled",
    "guards_disabled",
    "note_degradation",
    "capture_degradations",
    "DegradationCapture",
    "degradations_total",
    "nonfinite_matrices",
    "sanitize_stack",
    "svd_stack",
    "solve_stack",
    "pinv_stack",
    "ill_conditioned",
]

#: Pinned ``rcond`` used by every deterministic pseudo-inverse fallback.
#: Matches :data:`repro.utils.linalg.DEFAULT_RCOND` so guarded and
#: unguarded rank decisions agree on well-conditioned inputs.
GUARD_RCOND = 1e-10

#: Condition numbers beyond this are treated as degenerate: the smallest
#: singular value carries no information at double precision (eps ~ 2e-16),
#: which is exactly the regime a deep fade pushes mixed stacks into.
CONDITION_LIMIT = 1e12

_state = {"enabled": True, "total": 0}
_captures: List["DegradationCapture"] = []


def guards_enabled() -> bool:
    """Whether the guarded fallbacks are active (they are by default)."""
    return _state["enabled"]


def set_guards_enabled(flag: bool) -> bool:
    """Enable/disable the guards; returns the previous setting."""
    previous = _state["enabled"]
    _state["enabled"] = bool(flag)
    return previous


@contextmanager
def guards_disabled() -> Iterator[None]:
    """Run a block with the historical (raising) numerics.

    Used by the bit-identity tests to assert that the guard-disabled
    path is exactly today's behavior on all goldens.
    """
    previous = set_guards_enabled(False)
    try:
        yield
    finally:
        set_guards_enabled(previous)


class DegradationCapture:
    """Degradation events observed while a capture scope was active."""

    def __init__(self) -> None:
        self.events: List[str] = []

    @property
    def triggered(self) -> bool:
        return bool(self.events)


def note_degradation(kind: str) -> None:
    """Record one guarded fallback (feeds every active capture scope)."""
    _state["total"] += 1
    for capture in _captures:
        capture.events.append(kind)


@contextmanager
def capture_degradations() -> Iterator[DegradationCapture]:
    """Collect the degradations noted inside the ``with`` block.

    Captures nest: an inner scope's events are also seen by outer
    scopes, so a planning-level capture observes fallbacks taken deep
    inside the precoder math.
    """
    capture = DegradationCapture()
    _captures.append(capture)
    try:
        yield capture
    finally:
        _captures.remove(capture)


def degradations_total() -> int:
    """Process-wide count of guarded fallbacks taken so far."""
    return _state["total"]


# -- stack hygiene -----------------------------------------------------------


def nonfinite_matrices(stack: np.ndarray) -> np.ndarray:
    """Per-matrix mask of stack members containing any NaN/Inf entry."""
    a = np.asarray(stack)
    if a.ndim < 2:
        return np.array([not np.isfinite(a).all()])
    axes = tuple(range(1, a.ndim))
    return ~np.isfinite(a).all(axis=axes)


def sanitize_stack(stack: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Replace non-finite matrices in a stack with all-zero matrices.

    Returns ``(clean, mask)``.  When every entry is finite the input
    array is returned *unchanged* (same object -- the happy path stays
    bit-identical and copy-free); otherwise a copy is made, the poisoned
    matrices are zeroed whole (partial NaN contamination leaves nothing
    trustworthy in the matrix) and one degradation is noted.
    """
    a = np.asarray(stack)
    # One-pass screen: NaN/Inf anywhere makes the sum non-finite, so a
    # finite sum proves the stack clean without materialising a boolean
    # array.  (A finite stack whose sum overflows just falls through to
    # the exact per-matrix mask below.)
    if np.isfinite(a.sum()):
        return a, np.zeros(a.shape[0] if a.ndim >= 2 else 1, dtype=bool)
    bad = nonfinite_matrices(a)
    if not bad.any():
        return a, bad
    note_degradation("nonfinite-input")
    clean = np.array(a, copy=True)
    clean[bad] = 0.0
    return clean, bad


def ill_conditioned(
    singular_values: np.ndarray, limit: float = CONDITION_LIMIT
) -> np.ndarray:
    """Per-matrix mask of condition numbers beyond ``limit``.

    ``singular_values`` has shape ``(batch, n_sv)`` sorted descending (as
    returned by a batched SVD).  An all-zero matrix (``s_max == 0``) is
    *not* flagged: its decompositions are exact, not ill-conditioned.
    """
    s = np.asarray(singular_values)
    if s.shape[1] == 0:
        return np.zeros(s.shape[0], dtype=bool)
    smax = s[:, 0]
    smin = s[:, -1]
    # smax > limit * smin is cond > limit without the division, and it
    # also flags singular-with-signal members (smin == 0 < smax) while
    # leaving all-zero matrices (smax == smin == 0) unflagged.
    return smax > limit * smin


# -- guarded decompositions --------------------------------------------------


def svd_stack(stack: np.ndarray, full_matrices: bool = True):
    """Batched SVD that cannot raise: ``(u, s, vh)`` for the whole stack.

    Non-finite matrices are zeroed first; the (very rare) LAPACK
    non-convergence on finite input falls back to a per-matrix sweep
    that zeroes exactly the non-converging members.  Well-conditioned
    finite stacks take the plain ``np.linalg.svd`` path untouched.
    """
    clean, _ = sanitize_stack(np.asarray(stack, dtype=complex))
    try:
        return np.linalg.svd(clean, full_matrices=full_matrices)
    except np.linalg.LinAlgError:  # pragma: no cover - LAPACK-dependent
        note_degradation("svd-non-convergent")
        fixed = np.array(clean, copy=True)
        for index in range(fixed.shape[0]):
            try:
                np.linalg.svd(fixed[index], compute_uv=False)
            except np.linalg.LinAlgError:
                fixed[index] = 0.0
        return np.linalg.svd(fixed, full_matrices=full_matrices)


def pinv_stack(
    stack: np.ndarray, rcond: float = GUARD_RCOND
) -> Tuple[np.ndarray, bool]:
    """Batched pseudo-inverse that cannot raise: ``(pinv, degraded)``.

    ``degraded`` is ``True`` when any guard fired (non-finite input,
    non-convergence, or a non-finite result that had to be zeroed).
    """
    clean, bad = sanitize_stack(np.asarray(stack, dtype=complex))
    degraded = bool(bad.any())
    try:
        out = np.linalg.pinv(clean, rcond=rcond)
    except np.linalg.LinAlgError:  # pragma: no cover - LAPACK-dependent
        note_degradation("pinv-non-convergent")
        degraded = True
        rows = []
        for matrix in clean:
            try:
                rows.append(np.linalg.pinv(matrix, rcond=rcond))
            except np.linalg.LinAlgError:
                rows.append(
                    np.zeros((matrix.shape[1], matrix.shape[0]), dtype=complex)
                )
        out = np.stack(rows)
    if not np.isfinite(out).all():  # pragma: no cover - defensive
        note_degradation("nonfinite-pinv")
        degraded = True
        out = np.where(np.isfinite(out), out, 0.0)
    return out, degraded


def solve_stack(
    matrices: np.ndarray, rhs: np.ndarray, rcond: float = GUARD_RCOND
) -> Tuple[np.ndarray, bool]:
    """Batched linear solve that cannot raise: ``(solution, degraded)``.

    The happy path is exactly ``np.linalg.solve`` (bit-identical result);
    a singular system, non-finite inputs/outputs, or a solution whose
    residual betrays ill-conditioning all fall back to the pinned-rcond
    pseudo-inverse, with ``degraded=True``.
    """
    a, bad_a = sanitize_stack(np.asarray(matrices, dtype=complex))
    b, bad_b = sanitize_stack(np.asarray(rhs, dtype=complex))
    if not (bad_a.any() or bad_b.any()):
        try:
            out = np.linalg.solve(a, b)
        except np.linalg.LinAlgError:
            note_degradation("singular-solve")
        else:
            if np.isfinite(out).all():
                scale = max(float(np.max(np.abs(b), initial=0.0)), 1.0)
                residual = float(np.max(np.abs(a @ out - b), initial=0.0))
                if residual <= 1e-6 * scale:
                    return out, False
                note_degradation("ill-conditioned-solve")
            else:
                note_degradation("nonfinite-solve")
    pinv, _ = pinv_stack(a, rcond=rcond)
    out = pinv @ b
    if not np.isfinite(out).all():  # pragma: no cover - defensive
        out = np.where(np.isfinite(out), out, 0.0)
    return out, True
