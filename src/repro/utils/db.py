"""Decibel and power conversion helpers.

The evaluation sections of the paper are phrased almost entirely in dB
(SNR of wanted/unwanted streams, residual nulling error, the 27 dB
admission threshold), so these conversions are used everywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_milliwatt",
    "milliwatt_to_dbm",
    "signal_power",
    "power_db",
    "snr_db",
]

#: Floor used to avoid ``log10(0)`` when converting powers to dB.
_POWER_FLOOR = 1e-30


def db_to_linear(value_db):
    """Convert a power ratio expressed in dB to a linear ratio."""
    return np.power(10.0, np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(value_linear):
    """Convert a linear power ratio to dB.

    Values at or below zero are clamped to a very small positive floor so
    the result is a large negative number rather than ``-inf``.
    """
    value = np.maximum(np.asarray(value_linear, dtype=float), _POWER_FLOOR)
    return 10.0 * np.log10(value)


def dbm_to_milliwatt(value_dbm):
    """Convert a power in dBm to milliwatts."""
    return db_to_linear(value_dbm)


def milliwatt_to_dbm(value_mw):
    """Convert a power in milliwatts to dBm."""
    return linear_to_db(value_mw)


def signal_power(samples: np.ndarray) -> float:
    """Return the average power of a complex sample vector (mean |x|^2)."""
    samples = np.asarray(samples)
    if samples.size == 0:
        return 0.0
    return float(np.mean(np.abs(samples) ** 2))


def power_db(samples: np.ndarray) -> float:
    """Return the average power of ``samples`` in dB (relative to 1.0)."""
    return float(linear_to_db(signal_power(samples)))


def snr_db(signal: np.ndarray, noise: np.ndarray) -> float:
    """Return the SNR in dB between a signal vector and a noise vector."""
    return float(linear_to_db(signal_power(signal)) - linear_to_db(signal_power(noise)))
