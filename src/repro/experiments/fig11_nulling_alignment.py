"""Fig. 11 -- residual SNR loss of the wanted stream after nulling and
alignment.

The experiment follows the three-phase protocol of §6.2 for random node
placements on the synthetic testbed:

1. measure the wanted stream's SNR with the interferer silent;
2. measure the interferer's (unwanted) SNR with no nulling/alignment;
3. let both transmit, with the interferer nulling (Fig. 2 topology) or
   aligning (Fig. 3 topology) using *estimated* channels, and measure the
   wanted stream's SNR again.

The difference between phases 1 and 3 is the SNR reduction plotted in
Fig. 11, binned by the unwanted signal's original SNR.  Expected shape:
the loss grows with the unwanted SNR, stays within ~0.5-3 dB over the
admitted range, nulling loses slightly less than alignment, and the
average below the L = 27 dB admission threshold is ≈0.8 dB for nulling
and ≈1.3 dB for alignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.hardware import HardwareProfile
from repro.channel.models import complex_gaussian
from repro.constants import INTERFERENCE_ADMISSION_THRESHOLD_DB
from repro.experiments.report import format_table
from repro.mimo.alignment import alignment_constraint_rows
from repro.mimo.nulling import nulling_precoders
from repro.mimo.precoder import ReceiverConstraint, compute_precoders
from repro.utils.db import db_to_linear, linear_to_db
from repro.utils.linalg import orthonormal_complement

__all__ = [
    "ResidualErrorExperiment",
    "run_nulling_experiment",
    "run_alignment_experiment",
    "summarize",
]

#: The unwanted-SNR bins of Fig. 11's x axis.
UNWANTED_SNR_BINS: Tuple[Tuple[float, float], ...] = (
    (7.5, 12.5),
    (12.5, 17.5),
    (17.5, 22.5),
    (22.5, 27.5),
    (27.5, 32.5),
)

#: The wanted-SNR groups of Fig. 11's bar families.
WANTED_SNR_BINS: Tuple[Tuple[float, float], ...] = (
    (5.0, 10.0),
    (10.0, 15.0),
    (15.0, 20.0),
    (20.0, 25.0),
)


@dataclass
class ResidualErrorExperiment:
    """Results of a Fig. 11 reproduction (one mechanism: nulling or alignment).

    Attributes
    ----------
    mechanism:
        ``"nulling"`` or ``"alignment"``.
    reductions_db:
        Per-(unwanted bin, wanted bin) list of measured SNR reductions.
    average_reduction_below_threshold_db:
        Mean reduction over samples whose unwanted SNR is below the
        admission threshold (the paper's 0.8 dB / 1.3 dB headline numbers).
    """

    mechanism: str
    reductions_db: Dict[Tuple[int, int], List[float]] = field(default_factory=dict)
    average_reduction_below_threshold_db: float = 0.0

    def mean_reduction(self, unwanted_bin: int, wanted_bin: int) -> float:
        """Mean SNR reduction of one bar of Fig. 11 (NaN if no samples)."""
        values = self.reductions_db.get((unwanted_bin, wanted_bin), [])
        return float(np.mean(values)) if values else float("nan")


def _bin_index(value: float, bins: Tuple[Tuple[float, float], ...]) -> Optional[int]:
    for index, (low, high) in enumerate(bins):
        if low <= value < high:
            return index
    return None


def _draw_snr(rng: np.random.Generator, bins: Tuple[Tuple[float, float], ...]) -> float:
    low = bins[0][0]
    high = bins[-1][1]
    return float(rng.uniform(low, high))


def run_nulling_experiment(
    n_trials: int = 400,
    seed: int = 0,
    hardware: Optional[HardwareProfile] = None,
) -> ResidualErrorExperiment:
    """Reproduce Fig. 11(a): SNR reduction due to imperfect nulling.

    Topology of Fig. 2: a single-antenna pair tx1-rx1 plus a 2-antenna
    pair tx2-rx2; tx2 nulls at rx1 using an estimated channel.
    """
    rng = np.random.default_rng(seed)
    hardware = hardware or HardwareProfile()
    result = ResidualErrorExperiment(mechanism="nulling")
    below_threshold: List[float] = []

    for _ in range(n_trials):
        wanted_snr_db = _draw_snr(rng, WANTED_SNR_BINS)
        unwanted_snr_db = _draw_snr(rng, UNWANTED_SNR_BINS)
        # Channel from tx2's two antennas to rx1's antenna; the average
        # per-antenna gain realises the unwanted SNR.
        h_true = complex_gaussian((1, 2), rng, db_to_linear(unwanted_snr_db))
        h_estimated = hardware.perturb_channel(h_true, rng, reciprocity=True)

        precoder = nulling_precoders([h_estimated], n_tx_antennas=2, n_streams=1)[:, 0]
        residual_power = float(np.sum(np.abs(h_true @ precoder) ** 2))

        wanted_power = db_to_linear(wanted_snr_db)
        noise_power = 1.0
        snr_after_db = linear_to_db(wanted_power / (noise_power + residual_power))
        reduction = float(snr_after_db - wanted_snr_db)

        u_bin = _bin_index(unwanted_snr_db, UNWANTED_SNR_BINS)
        w_bin = _bin_index(wanted_snr_db, WANTED_SNR_BINS)
        if u_bin is None or w_bin is None:
            continue
        result.reductions_db.setdefault((u_bin, w_bin), []).append(reduction)
        if unwanted_snr_db <= INTERFERENCE_ADMISSION_THRESHOLD_DB:
            below_threshold.append(reduction)

    result.average_reduction_below_threshold_db = (
        float(np.mean(below_threshold)) if below_threshold else float("nan")
    )
    return result


def run_alignment_experiment(
    n_trials: int = 400,
    seed: int = 1,
    hardware: Optional[HardwareProfile] = None,
) -> ResidualErrorExperiment:
    """Reproduce Fig. 11(b): SNR reduction due to imperfect alignment.

    Topology of Fig. 3, measured at the 2-antenna receiver rx2: tx1 and
    tx2 transmit; tx3 aligns its signal at rx2 with tx1's interference
    using estimated channels and rx2's (estimated) unwanted subspace.
    """
    rng = np.random.default_rng(seed)
    hardware = hardware or HardwareProfile()
    result = ResidualErrorExperiment(mechanism="alignment")
    below_threshold: List[float] = []

    for _ in range(n_trials):
        wanted_snr_db = _draw_snr(rng, WANTED_SNR_BINS)
        unwanted_snr_db = _draw_snr(rng, UNWANTED_SNR_BINS)
        interferer_snr_db = float(rng.uniform(10.0, 25.0))

        # Channels to rx2 (2 antennas): wanted stream from tx2 (effective
        # single column), existing interference from tx1, and the aligner
        # tx3 (3 antennas).
        h_wanted = complex_gaussian((2, 1), rng, db_to_linear(wanted_snr_db))
        h_tx1 = complex_gaussian((2, 1), rng, db_to_linear(interferer_snr_db))
        h_tx3_true = complex_gaussian((2, 3), rng, db_to_linear(unwanted_snr_db))
        h_tx3_estimated = hardware.perturb_channel(h_tx3_true, rng, reciprocity=True)
        # tx3 also needs to null at rx1 (1 antenna) as in Fig. 3.
        h_tx3_rx1_true = complex_gaussian((1, 3), rng, db_to_linear(unwanted_snr_db))
        h_tx3_rx1_estimated = hardware.perturb_channel(h_tx3_rx1_true, rng, reciprocity=True)

        # rx2's decoding direction: orthogonal to tx1's interference; its
        # announcement carries a little estimation error of its own.
        u_perp_true = orthonormal_complement(h_tx1)[:, :1]
        u_perp_announced = hardware.perturb_channel(u_perp_true, rng)
        u_perp_announced = u_perp_announced / np.linalg.norm(u_perp_announced)

        precoder = compute_precoders(
            n_tx_antennas=3,
            ongoing=[
                ReceiverConstraint(channel=h_tx3_rx1_estimated, u_perp=None),
                ReceiverConstraint(channel=h_tx3_estimated, u_perp=u_perp_announced),
            ],
            n_streams=1,
        )[0]

        # Residual interference that leaks into rx2's true decoding direction.
        leak = u_perp_true.conj().T @ (h_tx3_true @ precoder)
        residual_power = float(np.sum(np.abs(leak) ** 2))

        # The wanted stream's post-projection SNR before and after tx3 joins.
        wanted_projected = float(np.sum(np.abs(u_perp_true.conj().T @ h_wanted) ** 2))
        noise_power = 1.0
        snr_before_db = linear_to_db(wanted_projected / noise_power)
        snr_after_db = linear_to_db(wanted_projected / (noise_power + residual_power))
        reduction = float(snr_after_db - snr_before_db)

        u_bin = _bin_index(unwanted_snr_db, UNWANTED_SNR_BINS)
        w_bin = _bin_index(wanted_snr_db, WANTED_SNR_BINS)
        if u_bin is None or w_bin is None:
            continue
        result.reductions_db.setdefault((u_bin, w_bin), []).append(reduction)
        if unwanted_snr_db <= INTERFERENCE_ADMISSION_THRESHOLD_DB:
            below_threshold.append(reduction)

    result.average_reduction_below_threshold_db = (
        float(np.mean(below_threshold)) if below_threshold else float("nan")
    )
    return result


def summarize(result: ResidualErrorExperiment) -> str:
    """Render the Fig. 11 bars as a table (rows: unwanted-SNR bins)."""
    headers = ["unwanted SNR bin"] + [f"wanted {low}-{high} dB" for low, high in WANTED_SNR_BINS]
    rows = []
    for u_index, (low, high) in enumerate(UNWANTED_SNR_BINS):
        row = [f"{low}-{high} dB"]
        for w_index in range(len(WANTED_SNR_BINS)):
            value = result.mean_reduction(u_index, w_index)
            row.append("-" if np.isnan(value) else f"{value:.2f}")
        rows.append(row)
    table = format_table(headers, rows)
    return (
        f"{result.mechanism}: average SNR reduction below the admission threshold = "
        f"{result.average_reduction_below_threshold_db:.2f} dB\n{table}"
    )
