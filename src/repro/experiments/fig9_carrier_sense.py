"""Fig. 9 -- carrier sense in the presence of ongoing transmissions.

The experiment recreates §6.1: tx1 (one antenna) starts transmitting,
tx2 (two antennas) starts a little later and much weaker, and tx3 (three
antennas) senses the medium.  We compare the two components of 802.11
carrier sense -- received power and preamble cross-correlation -- with
and without projecting onto the subspace orthogonal to tx1's signal.

Expected shape (paper):

* without projection, tx2's arrival barely moves the received power
  (≈0.4 dB), while after projection it produces a large jump (≈8.5 dB);
* at low SNR, ~18 % of the cross-correlation values measured while tx2
  transmits are indistinguishable from the silent case without
  projection, whereas with projection the two distributions separate
  almost completely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.channel.models import awgn, complex_gaussian
from repro.experiments.report import format_table
from repro.mimo.carrier_sense import MultiDimensionalCarrierSense
from repro.phy.preamble import cross_correlate, short_training_field
from repro.phy.rates import MCS_TABLE
from repro.phy.transceiver import MimoTransmitter, StreamConfig
from repro.utils.bits import random_bits
from repro.utils.db import db_to_linear, linear_to_db

__all__ = ["CarrierSenseExperiment", "run_carrier_sense_experiment", "summarize"]


@dataclass
class CarrierSenseExperiment:
    """Results of the Fig. 9 reproduction.

    Attributes
    ----------
    power_jump_db_without_projection:
        Median jump in total received power when tx2 starts, no projection.
    power_jump_db_with_projection:
        Same jump measured after projecting out tx1.
    correlations:
        Correlation peaks per condition: keys are
        ``("silent"|"transmitting", "raw"|"projected")``.
    nondistinguishable_fraction_raw:
        Fraction of "transmitting" correlation values that fall below the
        95th percentile of the "silent" distribution without projection.
    nondistinguishable_fraction_projected:
        Same fraction with projection.
    """

    power_jump_db_without_projection: float
    power_jump_db_with_projection: float
    correlations: Dict[tuple, List[float]] = field(default_factory=dict)
    nondistinguishable_fraction_raw: float = 0.0
    nondistinguishable_fraction_projected: float = 0.0


def _transmit_frame(n_antennas: int, n_bits: int, rng: np.random.Generator) -> np.ndarray:
    """Build the per-antenna samples of a simple frame."""
    transmitter = MimoTransmitter(n_antennas)
    precoder = np.zeros(n_antennas, dtype=complex)
    precoder[0] = 1.0
    if n_antennas > 1:
        precoder[1] = 0.7 + 0.2j
        precoder = precoder / np.linalg.norm(precoder)
    stream = StreamConfig(bits=random_bits(n_bits, rng), mcs=MCS_TABLE[2], precoder=precoder)
    samples, _ = transmitter.build_frame([stream])
    return samples


def _per_symbol_power_db(samples: np.ndarray, symbol_length: int = 80) -> np.ndarray:
    """Average power (dB) of consecutive OFDM-symbol-sized windows."""
    total = np.sum(np.abs(samples) ** 2, axis=0)
    n_symbols = total.size // symbol_length
    trimmed = total[: n_symbols * symbol_length].reshape(n_symbols, symbol_length)
    return linear_to_db(trimmed.mean(axis=1))


def run_carrier_sense_experiment(
    n_trials: int = 20,
    tx1_snr_db: float = 10.0,
    tx2_snr_db: float = 3.0,
    power_profile_tx1_snr_db: float = 20.0,
    power_profile_tx2_snr_db: float = 10.0,
    seed: int = 0,
) -> CarrierSenseExperiment:
    """Run the Fig. 9 reproduction.

    Parameters
    ----------
    n_trials:
        Number of independent channel/noise realisations.
    tx1_snr_db:
        SNR of the ongoing (strong) transmission at the sensing node.
    tx2_snr_db:
        SNR of the new (weak) transmission used for the correlation CDFs --
        the paper focuses on SNR < 3 dB because that is where sensing is
        hard.
    power_profile_tx1_snr_db, power_profile_tx2_snr_db:
        SNRs used for the power-profile illustration (Fig. 9(a) shows a
        strong ongoing tx1 masking a moderately strong tx2 unless the
        sensing node projects).
    seed:
        Random seed.
    """
    rng = np.random.default_rng(seed)
    n_sense_antennas = 3
    stf = short_training_field()
    jumps_raw: List[float] = []
    jumps_projected: List[float] = []
    correlations: Dict[tuple, List[float]] = {
        ("silent", "raw"): [],
        ("silent", "projected"): [],
        ("transmitting", "raw"): [],
        ("transmitting", "projected"): [],
    }

    for _ in range(n_trials):
        # Flat channels from tx1 (1 antenna) and tx2 (2 antennas) to tx3.
        h1 = complex_gaussian((n_sense_antennas, 1), rng, db_to_linear(tx1_snr_db))
        h1_power = h1 * np.sqrt(db_to_linear(power_profile_tx1_snr_db - tx1_snr_db))
        h2_weak = complex_gaussian((n_sense_antennas, 2), rng, db_to_linear(tx2_snr_db))
        h2_power = complex_gaussian(
            (n_sense_antennas, 2), rng, db_to_linear(power_profile_tx2_snr_db)
        )

        # tx1's frame must outlast tx2's start by a comfortable margin so the
        # "before"/"after" windows both lie inside the ongoing transmission.
        tx1_samples = _transmit_frame(1, 4000, rng)
        tx2_samples = _transmit_frame(2, 400, rng)
        offset = 25 * 80  # tx2 starts 25 OFDM symbols into tx1's frame.
        length = min(tx1_samples.shape[1], offset + tx2_samples.shape[1])
        tx1_padded = tx1_samples[:, :length]

        def received(include_tx2: bool, h_ongoing: np.ndarray, h2: np.ndarray) -> np.ndarray:
            signal = h_ongoing @ tx1_padded
            if include_tx2:
                tx2_padded = np.zeros((2, length), dtype=complex)
                tail = min(tx2_samples.shape[1], length - offset)
                tx2_padded[:, offset : offset + tail] = tx2_samples[:, :tail]
                signal = signal + h2 @ tx2_padded
            return awgn(signal, 1.0, rng)

        sensor = MultiDimensionalCarrierSense(n_sense_antennas)
        sensor.add_ongoing(h1[:, 0])

        y_both = received(include_tx2=True, h_ongoing=h1_power, h2=h2_power)
        # Power profile, with and without projection.
        raw_profile = _per_symbol_power_db(y_both)
        projected_profile = _per_symbol_power_db(sensor.project(y_both))
        before = slice(5, 23)
        after = slice(27, 45)
        jumps_raw.append(float(np.mean(raw_profile[after]) - np.mean(raw_profile[before])))
        jumps_projected.append(
            float(np.mean(projected_profile[after]) - np.mean(projected_profile[before]))
        )

        # Correlation component, tx2 silent vs transmitting (low SNR).
        for label, include in (("silent", False), ("transmitting", True)):
            y = received(include_tx2=include, h_ongoing=h1, h2=h2_weak)
            window = y[:, offset : offset + len(stf) + 160]
            raw_peak = float(np.max(cross_correlate(window[0], stf)))
            projected = sensor.project(window)
            projected_peak = max(
                float(np.max(cross_correlate(projected[d], stf)))
                for d in range(projected.shape[0])
            )
            correlations[(label, "raw")].append(raw_peak)
            correlations[(label, "projected")].append(projected_peak)

    def nondistinguishable(kind: str) -> float:
        silent = np.asarray(correlations[("silent", kind)])
        transmitting = np.asarray(correlations[("transmitting", kind)])
        if silent.size == 0 or transmitting.size == 0:
            return 0.0
        threshold = np.percentile(silent, 95)
        return float(np.mean(transmitting <= threshold))

    return CarrierSenseExperiment(
        power_jump_db_without_projection=float(np.median(jumps_raw)),
        power_jump_db_with_projection=float(np.median(jumps_projected)),
        correlations=correlations,
        nondistinguishable_fraction_raw=nondistinguishable("raw"),
        nondistinguishable_fraction_projected=nondistinguishable("projected"),
    )


def summarize(result: CarrierSenseExperiment) -> str:
    """Render the Fig. 9 summary rows."""
    rows = [
        ["power jump when tx2 starts (raw)", f"{result.power_jump_db_without_projection:.1f} dB"],
        ["power jump when tx2 starts (projected)", f"{result.power_jump_db_with_projection:.1f} dB"],
        [
            "non-distinguishable correlations (raw)",
            f"{100 * result.nondistinguishable_fraction_raw:.0f} %",
        ],
        [
            "non-distinguishable correlations (projected)",
            f"{100 * result.nondistinguishable_fraction_projected:.0f} %",
        ],
    ]
    return format_table(["metric", "value"], rows)
