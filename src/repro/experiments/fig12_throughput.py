"""Fig. 12 -- throughput of n+ vs 802.11n in the three-pair scenario.

The experiment sweeps random node placements of the Fig. 3 topology
(1-, 2- and 3-antenna pairs), runs both protocols on the same channel
realisations, and collects the CDFs the paper plots: total network
throughput and per-pair throughput.  The headline numbers of §6.3 are
derived from the same data: the total roughly doubles, the 2-antenna
pair gains ~1.5x, the 3-antenna pair gains ~3.5x and the single-antenna
pair loses only a few percent.

The sweep itself runs through :func:`repro.sim.sweep.run_sweep`, so the
same experiment scales to dense scenario grids (``scenario="dense-lan-20"``
etc.), fans out over worker processes (``workers=4``) and memoises per-run
results in an on-disk cache (``cache_dir=...``) -- all without changing
the numbers a serial run produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.experiments.report import format_cdf_summary, format_table
from repro.sim.runner import SimulationConfig
from repro.sim.scenarios import Scenario, three_pair_scenario
from repro.sim.sweep import run_sweep

__all__ = ["ThroughputExperiment", "run_throughput_experiment", "summarize"]

#: §6.3 headline labels for the default scenario's pairs.
_HEADLINE_LABELS = {
    "tx1->rx1": "single-antenna pair (tx1)",
    "tx2->rx2": "2-antenna pair (tx2)",
    "tx3->rx3": "3-antenna pair (tx3)",
}


@dataclass
class ThroughputExperiment:
    """Results of the Fig. 12 reproduction.

    Attributes
    ----------
    totals:
        Total network throughput per run, keyed by protocol (Mb/s).
    per_pair:
        Per-pair throughput per run, keyed by protocol then pair name.
    """

    totals: Dict[str, List[float]] = field(default_factory=dict)
    per_pair: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    # -- derived summaries ------------------------------------------------------

    def pair_names(self) -> List[str]:
        """The traffic pairs present in the results."""
        for per in self.per_pair.values():
            return list(per)
        return []

    def average_total(self, protocol: str) -> float:
        """Mean total throughput of a protocol."""
        return float(np.mean(self.totals[protocol])) if self.totals.get(protocol) else 0.0

    def total_gain(self) -> float:
        """Mean per-run ratio of n+ total throughput to 802.11n's."""
        return self._gain_over("802.11n", None)

    def pair_gain(self, pair_name: str) -> float:
        """Mean per-run throughput ratio of one pair (n+ / 802.11n)."""
        return self._gain_over("802.11n", pair_name)

    def _gain_over(self, baseline: str, pair_name: Optional[str]) -> float:
        gains = []
        n_runs = len(self.totals.get("n+", []))
        for run in range(n_runs):
            if pair_name is None:
                numerator = self.totals["n+"][run]
                denominator = self.totals[baseline][run]
            else:
                numerator = self.per_pair["n+"][pair_name][run]
                denominator = self.per_pair[baseline][pair_name][run]
            if denominator > 1e-9:
                gains.append(numerator / denominator)
        return float(np.mean(gains)) if gains else float("nan")


def run_throughput_experiment(
    n_runs: int = 20,
    duration_us: float = 120_000.0,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    scenario: Union[str, Callable[[], Scenario]] = "three-pair",
    workers: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    resume: bool = False,
) -> ThroughputExperiment:
    """Run the Fig. 12 sweep.

    Parameters
    ----------
    n_runs:
        Number of random placements (each run compares both protocols on
        the same channels).
    duration_us:
        Simulated time per run.
    seed:
        Base random seed.
    config:
        Override the full simulation configuration (``duration_us`` is
        ignored if this is given).
    scenario:
        Registered scenario name or factory; the paper's Fig. 12 uses the
        default ``"three-pair"``, and the dense LANs
        (``"dense-lan-20"``...) run the same comparison at scale.
    workers:
        Worker processes for the sweep (1 = serial, ``None`` = all cores).
    cache_dir:
        Optional on-disk results store; repeated invocations replay
        unchanged runs instead of recomputing them.
    resume:
        Resume an interrupted cached sweep (see
        :func:`repro.sim.sweep.run_sweep`); requires ``cache_dir``.
    """
    config = config or SimulationConfig(duration_us=duration_us)
    protocols = ["802.11n", "n+"]
    sweep = run_sweep(
        scenario,
        protocols,
        n_runs=n_runs,
        seed=seed,
        config=config,
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
    )
    raw = sweep.results
    pair_names = sweep.link_names()

    experiment = ThroughputExperiment()
    for protocol in protocols:
        experiment.totals[protocol] = [m.total_throughput_mbps() for m in raw[protocol]]
        experiment.per_pair[protocol] = {
            name: [m.throughput_mbps(name) for m in raw[protocol]] for name in pair_names
        }
    return experiment


def summarize(experiment: ThroughputExperiment) -> str:
    """Render the Fig. 12 CDF summaries and the §6.3 headline gains."""
    lines = ["-- Fig. 12(a): total network throughput (Mb/s) --"]
    for protocol in experiment.totals:
        lines.append(format_cdf_summary(protocol, experiment.totals[protocol]))
    for index, pair in enumerate(experiment.pair_names(), start=2):
        lines.append(f"-- Fig. 12({chr(ord('a') + index - 1)}): throughput of {pair} (Mb/s) --")
        for protocol in experiment.per_pair:
            lines.append(format_cdf_summary(protocol, experiment.per_pair[protocol][pair]))
    rows = [["total network throughput", f"{experiment.total_gain():.2f}x"]]
    for pair in experiment.pair_names():
        label = _HEADLINE_LABELS.get(pair, f"pair {pair}")
        rows.append([label, f"{experiment.pair_gain(pair):.2f}x"])
    lines.append("-- throughput gain of n+ over 802.11n (mean of per-run ratios) --")
    lines.append(format_table(["quantity", "gain"], rows))
    return "\n".join(lines)
