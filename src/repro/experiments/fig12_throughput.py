"""Fig. 12 -- throughput of n+ vs 802.11n in the three-pair scenario.

The experiment sweeps random node placements of the Fig. 3 topology
(1-, 2- and 3-antenna pairs), runs both protocols on the same channel
realisations, and collects the CDFs the paper plots: total network
throughput and per-pair throughput.  The headline numbers of §6.3 are
derived from the same data: the total roughly doubles, the 2-antenna
pair gains ~1.5x, the 3-antenna pair gains ~3.5x and the single-antenna
pair loses only a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.report import format_cdf_summary, format_table
from repro.sim.runner import SimulationConfig, run_many
from repro.sim.scenarios import three_pair_scenario

__all__ = ["ThroughputExperiment", "run_throughput_experiment", "summarize"]

#: Pair names of the three-pair scenario, in antenna order.
PAIR_NAMES = ("tx1->rx1", "tx2->rx2", "tx3->rx3")


@dataclass
class ThroughputExperiment:
    """Results of the Fig. 12 reproduction.

    Attributes
    ----------
    totals:
        Total network throughput per run, keyed by protocol (Mb/s).
    per_pair:
        Per-pair throughput per run, keyed by protocol then pair name.
    """

    totals: Dict[str, List[float]] = field(default_factory=dict)
    per_pair: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    # -- derived summaries ------------------------------------------------------

    def average_total(self, protocol: str) -> float:
        """Mean total throughput of a protocol."""
        return float(np.mean(self.totals[protocol])) if self.totals.get(protocol) else 0.0

    def total_gain(self) -> float:
        """Mean per-run ratio of n+ total throughput to 802.11n's."""
        return self._gain_over("802.11n", None)

    def pair_gain(self, pair_name: str) -> float:
        """Mean per-run throughput ratio of one pair (n+ / 802.11n)."""
        return self._gain_over("802.11n", pair_name)

    def _gain_over(self, baseline: str, pair_name: Optional[str]) -> float:
        gains = []
        n_runs = len(self.totals.get("n+", []))
        for run in range(n_runs):
            if pair_name is None:
                numerator = self.totals["n+"][run]
                denominator = self.totals[baseline][run]
            else:
                numerator = self.per_pair["n+"][pair_name][run]
                denominator = self.per_pair[baseline][pair_name][run]
            if denominator > 1e-9:
                gains.append(numerator / denominator)
        return float(np.mean(gains)) if gains else float("nan")


def run_throughput_experiment(
    n_runs: int = 20,
    duration_us: float = 120_000.0,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
) -> ThroughputExperiment:
    """Run the Fig. 12 sweep.

    Parameters
    ----------
    n_runs:
        Number of random placements (each run compares both protocols on
        the same channels).
    duration_us:
        Simulated time per run.
    seed:
        Base random seed.
    config:
        Override the full simulation configuration (``duration_us`` is
        ignored if this is given).
    """
    config = config or SimulationConfig(duration_us=duration_us)
    protocols = ["802.11n", "n+"]
    raw = run_many(three_pair_scenario, protocols, n_runs=n_runs, seed=seed, config=config)

    experiment = ThroughputExperiment()
    for protocol in protocols:
        experiment.totals[protocol] = [m.total_throughput_mbps() for m in raw[protocol]]
        experiment.per_pair[protocol] = {
            name: [m.throughput_mbps(name) for m in raw[protocol]] for name in PAIR_NAMES
        }
    return experiment


def summarize(experiment: ThroughputExperiment) -> str:
    """Render the Fig. 12 CDover summaries and the §6.3 headline gains."""
    lines = ["-- Fig. 12(a): total network throughput (Mb/s) --"]
    for protocol in experiment.totals:
        lines.append(format_cdf_summary(protocol, experiment.totals[protocol]))
    for index, pair in enumerate(PAIR_NAMES, start=2):
        lines.append(f"-- Fig. 12({chr(ord('a') + index - 1)}): throughput of {pair} (Mb/s) --")
        for protocol in experiment.per_pair:
            lines.append(format_cdf_summary(protocol, experiment.per_pair[protocol][pair]))
    rows = [
        ["total network throughput", f"{experiment.total_gain():.2f}x"],
        ["single-antenna pair (tx1)", f"{experiment.pair_gain('tx1->rx1'):.2f}x"],
        ["2-antenna pair (tx2)", f"{experiment.pair_gain('tx2->rx2'):.2f}x"],
        ["3-antenna pair (tx3)", f"{experiment.pair_gain('tx3->rx3'):.2f}x"],
    ]
    lines.append("-- throughput gain of n+ over 802.11n (mean of per-run ratios) --")
    lines.append(format_table(["quantity", "gain"], rows))
    return "\n".join(lines)
