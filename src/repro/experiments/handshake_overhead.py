"""§3.5 -- overhead of the light-weight handshake.

The ACK header of n+ carries the receiver's alignment space,
differentially encoded across OFDM subcarriers.  This experiment draws
testbed channels, measures how many OFDM symbols the encoded feedback
needs (the paper reports about three), and computes the total handshake
overhead for a 1500-byte packet at 18 Mb/s (the paper estimates ~4 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.channel.testbed import Testbed, default_testbed
from repro.experiments.report import format_table
from repro.mac.handshake import alignment_feedback_symbols, handshake_overhead
from repro.phy.rates import MCS, MCS_TABLE
from repro.utils.linalg import orthonormal_complement, orthonormal_complement_batch

__all__ = ["HandshakeExperiment", "run_handshake_experiment", "summarize"]


@dataclass
class HandshakeExperiment:
    """Results of the handshake-overhead estimate.

    Attributes
    ----------
    feedback_symbols:
        OFDM symbols needed per measured channel realisation.
    overhead_fraction:
        Total handshake overhead as a fraction of the exchange, for a
        1500-byte packet at the reference bitrate.
    reference_mcs_index:
        The MCS used for the reference overhead number.
    """

    feedback_symbols: List[int]
    overhead_fraction: float
    reference_mcs_index: int

    @property
    def mean_feedback_symbols(self) -> float:
        """Average number of alignment-feedback OFDM symbols."""
        return float(np.mean(self.feedback_symbols)) if self.feedback_symbols else 0.0


def _alignment_subspaces_reference(response: np.ndarray) -> np.ndarray:
    """Per-subcarrier complement computation, one SVD at a time.

    Readable reference for the batched path of
    :func:`run_handshake_experiment`; the test suite asserts equivalence.
    """
    n_sub, n_rx, _ = response.shape
    subspaces = np.zeros((n_sub, n_rx, 1), dtype=complex)
    for k in range(n_sub):
        subspaces[k] = orthonormal_complement(response[k])[:, :1]
    return subspaces


def run_handshake_experiment(
    n_channels: int = 50,
    seed: int = 0,
    testbed: Optional[Testbed] = None,
    reference_mcs: Optional[MCS] = None,
) -> HandshakeExperiment:
    """Measure the alignment-feedback size on synthetic testbed channels.

    For each random link the receiver's 2-antenna decoding subspace is
    computed per subcarrier (orthogonal to a random 1-stream interferer)
    and differentially encoded; the number of OFDM symbols needed is
    recorded.

    The subspace computation runs as one batched SVD over every
    ``(channel, subcarrier)`` pair
    (:func:`repro.utils.linalg.orthonormal_complement_batch`, the PR-1
    batched pre-coder path) instead of ``n_channels * 64`` Python-level
    calls -- this loop was the dominant cost of the experiment.  Channel
    draws stay sequential so seeded results match the reference
    implementation exactly.
    """
    rng = np.random.default_rng(seed)
    testbed = testbed or default_testbed()
    # 16-QAM rate 3/4 at 10 MHz is 18 Mb/s -- the paper's reference point.
    reference_mcs = reference_mcs or MCS_TABLE[5]
    responses: List[np.ndarray] = []
    for _ in range(n_channels):
        a, b = testbed.place_nodes(2, rng)
        link = testbed.link(a, b, n_tx=1, n_rx=2, rng=rng)
        responses.append(link.frequency_response(64))  # (64, 2, 1)
    stacked = np.concatenate(responses, axis=0)  # (n_channels * 64, 2, 1)
    subspaces = orthonormal_complement_batch(stacked, 1)
    per_channel = subspaces.reshape(n_channels, 64, 2, 1)
    symbols: List[int] = [
        alignment_feedback_symbols(per_channel[i]) for i in range(n_channels)
    ]
    overhead = handshake_overhead(
        reference_mcs, payload_bytes=1500, alignment_symbols=int(round(np.mean(symbols)))
    )
    return HandshakeExperiment(
        feedback_symbols=symbols,
        overhead_fraction=overhead.symbol_fraction,
        reference_mcs_index=reference_mcs.index,
    )


def summarize(result: HandshakeExperiment) -> str:
    """Render the handshake-overhead summary."""
    rows = [
        ["mean alignment-feedback symbols", f"{result.mean_feedback_symbols:.1f}"],
        ["max alignment-feedback symbols", f"{max(result.feedback_symbols)}"],
        [
            "handshake overhead (1500 B at reference rate)",
            f"{100 * result.overhead_fraction:.1f} %",
        ],
    ]
    return format_table(["metric", "value"], rows)
