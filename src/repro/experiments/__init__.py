"""Runnable reproductions of every figure in the paper's evaluation.

Each module exposes a ``run_*`` function returning a small result
dataclass, plus a ``summarize`` helper that renders the same rows/series
the paper reports:

* :mod:`repro.experiments.fig9_carrier_sense` -- carrier sense with and
  without projection (power profile and correlation CDFs, Fig. 9).
* :mod:`repro.experiments.fig11_nulling_alignment` -- residual SNR loss of
  the wanted stream after nulling and alignment (Fig. 11).
* :mod:`repro.experiments.fig12_throughput` -- throughput CDFs of n+ vs
  802.11n in the three-pair scenario (Fig. 12).
* :mod:`repro.experiments.fig13_heterogeneous` -- throughput gains in the
  heterogeneous AP/client scenario vs 802.11n and beamforming (Fig. 13).
* :mod:`repro.experiments.handshake_overhead` -- the light-weight
  handshake overhead estimate of §3.5.
* :mod:`repro.experiments.report` -- plain-text table formatting shared by
  the benchmarks and examples.
"""

from repro.experiments.fig9_carrier_sense import CarrierSenseExperiment, run_carrier_sense_experiment
from repro.experiments.fig11_nulling_alignment import (
    ResidualErrorExperiment,
    run_nulling_experiment,
    run_alignment_experiment,
)
from repro.experiments.fig12_throughput import ThroughputExperiment, run_throughput_experiment
from repro.experiments.fig13_heterogeneous import (
    HeterogeneousExperiment,
    run_heterogeneous_experiment,
)
from repro.experiments.handshake_overhead import HandshakeExperiment, run_handshake_experiment

__all__ = [
    "CarrierSenseExperiment",
    "run_carrier_sense_experiment",
    "ResidualErrorExperiment",
    "run_nulling_experiment",
    "run_alignment_experiment",
    "ThroughputExperiment",
    "run_throughput_experiment",
    "HeterogeneousExperiment",
    "run_heterogeneous_experiment",
    "HandshakeExperiment",
    "run_handshake_experiment",
]
