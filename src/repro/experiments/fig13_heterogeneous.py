"""Fig. 13 -- heterogeneous transmitter/receiver antenna counts.

The Fig. 4 topology: a single-antenna client c1 sends uplink traffic to a
2-antenna AP1 while a 3-antenna AP2 sends downlink traffic to two
2-antenna clients.  n+ is compared against both today's 802.11n and the
multi-user beamforming baseline of Aryafar et al. [7].  Expected shape:
n+ beats both baselines in total throughput (the paper reports 2.4x over
802.11n and 1.8x over beamforming), the AP's clients gain the most, and
the single-antenna client loses only slightly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.experiments.report import format_cdf_summary, format_table
from repro.sim.runner import SimulationConfig
from repro.sim.scenarios import Scenario, heterogeneous_ap_scenario
from repro.sim.sweep import run_sweep

__all__ = ["HeterogeneousExperiment", "run_heterogeneous_experiment", "summarize"]


@dataclass
class HeterogeneousExperiment:
    """Results of the Fig. 13 reproduction.

    Attributes
    ----------
    totals:
        Total throughput per run, keyed by protocol.
    per_flow:
        Per-flow throughput per run, keyed by protocol then flow name.
    """

    totals: Dict[str, List[float]] = field(default_factory=dict)
    per_flow: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def flow_names(self) -> List[str]:
        """The traffic flows present in the results."""
        for per in self.per_flow.values():
            return list(per)
        return []

    def gain_over(self, baseline: str, flow: Optional[str] = None) -> List[float]:
        """Per-run throughput ratios of n+ over ``baseline``."""
        gains = []
        for run in range(len(self.totals.get("n+", []))):
            if flow is None:
                numerator = self.totals["n+"][run]
                denominator = self.totals[baseline][run]
            else:
                numerator = self.per_flow["n+"][flow][run]
                denominator = self.per_flow[baseline][flow][run]
            if denominator > 1e-9:
                gains.append(numerator / denominator)
        return gains

    def mean_gain_over(self, baseline: str, flow: Optional[str] = None) -> float:
        """Mean of :meth:`gain_over`."""
        gains = self.gain_over(baseline, flow)
        return float(np.mean(gains)) if gains else float("nan")


def run_heterogeneous_experiment(
    n_runs: int = 20,
    duration_us: float = 120_000.0,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    scenario: Union[str, Callable[[], Scenario]] = "heterogeneous-ap",
    workers: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    resume: bool = False,
) -> HeterogeneousExperiment:
    """Run the Fig. 13 sweep over random placements.

    ``scenario``/``workers``/``cache_dir``/``resume`` behave as in
    :func:`repro.experiments.fig12_throughput.run_throughput_experiment`:
    any registered scenario (e.g. the dense LANs) can be swept, fanned out
    over worker processes, memoised in the on-disk results store, and
    resumed after an interruption.
    """
    config = config or SimulationConfig(duration_us=duration_us)
    protocols = ["802.11n", "beamforming", "n+"]
    sweep = run_sweep(
        scenario,
        protocols,
        n_runs=n_runs,
        seed=seed,
        config=config,
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
    )
    raw = sweep.results
    flow_names = sweep.link_names()
    experiment = HeterogeneousExperiment()
    for protocol in protocols:
        experiment.totals[protocol] = [m.total_throughput_mbps() for m in raw[protocol]]
        experiment.per_flow[protocol] = {
            name: [m.throughput_mbps(name) for m in raw[protocol]] for name in flow_names
        }
    return experiment


def summarize(experiment: HeterogeneousExperiment) -> str:
    """Render the Fig. 13 gain CDFs and headline ratios."""
    lines = ["-- total throughput per protocol (Mb/s) --"]
    for protocol in experiment.totals:
        lines.append(format_cdf_summary(protocol, experiment.totals[protocol]))
    for baseline, figure in (("802.11n", "Fig. 13(a)"), ("beamforming", "Fig. 13(b)")):
        lines.append(f"-- {figure}: throughput gain of n+ over {baseline} --")
        lines.append(format_cdf_summary("total gain", experiment.gain_over(baseline)))
        for flow in experiment.flow_names():
            lines.append(format_cdf_summary(f"gain of {flow}", experiment.gain_over(baseline, flow)))
    rows = [
        ["total, vs 802.11n", f"{experiment.mean_gain_over('802.11n'):.2f}x"],
        ["total, vs beamforming", f"{experiment.mean_gain_over('beamforming'):.2f}x"],
    ]
    if "c1->AP1" in experiment.flow_names():
        rows.append(
            ["single-antenna client (c1), vs 802.11n", f"{experiment.mean_gain_over('802.11n', 'c1->AP1'):.2f}x"]
        )
    if "AP2->c2+c3" in experiment.flow_names():
        rows.append(
            ["AP2 downlink flows, vs 802.11n", f"{experiment.mean_gain_over('802.11n', 'AP2->c2+c3'):.2f}x"]
        )
    lines.append(format_table(["quantity", "gain"], rows))
    return "\n".join(lines)
