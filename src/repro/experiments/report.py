"""Plain-text table helpers shared by experiments, benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["format_table", "format_cdf_summary", "percentile_row"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def percentile_row(values: Sequence[float], percentiles: Sequence[float] = (10, 25, 50, 75, 90)) -> List[float]:
    """Return the requested percentiles of ``values`` (rounded)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return [float("nan")] * len(percentiles)
    return [round(float(np.percentile(data, p)), 2) for p in percentiles]


def format_cdf_summary(name: str, values: Sequence[float]) -> str:
    """One-line CDF summary: the percentiles the paper's figures convey."""
    p10, p25, p50, p75, p90 = percentile_row(values)
    mean = round(float(np.mean(list(values))), 2) if len(list(values)) else float("nan")
    return (
        f"{name}: mean={mean}  p10={p10}  p25={p25}  median={p50}  p75={p75}  p90={p90}"
    )
