"""Command-line interface for running the paper's experiments.

Installed as a module runner::

    python -m repro.cli fig9
    python -m repro.cli fig11 --trials 1000
    python -m repro.cli fig12 --runs 10 --duration-ms 100
    python -m repro.cli fig13 --runs 10
    python -m repro.cli handshake
    python -m repro.cli all --quick

Each sub-command runs the corresponding experiment from
:mod:`repro.experiments` and prints the same summary rows the benchmark
harness produces.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import fig9_carrier_sense as fig9
from repro.experiments import fig11_nulling_alignment as fig11
from repro.experiments import fig12_throughput as fig12
from repro.experiments import fig13_heterogeneous as fig13
from repro.experiments import handshake_overhead as handshake
from repro.sim.runner import SimulationConfig

__all__ = ["main", "build_parser"]


def _print_header(title: str) -> None:
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}")


def _run_fig9(args: argparse.Namespace) -> None:
    _print_header("Fig. 9 -- carrier sense in the presence of ongoing transmissions")
    result = fig9.run_carrier_sense_experiment(n_trials=args.trials, seed=args.seed)
    print(fig9.summarize(result))


def _run_fig11(args: argparse.Namespace) -> None:
    _print_header("Fig. 11 -- residual error of nulling and alignment")
    nulling = fig11.run_nulling_experiment(n_trials=args.trials, seed=args.seed)
    alignment = fig11.run_alignment_experiment(n_trials=args.trials, seed=args.seed + 1)
    print(fig11.summarize(nulling))
    print()
    print(fig11.summarize(alignment))


def _simulation_config(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        duration_us=args.duration_ms * 1000.0,
        n_subcarriers=args.subcarriers,
    )


def _run_fig12(args: argparse.Namespace) -> None:
    _print_header("Fig. 12 -- throughput of n+ vs 802.11n (three-pair scenario)")
    experiment = fig12.run_throughput_experiment(
        n_runs=args.runs, seed=args.seed, config=_simulation_config(args)
    )
    print(fig12.summarize(experiment))


def _run_fig13(args: argparse.Namespace) -> None:
    _print_header("Fig. 13 -- heterogeneous scenario vs 802.11n and beamforming")
    experiment = fig13.run_heterogeneous_experiment(
        n_runs=args.runs, seed=args.seed, config=_simulation_config(args)
    )
    print(fig13.summarize(experiment))


def _run_handshake(args: argparse.Namespace) -> None:
    _print_header("§3.5 -- light-weight handshake overhead")
    result = handshake.run_handshake_experiment(n_channels=args.trials, seed=args.seed)
    print(handshake.summarize(result))


def _run_all(args: argparse.Namespace) -> None:
    if args.quick:
        args.trials = min(args.trials, 200)
        args.runs = min(args.runs, 4)
        args.duration_ms = min(args.duration_ms, 40.0)
    for runner in (_run_fig9, _run_fig11, _run_handshake, _run_fig12, _run_fig13):
        start = time.time()
        runner(args)
        print(f"[{runner.__name__[5:]}] finished in {time.time() - start:.1f} s")


_COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "fig9": _run_fig9,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "handshake": _run_handshake,
    "all": _run_all,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Random Access Heterogeneous MIMO Networks'.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS), help="experiment to run")
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--trials", type=int, default=400, help="trials for the signal-level experiments"
    )
    parser.add_argument(
        "--runs", type=int, default=8, help="random placements for the throughput experiments"
    )
    parser.add_argument(
        "--duration-ms", type=float, default=80.0, help="simulated time per run, milliseconds"
    )
    parser.add_argument(
        "--subcarriers", type=int, default=12, help="subcarriers tracked by the link abstraction"
    )
    parser.add_argument(
        "--quick", action="store_true", help="shrink every experiment (used with 'all')"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments and run the selected experiment."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
