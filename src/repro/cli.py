"""Command-line interface for running the paper's experiments.

Installed as a module runner::

    python -m repro.cli fig9
    python -m repro.cli fig11 --trials 1000
    python -m repro.cli fig12 --runs 10 --duration-ms 100
    python -m repro.cli fig12 --scenario dense-lan-20 --workers 4 --cache-dir .sweep-cache
    python -m repro.cli fig13 --runs 10
    python -m repro.cli handshake
    python -m repro.cli scenarios
    python -m repro.cli protocols
    python -m repro.cli sweep --scenario dense-lan-30 --protocols 802.11n,n+ --runs 50 --workers 4
    python -m repro.cli sweep --scenario dense-lan-20-faulty --protocols "n+,n+[recovery=erasure]" --runs 8
    python -m repro.cli sweep --scenario dense-lan-30 --runs 50 --cache-dir .sweep-cache --resume
    python -m repro.cli results --cache-dir .sweep-cache
    python -m repro.cli replay path-to-capsule.json
    python -m repro.cli validate-fidelity --scenario dense-lan-20 --links 8
    python -m repro.cli all --quick

Each figure sub-command runs the corresponding experiment from
:mod:`repro.experiments` and prints the same summary rows the benchmark
harness produces.  ``scenarios`` lists the registered topologies,
``protocols`` lists the registered protocol variants with their typed
parameters (:mod:`repro.mac.variants`), ``sweep`` runs an arbitrary
scenario x protocol grid through the parallel orchestrator
(:mod:`repro.sim.sweep`) -- protocol entries may carry parameters in
``name[param=value,...]`` form -- with optional worker fan-out and
on-disk result caching, ``sweep --resume`` completes an interrupted
cached sweep exactly where it stopped, ``results`` inspects a results
store -- recorded sweeps, per-(scenario, protocol) cell states and the
crash capsules of failed cells (:mod:`repro.sim.store`) -- ``replay``
re-executes a crash capsule under full validation
(:mod:`repro.sim.capsule`) and reports whether the recorded failure
reproduced, and ``validate-fidelity`` prints the cross-fidelity
agreement table of :mod:`repro.sim.fidelity` for sampled links of a
scenario.

A ``sweep`` that ends with failed cells exits non-zero (even without
``--strict``), printing one line per failure with its capsule path.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import fig9_carrier_sense as fig9
from repro.experiments import fig11_nulling_alignment as fig11
from repro.experiments import fig12_throughput as fig12
from repro.experiments import fig13_heterogeneous as fig13
from repro.experiments import handshake_overhead as handshake
from repro.exceptions import ConfigurationError
from repro.experiments.report import format_table
from repro.mac.variants import available_variants, parse_protocol, split_protocol_list
from repro.sim.capsule import load_capsule, replay_capsule
from repro.sim.runner import SimulationConfig
from repro.sim.scenarios import available_scenarios, scenario_factory
from repro.sim.store import ResultsStore
from repro.sim.sweep import run_sweep

__all__ = ["main", "build_parser"]


def _print_header(title: str) -> None:
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}")


def _run_fig9(args: argparse.Namespace) -> None:
    _print_header("Fig. 9 -- carrier sense in the presence of ongoing transmissions")
    result = fig9.run_carrier_sense_experiment(n_trials=args.trials, seed=args.seed)
    print(fig9.summarize(result))


def _run_fig11(args: argparse.Namespace) -> None:
    _print_header("Fig. 11 -- residual error of nulling and alignment")
    nulling = fig11.run_nulling_experiment(n_trials=args.trials, seed=args.seed)
    alignment = fig11.run_alignment_experiment(n_trials=args.trials, seed=args.seed + 1)
    print(fig11.summarize(nulling))
    print()
    print(fig11.summarize(alignment))


def _simulation_config(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        duration_us=args.duration_ms * 1000.0,
        n_subcarriers=args.subcarriers,
        packet_rate_pps=args.packet_rate_pps,
        channel_draws=args.channel_draws,
        fault_profile=args.fault_profile,
        fault_trace=args.fault_trace,
        fidelity=args.fidelity,
        fidelity_band_db=args.fidelity_band_db,
        validation=args.validation,
    )


def _run_fig12(args: argparse.Namespace) -> None:
    scenario = args.scenario or "three-pair"
    _print_header(f"Fig. 12 -- throughput of n+ vs 802.11n ({scenario} scenario)")
    experiment = fig12.run_throughput_experiment(
        n_runs=args.runs,
        seed=args.seed,
        config=_simulation_config(args),
        scenario=scenario,
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=args.resume,
    )
    print(fig12.summarize(experiment))


def _run_fig13(args: argparse.Namespace) -> None:
    scenario = args.scenario or "heterogeneous-ap"
    _print_header(f"Fig. 13 -- {scenario} scenario vs 802.11n and beamforming")
    experiment = fig13.run_heterogeneous_experiment(
        n_runs=args.runs,
        seed=args.seed,
        config=_simulation_config(args),
        scenario=scenario,
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=args.resume,
    )
    print(fig13.summarize(experiment))


def _run_handshake(args: argparse.Namespace) -> None:
    _print_header("§3.5 -- light-weight handshake overhead")
    result = handshake.run_handshake_experiment(n_channels=args.trials, seed=args.seed)
    print(handshake.summarize(result))


def _run_scenarios(args: argparse.Namespace) -> None:
    _print_header("Registered scenarios")
    rows = []
    for name in available_scenarios():
        scenario = scenario_factory(name)()
        traffic = (
            f"Poisson {scenario.packet_rate_pps:.0f} pps"
            if scenario.packet_rate_pps
            else "saturated"
        )
        rows.append(
            [
                name,
                str(len(scenario.stations)),
                str(len(scenario.pairs)),
                str(scenario.max_antennas),
                traffic,
                scenario.fault_profile or "-",
            ]
        )
    print(
        format_table(
            ["scenario", "stations", "pairs", "max antennas", "traffic", "faults"], rows
        )
    )


def _run_protocols(args: argparse.Namespace) -> None:
    _print_header("Registered protocol variants")
    rows = []
    for entry in available_variants():
        params = ", ".join(
            f"{spec.name}={spec.default!r}" for spec in entry.params
        ) or "-"
        rows.append(
            [
                entry.name,
                entry.agent_class.__name__,
                "yes" if entry.supports_joining else "no",
                params,
            ]
        )
    print(format_table(["protocol", "agent", "joins", "params (defaults)"], rows))
    print(
        "\nSweep syntax: --protocols \"name,name[param=value,...]\", e.g. "
        "\"n+,n+[recovery=erasure,retry_cap=3]\""
    )


def _run_sweep(args: argparse.Namespace) -> int:
    scenario = args.scenario or "three-pair"
    # Parse (and so validate) every entry up front: an unknown name or
    # parameter aborts here with the registry listing, before any worker
    # or simulation starts.
    protocols = [parse_protocol(item) for item in split_protocol_list(args.protocols)]
    _print_header(
        f"Sweep -- {scenario}, {len(protocols)} protocol(s) x {args.runs} placement(s)"
    )
    start = time.time()
    result = run_sweep(
        scenario,
        protocols,
        n_runs=args.runs,
        seed=args.seed,
        config=_simulation_config(args),
        workers=args.workers,
        cache_dir=args.cache_dir,
        strict=args.strict,
        resume=args.resume,
    )
    elapsed = time.time() - start
    rows = []
    for spec in protocols:
        totals = result.totals_mbps(spec.key)
        fairness = [
            m.fairness_index() for m in result.results[spec.key] if m is not None
        ]
        if not totals:
            rows.append([spec.key, "-", "-", "-", "-"])
            continue
        rows.append(
            [
                spec.key,
                f"{sum(totals) / len(totals):.1f}",
                f"{min(totals):.1f}",
                f"{max(totals):.1f}",
                f"{sum(fairness) / len(fairness):.2f}",
            ]
        )
    print(format_table(["protocol", "mean Mb/s", "min", "max", "Jain fairness"], rows))
    print(
        f"\n{result.cache_hits} cell(s) from cache, {result.cache_misses} simulated "
        f"on {result.workers} worker(s) in {elapsed:.1f} s"
    )
    if result.worker_deaths:
        print(f"{result.worker_deaths} worker death(s) absorbed (see 'repro results')")
    if result.failures:
        # Failed cells make the sweep exit non-zero even without
        # --strict: the grid is incomplete, and scripts piping sweeps
        # into analysis must not mistake it for a clean run.
        print(f"\n{len(result.failures)} cell(s) FAILED:")
        for failure in result.failures:
            capsule = (
                f" capsule={failure.capsule_path}" if failure.capsule_path else ""
            )
            print(
                f"FAILED cell: protocol={failure.protocol} run={failure.run} "
                f"seed={failure.run_seed}: {failure.error}{capsule}"
            )
        if any(f.capsule_path for f in result.failures):
            print("replay a capsule with: python -m repro.cli replay CAPSULE_PATH")
        return 1
    return 0


def _run_results(args: argparse.Namespace) -> None:
    if args.cache_dir is None:
        raise ConfigurationError(
            "the 'results' command needs --cache-dir pointing at a results store"
        )
    store = ResultsStore(args.cache_dir)
    _print_header(f"Results store -- {args.cache_dir}")
    sweeps = store.sweeps()
    if sweeps:
        rows = []
        for record in sweeps:
            manifest = record.manifest
            rows.append(
                [
                    record.sweep_id[:12],
                    record.status,
                    str(manifest.get("scenario", "-")),
                    str(manifest.get("n_runs", "-")),
                    str(manifest.get("seed", "-")),
                    ",".join(manifest.get("protocols", [])) or "-",
                    time.strftime(
                        "%Y-%m-%d %H:%M:%S", time.localtime(record.updated_at)
                    ),
                ]
            )
        print(
            format_table(
                ["sweep", "status", "scenario", "runs", "seed", "protocols", "updated"],
                rows,
            )
        )
    else:
        print("no sweep manifests recorded")
    summary = store.summary()
    if summary:
        states = ("done", "failed", "running", "pending")
        rows = [
            [scenario or "-", protocol or "-"]
            + [str(counts.get(state, 0)) for state in states]
            for (scenario, protocol), counts in sorted(
                summary.items(), key=lambda item: (item[0][0] or "", item[0][1] or "")
            )
        ]
        print()
        print(format_table(["scenario", "protocol", *states], rows))
    else:
        print("no cells recorded")
    failed = store.query(status="failed")
    if failed:
        print()
        rows = [
            [
                cell.scenario or "-",
                cell.protocol or "-",
                "-" if cell.run is None else str(cell.run),
                (cell.error or "")[:44],
                cell.capsule_path or "-",
            ]
            for cell in failed
        ]
        print(format_table(["scenario", "protocol", "run", "error", "capsule"], rows))
        print("\nreplay a capsule with: python -m repro.cli replay CAPSULE_PATH")


def _run_replay(args: argparse.Namespace) -> int:
    if not args.target:
        raise ConfigurationError(
            "the 'replay' command needs the path of a crash capsule "
            "(printed by a failing sweep and by 'repro results')"
        )
    capsule = load_capsule(args.target)
    _print_header(
        f"Replay -- {capsule.scenario} / {capsule.protocol} "
        f"run {capsule.run} (seed {capsule.run_seed})"
    )
    print(f"recorded failure: {capsule.error_type}: {capsule.error_message}")
    outcome = replay_capsule(capsule, validation=args.validation or "full")
    if not outcome.fingerprint_matched:
        print(
            "WARNING: the scenario definition changed since this capsule was "
            "written; the replay may not be faithful"
        )
    if outcome.reproduced:
        print(f"reproduced: {outcome.error_type}: {outcome.error_message}")
        if outcome.traceback:
            print()
            print(outcome.traceback, end="")
        return 0
    if outcome.error_type is None:
        print("NOT reproduced: the replay completed cleanly")
    else:
        print(f"NOT reproduced: got {outcome.error_type}: {outcome.error_message}")
        if outcome.traceback:
            print()
            print(outcome.traceback, end="")
    return 1


def _run_validate_fidelity(args: argparse.Namespace) -> None:
    from repro.sim.fidelity import cross_validate_links

    scenario = args.scenario or "dense-lan-20"
    _print_header(f"Cross-fidelity validation -- {scenario}")
    report = cross_validate_links(
        scenario,
        seed=args.seed,
        n_links=args.links,
        config=_simulation_config(args),
    )
    print(report.format_table())


def _run_all(args: argparse.Namespace) -> None:
    if args.quick:
        args.trials = min(args.trials, 200)
        args.runs = min(args.runs, 4)
        args.duration_ms = min(args.duration_ms, 40.0)
    for runner in (_run_fig9, _run_fig11, _run_handshake, _run_fig12, _run_fig13):
        start = time.time()
        runner(args)
        print(f"[{runner.__name__[5:]}] finished in {time.time() - start:.1f} s")


_COMMANDS: Dict[str, Callable[[argparse.Namespace], Optional[int]]] = {
    "fig9": _run_fig9,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "handshake": _run_handshake,
    "scenarios": _run_scenarios,
    "protocols": _run_protocols,
    "sweep": _run_sweep,
    "results": _run_results,
    "replay": _run_replay,
    "validate-fidelity": _run_validate_fidelity,
    "all": _run_all,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Random Access Heterogeneous MIMO Networks'.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS), help="experiment to run")
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="for the 'replay' command: path of the crash capsule to re-execute",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--trials", type=int, default=400, help="trials for the signal-level experiments"
    )
    parser.add_argument(
        "--runs", type=int, default=8, help="random placements for the throughput experiments"
    )
    parser.add_argument(
        "--duration-ms", type=float, default=80.0, help="simulated time per run, milliseconds"
    )
    parser.add_argument(
        "--subcarriers", type=int, default=12, help="subcarriers tracked by the link abstraction"
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="registered scenario name (see the 'scenarios' command); "
        "default depends on the experiment",
    )
    parser.add_argument(
        "--protocols",
        default="802.11n,n+",
        help="comma-separated protocols for the 'sweep' command; entries may "
        "carry parameters as name[param=value,...], e.g. "
        "\"n+,n+[recovery=erasure,retry_cap=3]\" (see the 'protocols' command)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for placement sweeps (0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk sweep results store (default: no cache); "
        "a legacy JSON cell cache found there is migrated in automatically",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="for the 'sweep' command: resume an interrupted cached sweep -- "
        "requires --cache-dir and the exact grid of the interrupted invocation",
    )
    parser.add_argument(
        "--packet-rate-pps",
        type=float,
        default=None,
        help="per-flow Poisson arrival rate; 0 forces saturated sources even "
        "on a bursty scenario (default: saturated, or the scenario's hint)",
    )
    parser.add_argument(
        "--channel-draws",
        choices=["grouped", "batched", "per-pair"],
        default=None,
        help="channel-draw contract for network construction (default: the "
        "scenario's hint, else 'batched'; dense-lan-500 declares 'grouped')",
    )
    parser.add_argument(
        "--fault-profile",
        default=None,
        help="fault-injection profile for simulation runs (see repro.sim.faults; "
        "'none' disables a faulty scenario's built-in profile)",
    )
    parser.add_argument(
        "--fault-trace",
        default=None,
        help="JSON or CSV trace of loss episodes to replay (start_us, duration_us, "
        "loss_rate[, tx_id, rx_id]); combined with --fault-profile if both given",
    )
    parser.add_argument(
        "--fidelity",
        choices=["abstraction", "auto", "full"],
        default=None,
        help="PHY fidelity tier for simulation runs (see repro.sim.fidelity): "
        "'abstraction' (the default), 'auto' escalates uncertain links to the "
        "full transceiver, 'full' escalates every reception",
    )
    parser.add_argument(
        "--validation",
        choices=["off", "cheap", "full"],
        default=None,
        help="runtime invariant checking for simulation runs (see "
        "repro.sim.invariants): 'off' (the default) runs the exact "
        "unvalidated path, 'cheap' checks aggregate conservation laws at "
        "round boundaries, 'full' adds per-link and per-queue checks; "
        "'replay' defaults to 'full'",
    )
    parser.add_argument(
        "--fidelity-band-db",
        type=float,
        default=None,
        help="half-width (dB) of the 'auto' uncertainty band around the "
        "delivery cliff (default: the scenario's hint, else 3.0)",
    )
    parser.add_argument(
        "--links",
        type=int,
        default=8,
        help="links sampled per scenario by the 'validate-fidelity' command",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="for the 'sweep' command: re-raise the first cell failure instead of "
        "recording it and continuing",
    )
    parser.add_argument(
        "--quick", action="store_true", help="shrink every experiment (used with 'all')"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments and run the selected experiment."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers == 0:
        args.workers = None  # run_sweep: None = all usable cores
    if args.packet_rate_pps is not None and args.packet_rate_pps < 0:
        parser.error("--packet-rate-pps must be >= 0 (0 = saturated sources)")
    exit_code = _COMMANDS[args.command](args)
    return int(exit_code) if exit_code else 0


if __name__ == "__main__":
    sys.exit(main())
