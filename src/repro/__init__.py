"""802.11n+ -- a reproduction of "Random Access Heterogeneous MIMO Networks".

The library is organised in layers:

* :mod:`repro.utils` -- linear algebra, dB and bit helpers.
* :mod:`repro.phy` -- a software 802.11-style OFDM PHY (modulation,
  coding, preambles, channel estimation, effective SNR).
* :mod:`repro.channel` -- channel and synthetic-testbed models replacing
  the paper's USRP2 deployment.
* :mod:`repro.mimo` -- the core contribution: interference nulling,
  interference alignment, the general pre-coding solver and
  multi-dimensional carrier sense.
* :mod:`repro.mac` -- the n+ random-access MAC, plus the 802.11n and
  multi-user-beamforming baselines it is compared against.
* :mod:`repro.sim` -- a discrete-event network simulator tying the layers
  together.
* :mod:`repro.experiments` -- runnable reproductions of every figure in
  the paper's evaluation (Figs. 9 and 11-13).

Quickstart::

    import numpy as np
    from repro.mimo import ReceiverConstraint, compute_precoders

    rng = np.random.default_rng(0)
    # A 2-antenna transmitter joining a single-antenna pair: null at rx1.
    h_to_rx1 = rng.standard_normal(2) + 1j * rng.standard_normal(2)
    precoders = compute_precoders(
        n_tx_antennas=2, ongoing=[ReceiverConstraint(channel=h_to_rx1)]
    )
    assert np.allclose(h_to_rx1 @ precoders[0], 0)
"""

__version__ = "1.0.0"

from repro import constants, exceptions

__all__ = ["constants", "exceptions", "__version__"]
