"""Interference nulling (Claim 3.3).

A transmitter nulls its signal at a receiver by choosing pre-coding
vectors in the null space of the channel matrix to that receiver:
``H v = 0`` makes the superposition of its antennas cancel at every one
of the receiver's antennas, regardless of the transmitted symbol.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DimensionError, PrecodingError
from repro.utils.linalg import null_space

__all__ = [
    "two_antenna_nulling_weight",
    "nulling_constraint_rows",
    "nulling_precoders",
    "residual_interference",
]


def two_antenna_nulling_weight(h_first: complex, h_second: complex) -> complex:
    """The scalar weight of the two-antenna example in §2.

    A 2-antenna transmitter sending ``q`` on its first antenna and
    ``alpha * q`` on its second creates a null at a single-antenna receiver
    whose channels are ``h_first`` and ``h_second`` when
    ``alpha = -h_first / h_second``.
    """
    if h_second == 0:
        raise PrecodingError("cannot null: the second antenna's channel is exactly zero")
    return -h_first / h_second


def nulling_constraint_rows(channel: np.ndarray) -> np.ndarray:
    """The linear constraint rows imposed by nulling at one receiver.

    Nulling at an N-antenna receiver whose channel from the transmitter is
    ``H`` (shape ``(N, M)``) requires ``H v = 0``; the constraint matrix is
    simply ``H`` itself (Claim 3.3 / Eq. 5).
    """
    h = np.asarray(channel, dtype=complex)
    if h.ndim == 1:
        h = h.reshape(1, -1)
    if h.ndim != 2:
        raise DimensionError(f"channel must be a matrix, got shape {h.shape}")
    return h


def nulling_precoders(
    channels_to_null: Sequence[np.ndarray],
    n_tx_antennas: int,
    n_streams: int | None = None,
    normalize: bool = True,
) -> np.ndarray:
    """Pre-coding vectors that null at every listed receiver.

    Parameters
    ----------
    channels_to_null:
        Channel matrices from the transmitter to each receiver that must
        see zero signal; each has shape ``(N_j, M)``.
    n_tx_antennas:
        M, the transmitter's antenna count.
    n_streams:
        How many pre-coding vectors to return; defaults to every vector in
        the null space (``M - K`` for K total constraint rows, Claim 3.2).
    normalize:
        Scale each returned vector to unit norm.

    Returns
    -------
    numpy.ndarray
        Shape ``(M, n_streams)``; columns are the pre-coding vectors.

    Raises
    ------
    PrecodingError
        If the requested number of streams exceeds the dimension of the
        null space (e.g. nulling at three antennas with a three-antenna
        transmitter, the situation Eq. 2 shows is impossible).
    """
    rows = []
    for channel in channels_to_null:
        h = nulling_constraint_rows(channel)
        if h.shape[1] != n_tx_antennas:
            raise DimensionError(
                f"channel has {h.shape[1]} transmit antennas, expected {n_tx_antennas}"
            )
        rows.append(h)
    if rows:
        constraints = np.concatenate(rows, axis=0)
    else:
        constraints = np.zeros((0, n_tx_antennas), dtype=complex)
    basis = null_space(constraints)
    available = basis.shape[1]
    wanted = available if n_streams is None else n_streams
    if wanted > available:
        raise PrecodingError(
            f"cannot form {wanted} streams: nulling constraints leave only "
            f"{available} free degrees of freedom"
        )
    if wanted == 0:
        raise PrecodingError(
            "nulling at the requested receivers consumes every transmit antenna; "
            "no stream can be sent (use alignment at multi-antenna receivers instead)"
        )
    precoders = basis[:, :wanted]
    if normalize:
        norms = np.linalg.norm(precoders, axis=0, keepdims=True)
        precoders = precoders / np.where(norms > 0, norms, 1.0)
    return precoders


def residual_interference(channel: np.ndarray, precoders: np.ndarray) -> float:
    """The residual interference power a set of pre-coders leaves at a
    receiver (should be ~0 for ideal nulling).

    Returns the total power ``sum ||H v_i||^2`` over streams, for a unit
    power symbol on each stream.
    """
    h = nulling_constraint_rows(channel)
    v = np.asarray(precoders, dtype=complex)
    if v.ndim == 1:
        v = v.reshape(-1, 1)
    leak = h @ v
    return float(np.sum(np.abs(leak) ** 2))
