"""Projection and zero-forcing decoding, and post-projection SNR.

A receiver in n+ decodes a wanted stream by projecting the received
signal onto a direction orthogonal to everything else (ongoing
interference plus its own other streams) and scaling -- the standard
zero-forcing decoder (§3.4, Fig. 7).  The post-projection SNR depends on
the angle between the wanted stream and the interference, which is why
n+ must pick bitrates per packet; the helpers here compute exactly that
quantity for the link-abstraction simulator and the bitrate selector.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DecodingError, DimensionError
from repro.utils import guarded
from repro.utils.db import linear_to_db
from repro.utils.linalg import (
    orthonormal_basis,
    orthonormal_complement,
    singular_value_ranks,
)

__all__ = [
    "zero_forcing_decode",
    "project_and_decode",
    "post_projection_snr",
    "post_projection_snr_db",
    "post_projection_snr_batch",
    "post_projection_snr_db_batch",
    "projection_angle",
]


def zero_forcing_decode(received: np.ndarray, channel: np.ndarray) -> np.ndarray:
    """Zero-forcing estimate of the transmitted symbols.

    Parameters
    ----------
    received:
        ``(N,)`` or ``(N, T)`` received samples.
    channel:
        ``(N, S)`` effective channel of the S streams.

    Returns
    -------
    numpy.ndarray
        ``(S,)`` or ``(S, T)`` symbol estimates.
    """
    h = np.asarray(channel, dtype=complex)
    if h.ndim == 1:
        h = h.reshape(-1, 1)
    y = np.asarray(received, dtype=complex)
    squeeze = y.ndim == 1
    if squeeze:
        y = y.reshape(-1, 1)
    if y.shape[0] != h.shape[0]:
        raise DimensionError(
            f"received dimension {y.shape[0]} does not match channel rows {h.shape[0]}"
        )
    if np.linalg.matrix_rank(h) < h.shape[1]:
        raise DecodingError("wanted streams are not separable (rank-deficient channel)")
    estimate = np.linalg.pinv(h) @ y
    return estimate[:, 0] if squeeze else estimate


def project_and_decode(
    received: np.ndarray,
    wanted_channel: np.ndarray,
    interference_directions: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Decode wanted streams after projecting out known interference.

    Parameters
    ----------
    received:
        ``(N,)`` or ``(N, T)`` received samples.
    wanted_channel:
        ``(N, n)`` effective channel of the wanted streams.
    interference_directions:
        ``(N, k)`` effective channel vectors of interference (ongoing
        transmissions and/or residual streams).  ``None`` or empty means
        plain zero-forcing.
    """
    y = np.asarray(received, dtype=complex)
    squeeze = y.ndim == 1
    if squeeze:
        y = y.reshape(-1, 1)
    hw = np.asarray(wanted_channel, dtype=complex)
    if hw.ndim == 1:
        hw = hw.reshape(-1, 1)

    if interference_directions is None or np.asarray(interference_directions).size == 0:
        out = zero_forcing_decode(y, hw)
        return out[:, 0] if squeeze else out

    hi = np.asarray(interference_directions, dtype=complex)
    if hi.ndim == 1:
        hi = hi.reshape(-1, 1)
    projector = orthonormal_complement(hi)  # (N, N-k)
    if projector.shape[1] < hw.shape[1]:
        raise DecodingError(
            "after removing interference there are fewer dimensions than wanted streams"
        )
    y_proj = projector.conj().T @ y
    h_proj = projector.conj().T @ hw
    out = zero_forcing_decode(y_proj, h_proj)
    return out[:, 0] if squeeze else out


def post_projection_snr(
    wanted_channel: np.ndarray,
    interference_directions: Optional[np.ndarray],
    noise_power: float,
    signal_power: float = 1.0,
    residual_interference_power: float = 0.0,
) -> np.ndarray:
    """Per-stream post-projection SNR of the zero-forcing receiver (linear).

    Parameters
    ----------
    wanted_channel:
        ``(N, n)`` effective channels of the wanted streams.
    interference_directions:
        ``(N, k)`` channel vectors of interference to project out (or
        ``None``).
    noise_power:
        Thermal noise power per receive antenna (linear).
    signal_power:
        Transmit power per stream (linear).
    residual_interference_power:
        Extra interference power that survives nulling/alignment at this
        receiver (hardware imperfections, §6.2); it is treated as
        additional white noise.

    Returns
    -------
    numpy.ndarray
        Length-``n`` array of linear SNRs.
    """
    hw = np.asarray(wanted_channel, dtype=complex)
    if hw.ndim == 1:
        hw = hw.reshape(-1, 1)
    n_streams = hw.shape[1]
    if interference_directions is not None and np.asarray(interference_directions).size:
        hi = np.asarray(interference_directions, dtype=complex)
        if hi.ndim == 1:
            hi = hi.reshape(-1, 1)
        projector = orthonormal_complement(hi)
        h_eff = projector.conj().T @ hw
    else:
        h_eff = hw
    if h_eff.shape[0] < n_streams or np.linalg.matrix_rank(h_eff) < n_streams:
        return np.zeros(n_streams)
    w = np.linalg.pinv(h_eff)
    noise_total = noise_power + residual_interference_power
    enhancement = np.sum(np.abs(w) ** 2, axis=1)
    return signal_power / (noise_total * np.maximum(enhancement, 1e-30))


def post_projection_snr_batch(
    wanted_channels: np.ndarray,
    interference_directions: Optional[np.ndarray],
    noise_power: float,
    signal_power: float = 1.0,
    residual_interference_power=0.0,
) -> np.ndarray:
    """Per-subcarrier, per-stream post-projection SNR in one batched pass.

    The link-abstraction simulator evaluates :func:`post_projection_snr`
    once per OFDM subcarrier; this helper runs the whole stack through
    batched ``np.linalg`` calls instead.

    Parameters
    ----------
    wanted_channels:
        ``(n_sub, N, n)`` effective channels of the wanted streams.
    interference_directions:
        ``(n_sub, N, k)`` interference directions to project out, or
        ``None``.
    noise_power:
        Thermal noise power per receive antenna (linear).
    signal_power:
        Transmit power per stream (linear).
    residual_interference_power:
        Scalar or ``(n_sub,)`` residual interference treated as extra
        white noise.

    Returns
    -------
    numpy.ndarray
        ``(n_sub, n)`` linear SNRs, matching a per-subcarrier loop over
        :func:`post_projection_snr`.
    """
    hw = np.asarray(wanted_channels, dtype=complex)
    if hw.ndim != 3:
        raise DimensionError(f"wanted channels must have shape (n_sub, N, n), got {hw.shape}")
    n_sub, _, n_streams = hw.shape
    residual = np.broadcast_to(np.asarray(residual_interference_power, dtype=float), (n_sub,))

    hi = None
    if interference_directions is not None and np.asarray(interference_directions).size:
        hi = np.asarray(interference_directions, dtype=complex)

    guards = guarded.guards_enabled()
    if guards:
        # NaN/Inf-poisoned subcarriers decode nothing: zero the poisoned
        # matrices (their SNR comes out 0) instead of letting LAPACK raise
        # or NaN propagate into the metrics.  No-op on finite stacks.
        hw, _ = guarded.sanitize_stack(hw)
        if hi is not None:
            hi, _ = guarded.sanitize_stack(hi)

    if hi is None:
        h_eff = hw
    else:
        # Batched orthonormal complement of the interference.  The
        # complement width is N - rank; when the rank varies across
        # subcarriers (degenerate channels) fall back to the per-subcarrier
        # reference path for correctness.
        if guards:
            u, s, _ = guarded.svd_stack(hi, full_matrices=True)
        else:
            u, s, _ = np.linalg.svd(hi, full_matrices=True)
        ranks = singular_value_ranks(s)
        rank = int(ranks[0])
        if not np.all(ranks == rank):
            return np.stack(
                [
                    post_projection_snr(
                        hw[k], hi[k], noise_power, signal_power, float(residual[k])
                    )
                    for k in range(n_sub)
                ]
            )
        projector = u[:, :, rank:]  # (n_sub, N, N - rank)
        h_eff = projector.conj().transpose(0, 2, 1) @ hw

    if h_eff.shape[1] < n_streams:
        return np.zeros((n_sub, n_streams))
    effective_rank = np.linalg.matrix_rank(h_eff)
    if guards:
        # numpy's default rcond, so the guarded happy path stays
        # bit-identical to the unguarded ``np.linalg.pinv`` call.
        w, _ = guarded.pinv_stack(h_eff, rcond=1e-15)
    else:
        w = np.linalg.pinv(h_eff)  # (n_sub, n, rows)
    noise_total = noise_power + residual
    enhancement = np.sum(np.abs(w) ** 2, axis=2)
    snr = signal_power / (noise_total[:, None] * np.maximum(enhancement, 1e-30))
    snr[effective_rank < n_streams] = 0.0
    if guards and not np.isfinite(snr).all():
        guarded.note_degradation("nonfinite-snr")
        snr = np.where(np.isfinite(snr), snr, 0.0)
    return snr


def post_projection_snr_db_batch(
    wanted_channels: np.ndarray,
    interference_directions: Optional[np.ndarray],
    noise_power: float,
    signal_power: float = 1.0,
    residual_interference_power=0.0,
) -> np.ndarray:
    """dB version of :func:`post_projection_snr_batch`."""
    return linear_to_db(
        post_projection_snr_batch(
            wanted_channels,
            interference_directions,
            noise_power,
            signal_power,
            residual_interference_power,
        )
    )


def post_projection_snr_db(
    wanted_channel: np.ndarray,
    interference_directions: Optional[np.ndarray],
    noise_power: float,
    signal_power: float = 1.0,
    residual_interference_power: float = 0.0,
) -> np.ndarray:
    """dB version of :func:`post_projection_snr`."""
    return linear_to_db(
        post_projection_snr(
            wanted_channel,
            interference_directions,
            noise_power,
            signal_power,
            residual_interference_power,
        )
    )


def projection_angle(wanted_direction: np.ndarray, interference_directions: np.ndarray) -> float:
    """The angle theta of Fig. 7 between a wanted stream and the
    interference subspace, in radians.

    The post-projection amplitude of the wanted stream scales as
    ``sin(theta)``; small angles mean low SNR and a low bitrate.
    """
    w = np.asarray(wanted_direction, dtype=complex).reshape(-1, 1)
    hi = np.asarray(interference_directions, dtype=complex)
    if hi.ndim == 1:
        hi = hi.reshape(-1, 1)
    if hi.size == 0:
        return float(np.pi / 2)
    basis = orthonormal_basis(hi)
    w_norm = np.linalg.norm(w)
    if w_norm == 0:
        return 0.0
    in_plane = np.linalg.norm(basis.conj().T @ w)
    cos_theta = float(np.clip(in_plane / w_norm, 0.0, 1.0))
    return float(np.arccos(cos_theta))
