"""The paper's core contribution: distributed interference nulling,
interference alignment and multi-dimensional carrier sense.

* :mod:`repro.mimo.dof` -- degrees-of-freedom accounting (Claims 3.1, 3.2).
* :mod:`repro.mimo.subspace` -- the "unwanted space" U and its orthogonal
  complement U-perp at a receiver.
* :mod:`repro.mimo.nulling` -- interference nulling (Claim 3.3).
* :mod:`repro.mimo.alignment` -- interference alignment (Claim 3.4).
* :mod:`repro.mimo.precoder` -- the general pre-coding solver (Claim 3.5,
  Eq. 7) combining nulling and alignment constraints across receivers.
* :mod:`repro.mimo.decoder` -- projection + zero-forcing decoding and
  post-projection SNR (the quantity behind Fig. 7 and bitrate selection).
* :mod:`repro.mimo.carrier_sense` -- multi-dimensional carrier sense
  (§3.2, Fig. 6).
* :mod:`repro.mimo.streams` -- bookkeeping dataclasses describing ongoing
  streams and receivers.
"""

from repro.mimo.dof import InterferenceStrategy, max_concurrent_streams, choose_strategy
from repro.mimo.subspace import unwanted_space, decoding_projection
from repro.mimo.nulling import nulling_precoders, two_antenna_nulling_weight
from repro.mimo.alignment import alignment_constraint_rows, alignment_precoders
from repro.mimo.precoder import ReceiverConstraint, OwnReceiver, compute_precoders, max_streams
from repro.mimo.decoder import (
    zero_forcing_decode,
    project_and_decode,
    post_projection_snr_db,
)
from repro.mimo.carrier_sense import MultiDimensionalCarrierSense, CarrierSenseResult

__all__ = [
    "InterferenceStrategy",
    "max_concurrent_streams",
    "choose_strategy",
    "unwanted_space",
    "decoding_projection",
    "nulling_precoders",
    "two_antenna_nulling_weight",
    "alignment_constraint_rows",
    "alignment_precoders",
    "ReceiverConstraint",
    "OwnReceiver",
    "compute_precoders",
    "max_streams",
    "zero_forcing_decode",
    "project_and_decode",
    "post_projection_snr_db",
    "MultiDimensionalCarrierSense",
    "CarrierSenseResult",
]
