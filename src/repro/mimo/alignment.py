"""Interference alignment (Claim 3.4).

A transmitter aligns its signal in the *unwanted space* U of a receiver by
making the received interference ``H v`` lie inside U, i.e. by zeroing its
component along U-perp: ``U_perp^H H v = 0``.  Compared with nulling this
costs only ``n`` constraint rows (the number of wanted streams at that
receiver) instead of ``N`` (its antenna count), which is what lets a
third transmitter join two ongoing transmissions in §2.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionError, PrecodingError
from repro.utils.linalg import null_space

__all__ = [
    "alignment_constraint_rows",
    "alignment_precoders",
    "align_third_transmitter_example",
    "alignment_residual",
]


def alignment_constraint_rows(channel: np.ndarray, u_perp: np.ndarray) -> np.ndarray:
    """The constraint rows for aligning inside a receiver's unwanted space.

    Parameters
    ----------
    channel:
        ``(N, M)`` channel matrix from the joiner to the receiver.
    u_perp:
        ``(N, n)`` orthonormal basis of the receiver's decoding subspace
        (the complement of its unwanted space U).

    Returns
    -------
    numpy.ndarray
        ``(n, M)`` rows; requiring them to annihilate ``v`` is Eq. 6.
    """
    h = np.asarray(channel, dtype=complex)
    if h.ndim == 1:
        h = h.reshape(1, -1)
    u = np.asarray(u_perp, dtype=complex)
    if u.ndim == 1:
        u = u.reshape(-1, 1)
    if u.shape[0] != h.shape[0]:
        raise DimensionError(
            f"U-perp lives in dimension {u.shape[0]} but the channel has {h.shape[0]} rows"
        )
    return u.conj().T @ h


def alignment_precoders(
    constraints: Sequence[np.ndarray],
    n_tx_antennas: int,
    n_streams: int | None = None,
    normalize: bool = True,
) -> np.ndarray:
    """Pre-coders satisfying a set of pre-computed constraint-row blocks.

    This is the generic "stack the rows, take the null space" step shared
    by nulling and alignment; see :func:`repro.mimo.precoder.compute_precoders`
    for the full protocol combining both plus multiple own receivers.
    """
    rows = []
    for block in constraints:
        block = np.asarray(block, dtype=complex)
        if block.ndim == 1:
            block = block.reshape(1, -1)
        if block.shape[1] != n_tx_antennas:
            raise DimensionError(
                f"constraint block has {block.shape[1]} columns, expected {n_tx_antennas}"
            )
        rows.append(block)
    stacked = (
        np.concatenate(rows, axis=0) if rows else np.zeros((0, n_tx_antennas), dtype=complex)
    )
    basis = null_space(stacked)
    available = basis.shape[1]
    wanted = available if n_streams is None else n_streams
    if wanted > available or wanted == 0:
        raise PrecodingError(
            f"constraints leave {available} free degrees of freedom, "
            f"cannot transmit {wanted} streams"
        )
    precoders = basis[:, :wanted]
    if normalize:
        norms = np.linalg.norm(precoders, axis=0, keepdims=True)
        precoders = precoders / np.where(norms > 0, norms, 1.0)
    return precoders


def align_third_transmitter_example(
    h_to_rx1: np.ndarray,
    h_to_rx2: np.ndarray,
    h_tx1_to_rx2: np.ndarray,
) -> Tuple[np.ndarray, complex]:
    """Solve the three-transmitter example of §2 (Eqs. 2a and 4).

    tx3 (three antennas) must null at the single-antenna rx1 and align its
    interference at the two-antenna rx2 with the interference rx2 already
    sees from tx1.

    Parameters
    ----------
    h_to_rx1:
        Length-3 channel vector from tx3's antennas to rx1's antenna.
    h_to_rx2:
        ``(2, 3)`` channel matrix from tx3 to rx2.
    h_tx1_to_rx2:
        Length-2 channel vector from tx1 to rx2 (the interference
        direction tx3 must align with).

    Returns
    -------
    (v, L):
        ``v`` is tx3's pre-coding vector (length 3, unit norm) and ``L``
        the alignment constant of Eq. 4 such that the interference tx3
        creates at rx2 equals ``L`` times tx1's interference direction.
    """
    h1 = np.asarray(h_to_rx1, dtype=complex).reshape(1, 3)
    h2 = np.asarray(h_to_rx2, dtype=complex).reshape(2, 3)
    f = np.asarray(h_tx1_to_rx2, dtype=complex).reshape(2)
    if np.allclose(f, 0):
        raise PrecodingError("tx1 creates no interference at rx2; nothing to align with")

    # Nulling at rx1: h1 @ v = 0 (one row).  Alignment at rx2: the received
    # vector h2 @ v must be parallel to f, i.e. orthogonal to the direction
    # perpendicular to f (one more row).
    f_perp = np.array([-np.conj(f[1]), np.conj(f[0])])
    align_row = f_perp.conj().reshape(1, 2) @ h2
    constraints = np.concatenate([h1, align_row], axis=0)
    basis = null_space(constraints)
    if basis.shape[1] == 0:
        raise PrecodingError("no pre-coding vector satisfies both constraints")
    v = basis[:, 0]
    v = v / np.linalg.norm(v)
    received = h2 @ v
    # L is the scaling between the aligned interference and tx1's direction.
    ratios = received[np.abs(f) > 1e-12] / f[np.abs(f) > 1e-12]
    L = complex(ratios[0]) if ratios.size else 0.0
    return v, L


def alignment_residual(channel: np.ndarray, u_perp: np.ndarray, precoders: np.ndarray) -> float:
    """Power leaking into the receiver's decoding subspace after alignment
    (zero for ideal alignment)."""
    rows = alignment_constraint_rows(channel, u_perp)
    v = np.asarray(precoders, dtype=complex)
    if v.ndim == 1:
        v = v.reshape(-1, 1)
    leak = rows @ v
    return float(np.sum(np.abs(leak) ** 2))
