"""Degrees-of-freedom accounting (Claims 3.1 and 3.2).

Two small but load-bearing rules of the protocol:

* *Claim 3.1* -- a joiner nulls at a receiver whose antennas are all
  occupied by wanted streams (n = N) and aligns in the unwanted space of a
  receiver with spare dimensions (n < N).
* *Claim 3.2* -- a transmitter with M antennas can add at most ``M - K``
  streams on top of K ongoing streams without interfering with any of
  them.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from repro.exceptions import DimensionError

__all__ = [
    "InterferenceStrategy",
    "choose_strategy",
    "max_concurrent_streams",
    "network_degrees_of_freedom",
    "can_join",
]


class InterferenceStrategy(Enum):
    """How a joiner protects a particular ongoing receiver."""

    NULL = "null"
    ALIGN = "align"


def choose_strategy(n_rx_antennas: int, n_wanted_streams: int) -> InterferenceStrategy:
    """Decide whether to null or align at a receiver (Claim 3.1).

    Parameters
    ----------
    n_rx_antennas:
        N, the number of antennas at the ongoing receiver.
    n_wanted_streams:
        n, the number of streams that receiver wants.
    """
    if n_wanted_streams > n_rx_antennas:
        raise DimensionError(
            f"a receiver with {n_rx_antennas} antennas cannot want "
            f"{n_wanted_streams} streams"
        )
    if n_wanted_streams <= 0:
        raise DimensionError("a protected receiver must want at least one stream")
    if n_wanted_streams == n_rx_antennas:
        return InterferenceStrategy.NULL
    return InterferenceStrategy.ALIGN


def max_concurrent_streams(n_tx_antennas: int, n_ongoing_streams: int) -> int:
    """Maximum streams a joiner can add (Claim 3.2: ``m = M - K``)."""
    if n_tx_antennas < 1:
        raise DimensionError("a transmitter needs at least one antenna")
    if n_ongoing_streams < 0:
        raise DimensionError("the number of ongoing streams cannot be negative")
    return max(0, n_tx_antennas - n_ongoing_streams)


def can_join(n_tx_antennas: int, n_ongoing_streams: int) -> bool:
    """Whether a transmitter has spare antennas to join the medium at all."""
    return max_concurrent_streams(n_tx_antennas, n_ongoing_streams) > 0


def network_degrees_of_freedom(transmitter_antennas: Iterable[int]) -> int:
    """Total degrees of freedom the network can use at any instant.

    Equals the maximum antenna count among transmitters with traffic (§1):
    n+ keeps adding concurrent streams until that many are in the air.
    """
    antennas = list(transmitter_antennas)
    if not antennas:
        return 0
    return max(antennas)
