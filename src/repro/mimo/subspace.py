"""The "unwanted space" of a receiver and its orthogonal complement.

An N-antenna receiver that wants n streams receives signals in an
N-dimensional space.  It reserves an (N - n)-dimensional *unwanted space*
U for interference and decodes its wanted streams after projecting onto
the complement U-perp (§3.3(a)).  The receiver broadcasts U-perp in its
light-weight CTS so later joiners can align their interference inside U
(Claim 3.4).

The choice of U is constrained by two facts:

* interference that is *already* on the air must lie inside U (otherwise
  the receiver could not be decoding right now), and
* after projecting onto U-perp the wanted streams must remain separable,
  i.e. the projected wanted channel must have rank n.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import DimensionError, PrecodingError
from repro.utils.linalg import (
    orthonormal_basis,
    orthonormal_complement,
    project_out_subspace,
)

__all__ = ["unwanted_space", "decoding_projection", "validate_unwanted_space"]


def unwanted_space(
    n_antennas: int,
    wanted_directions: np.ndarray,
    interference_directions: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Construct the unwanted space U and its complement U-perp.

    Parameters
    ----------
    n_antennas:
        N, the receiver's antenna count.
    wanted_directions:
        ``(N, n)`` matrix whose columns are the effective channel vectors
        of the receiver's wanted streams.
    interference_directions:
        Optional ``(N, k)`` matrix of effective channel vectors of
        interference already on the air (k may be 0).

    Returns
    -------
    (U, U_perp):
        ``U`` has shape ``(N, N - n)`` and ``U_perp`` has shape ``(N, n)``,
        both with orthonormal columns.  When ``n == N`` the unwanted space
        is empty and ``U_perp`` is the identity.

    Raises
    ------
    PrecodingError
        If the existing interference cannot fit inside an
        ``(N - n)``-dimensional space, or the wanted streams would become
        inseparable after the projection.
    """
    wanted = np.asarray(wanted_directions, dtype=complex)
    if wanted.ndim == 1:
        wanted = wanted.reshape(-1, 1)
    if wanted.shape[0] != n_antennas:
        raise DimensionError(
            f"wanted directions live in dimension {wanted.shape[0]}, expected {n_antennas}"
        )
    n_wanted = wanted.shape[1]
    if n_wanted > n_antennas:
        raise PrecodingError(
            f"a receiver with {n_antennas} antennas cannot want {n_wanted} streams"
        )

    if interference_directions is None:
        interference = np.zeros((n_antennas, 0), dtype=complex)
    else:
        interference = np.asarray(interference_directions, dtype=complex)
        if interference.ndim == 1:
            interference = interference.reshape(-1, 1)
        if interference.shape[0] != n_antennas:
            raise DimensionError(
                f"interference directions live in dimension {interference.shape[0]}, "
                f"expected {n_antennas}"
            )

    unwanted_dim = n_antennas - n_wanted
    if n_wanted == n_antennas:
        # No spare dimension: the unwanted space is empty (Claim 3.1 says
        # later joiners must null here).
        return (
            np.zeros((n_antennas, 0), dtype=complex),
            np.eye(n_antennas, dtype=complex),
        )

    interference_basis = orthonormal_basis(interference)
    if interference_basis.shape[1] > unwanted_dim:
        raise PrecodingError(
            f"existing interference occupies {interference_basis.shape[1]} dimensions "
            f"but only {unwanted_dim} can be spared for the unwanted space"
        )

    # Fill the unwanted space up to N - n dimensions with directions that
    # are orthogonal to both the interference and the wanted streams, so
    # the projection keeps as much wanted energy as possible.
    basis_columns = [interference_basis]
    already = np.concatenate([interference_basis, wanted], axis=1)
    extra_needed = unwanted_dim - interference_basis.shape[1]
    if extra_needed > 0:
        candidates = orthonormal_complement(already)
        if candidates.shape[1] < extra_needed:
            # Fall back: complete using directions orthogonal to the
            # interference only (sacrificing some wanted-signal power).
            candidates = orthonormal_complement(interference_basis)
            # Remove any overlap with already chosen interference basis.
        basis_columns.append(candidates[:, :extra_needed])
    unwanted = orthonormal_basis(np.concatenate(basis_columns, axis=1))
    if unwanted.shape[1] != unwanted_dim:
        raise PrecodingError(
            f"could not construct a {unwanted_dim}-dimensional unwanted space "
            f"(got {unwanted.shape[1]} dimensions)"
        )
    u_perp = orthonormal_complement(unwanted)

    # The wanted streams must stay separable after projecting onto U-perp.
    projected = u_perp.conj().T @ wanted
    if np.linalg.matrix_rank(projected, tol=1e-10) < n_wanted:
        raise PrecodingError(
            "wanted streams are not separable after projecting out the unwanted space"
        )
    return unwanted, u_perp


def decoding_projection(unwanted: np.ndarray, n_antennas: int) -> np.ndarray:
    """Return U-perp (the decoding projection) for a given unwanted space."""
    unwanted = np.asarray(unwanted, dtype=complex)
    if unwanted.size == 0:
        return np.eye(n_antennas, dtype=complex)
    if unwanted.shape[0] != n_antennas:
        raise DimensionError(
            f"unwanted space lives in dimension {unwanted.shape[0]}, expected {n_antennas}"
        )
    return orthonormal_complement(unwanted)


def validate_unwanted_space(
    unwanted: np.ndarray,
    interference_directions: np.ndarray,
    tol: float = 1e-6,
) -> bool:
    """Check that all existing interference lies inside the unwanted space."""
    interference = np.asarray(interference_directions, dtype=complex)
    if interference.size == 0:
        return True
    residual = project_out_subspace(interference, unwanted)
    scale = max(float(np.linalg.norm(interference)), 1e-12)
    return float(np.linalg.norm(residual)) <= tol * scale
