"""Multi-dimensional carrier sense (§3.2, Fig. 6).

A node interested in the unused degrees of freedom first learns the
channel vectors of the ongoing transmissions (from their light-weight RTS
preambles), then projects its received samples onto the subspace
orthogonal to those vectors.  In the projected space the ongoing signals
vanish, so ordinary 802.11 carrier sense -- an energy check plus a
preamble cross-correlation -- tells the node whether the *next* degree of
freedom is free or occupied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.exceptions import DimensionError
from repro.phy.preamble import cross_correlate
from repro.utils.db import linear_to_db, signal_power
from repro.utils.linalg import orthonormal_basis, orthonormal_complement

__all__ = ["CarrierSenseResult", "MultiDimensionalCarrierSense"]


@dataclass(frozen=True)
class CarrierSenseResult:
    """Outcome of one carrier-sense measurement.

    Attributes
    ----------
    busy:
        Whether the sensed degree of freedom is occupied.
    power_dbm:
        Signal power after projection, in dB (relative units).
    correlation:
        Peak normalised preamble correlation after projection (0 if no
        template was supplied).
    energy_detected, preamble_detected:
        The two 802.11 carrier-sense components individually.
    """

    busy: bool
    power_dbm: float
    correlation: float
    energy_detected: bool
    preamble_detected: bool


@dataclass
class MultiDimensionalCarrierSense:
    """Carrier sense in the subspace orthogonal to ongoing transmissions.

    Parameters
    ----------
    n_antennas:
        Number of antennas at the sensing node.
    energy_threshold_db:
        Projected power above which the energy detector declares busy.
    correlation_threshold:
        Normalised correlation above which the preamble detector fires.
    """

    n_antennas: int
    energy_threshold_db: float = -20.0
    correlation_threshold: float = 0.6
    _ongoing: List[np.ndarray] = field(default_factory=list, repr=False)

    # -- bookkeeping of ongoing transmissions --------------------------------

    def add_ongoing(self, channel_vectors: np.ndarray) -> None:
        """Register the channel vector(s) of an ongoing transmission.

        ``channel_vectors`` has shape ``(n_antennas,)`` for a single stream
        or ``(n_antennas, k)`` for a k-stream transmission; it is the
        channel from the ongoing transmitter to *this* node, estimated from
        the overheard RTS preamble.
        """
        vectors = np.asarray(channel_vectors, dtype=complex)
        if vectors.ndim == 1:
            vectors = vectors.reshape(-1, 1)
        if vectors.shape[0] != self.n_antennas:
            raise DimensionError(
                f"channel vectors have dimension {vectors.shape[0]}, expected {self.n_antennas}"
            )
        self._ongoing.append(vectors)

    def reset(self) -> None:
        """Forget all ongoing transmissions (the medium went idle)."""
        self._ongoing.clear()

    @property
    def n_ongoing_streams(self) -> int:
        """Number of degrees of freedom currently occupied."""
        if not self._ongoing:
            return 0
        return int(orthonormal_basis(np.concatenate(self._ongoing, axis=1)).shape[1])

    @property
    def remaining_dof(self) -> int:
        """Degrees of freedom this node can still observe after projection."""
        return self.n_antennas - self.n_ongoing_streams

    # -- projection ------------------------------------------------------------

    def projection_basis(self) -> np.ndarray:
        """Orthonormal basis of the subspace orthogonal to ongoing signals."""
        if not self._ongoing:
            return np.eye(self.n_antennas, dtype=complex)
        occupied = np.concatenate(self._ongoing, axis=1)
        return orthonormal_complement(occupied)

    def project(self, samples: np.ndarray) -> np.ndarray:
        """Project received samples onto the interference-free subspace.

        Parameters
        ----------
        samples:
            ``(n_antennas, n_samples)`` received samples (or 1-D for a
            single antenna).

        Returns
        -------
        numpy.ndarray
            ``(remaining_dof, n_samples)`` projected samples.
        """
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim == 1:
            samples = samples.reshape(1, -1)
        if samples.shape[0] != self.n_antennas:
            raise DimensionError(
                f"samples have {samples.shape[0]} rows, expected {self.n_antennas}"
            )
        basis = self.projection_basis()
        return basis.conj().T @ samples

    # -- the two 802.11 carrier-sense components ---------------------------------

    def sense_power_db(self, samples: np.ndarray) -> float:
        """Average projected power in dB."""
        projected = self.project(samples)
        return float(linear_to_db(signal_power(projected)))

    def correlate_preamble(self, samples: np.ndarray, template: np.ndarray) -> float:
        """Peak normalised preamble correlation in the projected space.

        Each projected dimension contains a scaled copy of any new
        transmission, so the correlation is computed per dimension and the
        maximum returned.
        """
        projected = self.project(samples)
        best = 0.0
        for dimension in range(projected.shape[0]):
            values = cross_correlate(projected[dimension], template)
            if values.size:
                best = max(best, float(values.max()))
        return best

    # -- combined decision --------------------------------------------------------

    def sense(
        self,
        samples: np.ndarray,
        preamble_template: Optional[np.ndarray] = None,
    ) -> CarrierSenseResult:
        """Run both carrier-sense components and combine them like 802.11
        (busy if either fires)."""
        power_db = self.sense_power_db(samples)
        energy_detected = power_db > self.energy_threshold_db
        correlation = 0.0
        preamble_detected = False
        if preamble_template is not None:
            correlation = self.correlate_preamble(samples, preamble_template)
            preamble_detected = correlation > self.correlation_threshold
        return CarrierSenseResult(
            busy=bool(energy_detected or preamble_detected),
            power_dbm=power_db,
            correlation=correlation,
            energy_detected=bool(energy_detected),
            preamble_detected=bool(preamble_detected),
        )
