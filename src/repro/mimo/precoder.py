"""The general pre-coding solver (Claim 3.5, Eq. 7).

A transmitter that wants to join ongoing transmissions combines, into one
linear system, the constraints needed to

* protect every receiver of an ongoing stream (nulling where that
  receiver's antennas are all occupied by wanted streams, alignment in its
  unwanted space otherwise), and
* keep its own streams separable at its own receiver(s) -- each stream
  must avoid the decoding subspaces of the transmitter's *other*
  receivers.

With M transmit antennas and K ongoing streams the system has exactly
``M - K`` solutions, one pre-coding vector per new stream (Claim 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DimensionError, PrecodingError
from repro.mimo.alignment import alignment_constraint_rows
from repro.mimo.nulling import nulling_constraint_rows
from repro.utils.linalg import null_space

__all__ = ["ReceiverConstraint", "OwnReceiver", "max_streams", "compute_precoders"]


@dataclass
class ReceiverConstraint:
    """A receiver of an *ongoing* stream that the joiner must not disturb.

    Attributes
    ----------
    channel:
        ``(N, M)`` channel matrix from the joiner's antennas to this
        receiver's antennas (obtained via reciprocity from the receiver's
        light-weight CTS).
    u_perp:
        ``(N, n)`` orthonormal basis of the receiver's decoding subspace,
        as broadcast in its CTS.  ``None`` means the receiver has no
        unwanted space (n = N) and the joiner must null (Claim 3.1).
    """

    channel: np.ndarray
    u_perp: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.channel = np.asarray(self.channel, dtype=complex)
        if self.channel.ndim == 1:
            self.channel = self.channel.reshape(1, -1)
        if self.u_perp is not None:
            self.u_perp = np.asarray(self.u_perp, dtype=complex)
            if self.u_perp.ndim == 1:
                self.u_perp = self.u_perp.reshape(-1, 1)
            if self.u_perp.shape[0] != self.channel.shape[0]:
                raise DimensionError(
                    "U-perp and the channel disagree on the receiver's antenna count: "
                    f"{self.u_perp.shape[0]} vs {self.channel.shape[0]}"
                )

    @property
    def n_rx_antennas(self) -> int:
        """The receiver's antenna count N."""
        return self.channel.shape[0]

    @property
    def is_nulling(self) -> bool:
        """Whether the joiner must null (no unwanted space at this receiver)."""
        return self.u_perp is None or self.u_perp.shape[1] == self.n_rx_antennas

    def constraint_rows(self) -> np.ndarray:
        """The rows this receiver contributes to the joiner's linear system."""
        if self.is_nulling:
            return nulling_constraint_rows(self.channel)
        return alignment_constraint_rows(self.channel, self.u_perp)

    @property
    def n_constraints(self) -> int:
        """Number of constraint rows (= number of protected streams)."""
        return self.constraint_rows().shape[0]


@dataclass
class OwnReceiver:
    """A receiver of the joiner's *own* streams.

    Attributes
    ----------
    channel:
        ``(N, M)`` channel matrix from the joiner to this receiver.
    u_perp:
        ``(N, n)`` decoding subspace of this receiver, where ``n`` is the
        number of streams it will receive from the joiner.  For a receiver
        using all of its antennas, pass the identity.
    n_streams:
        Number of the joiner's streams destined to this receiver.
    """

    channel: np.ndarray
    u_perp: np.ndarray
    n_streams: int

    def __post_init__(self) -> None:
        self.channel = np.asarray(self.channel, dtype=complex)
        if self.channel.ndim == 1:
            self.channel = self.channel.reshape(1, -1)
        self.u_perp = np.asarray(self.u_perp, dtype=complex)
        if self.u_perp.ndim == 1:
            self.u_perp = self.u_perp.reshape(-1, 1)
        if self.u_perp.shape[0] != self.channel.shape[0]:
            raise DimensionError(
                "U-perp and the channel disagree on the receiver's antenna count"
            )
        if self.n_streams < 1:
            raise PrecodingError("an own receiver must take at least one stream")
        if self.n_streams > self.u_perp.shape[1]:
            raise PrecodingError(
                f"receiver's decoding subspace has dimension {self.u_perp.shape[1]} "
                f"but {self.n_streams} streams are destined to it"
            )

    def constraint_rows(self) -> np.ndarray:
        """Rows ``U'_perp^H H'`` of this receiver (Claim 3.5)."""
        return alignment_constraint_rows(self.channel, self.u_perp)


def max_streams(n_tx_antennas: int, ongoing: Sequence[ReceiverConstraint]) -> int:
    """Maximum new streams given the ongoing receivers (Claim 3.2)."""
    total_constraints = sum(r.n_constraints for r in ongoing)
    return max(0, n_tx_antennas - total_constraints)


def _normalize_columns(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=0, keepdims=True)
    return matrix / np.where(norms > 1e-15, norms, 1.0)


def compute_precoders(
    n_tx_antennas: int,
    ongoing: Sequence[ReceiverConstraint],
    own_receivers: Optional[Sequence[OwnReceiver]] = None,
    n_streams: Optional[int] = None,
    normalize: bool = True,
    rcond: float = 1e-10,
) -> List[np.ndarray]:
    """Compute the joiner's pre-coding vectors (Claim 3.5, Eq. 7).

    Parameters
    ----------
    n_tx_antennas:
        M, the joiner's antenna count.
    ongoing:
        Receivers of ongoing streams that must see no new interference.
    own_receivers:
        The joiner's own receivers.  If omitted (or a single receiver with
        no cross-stream separation requirements), the pre-coders are the
        null-space basis of the ongoing constraints.
    n_streams:
        Number of streams to form; defaults to the maximum (``M - K``) when
        ``own_receivers`` is omitted, or to the sum of their ``n_streams``
        otherwise.
    normalize:
        Scale each pre-coder to unit norm (unit per-stream transmit power).
    rcond:
        Rank tolerance for the underlying decompositions.

    Returns
    -------
    list of numpy.ndarray
        One length-``M`` pre-coding vector per stream, ordered first by own
        receiver (in the given order) and then by stream index within the
        receiver.

    Raises
    ------
    PrecodingError
        If the constraints leave no room for the requested streams, or the
        combined system is singular (e.g. channels are not independent).
    """
    ongoing = list(ongoing or [])
    shared_rows = [r.constraint_rows() for r in ongoing]
    for rows in shared_rows:
        if rows.shape[1] != n_tx_antennas:
            raise DimensionError(
                f"an ongoing receiver's channel has {rows.shape[1]} transmit antennas, "
                f"expected {n_tx_antennas}"
            )
    shared = (
        np.concatenate(shared_rows, axis=0)
        if shared_rows
        else np.zeros((0, n_tx_antennas), dtype=complex)
    )
    free_dof = n_tx_antennas - shared.shape[0]
    if free_dof <= 0:
        raise PrecodingError(
            f"the {shared.shape[0]} ongoing streams consume every one of the joiner's "
            f"{n_tx_antennas} antennas; it cannot transmit (Claim 3.2)"
        )

    # --- Simple case: no own-receiver cross constraints --------------------
    if not own_receivers:
        wanted = free_dof if n_streams is None else n_streams
        if wanted > free_dof or wanted < 1:
            raise PrecodingError(
                f"cannot form {wanted} streams with {free_dof} free degrees of freedom"
            )
        basis = null_space(shared, rcond)
        if basis.shape[1] < wanted:
            raise PrecodingError(
                "ongoing constraints are rank deficient; no usable null space"
            )
        precoders = basis[:, :wanted]
        if normalize:
            precoders = _normalize_columns(precoders)
        return [precoders[:, i].copy() for i in range(wanted)]

    # --- General case: Eq. 7 ------------------------------------------------
    own_receivers = list(own_receivers)
    total_own_streams = sum(r.n_streams for r in own_receivers)
    if n_streams is not None and n_streams != total_own_streams:
        raise PrecodingError(
            f"n_streams={n_streams} disagrees with the own receivers' total "
            f"({total_own_streams})"
        )
    if total_own_streams > free_dof:
        raise PrecodingError(
            f"own receivers ask for {total_own_streams} streams but only {free_dof} "
            f"degrees of freedom are free (Claim 3.2)"
        )

    own_rows = [r.constraint_rows() for r in own_receivers]
    own_row_counts = [rows.shape[0] for rows in own_rows]
    matrix = np.concatenate([shared] + own_rows, axis=0)

    # Right-hand side: zeros for the ongoing receivers; for own receivers,
    # stream i destined to receiver j gets a unit entry in one of receiver
    # j's rows and zeros in the rows of the other own receivers, so streams
    # neither disturb ongoing receivers nor each other's receivers.
    total_rows = matrix.shape[0]
    rhs_columns = []
    row_offset = shared.shape[0]
    for receiver_index, receiver in enumerate(own_receivers):
        base = row_offset + sum(own_row_counts[:receiver_index])
        for stream in range(receiver.n_streams):
            column = np.zeros(total_rows, dtype=complex)
            column[base + stream] = 1.0
            rhs_columns.append(column)
    rhs = np.stack(rhs_columns, axis=1)

    if matrix.shape[0] == matrix.shape[1]:
        try:
            solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise PrecodingError(f"the combined constraint matrix is singular: {exc}") from exc
    else:
        solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=rcond)
        # Verify the hard constraints (protecting ongoing receivers) hold.
        if shared.shape[0] and not np.allclose(shared @ solution, 0, atol=1e-8):
            raise PrecodingError(
                "least-squares solution cannot satisfy the nulling/alignment constraints"
            )

    if normalize:
        solution = _normalize_columns(solution)
    return [solution[:, i].copy() for i in range(solution.shape[1])]
