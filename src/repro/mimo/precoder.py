"""The general pre-coding solver (Claim 3.5, Eq. 7).

A transmitter that wants to join ongoing transmissions combines, into one
linear system, the constraints needed to

* protect every receiver of an ongoing stream (nulling where that
  receiver's antennas are all occupied by wanted streams, alignment in its
  unwanted space otherwise), and
* keep its own streams separable at its own receiver(s) -- each stream
  must avoid the decoding subspaces of the transmitter's *other*
  receivers.

With M transmit antennas and K ongoing streams the system has exactly
``M - K`` solutions, one pre-coding vector per new stream (Claim 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DimensionError, PrecodingError
from repro.mimo.alignment import alignment_constraint_rows
from repro.mimo.nulling import nulling_constraint_rows
from repro.utils import guarded
from repro.utils.linalg import null_space, null_space_batch

__all__ = [
    "ReceiverConstraint",
    "OwnReceiver",
    "max_streams",
    "compute_precoders",
    "compute_precoders_batch",
]


@dataclass
class ReceiverConstraint:
    """A receiver of an *ongoing* stream that the joiner must not disturb.

    Attributes
    ----------
    channel:
        ``(N, M)`` channel matrix from the joiner's antennas to this
        receiver's antennas (obtained via reciprocity from the receiver's
        light-weight CTS).
    u_perp:
        ``(N, n)`` orthonormal basis of the receiver's decoding subspace,
        as broadcast in its CTS.  ``None`` means the receiver has no
        unwanted space (n = N) and the joiner must null (Claim 3.1).
    """

    channel: np.ndarray
    u_perp: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.channel = np.asarray(self.channel, dtype=complex)
        if self.channel.ndim == 1:
            self.channel = self.channel.reshape(1, -1)
        if self.u_perp is not None:
            self.u_perp = np.asarray(self.u_perp, dtype=complex)
            if self.u_perp.ndim == 1:
                self.u_perp = self.u_perp.reshape(-1, 1)
            if self.u_perp.shape[0] != self.channel.shape[0]:
                raise DimensionError(
                    "U-perp and the channel disagree on the receiver's antenna count: "
                    f"{self.u_perp.shape[0]} vs {self.channel.shape[0]}"
                )

    @property
    def n_rx_antennas(self) -> int:
        """The receiver's antenna count N."""
        return self.channel.shape[0]

    @property
    def is_nulling(self) -> bool:
        """Whether the joiner must null (no unwanted space at this receiver)."""
        return self.u_perp is None or self.u_perp.shape[1] == self.n_rx_antennas

    def constraint_rows(self) -> np.ndarray:
        """The rows this receiver contributes to the joiner's linear system."""
        if self.is_nulling:
            return nulling_constraint_rows(self.channel)
        return alignment_constraint_rows(self.channel, self.u_perp)

    @property
    def n_constraints(self) -> int:
        """Number of constraint rows (= number of protected streams)."""
        return self.constraint_rows().shape[0]


@dataclass
class OwnReceiver:
    """A receiver of the joiner's *own* streams.

    Attributes
    ----------
    channel:
        ``(N, M)`` channel matrix from the joiner to this receiver.
    u_perp:
        ``(N, n)`` decoding subspace of this receiver, where ``n`` is the
        number of streams it will receive from the joiner.  For a receiver
        using all of its antennas, pass the identity.
    n_streams:
        Number of the joiner's streams destined to this receiver.
    """

    channel: np.ndarray
    u_perp: np.ndarray
    n_streams: int

    def __post_init__(self) -> None:
        self.channel = np.asarray(self.channel, dtype=complex)
        if self.channel.ndim == 1:
            self.channel = self.channel.reshape(1, -1)
        self.u_perp = np.asarray(self.u_perp, dtype=complex)
        if self.u_perp.ndim == 1:
            self.u_perp = self.u_perp.reshape(-1, 1)
        if self.u_perp.shape[0] != self.channel.shape[0]:
            raise DimensionError(
                "U-perp and the channel disagree on the receiver's antenna count"
            )
        if self.n_streams < 1:
            raise PrecodingError("an own receiver must take at least one stream")
        if self.n_streams > self.u_perp.shape[1]:
            raise PrecodingError(
                f"receiver's decoding subspace has dimension {self.u_perp.shape[1]} "
                f"but {self.n_streams} streams are destined to it"
            )

    def constraint_rows(self) -> np.ndarray:
        """Rows ``U'_perp^H H'`` of this receiver (Claim 3.5)."""
        return alignment_constraint_rows(self.channel, self.u_perp)


def max_streams(n_tx_antennas: int, ongoing: Sequence[ReceiverConstraint]) -> int:
    """Maximum new streams given the ongoing receivers (Claim 3.2)."""
    total_constraints = sum(r.n_constraints for r in ongoing)
    return max(0, n_tx_antennas - total_constraints)


def _normalize_columns(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=0, keepdims=True)
    return matrix / np.where(norms > 1e-15, norms, 1.0)


def compute_precoders(
    n_tx_antennas: int,
    ongoing: Sequence[ReceiverConstraint],
    own_receivers: Optional[Sequence[OwnReceiver]] = None,
    n_streams: Optional[int] = None,
    normalize: bool = True,
    rcond: float = 1e-10,
) -> List[np.ndarray]:
    """Compute the joiner's pre-coding vectors (Claim 3.5, Eq. 7).

    Parameters
    ----------
    n_tx_antennas:
        M, the joiner's antenna count.
    ongoing:
        Receivers of ongoing streams that must see no new interference.
    own_receivers:
        The joiner's own receivers.  If omitted (or a single receiver with
        no cross-stream separation requirements), the pre-coders are the
        null-space basis of the ongoing constraints.
    n_streams:
        Number of streams to form; defaults to the maximum (``M - K``) when
        ``own_receivers`` is omitted, or to the sum of their ``n_streams``
        otherwise.
    normalize:
        Scale each pre-coder to unit norm (unit per-stream transmit power).
    rcond:
        Rank tolerance for the underlying decompositions.

    Returns
    -------
    list of numpy.ndarray
        One length-``M`` pre-coding vector per stream, ordered first by own
        receiver (in the given order) and then by stream index within the
        receiver.

    Raises
    ------
    PrecodingError
        If the constraints leave no room for the requested streams, or the
        combined system is singular (e.g. channels are not independent).
    """
    ongoing = list(ongoing or [])
    shared_rows = [r.constraint_rows() for r in ongoing]
    for rows in shared_rows:
        if rows.shape[1] != n_tx_antennas:
            raise DimensionError(
                f"an ongoing receiver's channel has {rows.shape[1]} transmit antennas, "
                f"expected {n_tx_antennas}"
            )
    shared = (
        np.concatenate(shared_rows, axis=0)
        if shared_rows
        else np.zeros((0, n_tx_antennas), dtype=complex)
    )
    free_dof = n_tx_antennas - shared.shape[0]
    if free_dof <= 0:
        raise PrecodingError(
            f"the {shared.shape[0]} ongoing streams consume every one of the joiner's "
            f"{n_tx_antennas} antennas; it cannot transmit (Claim 3.2)"
        )

    # --- Simple case: no own-receiver cross constraints --------------------
    if not own_receivers:
        wanted = free_dof if n_streams is None else n_streams
        if wanted > free_dof or wanted < 1:
            raise PrecodingError(
                f"cannot form {wanted} streams with {free_dof} free degrees of freedom"
            )
        basis = null_space(shared, rcond)
        if basis.shape[1] < wanted:
            raise PrecodingError(
                "ongoing constraints are rank deficient; no usable null space"
            )
        precoders = basis[:, :wanted]
        if normalize:
            precoders = _normalize_columns(precoders)
        return [precoders[:, i].copy() for i in range(wanted)]

    # --- General case: Eq. 7 ------------------------------------------------
    own_receivers = list(own_receivers)
    total_own_streams = sum(r.n_streams for r in own_receivers)
    if n_streams is not None and n_streams != total_own_streams:
        raise PrecodingError(
            f"n_streams={n_streams} disagrees with the own receivers' total "
            f"({total_own_streams})"
        )
    if total_own_streams > free_dof:
        raise PrecodingError(
            f"own receivers ask for {total_own_streams} streams but only {free_dof} "
            f"degrees of freedom are free (Claim 3.2)"
        )

    own_rows = [r.constraint_rows() for r in own_receivers]
    own_row_counts = [rows.shape[0] for rows in own_rows]
    matrix = np.concatenate([shared] + own_rows, axis=0)

    # Right-hand side: zeros for the ongoing receivers; for own receivers,
    # stream i destined to receiver j gets a unit entry in one of receiver
    # j's rows and zeros in the rows of the other own receivers, so streams
    # neither disturb ongoing receivers nor each other's receivers.
    total_rows = matrix.shape[0]
    rhs_columns = []
    row_offset = shared.shape[0]
    for receiver_index, receiver in enumerate(own_receivers):
        base = row_offset + sum(own_row_counts[:receiver_index])
        for stream in range(receiver.n_streams):
            column = np.zeros(total_rows, dtype=complex)
            column[base + stream] = 1.0
            rhs_columns.append(column)
    rhs = np.stack(rhs_columns, axis=1)

    if matrix.shape[0] == matrix.shape[1]:
        try:
            solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise PrecodingError(f"the combined constraint matrix is singular: {exc}") from exc
    else:
        solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=rcond)
        # Verify the hard constraints (protecting ongoing receivers) hold.
        if shared.shape[0] and not np.allclose(shared @ solution, 0, atol=1e-8):
            raise PrecodingError(
                "least-squares solution cannot satisfy the nulling/alignment constraints"
            )

    if normalize:
        solution = _normalize_columns(solution)
    return [solution[:, i].copy() for i in range(solution.shape[1])]


def _normalize_columns_batch(matrices: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrices, axis=1, keepdims=True)
    return matrices / np.where(norms > 1e-15, norms, 1.0)


def compute_precoders_batch(
    n_tx_antennas: int,
    ongoing_rows: np.ndarray,
    own_rows: Optional[np.ndarray] = None,
    own_stream_counts: Optional[Sequence[int]] = None,
    own_row_counts: Optional[Sequence[int]] = None,
    n_streams: Optional[int] = None,
    normalize: bool = True,
    rcond: float = 1e-10,
) -> np.ndarray:
    """Batched version of :func:`compute_precoders` over all subcarriers.

    Instead of per-subcarrier :class:`ReceiverConstraint`/:class:`OwnReceiver`
    objects, the caller passes the constraint rows of *all* subcarriers as
    stacked arrays; the whole per-subcarrier linear algebra then runs as a
    handful of batched ``np.linalg`` calls.

    Parameters
    ----------
    n_tx_antennas:
        M, the joiner's antenna count.
    ongoing_rows:
        ``(n_sub, K, M)`` stacked nulling/alignment constraint rows of the
        ongoing receivers (``K`` may be zero).
    own_rows:
        ``(n_sub, T, M)`` stacked constraint rows ``U'_perp^H H'`` of the
        joiner's own receivers, concatenated in receiver order, or ``None``
        when there are no own-receiver cross constraints.
    own_stream_counts:
        Streams destined to each own receiver (required with ``own_rows``).
    own_row_counts:
        Constraint rows contributed by each own receiver (required with
        ``own_rows``); ``sum(own_row_counts)`` must equal ``T``.
    n_streams:
        As in :func:`compute_precoders`.
    normalize:
        Scale each pre-coder to unit norm.
    rcond:
        Rank tolerance for the underlying decompositions.

    Returns
    -------
    numpy.ndarray
        ``(n_sub, n_streams, M)``: per subcarrier, the same pre-coding
        vectors :func:`compute_precoders` returns (in the same order).
    """
    shared = np.asarray(ongoing_rows, dtype=complex)
    if shared.ndim != 3:
        raise DimensionError(f"ongoing rows must have shape (n_sub, K, M), got {shared.shape}")
    if shared.shape[2] != n_tx_antennas:
        raise DimensionError(
            f"an ongoing receiver's channel has {shared.shape[2]} transmit antennas, "
            f"expected {n_tx_antennas}"
        )
    n_sub, n_shared, _ = shared.shape
    free_dof = n_tx_antennas - n_shared
    if free_dof <= 0:
        raise PrecodingError(
            f"the {n_shared} ongoing streams consume every one of the joiner's "
            f"{n_tx_antennas} antennas; it cannot transmit (Claim 3.2)"
        )

    # --- Simple case: no own-receiver cross constraints --------------------
    if own_rows is None:
        wanted = free_dof if n_streams is None else n_streams
        if wanted > free_dof or wanted < 1:
            raise PrecodingError(
                f"cannot form {wanted} streams with {free_dof} free degrees of freedom"
            )
        try:
            basis = null_space_batch(shared, wanted, rcond)  # (n_sub, M, wanted)
        except DimensionError as exc:
            raise PrecodingError(
                "ongoing constraints are rank deficient; no usable null space"
            ) from exc
        if normalize:
            basis = _normalize_columns_batch(basis)
        return basis.transpose(0, 2, 1)

    # --- General case: Eq. 7 ------------------------------------------------
    own = np.asarray(own_rows, dtype=complex)
    if own.ndim != 3 or own.shape[0] != n_sub or own.shape[2] != n_tx_antennas:
        raise DimensionError(
            f"own rows must have shape ({n_sub}, T, {n_tx_antennas}), got {own.shape}"
        )
    if own_stream_counts is None or own_row_counts is None:
        raise DimensionError("own_stream_counts and own_row_counts are required with own_rows")
    own_row_counts = list(own_row_counts)
    own_stream_counts = list(own_stream_counts)
    if sum(own_row_counts) != own.shape[1]:
        raise DimensionError("own_row_counts do not sum to the own-row count")
    for count, rows_count in zip(own_stream_counts, own_row_counts):
        if count < 1:
            raise PrecodingError("an own receiver must take at least one stream")
        if count > rows_count:
            raise PrecodingError(
                f"receiver's decoding subspace has dimension {rows_count} "
                f"but {count} streams are destined to it"
            )
    total_own_streams = sum(own_stream_counts)
    if n_streams is not None and n_streams != total_own_streams:
        raise PrecodingError(
            f"n_streams={n_streams} disagrees with the own receivers' total "
            f"({total_own_streams})"
        )
    if total_own_streams > free_dof:
        raise PrecodingError(
            f"own receivers ask for {total_own_streams} streams but only {free_dof} "
            f"degrees of freedom are free (Claim 3.2)"
        )

    matrix = np.concatenate([shared, own], axis=1)  # (n_sub, T_total, M)
    total_rows = matrix.shape[1]

    # Right-hand side (identical on every subcarrier): zeros for the ongoing
    # receivers; stream i of own receiver j gets a unit entry in one of
    # receiver j's rows.
    rhs = np.zeros((total_rows, total_own_streams), dtype=complex)
    column = 0
    row_offset = n_shared
    for receiver_index, count in enumerate(own_stream_counts):
        base = row_offset + sum(own_row_counts[:receiver_index])
        for stream in range(count):
            rhs[base + stream, column] = 1.0
            column += 1

    rhs_stack = np.broadcast_to(rhs, (n_sub,) + rhs.shape)
    if total_rows == n_tx_antennas:
        if guarded.guards_enabled():
            # A singular/ill-conditioned/NaN-poisoned system falls back to
            # the pinned-rcond pseudo-inverse instead of killing the run;
            # the degradation note drives link quarantine at the MAC layer.
            solution, degraded = guarded.solve_stack(matrix, rhs_stack)
            if degraded and n_shared and not np.allclose(shared @ solution, 0, atol=1e-8):
                raise PrecodingError(
                    "degenerate constraint matrix: the guarded fallback cannot "
                    "satisfy the nulling/alignment constraints"
                )
        else:
            try:
                solution = np.linalg.solve(matrix, rhs_stack)
            except np.linalg.LinAlgError as exc:
                raise PrecodingError(
                    f"the combined constraint matrix is singular: {exc}"
                ) from exc
    else:
        if guarded.guards_enabled():
            pinv, _ = guarded.pinv_stack(matrix, rcond=rcond)
            solution = pinv @ rhs
        else:
            solution = np.linalg.pinv(matrix, rcond=rcond) @ rhs
        # Verify the hard constraints (protecting ongoing receivers) hold.
        if n_shared and not np.allclose(shared @ solution, 0, atol=1e-8):
            raise PrecodingError(
                "least-squares solution cannot satisfy the nulling/alignment constraints"
            )

    if normalize:
        solution = _normalize_columns_batch(solution)
    return solution.transpose(0, 2, 1)
