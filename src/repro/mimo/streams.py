"""Bookkeeping dataclasses describing the streams currently on the air.

These records are the "shared state" that n+ nodes reconstruct purely by
overhearing light-weight RTS/CTS headers: who is transmitting, to whom,
how many streams, which decoding subspace each receiver announced, and
when the transmission ends.  Both the MAC protocols and the
link-abstraction simulator consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import MediumAccessError

__all__ = ["ActiveStream", "OngoingTransmission", "MediumState"]


@dataclass
class ActiveStream:
    """One spatial stream currently on the air.

    Attributes
    ----------
    stream_id:
        Globally unique identifier of the stream.
    transmitter_id, receiver_id:
        Node identifiers.
    mcs_index:
        Bitrate of the stream.
    precoder:
        Pre-coding vector(s) used by the transmitter: shape ``(M,)`` or
        ``(n_subcarriers, M)``.
    """

    stream_id: int
    transmitter_id: int
    receiver_id: int
    mcs_index: int
    precoder: Optional[np.ndarray] = None


@dataclass
class OngoingTransmission:
    """A transmission (one or more streams from one transmitter).

    Attributes
    ----------
    transmitter_id:
        The transmitting node.
    streams:
        The streams of this transmission.
    start_us, end_us:
        Transmission boundaries in simulation time (microseconds).
    uses_protection:
        Whether the transmitter joined via nulling/alignment (i.e. it is
        not the first contention winner).
    """

    transmitter_id: int
    streams: List[ActiveStream]
    start_us: float
    end_us: float
    uses_protection: bool = False

    @property
    def n_streams(self) -> int:
        """Number of spatial streams in this transmission."""
        return len(self.streams)

    @property
    def receiver_ids(self) -> List[int]:
        """All receivers of this transmission (in stream order, deduplicated)."""
        seen: List[int] = []
        for stream in self.streams:
            if stream.receiver_id not in seen:
                seen.append(stream.receiver_id)
        return seen


@dataclass
class MediumState:
    """What a node knows about the medium from overheard headers.

    The state tracks ongoing transmissions and per-receiver decoding
    subspaces (U-perp), which is everything a joiner needs to compute its
    pre-coders and everything a carrier-sensing node needs to project.
    """

    transmissions: List[OngoingTransmission] = field(default_factory=list)
    receiver_subspaces: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_used_dof(self) -> int:
        """Number of degrees of freedom currently in use (= ongoing streams)."""
        return sum(t.n_streams for t in self.transmissions)

    @property
    def busy(self) -> bool:
        """Whether any transmission is on the air."""
        return bool(self.transmissions)

    @property
    def end_of_current_transmissions_us(self) -> float:
        """When the current joint transmission ends (0 if idle).

        n+ forces joiners to end with the first winner, so in a correct run
        all ongoing transmissions share (approximately) the same end time;
        we return the latest.
        """
        if not self.transmissions:
            return 0.0
        return max(t.end_us for t in self.transmissions)

    def protected_receivers(self) -> List[int]:
        """Receivers a joiner must protect (all receivers of ongoing streams)."""
        receivers: List[int] = []
        for transmission in self.transmissions:
            for receiver in transmission.receiver_ids:
                if receiver not in receivers:
                    receivers.append(receiver)
        return receivers

    def streams_for_receiver(self, receiver_id: int) -> List[ActiveStream]:
        """Ongoing streams destined to ``receiver_id``."""
        out = []
        for transmission in self.transmissions:
            out.extend(s for s in transmission.streams if s.receiver_id == receiver_id)
        return out

    def add(self, transmission: OngoingTransmission) -> None:
        """Record a new transmission."""
        self.transmissions.append(transmission)

    def remove_transmitter(self, transmitter_id: int) -> None:
        """Remove the transmission of a given transmitter (it ended)."""
        before = len(self.transmissions)
        self.transmissions = [
            t for t in self.transmissions if t.transmitter_id != transmitter_id
        ]
        if len(self.transmissions) == before:
            raise MediumAccessError(
                f"no ongoing transmission from node {transmitter_id} to remove"
            )

    def clear(self) -> None:
        """The medium went idle."""
        self.transmissions.clear()
        self.receiver_subspaces.clear()
