"""Physical-layer and MAC-layer constants used throughout the library.

The values mirror the configuration used in the paper's USRP2 testbed
(10 MHz channels, 802.11a/g-style OFDM numerology) and the 802.11 MAC
timing parameters.  All times are expressed in microseconds unless the
name says otherwise, and all powers in dB / dBm as indicated.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# OFDM numerology (802.11a/g style, as used by the GNURadio OFDM code base)
# ---------------------------------------------------------------------------

#: Total number of OFDM subcarriers (FFT size).
NUM_SUBCARRIERS = 64

#: Number of subcarriers that carry data symbols.
NUM_DATA_SUBCARRIERS = 48

#: Number of pilot subcarriers.
NUM_PILOT_SUBCARRIERS = 4

#: Cyclic-prefix length in samples (1/4 of the FFT size).
CYCLIC_PREFIX_LENGTH = 16

#: Samples per complete OFDM symbol (FFT + cyclic prefix).
SAMPLES_PER_OFDM_SYMBOL = NUM_SUBCARRIERS + CYCLIC_PREFIX_LENGTH

#: Indices (FFT bins, 0..63) of the pilot subcarriers, as in 802.11a.
PILOT_SUBCARRIER_INDICES = (11, 25, 39, 53)

#: Indices of the null subcarriers: DC plus the guard band at the edges.
NULL_SUBCARRIER_INDICES = tuple([0] + list(range(27, 38)))

#: Channel bandwidth of the paper's USRP2 testbed, in Hz.
TESTBED_BANDWIDTH_HZ = 10e6

#: Channel bandwidth of a standard 802.11 channel, in Hz.
DOT11_BANDWIDTH_HZ = 20e6

#: OFDM symbol duration on a 10 MHz channel, in microseconds.
#: 80 samples at 10 Msps = 8 us (twice the 802.11a/20 MHz duration).
OFDM_SYMBOL_DURATION_US_10MHZ = SAMPLES_PER_OFDM_SYMBOL / (TESTBED_BANDWIDTH_HZ / 1e6)

#: OFDM symbol duration on a 20 MHz channel, in microseconds.
OFDM_SYMBOL_DURATION_US_20MHZ = SAMPLES_PER_OFDM_SYMBOL / (DOT11_BANDWIDTH_HZ / 1e6)

# ---------------------------------------------------------------------------
# Preamble structure (802.11 short + long training fields)
# ---------------------------------------------------------------------------

#: Number of repetitions of the short training symbol.
NUM_SHORT_TRAINING_REPEATS = 10

#: Samples in one short training symbol (16 at 64-point numerology).
SHORT_TRAINING_SYMBOL_LENGTH = 16

#: Number of long training symbols per transmit antenna.
NUM_LONG_TRAINING_SYMBOLS = 2

# ---------------------------------------------------------------------------
# MAC timing (802.11a OFDM PHY values)
# ---------------------------------------------------------------------------

#: Short inter-frame space, microseconds.
SIFS_US = 16.0

#: Slot time, microseconds.
SLOT_TIME_US = 9.0

#: DCF inter-frame space = SIFS + 2 * slot.
DIFS_US = SIFS_US + 2 * SLOT_TIME_US

#: Minimum contention window (number of slots).
CW_MIN = 15

#: Maximum contention window (number of slots).
CW_MAX = 1023

#: Maximum number of retransmission attempts before a frame is dropped.
MAX_RETRIES = 7

#: Default dimensions of the k-of-n erasure code used by the ``erasure``
#: recovery mode (see repro.mac.variants): a coded burst is carried as
#: ``n`` fragments of which any ``k`` reconstruct the payload, so a burst
#: survives a loss episode unless more than ``n - k`` fragments are lost.
DEFAULT_ERASURE_K = 5
DEFAULT_ERASURE_N = 8

#: Default MAC payload size used throughout the paper's evaluation, bytes.
DEFAULT_PACKET_SIZE_BYTES = 1500

#: PHY/MAC header overhead expressed in OFDM symbols (PLCP-style header).
HEADER_OFDM_SYMBOLS = 5

#: Extra OFDM symbols appended to an n+ ACK header: three symbols for the
#: differentially-encoded alignment space plus one for bitrate and CRC (§3.5).
NPLUS_ACK_HEADER_EXTRA_SYMBOLS = 4

#: Extra OFDM symbols appended to an n+ data header (§3.5).
NPLUS_DATA_HEADER_EXTRA_SYMBOLS = 1

# ---------------------------------------------------------------------------
# Interference-nulling / alignment hardware limits (§4 of the paper)
# ---------------------------------------------------------------------------

#: Maximum interference power (dB above the noise floor) that a joiner may
#: present at an ongoing receiver.  Above this, the joiner lowers its transmit
#: power before contending (§4, "Imperfections in Nulling and Alignment").
INTERFERENCE_ADMISSION_THRESHOLD_DB = 27.0

#: Average reduction in interference power achievable by nulling in practice.
NULLING_SUPPRESSION_DB = 27.0

#: Average reduction in interference power achievable by alignment in
#: practice.  Alignment is slightly less accurate because it additionally
#: relies on the receiver's estimate of its unwanted subspace (§6.2).
ALIGNMENT_SUPPRESSION_DB = 25.0

#: Thermal noise floor used by the testbed model, in dBm (10 MHz channel).
NOISE_FLOOR_DBM = -94.0

#: Maximum transmit power per node, dBm (FCC-style single-transmitter cap).
MAX_TX_POWER_DBM = 20.0

# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------

#: Speed of light, m/s, used by the path-loss model.
SPEED_OF_LIGHT = 299_792_458.0

#: Carrier frequency of the RFX2400 daughterboards, Hz.
CARRIER_FREQUENCY_HZ = 2.4e9

#: Maximum antennas per node considered in the paper's evaluation.
MAX_ANTENNAS = 4
