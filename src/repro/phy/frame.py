"""PHY frame headers and bit-level serialization.

The light-weight handshake of n+ (§3.5) splits a frame into a *header*
(transmitted first, at a robust rate) and a *body*.  The header carries
everything a contender for the remaining degrees of freedom needs:

* a preamble (for channel estimation via reciprocity),
* the frame duration (packet length + bitrate),
* the number of antennas / streams used,
* sender and receiver addresses,
* for ACK headers: the chosen bitrate and the alignment space
  (differentially encoded across OFDM subcarriers).

This module defines the header structure and its serialization to bits;
the MAC-layer view of the same information lives in
:mod:`repro.mac.frames`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.exceptions import DecodingError
from repro.utils.bits import append_crc32, bits_to_int, check_crc32, int_to_bits

__all__ = ["FrameType", "PhyHeader", "PHY_HEADER_BITS"]


class FrameType(IntEnum):
    """Frame types distinguished by the PHY header."""

    DATA_HEADER = 0
    ACK_HEADER = 1
    DATA_BODY = 2
    ACK_BODY = 3


#: Field widths, in bits, of the serialized PHY header (excluding CRC).
_FIELD_WIDTHS = {
    "frame_type": 2,
    "source": 16,
    "destination": 16,
    "length_bytes": 16,
    "mcs_index": 4,
    "n_antennas": 3,
    "n_streams": 3,
    "duration_us": 20,
}

#: Total serialized header size in bits, including the CRC-32.
PHY_HEADER_BITS = sum(_FIELD_WIDTHS.values()) + 32


@dataclass(frozen=True)
class PhyHeader:
    """The information carried by a light-weight header.

    Attributes
    ----------
    frame_type:
        Data header, ACK header, or body marker.
    source, destination:
        16-bit node identifiers (stand-ins for MAC addresses).
    length_bytes:
        Length of the frame body this header announces.
    mcs_index:
        Bitrate index used for the body.
    n_antennas:
        Number of antennas at the transmitter.
    n_streams:
        Number of spatial streams the transmission will use.
    duration_us:
        Duration of the upcoming body transmission, microseconds (rounded).
    """

    frame_type: FrameType
    source: int
    destination: int
    length_bytes: int
    mcs_index: int
    n_antennas: int
    n_streams: int
    duration_us: int

    def to_bits(self) -> np.ndarray:
        """Serialize the header to bits with a trailing CRC-32."""
        pieces = []
        for name, width in _FIELD_WIDTHS.items():
            value = int(getattr(self, name))
            pieces.append(int_to_bits(value, width))
        bits = np.concatenate(pieces)
        return append_crc32(bits)

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "PhyHeader":
        """Parse a header from bits, verifying the CRC-32."""
        bits = np.asarray(bits, dtype=np.int8)
        if bits.size != PHY_HEADER_BITS:
            raise DecodingError(
                f"PHY header must be {PHY_HEADER_BITS} bits, got {bits.size}"
            )
        if not check_crc32(bits):
            raise DecodingError("PHY header CRC check failed")
        payload = bits[:-32]
        values = {}
        cursor = 0
        for name, width in _FIELD_WIDTHS.items():
            values[name] = bits_to_int(payload[cursor : cursor + width])
            cursor += width
        values["frame_type"] = FrameType(values["frame_type"])
        return cls(**values)
