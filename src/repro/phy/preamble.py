"""802.11-style training fields and preamble correlation.

Every frame begins with a short training field (STF) used for packet
detection, AGC and coarse frequency-offset estimation, followed by long
training fields (LTF) used for channel estimation.  For a MIMO
transmitter the LTFs of different antennas are time-orthogonal: antenna
``i`` transmits its LTF in slot ``i`` while all other antennas are silent,
which lets every receiver estimate the full channel matrix.

Carrier sense in n+ cross-correlates the received samples against the STF
(§6.1): the same correlation is computed after projecting away ongoing
transmissions for multi-dimensional carrier sense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.constants import (
    NUM_LONG_TRAINING_SYMBOLS,
    NUM_SHORT_TRAINING_REPEATS,
    SHORT_TRAINING_SYMBOL_LENGTH,
)
from repro.exceptions import DimensionError
from repro.phy.ofdm import OfdmConfig, OfdmModem

__all__ = [
    "short_training_field",
    "long_training_symbol",
    "long_training_field",
    "mimo_preamble",
    "Preamble",
    "cross_correlate",
    "correlation_peak",
]

# Frequency-domain definition of the 802.11a short training symbol: energy
# on every fourth subcarrier with the standard QPSK-like values.
_STS_CARRIERS = {
    4: (1 + 1j), 8: (-1 - 1j), 12: (1 + 1j), 16: (-1 - 1j), 20: (-1 - 1j), 24: (1 + 1j),
    -4: (-1 - 1j), -8: (-1 - 1j), -12: (1 + 1j), -16: (1 + 1j), -20: (1 + 1j), -24: (1 + 1j),
}

# Frequency-domain definition of the 802.11a long training symbol (bins -26..26).
_LTS_SEQUENCE = np.array(
    [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
     0,
     1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1],
    dtype=float,
)


def _frequency_grid_from_sequence(config: OfdmConfig) -> np.ndarray:
    """Place the LTS sequence (bins -26..26) on the FFT grid."""
    grid = np.zeros(config.fft_size, dtype=complex)
    bins = list(range(-26, 27))
    for value, b in zip(_LTS_SEQUENCE, bins):
        grid[b % config.fft_size] = value
    return grid


def short_training_field(
    config: OfdmConfig | None = None,
    n_repeats: int = NUM_SHORT_TRAINING_REPEATS,
) -> np.ndarray:
    """Return the time-domain short training field (default 10 repeats of a
    16-sample symbol)."""
    config = config or OfdmConfig()
    grid = np.zeros(config.fft_size, dtype=complex)
    scale = np.sqrt(13.0 / 6.0)
    for bin_index, value in _STS_CARRIERS.items():
        grid[bin_index % config.fft_size] = scale * value
    full = np.fft.ifft(grid) * np.sqrt(config.fft_size)
    one_symbol = full[:SHORT_TRAINING_SYMBOL_LENGTH]
    return np.tile(one_symbol, n_repeats)


def long_training_symbol(config: OfdmConfig | None = None) -> np.ndarray:
    """Return one time-domain long training symbol (with cyclic prefix)."""
    config = config or OfdmConfig()
    grid = _frequency_grid_from_sequence(config)
    modem = OfdmModem(config)
    return modem.modulate_grid(grid.reshape(1, -1))


def long_training_field(
    config: OfdmConfig | None = None,
    n_symbols: int = NUM_LONG_TRAINING_SYMBOLS,
) -> np.ndarray:
    """Return ``n_symbols`` long training symbols back to back."""
    one = long_training_symbol(config)
    return np.tile(one, n_symbols)


def ltf_frequency_sequence(config: OfdmConfig | None = None) -> np.ndarray:
    """Return the known frequency-domain LTF values on the full FFT grid."""
    config = config or OfdmConfig()
    return _frequency_grid_from_sequence(config)


@dataclass
class Preamble:
    """A MIMO preamble: a shared STF plus per-antenna time-orthogonal LTFs.

    Attributes
    ----------
    n_antennas:
        Number of transmit antennas (= number of LTF slots).
    config:
        OFDM numerology.
    """

    n_antennas: int
    config: OfdmConfig = field(default_factory=OfdmConfig)

    def __post_init__(self) -> None:
        if self.n_antennas < 1:
            raise DimensionError("a preamble needs at least one antenna")

    @property
    def stf(self) -> np.ndarray:
        """The shared short training field samples."""
        return short_training_field(self.config)

    @property
    def ltf_slot_length(self) -> int:
        """Samples per LTF slot."""
        return NUM_LONG_TRAINING_SYMBOLS * self.config.samples_per_symbol

    @property
    def length(self) -> int:
        """Total preamble length in samples."""
        return len(self.stf) + self.n_antennas * self.ltf_slot_length

    def per_antenna_samples(self) -> np.ndarray:
        """Return the preamble samples for each antenna.

        Returns
        -------
        numpy.ndarray
            Shape ``(n_antennas, length)``.  Antenna ``i`` transmits the
            STF (scaled so the sum over antennas keeps unit power) followed
            by its LTF in slot ``i`` and silence in the other slots.
        """
        stf = self.stf
        ltf = long_training_field(self.config)
        slot = self.ltf_slot_length
        samples = np.zeros((self.n_antennas, self.length), dtype=complex)
        stf_scale = 1.0 / np.sqrt(self.n_antennas)
        for antenna in range(self.n_antennas):
            samples[antenna, : len(stf)] = stf * stf_scale
            start = len(stf) + antenna * slot
            samples[antenna, start : start + slot] = ltf
        return samples

    def ltf_slot_bounds(self, antenna: int) -> tuple:
        """Return (start, end) sample indices of antenna ``antenna``'s LTF."""
        if not 0 <= antenna < self.n_antennas:
            raise DimensionError(f"antenna index {antenna} out of range")
        start = len(self.stf) + antenna * self.ltf_slot_length
        return start, start + self.ltf_slot_length


def mimo_preamble(n_antennas: int, config: OfdmConfig | None = None) -> Preamble:
    """Convenience constructor for :class:`Preamble`."""
    return Preamble(n_antennas=n_antennas, config=config or OfdmConfig())


# ---------------------------------------------------------------------------
# Correlation-based detection
# ---------------------------------------------------------------------------

def cross_correlate(samples: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Normalised cross-correlation of ``samples`` against ``template``.

    Returns an array of correlation magnitudes in [0, 1], one per alignment
    of the template within the samples.  This is the metric 802.11 carrier
    sense uses to detect a preamble, and the metric plotted in Fig. 9(b).
    """
    samples = np.asarray(samples, dtype=complex).reshape(-1)
    template = np.asarray(template, dtype=complex).reshape(-1)
    if template.size == 0:
        raise DimensionError("template must be non-empty")
    if samples.size < template.size:
        return np.zeros(0)
    n = samples.size - template.size + 1
    template_norm = np.linalg.norm(template)
    out = np.empty(n)
    # Sliding windows over the received samples.
    windows = np.lib.stride_tricks.sliding_window_view(samples, template.size)
    dots = windows @ np.conj(template)
    window_norms = np.linalg.norm(windows, axis=1)
    denom = window_norms * template_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.abs(dots) / np.where(denom > 0, denom, np.inf)
    return out


def correlation_peak(samples: np.ndarray, template: np.ndarray) -> float:
    """Return the maximum normalised correlation of the template."""
    values = cross_correlate(samples, template)
    return float(values.max()) if values.size else 0.0
