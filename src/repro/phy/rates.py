"""The 802.11 modulation-and-coding-scheme (MCS) table.

The paper's prototype runs the 802.11a/g rate set on a 10 MHz channel, so
every data rate is half of the nominal 20 MHz value (an OFDM symbol lasts
8 us instead of 4 us).  The same table drives both the n+ and the
802.11n-baseline simulations; a node transmitting ``k`` spatial streams
gets ``k`` times the per-stream rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.constants import (
    NUM_DATA_SUBCARRIERS,
    OFDM_SYMBOL_DURATION_US_10MHZ,
    OFDM_SYMBOL_DURATION_US_20MHZ,
)
from repro.exceptions import ConfigurationError
from repro.phy.modulation import Modulation, get_modulation

__all__ = ["MCS", "MCS_TABLE", "mcs_by_index", "data_rate_mbps", "lowest_mcs", "highest_mcs"]


@dataclass(frozen=True)
class MCS:
    """A modulation-and-coding scheme.

    Attributes
    ----------
    index:
        Position in the rate table (0 = most robust).
    modulation_name:
        One of ``bpsk``, ``qpsk``, ``16qam``, ``64qam``.
    coding_rate:
        Convolutional code rate as a fraction (numerator, denominator).
    min_esnr_db:
        Minimum effective SNR at which the scheme delivers packets with
        high probability (from the ESNR-rate mapping of Halperin et al.,
        which n+ uses for bitrate selection).
    """

    index: int
    modulation_name: str
    coding_rate: Tuple[int, int]
    min_esnr_db: float

    @property
    def modulation(self) -> Modulation:
        """The :class:`~repro.phy.modulation.Modulation` object."""
        return get_modulation(self.modulation_name)

    @property
    def coding_rate_fraction(self) -> float:
        """Coding rate as a float (e.g. 0.75 for rate 3/4)."""
        num, den = self.coding_rate
        return num / den

    @property
    def coded_bits_per_ofdm_symbol(self) -> int:
        """Coded bits carried by one OFDM symbol of one spatial stream."""
        return self.modulation.bits_per_symbol * NUM_DATA_SUBCARRIERS

    @property
    def data_bits_per_ofdm_symbol(self) -> float:
        """Information bits carried by one OFDM symbol of one spatial stream."""
        return self.coded_bits_per_ofdm_symbol * self.coding_rate_fraction

    def data_rate_mbps(self, bandwidth_mhz: float = 10.0, n_streams: int = 1) -> float:
        """Data rate in Mb/s for ``n_streams`` spatial streams."""
        if bandwidth_mhz == 10.0:
            symbol_us = OFDM_SYMBOL_DURATION_US_10MHZ
        elif bandwidth_mhz == 20.0:
            symbol_us = OFDM_SYMBOL_DURATION_US_20MHZ
        else:
            symbol_us = 80.0 / bandwidth_mhz
        return n_streams * self.data_bits_per_ofdm_symbol / symbol_us

    def airtime_us(self, payload_bits: int, bandwidth_mhz: float = 10.0, n_streams: int = 1) -> float:
        """Time to transmit ``payload_bits`` (excluding headers), microseconds."""
        if payload_bits <= 0:
            return 0.0
        bits_per_symbol = self.data_bits_per_ofdm_symbol * n_streams
        import math

        n_symbols = math.ceil(payload_bits / bits_per_symbol)
        if bandwidth_mhz == 10.0:
            symbol_us = OFDM_SYMBOL_DURATION_US_10MHZ
        elif bandwidth_mhz == 20.0:
            symbol_us = OFDM_SYMBOL_DURATION_US_20MHZ
        else:
            symbol_us = 80.0 / bandwidth_mhz
        return n_symbols * symbol_us


#: The 802.11a/g rate set with the ESNR thresholds (in dB) used for
#: per-packet bitrate selection.  The thresholds follow the effective-SNR
#: to delivery-rate mapping reported by Halperin et al. [16].
MCS_TABLE: List[MCS] = [
    MCS(0, "bpsk", (1, 2), 3.0),
    MCS(1, "bpsk", (3, 4), 5.5),
    MCS(2, "qpsk", (1, 2), 7.0),
    MCS(3, "qpsk", (3, 4), 9.5),
    MCS(4, "16qam", (1, 2), 12.5),
    MCS(5, "16qam", (3, 4), 16.0),
    MCS(6, "64qam", (2, 3), 20.5),
    MCS(7, "64qam", (3, 4), 22.5),
]


def mcs_by_index(index: int) -> MCS:
    """Return the MCS with the given table index."""
    if not 0 <= index < len(MCS_TABLE):
        raise ConfigurationError(f"MCS index must be in [0, {len(MCS_TABLE) - 1}], got {index}")
    return MCS_TABLE[index]


def lowest_mcs() -> MCS:
    """Return the most robust (lowest-rate) MCS."""
    return MCS_TABLE[0]


def highest_mcs() -> MCS:
    """Return the fastest MCS."""
    return MCS_TABLE[-1]


def data_rate_mbps(index: int, bandwidth_mhz: float = 10.0, n_streams: int = 1) -> float:
    """Convenience wrapper: data rate of MCS ``index`` in Mb/s."""
    return mcs_by_index(index).data_rate_mbps(bandwidth_mhz, n_streams)
