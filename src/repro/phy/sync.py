"""Packet detection and OFDM symbol-timing synchronization.

A joiner in n+ must start its transmission aligned (within a cyclic
prefix) with the OFDM symbol boundaries of ongoing transmissions (§4,
"Time Synchronization").  The detector below finds the start of a frame
from the short training field using the classic delay-and-correlate
metric, then refines symbol timing by cross-correlating against the long
training symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SHORT_TRAINING_SYMBOL_LENGTH
from repro.exceptions import SynchronizationError
from repro.phy.ofdm import OfdmConfig
from repro.phy.preamble import cross_correlate, long_training_symbol, short_training_field

__all__ = ["PacketDetection", "detect_packet", "delay_and_correlate", "symbol_timing_offset"]


@dataclass(frozen=True)
class PacketDetection:
    """Result of packet detection.

    Attributes
    ----------
    detected:
        Whether a preamble was found.
    start_index:
        Estimated sample index of the start of the frame.
    metric:
        Peak detection metric value in [0, 1].
    """

    detected: bool
    start_index: int
    metric: float


def delay_and_correlate(
    samples: np.ndarray,
    period: int = SHORT_TRAINING_SYMBOL_LENGTH,
    window: int = 4 * SHORT_TRAINING_SYMBOL_LENGTH,
) -> np.ndarray:
    """The Schmidl-Cox style plateau metric for a periodic training field.

    Returns ``|sum(conj(x[n]) x[n+period])| / sum(|x[n+period]|^2)`` over a
    sliding window; values near 1 indicate the presence of a periodic
    preamble.  The window spans several repetition periods (but stays well
    inside the 10-repeat STF) so random noise cannot spuriously reach high
    metric values.
    """
    samples = np.asarray(samples, dtype=complex).reshape(-1)
    if samples.size < period + window:
        return np.zeros(0)
    lagged = samples[period:]
    base = samples[:-period]
    prod = np.conj(base) * lagged
    energy = np.abs(lagged) ** 2
    taps = np.ones(window)
    num = np.abs(np.convolve(prod, taps, mode="valid"))
    den = np.convolve(energy, taps, mode="valid")
    with np.errstate(divide="ignore", invalid="ignore"):
        metric = np.where(den > 0, num / den, 0.0)
    return metric


def detect_packet(
    samples: np.ndarray,
    threshold: float = 0.6,
    config: OfdmConfig | None = None,
) -> PacketDetection:
    """Detect the start of an 802.11-style frame in ``samples``.

    Uses the plateau metric for coarse detection and the STF
    cross-correlation for the fine start estimate.
    """
    config = config or OfdmConfig()
    samples = np.asarray(samples, dtype=complex).reshape(-1)
    metric = delay_and_correlate(samples)
    if metric.size == 0 or metric.max() < threshold:
        return PacketDetection(detected=False, start_index=-1, metric=float(metric.max()) if metric.size else 0.0)
    stf = short_training_field(config)
    correlation = cross_correlate(samples, stf)
    if correlation.size == 0:
        return PacketDetection(detected=False, start_index=-1, metric=float(metric.max()))
    start = int(np.argmax(correlation))
    return PacketDetection(detected=True, start_index=start, metric=float(correlation[start]))


def symbol_timing_offset(
    samples: np.ndarray,
    coarse_start: int,
    config: OfdmConfig | None = None,
    search_window: int = 8,
) -> int:
    """Refine the frame start estimate using the long training symbol.

    Searches ``+- search_window`` samples around ``coarse_start`` for the
    lag maximising the LTF cross-correlation and returns the refined start.
    """
    config = config or OfdmConfig()
    samples = np.asarray(samples, dtype=complex).reshape(-1)
    stf_length = len(short_training_field(config))
    lts = long_training_symbol(config)
    best_start = coarse_start
    best_value = -1.0
    for offset in range(-search_window, search_window + 1):
        candidate = coarse_start + offset
        ltf_begin = candidate + stf_length
        segment = samples[ltf_begin : ltf_begin + len(lts)]
        if segment.size < len(lts):
            continue
        value = float(np.abs(np.vdot(lts, segment)) / (np.linalg.norm(lts) * np.linalg.norm(segment) + 1e-12))
        if value > best_value:
            best_value = value
            best_start = candidate
    if best_value < 0:
        raise SynchronizationError("could not refine symbol timing: samples too short")
    return best_start
