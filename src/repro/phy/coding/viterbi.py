"""Viterbi decoding of the 802.11 convolutional code.

Supports hard-decision decoding (Hamming branch metrics on 0/1 inputs)
and soft-decision decoding (correlation metrics on log-likelihood
ratios).  Punctured positions are marked by erasure values and contribute
zero branch metric.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DecodingError
from repro.phy.coding.convolutional import ConvolutionalEncoder

__all__ = ["viterbi_decode", "ERASURE"]

#: Marker inserted by :func:`repro.phy.coding.puncturing.depuncture` for
#: coded positions that were never transmitted.
ERASURE = np.nan


def _branch_metrics_hard(received_pair: np.ndarray, outputs: np.ndarray) -> np.ndarray:
    """Hamming distance between a received coded pair and each branch output."""
    metrics = np.zeros(outputs.shape[:2])
    for idx in range(2):
        value = received_pair[idx]
        if np.isnan(value):
            continue
        metrics += outputs[:, :, idx] != int(round(float(value)))
    return metrics


def _branch_metrics_soft(received_pair: np.ndarray, outputs: np.ndarray) -> np.ndarray:
    """Negative correlation metric for soft inputs (LLR > 0 means bit 0)."""
    metrics = np.zeros(outputs.shape[:2])
    for idx in range(2):
        llr = received_pair[idx]
        if np.isnan(llr):
            continue
        # Bit value 0 should be rewarded when llr > 0; bit 1 when llr < 0.
        signs = 1.0 - 2.0 * outputs[:, :, idx]  # +1 for bit 0, -1 for bit 1
        metrics += -signs * llr
    return metrics


def viterbi_decode(
    coded: np.ndarray,
    n_data_bits: int,
    soft: bool = False,
    encoder: ConvolutionalEncoder | None = None,
    terminated: bool = True,
) -> np.ndarray:
    """Decode a rate-1/2 coded sequence back to ``n_data_bits`` bits.

    Parameters
    ----------
    coded:
        The received coded stream.  For hard decoding this is a 0/1 array
        (possibly with :data:`ERASURE` at punctured positions); for soft
        decoding it is an array of LLRs.
    n_data_bits:
        Number of information bits to return (excluding tail bits).
    soft:
        Use soft-decision branch metrics.
    encoder:
        The encoder whose trellis to use; defaults to the 802.11 encoder.
    terminated:
        Whether the encoder appended tail bits (the decoder then forces
        the final state to zero).
    """
    encoder = encoder or ConvolutionalEncoder()
    coded = np.asarray(coded, dtype=float)
    if coded.size % 2 != 0:
        raise DecodingError(f"coded length {coded.size} is not a multiple of 2")
    n_steps = coded.size // 2
    total_bits = n_data_bits + (encoder.tail_bits if terminated else 0)
    if n_steps < total_bits:
        raise DecodingError(
            f"coded stream has {n_steps} steps but {total_bits} bits are expected"
        )
    n_steps = total_bits

    next_state, outputs = encoder.transitions()
    n_states = encoder.n_states
    metric_fn = _branch_metrics_soft if soft else _branch_metrics_hard

    infinity = np.inf
    path_metric = np.full(n_states, infinity)
    path_metric[0] = 0.0
    decisions = np.zeros((n_steps, n_states), dtype=np.int8)
    predecessors = np.zeros((n_steps, n_states), dtype=np.int32)

    pairs = coded[: 2 * n_steps].reshape(n_steps, 2)
    for step in range(n_steps):
        branch = metric_fn(pairs[step], outputs)
        new_metric = np.full(n_states, infinity)
        new_decision = np.zeros(n_states, dtype=np.int8)
        new_pred = np.zeros(n_states, dtype=np.int32)
        for state in range(n_states):
            if not np.isfinite(path_metric[state]):
                continue
            for bit in range(2):
                nxt = next_state[state, bit]
                candidate = path_metric[state] + branch[state, bit]
                if candidate < new_metric[nxt]:
                    new_metric[nxt] = candidate
                    new_decision[nxt] = bit
                    new_pred[nxt] = state
        path_metric = new_metric
        decisions[step] = new_decision
        predecessors[step] = new_pred

    if terminated:
        final_state = 0
        if not np.isfinite(path_metric[0]):
            final_state = int(np.argmin(path_metric))
    else:
        final_state = int(np.argmin(path_metric))

    # Trace back.
    bits = np.zeros(n_steps, dtype=np.int8)
    state = final_state
    for step in range(n_steps - 1, -1, -1):
        bits[step] = decisions[step, state]
        state = predecessors[step, state]
    return bits[:n_data_bits]
