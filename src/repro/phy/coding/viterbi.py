"""Viterbi decoding of the 802.11 convolutional code.

Supports hard-decision decoding (Hamming branch metrics on 0/1 inputs)
and soft-decision decoding (correlation metrics on log-likelihood
ratios).  Punctured positions are marked by erasure values and contribute
zero branch metric.

The decoder is fully vectorized: every branch metric of the frame is
precomputed in one ``(n_steps, n_states, 2)`` array, and the
add-compare-select recursion operates on whole state vectors per trellis
step instead of iterating over states in Python.  The original readable
per-state implementation is kept as :func:`_viterbi_decode_reference` and
is asserted bit-exact against the vectorized decoder by the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DecodingError
from repro.phy.coding.convolutional import ConvolutionalEncoder, default_encoder

__all__ = ["viterbi_decode", "ERASURE"]

#: Marker inserted by :func:`repro.phy.coding.puncturing.depuncture` for
#: coded positions that were never transmitted.
ERASURE = np.nan


def _checked_pairs(
    coded: np.ndarray,
    n_data_bits: int,
    encoder: ConvolutionalEncoder,
    terminated: bool,
) -> np.ndarray:
    """Validate the coded stream and reshape it to ``(n_steps, 2)``."""
    coded = np.asarray(coded, dtype=float)
    if coded.size % 2 != 0:
        raise DecodingError(f"coded length {coded.size} is not a multiple of 2")
    n_steps = coded.size // 2
    total_bits = n_data_bits + (encoder.tail_bits if terminated else 0)
    if n_steps < total_bits:
        raise DecodingError(
            f"coded stream has {n_steps} steps but {total_bits} bits are expected"
        )
    return coded[: 2 * total_bits].reshape(total_bits, 2)


def _branch_metrics(pairs: np.ndarray, outputs: np.ndarray, soft: bool) -> np.ndarray:
    """All branch metrics of the frame, shape ``(n_steps, n_states, 2)``.

    Erasures (NaN) are masked to zero before the metric sum, so punctured
    positions contribute nothing in both the hard (Hamming) and the soft
    (negative correlation) formulation.
    """
    valid = ~np.isnan(pairs)  # (n_steps, 2)
    if soft:
        llr = np.where(valid, pairs, 0.0)
        # Bit value 0 should be rewarded when llr > 0; bit 1 when llr < 0.
        signs = 1.0 - 2.0 * outputs  # +1 for bit 0, -1 for bit 1
        return -np.einsum("ti,sbi->tsb", llr, signs)
    received = np.rint(np.where(valid, pairs, 0.0)).astype(np.int8)
    mismatch = outputs[None, :, :, :] != received[:, None, None, :]
    return np.einsum("tsbi,ti->tsb", mismatch, valid.astype(np.float64))


def viterbi_decode(
    coded: np.ndarray,
    n_data_bits: int,
    soft: bool = False,
    encoder: ConvolutionalEncoder | None = None,
    terminated: bool = True,
) -> np.ndarray:
    """Decode a rate-1/2 coded sequence back to ``n_data_bits`` bits.

    Parameters
    ----------
    coded:
        The received coded stream.  For hard decoding this is a 0/1 array
        (possibly with :data:`ERASURE` at punctured positions); for soft
        decoding it is an array of LLRs.
    n_data_bits:
        Number of information bits to return (excluding tail bits).
    soft:
        Use soft-decision branch metrics.
    encoder:
        The encoder whose trellis to use; defaults to the 802.11 encoder.
    terminated:
        Whether the encoder appended tail bits (the decoder then forces
        the final state to zero).
    """
    encoder = encoder or default_encoder()
    pairs = _checked_pairs(coded, n_data_bits, encoder, terminated)
    n_steps = pairs.shape[0]
    n_states = encoder.n_states

    _, outputs = encoder.transitions()
    prev_states, prev_bits = encoder.predecessors()

    branch = _branch_metrics(pairs, outputs, soft)
    # Gather each state's two incoming branch metrics once for every step,
    # so the recursion below only touches (n_states, 2) arrays.  The trellis
    # has butterfly structure: the predecessors of state ``s`` are
    # ``(2s, 2s + 1) mod n_states``, so the gathered path metrics of the
    # lower and the upper half of the states are both exactly
    # ``path_metric.reshape(n_half, 2)`` -- the add-compare-select step then
    # needs no per-step index gather at all, only a broadcast add.
    n_half = n_states // 2
    incoming = branch[:, prev_states, prev_bits].reshape(n_steps, 2, n_half, 2)

    path_metric = np.full(n_states, np.inf)
    path_metric[0] = 0.0
    next_metric = np.empty(n_states)
    choices = np.empty((n_steps, n_states), dtype=bool)
    choices_halved = choices.reshape(n_steps, 2, n_half)
    candidates = np.empty((2, n_half, 2))
    low, high = candidates[..., 0], candidates[..., 1]
    # Pre-built ping-pong views so the loop body is three ufunc calls.
    pairs_views = (path_metric.reshape(n_half, 2), next_metric.reshape(n_half, 2))
    halved_views = (path_metric.reshape(2, n_half), next_metric.reshape(2, n_half))
    for step in range(n_steps):
        current = step & 1
        np.add(incoming[step], pairs_views[current], out=candidates)
        # Strict comparison keeps the first (lower-state) predecessor on
        # ties, matching the reference decoder's scan order.
        np.less(high, low, out=choices_halved[step])
        np.minimum(low, high, out=halved_views[1 - current])
    path_metric = (path_metric, next_metric)[n_steps & 1]

    if terminated:
        final_state = 0
        if not np.isfinite(path_metric[0]):
            final_state = int(np.argmin(path_metric))
    else:
        final_state = int(np.argmin(path_metric))

    # Trace back.  Plain Python lists are faster than numpy scalar indexing
    # for this strictly sequential walk.
    prev_state_list = prev_states.tolist()
    prev_bit_list = prev_bits.tolist()
    choice_list = choices.tolist()
    bits = np.empty(n_steps, dtype=np.int8)
    state = final_state
    for step in range(n_steps - 1, -1, -1):
        j = 1 if choice_list[step][state] else 0
        bits[step] = prev_bit_list[state][j]
        state = prev_state_list[state][j]
    return bits[:n_data_bits]


# -- reference implementation ------------------------------------------------


def _branch_metrics_hard(received_pair: np.ndarray, outputs: np.ndarray) -> np.ndarray:
    """Hamming distance between a received coded pair and each branch output."""
    metrics = np.zeros(outputs.shape[:2])
    for idx in range(2):
        value = received_pair[idx]
        if np.isnan(value):
            continue
        metrics += outputs[:, :, idx] != int(round(float(value)))
    return metrics


def _branch_metrics_soft(received_pair: np.ndarray, outputs: np.ndarray) -> np.ndarray:
    """Negative correlation metric for soft inputs (LLR > 0 means bit 0)."""
    metrics = np.zeros(outputs.shape[:2])
    for idx in range(2):
        llr = received_pair[idx]
        if np.isnan(llr):
            continue
        # Bit value 0 should be rewarded when llr > 0; bit 1 when llr < 0.
        signs = 1.0 - 2.0 * outputs[:, :, idx]  # +1 for bit 0, -1 for bit 1
        metrics += -signs * llr
    return metrics


def _viterbi_decode_reference(
    coded: np.ndarray,
    n_data_bits: int,
    soft: bool = False,
    encoder: ConvolutionalEncoder | None = None,
    terminated: bool = True,
) -> np.ndarray:
    """Slow per-state reference decoder (the seed implementation).

    Kept as the readable specification of the trellis recursion; the test
    suite asserts :func:`viterbi_decode` agrees with it bit-exactly.
    """
    encoder = encoder or default_encoder()
    pairs = _checked_pairs(coded, n_data_bits, encoder, terminated)
    n_steps = pairs.shape[0]

    next_state, outputs = encoder.transitions()
    n_states = encoder.n_states
    metric_fn = _branch_metrics_soft if soft else _branch_metrics_hard

    infinity = np.inf
    path_metric = np.full(n_states, infinity)
    path_metric[0] = 0.0
    decisions = np.zeros((n_steps, n_states), dtype=np.int8)
    predecessors = np.zeros((n_steps, n_states), dtype=np.int32)

    for step in range(n_steps):
        branch = metric_fn(pairs[step], outputs)
        new_metric = np.full(n_states, infinity)
        new_decision = np.zeros(n_states, dtype=np.int8)
        new_pred = np.zeros(n_states, dtype=np.int32)
        for state in range(n_states):
            if not np.isfinite(path_metric[state]):
                continue
            for bit in range(2):
                nxt = next_state[state, bit]
                candidate = path_metric[state] + branch[state, bit]
                if candidate < new_metric[nxt]:
                    new_metric[nxt] = candidate
                    new_decision[nxt] = bit
                    new_pred[nxt] = state
        path_metric = new_metric
        decisions[step] = new_decision
        predecessors[step] = new_pred

    if terminated:
        final_state = 0
        if not np.isfinite(path_metric[0]):
            final_state = int(np.argmin(path_metric))
    else:
        final_state = int(np.argmin(path_metric))

    # Trace back.
    bits = np.zeros(n_steps, dtype=np.int8)
    state = final_state
    for step in range(n_steps - 1, -1, -1):
        bits[step] = decisions[step, state]
        state = predecessors[step, state]
    return bits[:n_data_bits]
