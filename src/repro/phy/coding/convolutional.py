"""The 802.11 rate-1/2 convolutional encoder (constraint length 7).

Generator polynomials are the standard industry pair g0 = 133 (octal) and
g1 = 171 (octal).  The encoder is used for every data rate; higher code
rates are obtained by puncturing (:mod:`repro.phy.coding.puncturing`).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ConvolutionalEncoder",
    "conv_encode",
    "default_encoder",
    "CONSTRAINT_LENGTH",
    "G0",
    "G1",
]

#: Constraint length of the 802.11 convolutional code.
CONSTRAINT_LENGTH = 7

#: Generator polynomials (octal 133 and 171).
G0 = 0o133
G1 = 0o171


def _polynomial_taps(poly: int, constraint_length: int) -> np.ndarray:
    """Return the tap mask of ``poly`` as a 0/1 array, newest bit first."""
    return np.array(
        [(poly >> (constraint_length - 1 - i)) & 1 for i in range(constraint_length)],
        dtype=np.int8,
    )


#: Trellis tables keyed by ``(g0, g1, constraint_length)``.  The tables are
#: pure functions of the polynomials, so every encoder instance with the same
#: parameters shares one read-only copy instead of rebuilding them per decode.
_TRELLIS_CACHE: Dict[
    Tuple[int, int, int], Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
] = {}


def _build_trellis(
    g0: int, g1: int, constraint_length: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build ``(next_state, outputs, prev_states, prev_bits)`` for a code."""
    k = constraint_length
    n_states = 1 << (k - 1)
    taps0 = _polynomial_taps(g0, k).astype(np.int64)
    taps1 = _polynomial_taps(g1, k).astype(np.int64)

    states = np.arange(n_states, dtype=np.int64)
    input_bits = np.arange(2, dtype=np.int64)
    registers = (input_bits[None, :] << (k - 1)) | states[:, None]  # (n_states, 2)
    shifts = k - 1 - np.arange(k, dtype=np.int64)
    windows = (registers[:, :, None] >> shifts) & 1  # (n_states, 2, k), newest first
    out0 = (windows @ taps0) % 2
    out1 = (windows @ taps1) % 2
    next_state = (registers >> 1).astype(np.int32)
    outputs = np.stack([out0, out1], axis=2).astype(np.int8)

    # Each state has exactly two incoming transitions, from the registers
    # ``2 * state`` and ``2 * state + 1`` (ascending predecessor order, which
    # matches the scan order of the reference add-compare-select loop).
    incoming_registers = 2 * states[:, None] + input_bits[None, :]  # (n_states, 2)
    prev_bits = (incoming_registers >> (k - 1)).astype(np.int8)
    prev_states = (incoming_registers & (n_states - 1)).astype(np.int32)

    for array in (next_state, outputs, prev_states, prev_bits):
        array.setflags(write=False)
    return next_state, outputs, prev_states, prev_bits


def _trellis_tables(
    g0: int, g1: int, constraint_length: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    key = (g0, g1, constraint_length)
    tables = _TRELLIS_CACHE.get(key)
    if tables is None:
        tables = _build_trellis(g0, g1, constraint_length)
        _TRELLIS_CACHE[key] = tables
    return tables


class ConvolutionalEncoder:
    """Rate-1/2 convolutional encoder with configurable polynomials.

    The encoder is stateless between calls to :meth:`encode`; each frame is
    encoded independently and terminated with ``constraint_length - 1``
    zero tail bits so the decoder can end in the all-zero state.
    """

    def __init__(self, g0: int = G0, g1: int = G1, constraint_length: int = CONSTRAINT_LENGTH):
        if constraint_length < 2:
            raise ConfigurationError("constraint length must be at least 2")
        self.constraint_length = constraint_length
        self.g0 = g0
        self.g1 = g1
        self._taps0 = _polynomial_taps(g0, constraint_length)
        self._taps1 = _polynomial_taps(g1, constraint_length)

    @property
    def n_states(self) -> int:
        """Number of trellis states (2^(K-1))."""
        return 1 << (self.constraint_length - 1)

    @property
    def tail_bits(self) -> int:
        """Number of zero tail bits appended to terminate the trellis."""
        return self.constraint_length - 1

    def encode(self, bits: np.ndarray, terminate: bool = True) -> np.ndarray:
        """Encode ``bits`` at rate 1/2, optionally appending tail bits.

        Returns an array of length ``2 * (len(bits) + tail)`` with the two
        coded bits of each input bit adjacent (g0 output first).
        """
        bits = np.asarray(bits, dtype=np.int8)
        if terminate:
            bits = np.concatenate([bits, np.zeros(self.tail_bits, dtype=np.int8)])
        # Build the sliding window of the shift register: window[i] holds
        # [b_i, b_{i-1}, ..., b_{i-K+1}] with zeros before the frame start.
        padded = np.concatenate([np.zeros(self.constraint_length - 1, dtype=np.int8), bits])
        windows = np.lib.stride_tricks.sliding_window_view(padded, self.constraint_length)
        # Reverse so that index 0 is the newest bit, matching the tap masks.
        windows = windows[:, ::-1]
        out0 = (windows @ self._taps0) % 2
        out1 = (windows @ self._taps1) % 2
        coded = np.empty(2 * bits.size, dtype=np.int8)
        coded[0::2] = out0
        coded[1::2] = out1
        return coded

    def transitions(self):
        """Return the trellis transition tables used by the Viterbi decoder.

        Returns
        -------
        next_state : numpy.ndarray, shape (n_states, 2)
            ``next_state[s, b]`` is the state after input bit ``b`` in
            state ``s``.
        outputs : numpy.ndarray, shape (n_states, 2, 2)
            ``outputs[s, b]`` is the pair of coded bits emitted.

        The returned arrays are shared, read-only cached tables.
        """
        next_state, outputs, _, _ = _trellis_tables(self.g0, self.g1, self.constraint_length)
        return next_state, outputs

    def predecessors(self):
        """Return the reverse trellis tables used by the vectorized decoder.

        Returns
        -------
        prev_states : numpy.ndarray, shape (n_states, 2)
            ``prev_states[s, j]`` is the ``j``-th state with a transition
            into ``s`` (ascending state order).
        prev_bits : numpy.ndarray, shape (n_states, 2)
            ``prev_bits[s, j]`` is the input bit of that transition.

        The returned arrays are shared, read-only cached tables.
        """
        _, _, prev_states, prev_bits = _trellis_tables(self.g0, self.g1, self.constraint_length)
        return prev_states, prev_bits


#: Module-level default encoder used by the convenience functions.
_DEFAULT_ENCODER = ConvolutionalEncoder()


def default_encoder() -> ConvolutionalEncoder:
    """Return the shared default 802.11 encoder instance.

    The encoder is stateless, so hot paths (codecs, decoders) reuse this
    instance instead of constructing fresh tap arrays per call.
    """
    return _DEFAULT_ENCODER


def conv_encode(bits: np.ndarray, terminate: bool = True) -> np.ndarray:
    """Encode ``bits`` with the default 802.11 encoder."""
    return _DEFAULT_ENCODER.encode(bits, terminate=terminate)
