"""The 802.11 rate-1/2 convolutional encoder (constraint length 7).

Generator polynomials are the standard industry pair g0 = 133 (octal) and
g1 = 171 (octal).  The encoder is used for every data rate; higher code
rates are obtained by puncturing (:mod:`repro.phy.coding.puncturing`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ConvolutionalEncoder", "conv_encode", "CONSTRAINT_LENGTH", "G0", "G1"]

#: Constraint length of the 802.11 convolutional code.
CONSTRAINT_LENGTH = 7

#: Generator polynomials (octal 133 and 171).
G0 = 0o133
G1 = 0o171


def _polynomial_taps(poly: int, constraint_length: int) -> np.ndarray:
    """Return the tap mask of ``poly`` as a 0/1 array, newest bit first."""
    return np.array(
        [(poly >> (constraint_length - 1 - i)) & 1 for i in range(constraint_length)],
        dtype=np.int8,
    )


class ConvolutionalEncoder:
    """Rate-1/2 convolutional encoder with configurable polynomials.

    The encoder is stateless between calls to :meth:`encode`; each frame is
    encoded independently and terminated with ``constraint_length - 1``
    zero tail bits so the decoder can end in the all-zero state.
    """

    def __init__(self, g0: int = G0, g1: int = G1, constraint_length: int = CONSTRAINT_LENGTH):
        if constraint_length < 2:
            raise ConfigurationError("constraint length must be at least 2")
        self.constraint_length = constraint_length
        self.g0 = g0
        self.g1 = g1
        self._taps0 = _polynomial_taps(g0, constraint_length)
        self._taps1 = _polynomial_taps(g1, constraint_length)

    @property
    def n_states(self) -> int:
        """Number of trellis states (2^(K-1))."""
        return 1 << (self.constraint_length - 1)

    @property
    def tail_bits(self) -> int:
        """Number of zero tail bits appended to terminate the trellis."""
        return self.constraint_length - 1

    def encode(self, bits: np.ndarray, terminate: bool = True) -> np.ndarray:
        """Encode ``bits`` at rate 1/2, optionally appending tail bits.

        Returns an array of length ``2 * (len(bits) + tail)`` with the two
        coded bits of each input bit adjacent (g0 output first).
        """
        bits = np.asarray(bits, dtype=np.int8)
        if terminate:
            bits = np.concatenate([bits, np.zeros(self.tail_bits, dtype=np.int8)])
        # Build the sliding window of the shift register: window[i] holds
        # [b_i, b_{i-1}, ..., b_{i-K+1}] with zeros before the frame start.
        padded = np.concatenate([np.zeros(self.constraint_length - 1, dtype=np.int8), bits])
        windows = np.lib.stride_tricks.sliding_window_view(padded, self.constraint_length)
        # Reverse so that index 0 is the newest bit, matching the tap masks.
        windows = windows[:, ::-1]
        out0 = (windows @ self._taps0) % 2
        out1 = (windows @ self._taps1) % 2
        coded = np.empty(2 * bits.size, dtype=np.int8)
        coded[0::2] = out0
        coded[1::2] = out1
        return coded

    def transitions(self):
        """Return the trellis transition tables used by the Viterbi decoder.

        Returns
        -------
        next_state : numpy.ndarray, shape (n_states, 2)
            ``next_state[s, b]`` is the state after input bit ``b`` in
            state ``s``.
        outputs : numpy.ndarray, shape (n_states, 2, 2)
            ``outputs[s, b]`` is the pair of coded bits emitted.
        """
        n_states = self.n_states
        next_state = np.zeros((n_states, 2), dtype=np.int32)
        outputs = np.zeros((n_states, 2, 2), dtype=np.int8)
        k = self.constraint_length
        for state in range(n_states):
            for bit in range(2):
                register = (bit << (k - 1)) | state
                window = np.array([(register >> (k - 1 - i)) & 1 for i in range(k)], dtype=np.int8)
                out0 = int(window @ self._taps0) % 2
                out1 = int(window @ self._taps1) % 2
                next_state[state, bit] = register >> 1
                outputs[state, bit, 0] = out0
                outputs[state, bit, 1] = out1
        return next_state, outputs


#: Module-level default encoder used by the convenience functions.
_DEFAULT_ENCODER = ConvolutionalEncoder()


def conv_encode(bits: np.ndarray, terminate: bool = True) -> np.ndarray:
    """Encode ``bits`` with the default 802.11 encoder."""
    return _DEFAULT_ENCODER.encode(bits, terminate=terminate)
