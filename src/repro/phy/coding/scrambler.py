"""The 802.11 frame scrambler (127-bit maximal-length sequence).

Scrambling whitens the data so that the OFDM signal has no strong
spectral lines; the same self-synchronising generator
``x^7 + x^4 + 1`` is used for scrambling and descrambling.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scramble", "descramble", "scrambler_sequence"]

#: Default initial state of the 7-bit scrambler register (all ones).
DEFAULT_SEED = 0x7F


def scrambler_sequence(length: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Return ``length`` bits of the 802.11 scrambling sequence."""
    if length < 0:
        raise ValueError("length must be non-negative")
    state = seed & 0x7F
    if state == 0:
        raise ValueError("scrambler seed must be non-zero")
    out = np.empty(length, dtype=np.int8)
    for i in range(length):
        feedback = ((state >> 6) ^ (state >> 3)) & 1
        out[i] = feedback
        state = ((state << 1) | feedback) & 0x7F
    return out


def scramble(bits: np.ndarray, seed: int = DEFAULT_SEED) -> np.ndarray:
    """XOR ``bits`` with the scrambling sequence."""
    bits = np.asarray(bits, dtype=np.int8)
    return (bits ^ scrambler_sequence(bits.size, seed)).astype(np.int8)


def descramble(bits: np.ndarray, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Reverse :func:`scramble` (the operation is an involution)."""
    return scramble(bits, seed)
