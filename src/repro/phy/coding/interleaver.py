"""The 802.11 per-OFDM-symbol block interleaver.

Interleaving spreads adjacent coded bits across subcarriers (first
permutation) and across constellation bit positions (second permutation)
so that a deep fade on a few subcarriers does not wipe out consecutive
coded bits.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DimensionError

__all__ = ["interleave", "deinterleave", "interleaver_permutation"]


def interleaver_permutation(n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Return the interleaver permutation for one OFDM symbol.

    ``perm[k]`` gives the output position of input coded bit ``k``.

    Parameters
    ----------
    n_cbps:
        Coded bits per OFDM symbol (48 * bits-per-subcarrier).
    n_bpsc:
        Coded bits per subcarrier (1, 2, 4 or 6).
    """
    if n_cbps % 16 != 0:
        raise ConfigurationError(f"n_cbps must be a multiple of 16, got {n_cbps}")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    # First permutation: write row-wise into 16 columns, read column-wise.
    i = (n_cbps // 16) * (k % 16) + k // 16
    # Second permutation: rotate bits within groups of s.
    j = s * (i // s) + (i + n_cbps - (16 * i // n_cbps)) % s
    return j


def interleave(bits: np.ndarray, n_bpsc: int, n_cbps: int | None = None) -> np.ndarray:
    """Interleave coded bits symbol by symbol.

    The input length must be a multiple of ``n_cbps``.
    """
    bits = np.asarray(bits)
    if n_cbps is None:
        n_cbps = 48 * n_bpsc
    if bits.size % n_cbps != 0:
        raise DimensionError(
            f"bit count {bits.size} is not a multiple of coded bits per symbol {n_cbps}"
        )
    perm = interleaver_permutation(n_cbps, n_bpsc)
    out = np.empty_like(bits)
    for start in range(0, bits.size, n_cbps):
        block = bits[start : start + n_cbps]
        shuffled = np.empty_like(block)
        shuffled[perm] = block
        out[start : start + n_cbps] = shuffled
    return out


def deinterleave(bits: np.ndarray, n_bpsc: int, n_cbps: int | None = None) -> np.ndarray:
    """Reverse :func:`interleave`."""
    bits = np.asarray(bits)
    if n_cbps is None:
        n_cbps = 48 * n_bpsc
    if bits.size % n_cbps != 0:
        raise DimensionError(
            f"bit count {bits.size} is not a multiple of coded bits per symbol {n_cbps}"
        )
    perm = interleaver_permutation(n_cbps, n_bpsc)
    out = np.empty_like(bits)
    for start in range(0, bits.size, n_cbps):
        block = bits[start : start + n_cbps]
        out[start : start + n_cbps] = block[perm]
    return out
