"""End-to-end FEC codec tying together scrambling, coding, puncturing and
interleaving for a given modulation-and-coding scheme."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NUM_DATA_SUBCARRIERS
from repro.exceptions import DimensionError
from repro.phy.coding.convolutional import default_encoder
from repro.phy.coding.interleaver import deinterleave, interleave
from repro.phy.coding.puncturing import depuncture, puncture, punctured_length
from repro.phy.coding.scrambler import descramble, scramble
from repro.phy.coding.viterbi import viterbi_decode
from repro.phy.rates import MCS

__all__ = ["Codec"]


@dataclass
class Codec:
    """Encode/decode a frame's bits for a given :class:`~repro.phy.rates.MCS`.

    The codec pads the input so the coded, punctured and interleaved stream
    fills an integer number of OFDM symbols, exactly as the 802.11 PHY pads
    a PSDU with tail and pad bits.
    """

    mcs: MCS

    def __post_init__(self) -> None:
        # The encoder is stateless; share the default instance instead of
        # rebuilding its tap arrays for every codec (one per stream per frame).
        self._encoder = default_encoder()

    # -- sizing -------------------------------------------------------------

    @property
    def coded_bits_per_symbol(self) -> int:
        """Coded bits per OFDM symbol (one spatial stream)."""
        return self.mcs.modulation.bits_per_symbol * NUM_DATA_SUBCARRIERS

    def n_ofdm_symbols(self, n_data_bits: int) -> int:
        """OFDM symbols needed to carry ``n_data_bits`` information bits."""
        total_data = n_data_bits + self._encoder.tail_bits
        mother_len = 2 * total_data
        coded_len = punctured_length(mother_len, self.mcs.coding_rate)
        return int(np.ceil(coded_len / self.coded_bits_per_symbol))

    def padded_data_bits(self, n_data_bits: int) -> int:
        """Number of information bits (incl. padding) after frame padding."""
        n_symbols = self.n_ofdm_symbols(n_data_bits)
        capacity_coded = n_symbols * self.coded_bits_per_symbol
        num, den = self.mcs.coding_rate
        capacity_data = capacity_coded * num // den
        return capacity_data - self._encoder.tail_bits

    # -- encode -------------------------------------------------------------

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Return the interleaved coded bit stream for ``bits``.

        The output length is a multiple of the coded bits per OFDM symbol.
        """
        bits = np.asarray(bits, dtype=np.int8)
        padded_len = self.padded_data_bits(bits.size)
        padded = np.concatenate([bits, np.zeros(padded_len - bits.size, dtype=np.int8)])
        scrambled = scramble(padded)
        mother = self._encoder.encode(scrambled, terminate=True)
        punctured = puncture(mother, self.mcs.coding_rate)
        n_bpsc = self.mcs.modulation.bits_per_symbol
        return interleave(punctured.astype(np.int8), n_bpsc, self.coded_bits_per_symbol)

    # -- decode -------------------------------------------------------------

    def decode(self, coded: np.ndarray, n_data_bits: int, soft: bool = False) -> np.ndarray:
        """Recover ``n_data_bits`` information bits from a coded stream.

        Parameters
        ----------
        coded:
            Hard bits (0/1) or LLRs if ``soft`` is true, of the same length
            produced by :meth:`encode` for a frame of ``n_data_bits`` bits.
        n_data_bits:
            The original (unpadded) information bit count.
        soft:
            Use soft-decision Viterbi decoding.
        """
        coded = np.asarray(coded, dtype=float)
        expected = self.n_ofdm_symbols(n_data_bits) * self.coded_bits_per_symbol
        if coded.size != expected:
            raise DimensionError(
                f"coded stream has {coded.size} values, expected {expected} "
                f"for {n_data_bits} data bits at MCS {self.mcs.index}"
            )
        n_bpsc = self.mcs.modulation.bits_per_symbol
        if soft:
            deinterleaved = deinterleave(coded, n_bpsc, self.coded_bits_per_symbol)
        else:
            deinterleaved = deinterleave(
                coded.astype(np.int8), n_bpsc, self.coded_bits_per_symbol
            ).astype(float)
        padded_len = self.padded_data_bits(n_data_bits)
        mother_len = 2 * (padded_len + self._encoder.tail_bits)
        unpunctured = depuncture(deinterleaved, self.mcs.coding_rate, mother_len)
        decoded = viterbi_decode(unpunctured, padded_len, soft=soft, encoder=self._encoder)
        descrambled = descramble(decoded)
        return descrambled[:n_data_bits].astype(np.int8)
