"""Forward error correction used by the 802.11 OFDM PHY.

The pipeline applied to a frame's bits is::

    scramble -> convolutional encode (K=7, rate 1/2)
             -> puncture (to rate 2/3 or 3/4 if requested)
             -> interleave per OFDM symbol

and the receiver reverses each stage, with a Viterbi decoder (hard or
soft decision) undoing the convolutional code.
"""

from repro.phy.coding.scrambler import scramble, descramble
from repro.phy.coding.convolutional import ConvolutionalEncoder, conv_encode
from repro.phy.coding.viterbi import viterbi_decode
from repro.phy.coding.puncturing import puncture, depuncture, PUNCTURE_PATTERNS
from repro.phy.coding.interleaver import interleave, deinterleave
from repro.phy.coding.codec import Codec

__all__ = [
    "scramble",
    "descramble",
    "ConvolutionalEncoder",
    "conv_encode",
    "viterbi_decode",
    "puncture",
    "depuncture",
    "PUNCTURE_PATTERNS",
    "interleave",
    "deinterleave",
    "Codec",
]
