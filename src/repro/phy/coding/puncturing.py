"""Puncturing of the rate-1/2 mother code to rates 2/3 and 3/4.

802.11 derives its higher code rates by deleting ("puncturing") selected
coded bits according to a fixed pattern.  The receiver re-inserts
erasures at the punctured positions before Viterbi decoding.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["PUNCTURE_PATTERNS", "puncture", "depuncture", "punctured_length"]

#: Puncturing patterns indexed by (numerator, denominator) of the code rate.
#: A 1 keeps the coded bit, a 0 deletes it.  Patterns follow IEEE 802.11-2012.
PUNCTURE_PATTERNS: Dict[Tuple[int, int], np.ndarray] = {
    (1, 2): np.array([1, 1], dtype=np.int8),
    (2, 3): np.array([1, 1, 1, 0], dtype=np.int8),
    (3, 4): np.array([1, 1, 1, 0, 0, 1], dtype=np.int8),
}


def _pattern_for(rate: Tuple[int, int]) -> np.ndarray:
    try:
        return PUNCTURE_PATTERNS[tuple(rate)]
    except KeyError:
        raise ConfigurationError(
            f"unsupported coding rate {rate}; supported: {sorted(PUNCTURE_PATTERNS)}"
        ) from None


def puncture(coded: np.ndarray, rate: Tuple[int, int]) -> np.ndarray:
    """Delete coded bits according to the puncturing pattern of ``rate``."""
    coded = np.asarray(coded)
    pattern = _pattern_for(rate)
    repeats = int(np.ceil(coded.size / pattern.size))
    mask = np.tile(pattern, repeats)[: coded.size].astype(bool)
    return coded[mask]


def depuncture(received: np.ndarray, rate: Tuple[int, int], original_length: int) -> np.ndarray:
    """Re-insert erasures (NaN) at punctured positions.

    Parameters
    ----------
    received:
        The punctured stream (hard bits or LLRs).
    rate:
        The coding rate used at the transmitter.
    original_length:
        Length of the unpunctured rate-1/2 stream.
    """
    received = np.asarray(received, dtype=float)
    pattern = _pattern_for(rate)
    repeats = int(np.ceil(original_length / pattern.size))
    mask = np.tile(pattern, repeats)[:original_length].astype(bool)
    expected = int(np.sum(mask))
    if received.size != expected:
        raise ConfigurationError(
            f"punctured stream has {received.size} values but {expected} are expected "
            f"for original length {original_length} at rate {rate}"
        )
    out = np.full(original_length, np.nan)
    out[mask] = received
    return out


def punctured_length(original_length: int, rate: Tuple[int, int]) -> int:
    """Return the stream length after puncturing ``original_length`` bits."""
    pattern = _pattern_for(rate)
    repeats = int(np.ceil(original_length / pattern.size))
    mask = np.tile(pattern, repeats)[:original_length]
    return int(np.sum(mask))
