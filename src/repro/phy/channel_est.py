"""Least-squares channel estimation from the long training fields.

A receiver that hears a MIMO preamble (time-orthogonal LTFs, see
:mod:`repro.phy.preamble`) estimates, per OFDM subcarrier, the channel
from each transmit antenna to each of its own antennas.  These estimates
are what n+ uses everywhere: to compute the pre-coding vectors via
reciprocity, to build the orthogonal projection for multi-dimensional
carrier sense, and to decode MIMO streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import DimensionError
from repro.phy.ofdm import OfdmConfig, OfdmModem
from repro.phy.preamble import Preamble, ltf_frequency_sequence

__all__ = ["ChannelEstimate", "estimate_channel_from_ltf", "estimate_mimo_channel"]


@dataclass
class ChannelEstimate:
    """Per-subcarrier MIMO channel estimate.

    Attributes
    ----------
    matrices:
        Complex array of shape ``(n_subcarriers, n_rx, n_tx)``; entry
        ``[k, j, i]`` is the channel from transmit antenna ``i`` to receive
        antenna ``j`` on subcarrier ``k``.  Only the bins listed in
        ``valid_bins`` are meaningful.
    valid_bins:
        FFT bins for which the estimate is valid (the LTF occupies bins
        -26..26 excluding DC).
    """

    matrices: np.ndarray
    valid_bins: np.ndarray

    @property
    def n_rx(self) -> int:
        """Number of receive antennas."""
        return self.matrices.shape[1]

    @property
    def n_tx(self) -> int:
        """Number of transmit antennas."""
        return self.matrices.shape[2]

    def at(self, subcarrier: int) -> np.ndarray:
        """Return the ``(n_rx, n_tx)`` channel matrix of one subcarrier."""
        return self.matrices[subcarrier]

    def average_matrix(self) -> np.ndarray:
        """Return the channel averaged over the valid subcarriers.

        Useful for narrowband reasoning and for the geometric examples of
        §2 where a single matrix per link suffices.
        """
        return self.matrices[self.valid_bins].mean(axis=0)


def estimate_channel_from_ltf(
    received_slot: np.ndarray,
    config: Optional[OfdmConfig] = None,
) -> np.ndarray:
    """Estimate the single-antenna channel from one received LTF slot.

    Parameters
    ----------
    received_slot:
        Time-domain samples of one antenna covering exactly the LTF slot
        (``NUM_LONG_TRAINING_SYMBOLS`` OFDM symbols).
    config:
        OFDM numerology.

    Returns
    -------
    numpy.ndarray
        Complex array of length ``fft_size`` with the least-squares channel
        estimate per subcarrier (zero on bins the LTF does not occupy).
    """
    config = config or OfdmConfig()
    modem = OfdmModem(config)
    grid = modem.demodulate_grid(np.asarray(received_slot, dtype=complex))
    reference = ltf_frequency_sequence(config)
    occupied = np.abs(reference) > 0
    averaged = grid.mean(axis=0)
    estimate = np.zeros(config.fft_size, dtype=complex)
    estimate[occupied] = averaged[occupied] / reference[occupied]
    return estimate


def estimate_mimo_channel(
    received: np.ndarray,
    preamble: Preamble,
    preamble_start: int = 0,
) -> ChannelEstimate:
    """Estimate the full MIMO channel from a received MIMO preamble.

    All ``(tx, rx)`` antenna pairs are estimated at once: the LTF slots of
    every pair are gathered into one ``(n_rx, n_tx, n_symbols, fft)``
    stack, demodulated with a single batched FFT and solved against the
    known LTF sequence in one vectorised least-squares division, instead
    of looping over antenna pairs.  The per-pair loop is kept as
    :func:`_estimate_mimo_channel_reference` and the test suite asserts
    both produce bit-identical estimates.

    Parameters
    ----------
    received:
        Complex array of shape ``(n_rx, n_samples)`` with the samples of
        each receive antenna, containing the preamble starting at
        ``preamble_start``.
    preamble:
        The transmitted preamble structure (defines the LTF slots).
    preamble_start:
        Sample index where the preamble begins in ``received``.

    Returns
    -------
    ChannelEstimate
        Per-subcarrier channel matrices of shape
        ``(fft_size, n_rx, n_tx)``.
    """
    received = np.asarray(received, dtype=complex)
    if received.ndim == 1:
        received = received.reshape(1, -1)
    n_rx = received.shape[0]
    n_tx = preamble.n_antennas
    config = preamble.config
    if preamble_start + preamble.length > received.shape[1]:
        raise DimensionError(
            "received samples are shorter than the preamble: "
            f"{received.shape[1]} < {preamble_start + preamble.length}"
        )

    # Gather every (rx, tx) LTF slot: slot t of antenna t starts right
    # after the STF at a fixed stride, so one index grid pulls the whole
    # (n_rx, n_tx, slot_len) stack out of the received samples.
    slot_len = preamble.ltf_slot_length
    first_slot, _ = preamble.ltf_slot_bounds(0)
    starts = preamble_start + first_slot + slot_len * np.arange(n_tx)
    slots = received[:, starts[:, None] + np.arange(slot_len)[None, :]]

    # Batched OFDM demodulation (drop each symbol's cyclic prefix, FFT
    # over the last axis) and LTF averaging, mirroring
    # OfdmModem.demodulate_grid / estimate_channel_from_ltf exactly.
    sps = config.samples_per_symbol
    symbols = slots.reshape(n_rx, n_tx, slot_len // sps, sps)[..., config.cp_length :]
    grids = np.fft.fft(symbols, axis=-1) / np.sqrt(config.fft_size)
    averaged = grids.mean(axis=2)  # (n_rx, n_tx, fft_size)

    reference = ltf_frequency_sequence(config)
    occupied = np.abs(reference) > 0
    matrices = np.zeros((config.fft_size, n_rx, n_tx), dtype=complex)
    matrices[occupied] = np.moveaxis(
        averaged[..., occupied] / reference[occupied], -1, 0
    )
    return ChannelEstimate(matrices=matrices, valid_bins=np.where(occupied)[0])


def _estimate_mimo_channel_reference(
    received: np.ndarray,
    preamble: Preamble,
    preamble_start: int = 0,
) -> ChannelEstimate:
    """Per-(tx, rx)-pair estimation loop, kept as the readable reference.

    :func:`estimate_mimo_channel` must produce bit-identical matrices;
    the test suite asserts it for 1x1, 2x2, 3x3 and rectangular arrays.
    """
    received = np.asarray(received, dtype=complex)
    if received.ndim == 1:
        received = received.reshape(1, -1)
    n_rx = received.shape[0]
    config = preamble.config
    if preamble_start + preamble.length > received.shape[1]:
        raise DimensionError(
            "received samples are shorter than the preamble: "
            f"{received.shape[1]} < {preamble_start + preamble.length}"
        )

    matrices = np.zeros((config.fft_size, n_rx, preamble.n_antennas), dtype=complex)
    reference = ltf_frequency_sequence(config)
    occupied = np.abs(reference) > 0
    for tx_antenna in range(preamble.n_antennas):
        start, end = preamble.ltf_slot_bounds(tx_antenna)
        start += preamble_start
        end += preamble_start
        for rx_antenna in range(n_rx):
            slot = received[rx_antenna, start:end]
            estimate = estimate_channel_from_ltf(slot, config)
            matrices[:, rx_antenna, tx_antenna] = estimate
    return ChannelEstimate(matrices=matrices, valid_bins=np.where(occupied)[0])
