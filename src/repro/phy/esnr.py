"""Effective SNR and the ESNR-to-bitrate mapping (§3.4).

n+ selects the bitrate of each packet from the effective SNR (ESNR)
measured on the light-weight RTS *after projecting out ongoing
transmissions*.  The ESNR, introduced by Halperin et al. [16], compresses
the per-subcarrier SNRs of a frequency-selective channel into a single
number by going through the bit-error-rate domain:

1. compute the uncoded BER each subcarrier would see for a given
   modulation,
2. average the BERs over subcarriers,
3. map the average BER back to the SNR of a flat channel with the same
   BER -- that flat-equivalent SNR is the ESNR.

The ESNR is then compared against per-MCS thresholds to pick the fastest
scheme expected to deliver the packet.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np
from scipy.optimize import brentq

from repro.phy.modulation import Modulation, get_modulation
from repro.phy.rates import MCS, MCS_TABLE
from repro.utils.db import linear_to_db

__all__ = [
    "per_subcarrier_snr_db",
    "effective_snr_db",
    "select_mcs",
    "esnr_for_modulation",
    "esnr_ber_average",
    "delivery_margin_db",
    "packet_delivery_probability",
]


def per_subcarrier_snr_db(
    channel_gains: np.ndarray,
    noise_power: float,
    signal_power: float = 1.0,
) -> np.ndarray:
    """Per-subcarrier SNR (dB) from complex channel gains and noise power.

    Parameters
    ----------
    channel_gains:
        Complex effective channel gain of the wanted stream on each
        subcarrier (after any projection / equalisation).
    noise_power:
        Noise (plus residual interference) power per subcarrier, linear.
    signal_power:
        Transmit power allocated to the stream, linear.
    """
    gains = np.abs(np.asarray(channel_gains, dtype=complex)) ** 2
    noise = max(float(noise_power), 1e-30)
    return linear_to_db(signal_power * gains / noise)


def _ber_for_snr(modulation: Modulation, snr_db: float) -> float:
    """Uncoded BER of ``modulation`` at a given SNR (AWGN approximation)."""
    return min(0.5, max(modulation.bit_error_probability(snr_db), 1e-15))


def esnr_ber_average(subcarrier_snrs_db: Sequence[float], modulation: Modulation) -> float:
    """The uncoded-BER-averaging effective SNR.

    Averages the per-subcarrier *uncoded* BER for ``modulation`` and
    inverts the BER curve to find the flat-channel SNR with the same
    average BER.  This is the most literal reading of the ESNR definition,
    but because it ignores the convolutional code and interleaver it is
    dominated by the single worst subcarrier; the simulator therefore uses
    :func:`esnr_for_modulation` (mutual-information averaging) for rate
    selection and keeps this variant for comparison and unit tests.
    """
    snrs = np.asarray(list(subcarrier_snrs_db), dtype=float)
    if snrs.size == 0:
        return -np.inf
    bers = np.array([_ber_for_snr(modulation, snr) for snr in snrs])
    mean_ber = float(np.mean(bers))
    if mean_ber <= 1e-14:
        return float(np.max(snrs))
    if mean_ber >= 0.5 - 1e-12:
        return float(np.min(snrs))

    def objective(snr_db: float) -> float:
        return _ber_for_snr(modulation, snr_db) - mean_ber

    low, high = -20.0, 60.0
    # The BER curve is monotonically decreasing in SNR, so bisection works.
    try:
        return float(brentq(objective, low, high))
    except ValueError:
        # mean BER outside the achievable bracket; clamp.
        return float(np.clip(np.mean(snrs), low, high))


def esnr_for_modulation(subcarrier_snrs_db: Sequence[float], modulation: Modulation) -> float:
    """Effective SNR of a frequency-selective channel for a coded system.

    Per-subcarrier SNRs are mapped to mutual information
    (``log2(1 + SNR)``), averaged, and mapped back to the SNR of a flat
    channel with the same average -- the standard mean-mutual-information
    effective-SNR mapping used in system-level OFDM simulators.  Unlike a
    plain uncoded-BER average (:func:`esnr_ber_average`), this captures the
    fact that the convolutional code and interleaver recover isolated
    faded subcarriers, which is what makes the ESNR-to-rate table of
    Halperin et al. an accurate packet-delivery predictor in practice.

    The ``modulation`` bounds the useful information per symbol: once every
    subcarrier already saturates the constellation, extra SNR does not
    change the effective SNR ordering among candidate rates.
    """
    snrs = np.asarray(list(subcarrier_snrs_db), dtype=float)
    if snrs.size == 0:
        return -np.inf
    snr_linear = np.power(10.0, snrs / 10.0)
    mutual_information = np.log2(1.0 + snr_linear)
    mean_information = float(np.mean(mutual_information))
    effective_linear = max(2.0**mean_information - 1.0, 1e-12)
    return float(10.0 * np.log10(effective_linear))


def effective_snr_db(
    subcarrier_snrs_db: Sequence[float],
    modulation: Optional[Modulation] = None,
) -> float:
    """Effective SNR of a set of per-subcarrier SNRs.

    If ``modulation`` is omitted the QPSK BER curve is used, which is the
    conventional reference curve for a modulation-agnostic ESNR.
    """
    modulation = modulation or get_modulation("qpsk")
    return esnr_for_modulation(subcarrier_snrs_db, modulation)


def select_mcs(
    subcarrier_snrs_db: Sequence[float],
    table: Iterable[MCS] = MCS_TABLE,
    margin_db: float = 0.0,
) -> MCS:
    """Pick the fastest MCS whose ESNR threshold is met (§3.4).

    Each candidate MCS is evaluated with its own modulation's BER curve,
    as in Halperin et al.; the fastest scheme whose ``min_esnr_db`` (plus
    an optional safety margin) is satisfied wins.  If none qualifies the
    most robust MCS is returned.
    """
    table = list(table)
    best = table[0]
    for mcs in table:
        esnr = esnr_for_modulation(subcarrier_snrs_db, mcs.modulation)
        if esnr >= mcs.min_esnr_db + margin_db:
            best = mcs
    return best


def delivery_margin_db(
    subcarrier_snrs_db: Sequence[float],
    mcs: MCS,
    threshold_offset_db: float = 2.5,
) -> float:
    """Signed ESNR distance (dB) to the 50% delivery point at ``mcs``.

    The abstraction's delivery model is a logistic centred
    ``threshold_offset_db`` *below* ``mcs.min_esnr_db`` (see
    :func:`packet_delivery_probability`): the per-MCS thresholds of
    Halperin et al. mark where delivery is already likely, not the 50%
    point.  This helper exposes that margin directly so the fidelity
    layer (:mod:`repro.sim.fidelity`) classifies links against the *same*
    cliff centre the probability model uses -- a link with
    ``|margin| <= band_db`` sits in the uncertain region where the
    abstraction and the full transceiver may disagree.
    """
    esnr = esnr_for_modulation(subcarrier_snrs_db, mcs.modulation)
    return float(esnr - mcs.min_esnr_db + threshold_offset_db)


def packet_delivery_probability(
    subcarrier_snrs_db: Sequence[float],
    mcs: MCS,
    packet_bits: int,
    steepness_db: float = 1.0,
    threshold_offset_db: float = 2.5,
) -> float:
    """Probability that a packet at ``mcs`` is delivered, given the ESNR.

    The paper's prototype observes essentially binary behaviour around the
    ESNR threshold (packets either deliver or not); we model the packet
    delivery ratio as a logistic function of the ESNR margin with a
    configurable steepness, which reproduces that cliff while keeping the
    simulation differentiable in the SNR.  The per-MCS ``min_esnr_db``
    values are the points where delivery is already *likely* (that is how
    the ESNR-to-rate table of Halperin et al. is defined), so the logistic
    is centred ``threshold_offset_db`` below the threshold: a packet sent
    exactly at threshold succeeds with probability ~0.9, one sent a couple
    of dB above essentially always succeeds, and one sent a couple of dB
    below almost always fails.
    """
    margin = delivery_margin_db(subcarrier_snrs_db, mcs, threshold_offset_db)
    base = 1.0 / (1.0 + np.exp(-margin / max(steepness_db, 1e-3)))
    # Longer packets are slightly harder to deliver at the same BER.
    length_factor = min(1.0, 12_000 / max(packet_bits, 1))
    exponent = 1.0 + 0.25 * (1.0 - length_factor)
    return float(base**exponent)
