"""Constellation mapping and demapping for the 802.11 modulations.

The paper's prototype supports BPSK, 4-QAM (QPSK), 16-QAM and 64-QAM
(§5).  All constellations are Gray mapped and normalised to unit average
energy so that a stream's transmit power does not depend on its
modulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DimensionError

__all__ = ["Modulation", "MODULATIONS", "get_modulation"]


def _gray_code(n: int) -> int:
    """Return the Gray code of ``n``."""
    return n ^ (n >> 1)


def _pam_levels(bits_per_axis: int) -> np.ndarray:
    """Return the Gray-mapped PAM amplitude for each integer label.

    ``levels[label]`` is the amplitude transmitted for that label, with
    adjacent amplitudes differing in exactly one bit of the label.
    """
    m = 1 << bits_per_axis
    amplitudes = 2 * np.arange(m) - (m - 1)
    levels = np.empty(m, dtype=float)
    for position, amplitude in enumerate(amplitudes):
        levels[_gray_code(position)] = amplitude
    return levels


def _build_constellation(bits_per_symbol: int) -> np.ndarray:
    """Return the unit-energy constellation points indexed by symbol label.

    For square QAM the label is split into an I-half (most significant
    bits) and a Q-half (least significant bits), each Gray-mapped onto a
    PAM amplitude, matching the 802.11a mapping.
    """
    if bits_per_symbol == 1:
        points = np.array([-1.0 + 0j, 1.0 + 0j])
        return points
    if bits_per_symbol % 2 != 0:
        raise ConfigurationError(
            f"square QAM requires an even number of bits per symbol, got {bits_per_symbol}"
        )
    half = bits_per_symbol // 2
    pam = _pam_levels(half)
    m = 1 << bits_per_symbol
    points = np.empty(m, dtype=complex)
    for label in range(m):
        i_label = label >> half
        q_label = label & ((1 << half) - 1)
        points[label] = pam[i_label] + 1j * pam[q_label]
    # Normalise to unit average energy.
    energy = np.mean(np.abs(points) ** 2)
    return points / np.sqrt(energy)


@dataclass(frozen=True)
class Modulation:
    """A Gray-mapped constellation.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"16qam"``.
    bits_per_symbol:
        Number of bits carried by each constellation point.
    points:
        Complex constellation points indexed by the integer label whose
        binary expansion (MSB first) is the transmitted bit group.
    """

    name: str
    bits_per_symbol: int
    points: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.points) != (1 << self.bits_per_symbol):
            raise ConfigurationError(
                f"{self.name}: expected {1 << self.bits_per_symbol} points, "
                f"got {len(self.points)}"
            )

    # -- mapping ----------------------------------------------------------

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit array to complex symbols.

        The bit count must be a multiple of :attr:`bits_per_symbol`.
        """
        bits = np.asarray(bits, dtype=np.int8)
        if bits.size % self.bits_per_symbol != 0:
            raise DimensionError(
                f"{self.name}: bit count {bits.size} is not a multiple of "
                f"{self.bits_per_symbol}"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        labels = groups @ weights
        return self.points[labels]

    # -- demapping --------------------------------------------------------

    def demodulate_hard(self, symbols: np.ndarray) -> np.ndarray:
        """Map noisy symbols to the bits of the nearest constellation point."""
        symbols = np.asarray(symbols, dtype=complex).reshape(-1)
        distances = np.abs(symbols[:, None] - self.points[None, :]) ** 2
        labels = np.argmin(distances, axis=1)
        out = np.zeros((symbols.size, self.bits_per_symbol), dtype=np.int8)
        for bit in range(self.bits_per_symbol):
            shift = self.bits_per_symbol - 1 - bit
            out[:, bit] = (labels >> shift) & 1
        return out.reshape(-1)

    def demodulate_soft(self, symbols: np.ndarray, noise_var: float = 1.0) -> np.ndarray:
        """Return per-bit log-likelihood ratios (positive means bit = 0).

        Uses the max-log approximation:
        ``LLR(b) ~ (min_{s: b=1} |y-s|^2 - min_{s: b=0} |y-s|^2) / N0``.
        """
        symbols = np.asarray(symbols, dtype=complex).reshape(-1)
        noise_var = max(float(noise_var), 1e-12)
        distances = np.abs(symbols[:, None] - self.points[None, :]) ** 2
        llrs = np.zeros((symbols.size, self.bits_per_symbol))
        labels = np.arange(len(self.points))
        for bit in range(self.bits_per_symbol):
            shift = self.bits_per_symbol - 1 - bit
            mask_one = ((labels >> shift) & 1).astype(bool)
            d_zero = distances[:, ~mask_one].min(axis=1)
            d_one = distances[:, mask_one].min(axis=1)
            llrs[:, bit] = (d_one - d_zero) / noise_var
        return llrs.reshape(-1)

    # -- link-quality helpers ----------------------------------------------

    def symbol_error_probability(self, snr_db: float) -> float:
        """Approximate symbol error probability on an AWGN channel."""
        from scipy.special import erfc

        snr = 10 ** (snr_db / 10.0)
        if self.bits_per_symbol == 1:
            return float(0.5 * erfc(np.sqrt(snr)))
        m = 1 << self.bits_per_symbol
        k = np.sqrt(3.0 * snr / (m - 1))
        per_axis = (1 - 1 / np.sqrt(m)) * erfc(k / np.sqrt(2))
        return float(min(1.0, 2 * per_axis - per_axis**2))

    def bit_error_probability(self, snr_db: float) -> float:
        """Approximate (Gray-mapped) bit error probability on AWGN."""
        return self.symbol_error_probability(snr_db) / self.bits_per_symbol


def _make_modulations() -> Dict[str, Modulation]:
    return {
        "bpsk": Modulation("bpsk", 1, _build_constellation(1)),
        "qpsk": Modulation("qpsk", 2, _build_constellation(2)),
        "16qam": Modulation("16qam", 4, _build_constellation(4)),
        "64qam": Modulation("64qam", 6, _build_constellation(6)),
    }


#: The modulations supported by the prototype (§5).
MODULATIONS: Dict[str, Modulation] = _make_modulations()

#: Aliases accepted by :func:`get_modulation`.
_ALIASES: Dict[str, str] = {
    "4qam": "qpsk",
    "qam4": "qpsk",
    "qam16": "16qam",
    "qam64": "64qam",
}


def get_modulation(name: str) -> Modulation:
    """Look up a modulation by name (case-insensitive, aliases allowed)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return MODULATIONS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown modulation {name!r}; choose from {sorted(MODULATIONS)}"
        ) from None
