"""Carrier-frequency-offset (CFO) estimation and correction.

In n+ all transmitters that join an ongoing transmission compensate their
frequency offset relative to the *first* contention winner (§4,
"Frequency Offset"): while decoding the first winner's light-weight RTS
they estimate the offset from its periodic preamble and pre-rotate their
own samples by ``exp(j 2 pi df t)`` so that every receiver sees a single
common offset.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SynchronizationError

__all__ = ["estimate_cfo", "apply_cfo", "correct_cfo", "residual_cfo_after_compensation"]


def estimate_cfo(samples: np.ndarray, period: int, sample_rate_hz: float) -> float:
    """Estimate the carrier frequency offset from a periodic training field.

    The phase drift between two samples separated by ``period`` equals
    ``2 pi * cfo * period / fs``; averaging the conjugate product over the
    field gives a robust estimate (Schmidl-Cox style).

    Parameters
    ----------
    samples:
        Received samples covering at least two repetitions of the periodic
        training symbol.
    period:
        Repetition period in samples (16 for the 802.11 STF).
    sample_rate_hz:
        Sample rate in Hz.

    Returns
    -------
    float
        The estimated CFO in Hz.
    """
    samples = np.asarray(samples, dtype=complex).reshape(-1)
    if samples.size < 2 * period:
        raise SynchronizationError(
            f"need at least {2 * period} samples to estimate CFO, got {samples.size}"
        )
    first = samples[:-period]
    second = samples[period:]
    accumulator = np.vdot(first, second)  # sum conj(first) * second
    if accumulator == 0:
        return 0.0
    phase = np.angle(accumulator)
    return float(phase * sample_rate_hz / (2 * np.pi * period))


def apply_cfo(samples: np.ndarray, cfo_hz: float, sample_rate_hz: float, start_index: int = 0) -> np.ndarray:
    """Rotate ``samples`` by a carrier frequency offset of ``cfo_hz``."""
    samples = np.asarray(samples, dtype=complex)
    n = np.arange(start_index, start_index + samples.shape[-1])
    rotation = np.exp(2j * np.pi * cfo_hz * n / sample_rate_hz)
    return samples * rotation


def correct_cfo(samples: np.ndarray, cfo_hz: float, sample_rate_hz: float, start_index: int = 0) -> np.ndarray:
    """Remove a known carrier frequency offset from ``samples``."""
    return apply_cfo(samples, -cfo_hz, sample_rate_hz, start_index)


def residual_cfo_after_compensation(true_cfo_hz: float, estimated_cfo_hz: float) -> float:
    """Return the residual offset left after compensating with an estimate."""
    return float(true_cfo_hz - estimated_cfo_hz)
