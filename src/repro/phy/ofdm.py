"""OFDM modulation and demodulation.

n+ performs nulling and alignment independently per OFDM subcarrier
(§4, "Multipath"), so the OFDM layer is the natural boundary between the
MIMO pre-coding math (which operates on per-subcarrier channel matrices)
and the time-domain samples that travel through the channel model.

The numerology follows 802.11a/g: a 64-point FFT, 48 data subcarriers,
4 pilots and a 16-sample cyclic prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Tuple

import numpy as np

from repro.constants import (
    CYCLIC_PREFIX_LENGTH,
    NULL_SUBCARRIER_INDICES,
    NUM_SUBCARRIERS,
    PILOT_SUBCARRIER_INDICES,
)
from repro.exceptions import DimensionError

__all__ = ["OfdmConfig", "OfdmModem"]

#: The 802.11a pilot polarity sequence (first few entries; it repeats).
_PILOT_VALUES = np.array([1.0, 1.0, 1.0, -1.0])


@dataclass(frozen=True)
class OfdmConfig:
    """Static OFDM numerology.

    Attributes
    ----------
    fft_size:
        Number of subcarriers (FFT length).
    cp_length:
        Cyclic-prefix length in samples.
    pilot_indices:
        FFT bins carrying pilots.
    null_indices:
        FFT bins left empty (DC and guard band).
    """

    fft_size: int = NUM_SUBCARRIERS
    cp_length: int = CYCLIC_PREFIX_LENGTH
    pilot_indices: Tuple[int, ...] = PILOT_SUBCARRIER_INDICES
    null_indices: Tuple[int, ...] = NULL_SUBCARRIER_INDICES

    @cached_property
    def data_indices(self) -> Tuple[int, ...]:
        """FFT bins carrying data symbols (computed once per config)."""
        reserved = set(self.pilot_indices) | set(self.null_indices)
        return tuple(i for i in range(self.fft_size) if i not in reserved)

    @cached_property
    def n_data_subcarriers(self) -> int:
        """Number of data subcarriers per OFDM symbol."""
        return len(self.data_indices)

    @cached_property
    def data_index_array(self) -> np.ndarray:
        """:attr:`data_indices` as a read-only index array for hot paths."""
        array = np.array(self.data_indices, dtype=np.intp)
        array.setflags(write=False)
        return array

    @cached_property
    def pilot_index_array(self) -> np.ndarray:
        """:attr:`pilot_indices` as a read-only index array for hot paths."""
        array = np.array(self.pilot_indices, dtype=np.intp)
        array.setflags(write=False)
        return array

    @property
    def samples_per_symbol(self) -> int:
        """Time-domain samples per OFDM symbol including the cyclic prefix."""
        return self.fft_size + self.cp_length


@dataclass
class OfdmModem:
    """OFDM modulator/demodulator for one antenna's sample stream."""

    config: OfdmConfig = field(default_factory=OfdmConfig)

    # -- transmit -----------------------------------------------------------

    def modulate(self, data_symbols: np.ndarray) -> np.ndarray:
        """Turn frequency-domain data symbols into time-domain samples.

        Parameters
        ----------
        data_symbols:
            Complex array whose length is a multiple of the number of data
            subcarriers; each group of ``n_data_subcarriers`` values forms
            one OFDM symbol.

        Returns
        -------
        numpy.ndarray
            Time-domain samples of length
            ``n_symbols * (fft_size + cp_length)``.
        """
        cfg = self.config
        data_symbols = np.asarray(data_symbols, dtype=complex)
        n_data = cfg.n_data_subcarriers
        if data_symbols.size % n_data != 0:
            raise DimensionError(
                f"number of data symbols {data_symbols.size} is not a multiple of {n_data}"
            )
        n_symbols = data_symbols.size // n_data
        grid = np.zeros((n_symbols, cfg.fft_size), dtype=complex)
        grid[:, cfg.data_index_array] = data_symbols.reshape(n_symbols, n_data)
        grid[:, cfg.pilot_index_array] = _PILOT_VALUES[: len(cfg.pilot_indices)]
        return self.modulate_grid(grid)

    def modulate_grid(self, grid: np.ndarray) -> np.ndarray:
        """Modulate a full frequency-domain grid (``n_symbols x fft_size``).

        Unlike :meth:`modulate`, the caller controls every bin, which the
        MIMO transceiver uses to apply per-subcarrier pre-coding vectors.
        """
        cfg = self.config
        grid = np.asarray(grid, dtype=complex)
        if grid.ndim == 1:
            grid = grid.reshape(1, -1)
        if grid.shape[1] != cfg.fft_size:
            raise DimensionError(
                f"grid must have {cfg.fft_size} columns, got {grid.shape[1]}"
            )
        time_symbols = np.fft.ifft(grid, axis=1) * np.sqrt(cfg.fft_size)
        with_cp = np.concatenate([time_symbols[:, -cfg.cp_length :], time_symbols], axis=1)
        return with_cp.reshape(-1)

    # -- receive ------------------------------------------------------------

    def demodulate_grid(self, samples: np.ndarray) -> np.ndarray:
        """Turn time-domain samples back into the frequency-domain grid.

        The sample count must be a multiple of the symbol length; the
        cyclic prefix of each symbol is discarded.
        """
        cfg = self.config
        samples = np.asarray(samples, dtype=complex)
        sps = cfg.samples_per_symbol
        if samples.size % sps != 0:
            raise DimensionError(
                f"sample count {samples.size} is not a multiple of the symbol length {sps}"
            )
        n_symbols = samples.size // sps
        shaped = samples.reshape(n_symbols, sps)[:, cfg.cp_length :]
        return np.fft.fft(shaped, axis=1) / np.sqrt(cfg.fft_size)

    def demodulate(self, samples: np.ndarray) -> np.ndarray:
        """Return the data-subcarrier symbols from time-domain samples."""
        grid = self.demodulate_grid(samples)
        return grid[:, self.config.data_index_array].reshape(-1)

    # -- helpers -------------------------------------------------------------

    def n_symbols(self, n_samples: int) -> int:
        """Number of complete OFDM symbols contained in ``n_samples``."""
        return n_samples // self.config.samples_per_symbol
