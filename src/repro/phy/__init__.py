"""Software PHY layer.

This package implements the baseband signal processing needed to reproduce
the paper's USRP2/GNURadio prototype in simulation:

* :mod:`repro.phy.modulation` -- BPSK, QPSK (4-QAM), 16-QAM and 64-QAM
  constellations with Gray mapping and soft demapping.
* :mod:`repro.phy.coding` -- the 802.11 convolutional code (K=7), Viterbi
  decoding, puncturing to rates 2/3 and 3/4, the per-symbol block
  interleaver and the frame scrambler.
* :mod:`repro.phy.ofdm` -- OFDM modulation/demodulation with cyclic prefix
  and pilot subcarriers.
* :mod:`repro.phy.preamble` -- 802.11-style short/long training fields,
  per-antenna orthogonal training, and preamble cross-correlation used by
  carrier sense.
* :mod:`repro.phy.channel_est` -- least-squares MIMO channel estimation.
* :mod:`repro.phy.cfo` -- carrier-frequency-offset estimation/correction.
* :mod:`repro.phy.sync` -- packet detection and symbol timing.
* :mod:`repro.phy.esnr` -- effective SNR (Halperin et al.) and the
  ESNR-to-bitrate table used by n+'s per-packet bitrate selection.
* :mod:`repro.phy.rates` -- the 802.11 modulation-and-coding-scheme table.
* :mod:`repro.phy.frame` -- PHY frame headers and serialization.
* :mod:`repro.phy.transceiver` -- the end-to-end multi-antenna TX/RX chain.
"""

from repro.phy.modulation import Modulation, get_modulation, MODULATIONS
from repro.phy.rates import MCS, MCS_TABLE, mcs_by_index, data_rate_mbps
from repro.phy.esnr import effective_snr_db, select_mcs, per_subcarrier_snr_db

__all__ = [
    "Modulation",
    "get_modulation",
    "MODULATIONS",
    "MCS",
    "MCS_TABLE",
    "mcs_by_index",
    "data_rate_mbps",
    "effective_snr_db",
    "select_mcs",
    "per_subcarrier_snr_db",
]
