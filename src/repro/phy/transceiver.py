"""End-to-end multi-antenna transmit and receive chains.

The transmitter turns one or more spatial streams (bits + MCS +
per-subcarrier pre-coding vector) into per-antenna time-domain samples:

    bits -> FEC (scramble, code, puncture, interleave) -> constellation
         -> per-subcarrier pre-coding -> OFDM -> preamble + body samples

The preamble is pre-coded with the same vectors as the data
(paper footnote 1), so a receiver estimating the channel from the
preamble directly obtains the *effective* channel of each stream and
never needs to know the pre-coding vectors themselves.

The receiver performs the inverse chain with least-squares channel
estimation and per-subcarrier zero-forcing over all streams it can see,
which is exactly the "solve the linear system" decoding of §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DecodingError, DimensionError
from repro.phy.channel_est import ChannelEstimate, estimate_mimo_channel
from repro.phy.coding.codec import Codec
from repro.phy.ofdm import OfdmConfig, OfdmModem
from repro.phy.preamble import Preamble
from repro.phy.rates import MCS
from repro.utils.bits import bit_error_rate

__all__ = ["StreamConfig", "FrameLayout", "MimoTransmitter", "MimoReceiver", "DecodedStream"]


@dataclass
class StreamConfig:
    """One spatial stream of a frame.

    Attributes
    ----------
    bits:
        Information bits to send.
    mcs:
        Modulation and coding scheme of the stream.
    precoder:
        Pre-coding vectors: either a complex array of shape
        ``(n_tx_antennas,)`` applied on every subcarrier, or of shape
        ``(fft_size, n_tx_antennas)`` for per-subcarrier pre-coding
        (the n+ case, §4 "Multipath").
    stream_id:
        Identifier used by receivers to refer to the stream.
    """

    bits: np.ndarray
    mcs: MCS
    precoder: np.ndarray
    stream_id: int = 0

    def precoder_matrix(self, n_antennas: int, fft_size: int) -> np.ndarray:
        """Return the stacked ``(fft_size, n_antennas)`` pre-coder array.

        A flat (per-frame) pre-coder is broadcast across all subcarriers;
        the returned array may therefore be a read-only broadcast view.
        """
        precoder = np.asarray(self.precoder, dtype=complex)
        if precoder.ndim == 1:
            if precoder.size != n_antennas:
                raise DimensionError(
                    f"precoder length {precoder.size} does not match antenna count {n_antennas}"
                )
            return np.broadcast_to(precoder, (fft_size, n_antennas))
        if precoder.ndim != 2 or precoder.shape[0] != fft_size:
            raise DimensionError(
                f"precoder must have shape ({n_antennas},) or ({fft_size}, {n_antennas}), "
                f"got {precoder.shape}"
            )
        if precoder.shape[1] != n_antennas:
            raise DimensionError(
                f"precoder length {precoder.shape[1]} does not match antenna count {n_antennas}"
            )
        return precoder

    def precoder_at(self, subcarrier: int, n_antennas: int, fft_size: int) -> np.ndarray:
        """Return the pre-coding vector used on ``subcarrier``."""
        return self.precoder_matrix(n_antennas, fft_size)[subcarrier]


@dataclass
class FrameLayout:
    """Describes the structure of a transmitted frame so a receiver can
    locate the preamble and body and decode each stream.

    Attributes
    ----------
    n_streams:
        Number of spatial streams in the frame.
    n_body_symbols:
        Number of OFDM symbols in the body.
    stream_bits:
        Information bit count per stream (indexed by stream position).
    stream_mcs:
        MCS per stream.
    stream_ids:
        Stream identifiers in transmission order.
    config:
        OFDM numerology used.
    """

    n_streams: int
    n_body_symbols: int
    stream_bits: List[int]
    stream_mcs: List[MCS]
    stream_ids: List[int]
    config: OfdmConfig = field(default_factory=OfdmConfig)

    @property
    def preamble(self) -> Preamble:
        """The preamble structure (one LTF slot per stream)."""
        return Preamble(n_antennas=self.n_streams, config=self.config)

    @property
    def preamble_length(self) -> int:
        """Preamble length in samples."""
        return self.preamble.length

    @property
    def body_length(self) -> int:
        """Body length in samples."""
        return self.n_body_symbols * self.config.samples_per_symbol

    @property
    def frame_length(self) -> int:
        """Total frame length in samples."""
        return self.preamble_length + self.body_length


@dataclass
class DecodedStream:
    """Result of decoding one stream.

    Attributes
    ----------
    stream_id:
        Identifier of the decoded stream.
    bits:
        The decoded information bits.
    evm:
        Error-vector magnitude of the equalised constellation points.
    post_snr_db:
        Estimated post-equalisation SNR in dB.
    """

    stream_id: int
    bits: np.ndarray
    evm: float
    post_snr_db: float

    def bit_error_rate(self, reference_bits: np.ndarray) -> float:
        """BER of the decoded bits against a known reference."""
        return bit_error_rate(np.asarray(reference_bits, dtype=np.int8), self.bits)


class MimoTransmitter:
    """Builds per-antenna sample streams for a multi-stream frame."""

    def __init__(self, n_antennas: int, config: Optional[OfdmConfig] = None):
        if n_antennas < 1:
            raise ConfigurationError("transmitter needs at least one antenna")
        self.n_antennas = n_antennas
        self.config = config or OfdmConfig()
        self._modem = OfdmModem(self.config)

    def build_frame(self, streams: Sequence[StreamConfig]) -> tuple:
        """Return ``(samples, layout)`` for the given streams.

        ``samples`` has shape ``(n_antennas, frame_length)``.  All streams
        must fit in the same number of OFDM symbols; shorter streams are
        padded by their codec.
        """
        streams = list(streams)
        if not streams:
            raise ConfigurationError("at least one stream is required")
        cfg = self.config
        codecs = [Codec(s.mcs) for s in streams]
        n_symbols = max(
            codec.n_ofdm_symbols(len(np.asarray(s.bits))) for codec, s in zip(codecs, streams)
        )

        # Encode and modulate each stream, padding to the common symbol count.
        stream_grids = []
        for stream, codec in zip(streams, codecs):
            coded = codec.encode(np.asarray(stream.bits, dtype=np.int8))
            symbols = stream.mcs.modulation.modulate(coded)
            per_symbol = cfg.n_data_subcarriers
            total_needed = n_symbols * per_symbol
            if symbols.size < total_needed:
                pad = np.zeros(total_needed - symbols.size, dtype=complex)
                symbols = np.concatenate([symbols, pad])
            grid = np.zeros((n_symbols, cfg.fft_size), dtype=complex)
            grid[:, cfg.data_index_array] = symbols.reshape(n_symbols, per_symbol)
            grid[:, cfg.pilot_index_array] = 1.0
            stream_grids.append(grid)

        # Apply per-subcarrier pre-coding and sum streams per antenna: one
        # einsum over the stacked (stream, fft, antenna) pre-coder array
        # replaces the per-subcarrier outer-product loop.
        grids = np.stack(stream_grids)  # (n_streams, n_symbols, fft_size)
        precoders = np.stack(
            [s.precoder_matrix(self.n_antennas, cfg.fft_size) for s in streams]
        )  # (n_streams, fft_size, n_antennas)
        antenna_grids = np.einsum("pka,psk->ask", precoders, grids)

        body = np.stack(
            [self._modem.modulate_grid(antenna_grids[a]) for a in range(self.n_antennas)]
        )

        # Pre-coded preamble: one LTF slot per stream, each passed through
        # that stream's pre-coding vectors.
        layout = FrameLayout(
            n_streams=len(streams),
            n_body_symbols=n_symbols,
            stream_bits=[len(np.asarray(s.bits)) for s in streams],
            stream_mcs=[s.mcs for s in streams],
            stream_ids=[s.stream_id for s in streams],
            config=cfg,
        )
        preamble_samples = self._build_precoded_preamble(streams, layout.preamble)
        samples = np.concatenate([preamble_samples, body], axis=1)
        return samples, layout

    def _build_precoded_preamble(
        self, streams: Sequence[StreamConfig], preamble: Preamble
    ) -> np.ndarray:
        """Pre-code the per-stream preamble onto the physical antennas."""
        cfg = self.config
        virtual = preamble.per_antenna_samples()  # (n_streams, length)
        out = np.zeros((self.n_antennas, preamble.length), dtype=complex)
        from repro.phy.preamble import ltf_frequency_sequence, long_training_field, short_training_field

        stf = short_training_field(cfg) / np.sqrt(len(streams))
        # STF: transmit through the first stream's average pre-coder so the
        # field keeps its periodic structure for detection and CFO.
        first_vector = streams[0].precoder_at(cfg.data_indices[0], self.n_antennas, cfg.fft_size)
        norm = np.linalg.norm(first_vector)
        if norm > 0:
            first_vector = first_vector / norm
        out[:, : len(stf)] += np.outer(first_vector, stf)

        # LTF slots: stream i's LTF, pre-coded per subcarrier.  Bins the LTF
        # does not occupy have a zero reference value, so the broadcast
        # product leaves them empty without an explicit skip.
        modem = self._modem
        reference = ltf_frequency_sequence(cfg)
        from repro.constants import NUM_LONG_TRAINING_SYMBOLS

        for position, stream in enumerate(streams):
            start, end = preamble.ltf_slot_bounds(position)
            matrix = stream.precoder_matrix(self.n_antennas, cfg.fft_size)
            precoded = reference[:, None] * matrix  # (fft_size, n_antennas)
            slots = np.broadcast_to(
                precoded, (NUM_LONG_TRAINING_SYMBOLS,) + precoded.shape
            )
            for antenna in range(self.n_antennas):
                out[antenna, start:end] = modem.modulate_grid(slots[:, :, antenna])
        return out


class MimoReceiver:
    """Estimates effective channels and decodes wanted streams."""

    def __init__(self, n_antennas: int, config: Optional[OfdmConfig] = None):
        if n_antennas < 1:
            raise ConfigurationError("receiver needs at least one antenna")
        self.n_antennas = n_antennas
        self.config = config or OfdmConfig()
        self._modem = OfdmModem(self.config)

    # -- channel estimation --------------------------------------------------

    def estimate_effective_channels(
        self, samples: np.ndarray, layout: FrameLayout, frame_start: int = 0
    ) -> ChannelEstimate:
        """Estimate the per-stream effective channel from the preamble.

        The returned estimate has one "transmit antenna" per *stream*: the
        effective channel already folds in the transmitter's pre-coding.
        """
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim == 1:
            samples = samples.reshape(1, -1)
        if samples.shape[0] != self.n_antennas:
            raise DimensionError(
                f"expected {self.n_antennas} receive chains, got {samples.shape[0]}"
            )
        return estimate_mimo_channel(samples, layout.preamble, frame_start)

    # -- decoding -------------------------------------------------------------

    def decode(
        self,
        samples: np.ndarray,
        layout: FrameLayout,
        wanted_streams: Optional[Sequence[int]] = None,
        channel_estimate: Optional[ChannelEstimate] = None,
        frame_start: int = 0,
        noise_power: float = 1e-6,
    ) -> Dict[int, DecodedStream]:
        """Decode the wanted streams of a frame.

        Parameters
        ----------
        samples:
            Received samples, shape ``(n_rx, n_samples)``.
        layout:
            The frame layout shared by the transmitter (in the protocol it
            is conveyed by the light-weight header).
        wanted_streams:
            Stream ids to decode; defaults to all streams in the frame.
        channel_estimate:
            Optional pre-computed effective-channel estimate.
        frame_start:
            Sample index where the frame begins.
        noise_power:
            Noise power per subcarrier used by the soft demapper.
        """
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim == 1:
            samples = samples.reshape(1, -1)
        wanted = list(wanted_streams) if wanted_streams is not None else list(layout.stream_ids)
        estimate = channel_estimate or self.estimate_effective_channels(samples, layout, frame_start)

        cfg = layout.config
        body_start = frame_start + layout.preamble_length
        body_end = body_start + layout.body_length
        if body_end > samples.shape[1]:
            raise DecodingError("received samples end before the frame body does")
        grids = np.stack(
            [self._modem.demodulate_grid(samples[a, body_start:body_end]) for a in range(samples.shape[0])]
        )  # (n_rx, n_symbols, fft_size)

        data_idx = cfg.data_index_array
        # Batched zero forcing: one stacked pseudo-inverse over all data
        # subcarriers instead of a per-subcarrier Python loop.
        h = estimate.matrices[data_idx]  # (n_data, n_rx, n_streams)
        y = grids[:, :, data_idx].transpose(2, 0, 1)  # (n_data, n_rx, n_symbols)
        h_pinv = np.linalg.pinv(h)  # (n_data, n_streams, n_rx)
        equalised = (h_pinv @ y).transpose(1, 2, 0)  # (n_streams, n_symbols, n_data)
        # Noise enhancement of the ZF equaliser per stream.
        post_noise = noise_power * np.sum(np.abs(h_pinv) ** 2, axis=2).T

        results: Dict[int, DecodedStream] = {}
        for position, stream_id in enumerate(layout.stream_ids):
            if stream_id not in wanted:
                continue
            mcs = layout.stream_mcs[position]
            n_bits = layout.stream_bits[position]
            codec = Codec(mcs)
            n_needed_symbols = codec.n_ofdm_symbols(n_bits)
            points = equalised[position, :n_needed_symbols, :].reshape(-1)
            coded_hard = mcs.modulation.demodulate_hard(points)
            bits = codec.decode(coded_hard, n_bits, soft=False)
            # Link-quality metrics from the equalised constellation.
            reference = mcs.modulation.points[
                np.argmin(np.abs(points[:, None] - mcs.modulation.points[None, :]) ** 2, axis=1)
            ]
            error = points - reference
            evm = float(np.sqrt(np.mean(np.abs(error) ** 2)))
            signal = float(np.mean(np.abs(reference) ** 2))
            post_snr_db = float(10 * np.log10(max(signal, 1e-30) / max(evm**2, 1e-30)))
            results[stream_id] = DecodedStream(
                stream_id=stream_id, bits=bits, evm=evm, post_snr_db=post_snr_db
            )
        return results
