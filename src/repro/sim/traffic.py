"""Traffic sources.

The paper's evaluation uses saturated (always-backlogged) sources sending
1500-byte packets; the Poisson source is provided for the bursty-traffic
examples and for fairness experiments under partial load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.constants import DEFAULT_PACKET_SIZE_BYTES
from repro.exceptions import ConfigurationError
from repro.mac.frames import Packet

__all__ = ["SaturatedSource", "PoissonSource"]


@dataclass
class SaturatedSource:
    """A source that always has another packet ready.

    Attributes
    ----------
    source_id, destination_id:
        Endpoints of the flow.
    packet_size_bytes:
        Size of every generated packet.
    """

    source_id: int
    destination_id: int
    packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    _next_packet_id: int = field(default=0, repr=False)

    def has_packet(self, now_us: float) -> bool:
        """Saturated sources always have traffic."""
        return True

    def next_packet_time_us(self, now_us: float) -> float:
        """When the next packet becomes available (now: always backlogged)."""
        return now_us

    def next_packet(self, now_us: float) -> Packet:
        """Generate the next packet."""
        packet = Packet(
            source=self.source_id,
            destination=self.destination_id,
            size_bytes=self.packet_size_bytes,
            packet_id=self._next_packet_id,
            created_us=now_us,
        )
        self._next_packet_id += 1
        return packet


@dataclass
class PoissonSource:
    """A Poisson packet-arrival process.

    Attributes
    ----------
    source_id, destination_id:
        Endpoints of the flow.
    rate_packets_per_second:
        Mean arrival rate.
    packet_size_bytes:
        Size of every generated packet.
    rng:
        Random generator for the arrival process.
    """

    source_id: int
    destination_id: int
    rate_packets_per_second: float
    rng: np.random.Generator
    packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    _next_arrival_us: Optional[float] = field(default=None, repr=False)
    _next_packet_id: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.rate_packets_per_second <= 0:
            raise ConfigurationError(
                f"Poisson rate must be positive, got {self.rate_packets_per_second}"
                " (use a saturated source for always-backlogged traffic)"
            )

    def _ensure_arrival(self, now_us: float) -> None:
        if self._next_arrival_us is None:
            self._next_arrival_us = now_us + self._draw_gap()

    def _draw_gap(self) -> float:
        mean_gap_us = 1e6 / self.rate_packets_per_second
        return float(self.rng.exponential(mean_gap_us))

    def has_packet(self, now_us: float) -> bool:
        """Whether a packet has arrived by ``now_us``."""
        self._ensure_arrival(now_us)
        return now_us >= self._next_arrival_us

    def next_packet_time_us(self, now_us: float) -> float:
        """Absolute time of the next arrival.

        Used by the event-driven runner to jump over idle gaps in one
        scheduler event instead of polling slot by slot.  Reading this
        does not consume randomness beyond what :meth:`has_packet` at the
        same instant would, so seeded runs stay byte-identical to the
        slot-polling loop.
        """
        self._ensure_arrival(now_us)
        return float(self._next_arrival_us)

    def next_packet(self, now_us: float) -> Packet:
        """Pop the arrived packet and schedule the next arrival."""
        self._ensure_arrival(now_us)
        packet = Packet(
            source=self.source_id,
            destination=self.destination_id,
            size_bytes=self.packet_size_bytes,
            packet_id=self._next_packet_id,
            created_us=self._next_arrival_us,
        )
        self._next_packet_id += 1
        self._next_arrival_us = max(now_us, self._next_arrival_us) + self._draw_gap()
        return packet
