"""Traffic sources and the batched per-agent traffic-state arrays.

The paper's evaluation uses saturated (always-backlogged) sources sending
1500-byte packets; the Poisson source is provided for the bursty-traffic
examples and for fairness experiments under partial load.

:class:`TrafficStateArrays` is the batching layer on top: it mirrors the
traffic state of every MAC agent (backlog, earliest pending arrival,
join-eligibility inputs) into NumPy arrays that are updated incrementally
-- an agent pushes its new state whenever a refill or a transmission
outcome changes it -- so the simulation runner can evaluate ``has_traffic``
/ ``next_traffic_time_us`` / ``can_join`` for *all* agents with a handful
of array operations per round instead of one Python call per agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_PACKET_SIZE_BYTES
from repro.exceptions import ConfigurationError
from repro.mac.frames import Packet

__all__ = ["SaturatedSource", "PoissonSource", "TrafficStateArrays"]


@dataclass
class SaturatedSource:
    """A source that always has another packet ready.

    Attributes
    ----------
    source_id, destination_id:
        Endpoints of the flow.
    packet_size_bytes:
        Size of every generated packet.
    """

    source_id: int
    destination_id: int
    packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    _next_packet_id: int = field(default=0, repr=False)

    #: Saturated sources can always deliver another packet immediately, so
    #: the batched traffic arrays never need to poll them for a future
    #: arrival time (their agents are kept backlogged by every refill).
    always_backlogged = True

    def has_packet(self, now_us: float) -> bool:
        """Saturated sources always have traffic."""
        return True

    def next_packet_time_us(self, now_us: float) -> float:
        """When the next packet becomes available (now: always backlogged)."""
        return now_us

    def next_packet(self, now_us: float) -> Packet:
        """Generate the next packet."""
        packet = Packet(
            source=self.source_id,
            destination=self.destination_id,
            size_bytes=self.packet_size_bytes,
            packet_id=self._next_packet_id,
            created_us=now_us,
        )
        self._next_packet_id += 1
        return packet


@dataclass
class PoissonSource:
    """A Poisson packet-arrival process.

    Attributes
    ----------
    source_id, destination_id:
        Endpoints of the flow.
    rate_packets_per_second:
        Mean arrival rate.
    packet_size_bytes:
        Size of every generated packet.
    rng:
        Random generator for the arrival process.
    """

    source_id: int
    destination_id: int
    rate_packets_per_second: float
    rng: np.random.Generator
    packet_size_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    _next_arrival_us: Optional[float] = field(default=None, repr=False)
    _next_packet_id: int = field(default=0, repr=False)

    #: Poisson sources run dry between arrivals; the batched traffic
    #: arrays track their next arrival time to know when to poll again.
    always_backlogged = False

    def __post_init__(self) -> None:
        if self.rate_packets_per_second <= 0:
            raise ConfigurationError(
                f"Poisson rate must be positive, got {self.rate_packets_per_second}"
                " (use a saturated source for always-backlogged traffic)"
            )

    def _ensure_arrival(self, now_us: float) -> None:
        if self._next_arrival_us is None:
            self._next_arrival_us = now_us + self._draw_gap()

    def _draw_gap(self) -> float:
        mean_gap_us = 1e6 / self.rate_packets_per_second
        return float(self.rng.exponential(mean_gap_us))

    def has_packet(self, now_us: float) -> bool:
        """Whether a packet has arrived by ``now_us``."""
        self._ensure_arrival(now_us)
        return now_us >= self._next_arrival_us

    def next_packet_time_us(self, now_us: float) -> float:
        """Absolute time of the next arrival.

        Used by the event-driven runner to jump over idle gaps in one
        scheduler event instead of polling slot by slot.  Reading this
        does not consume randomness beyond what :meth:`has_packet` at the
        same instant would, so seeded runs stay byte-identical to the
        slot-polling loop.
        """
        self._ensure_arrival(now_us)
        return float(self._next_arrival_us)

    def next_packet(self, now_us: float) -> Packet:
        """Pop the arrived packet and schedule the next arrival."""
        self._ensure_arrival(now_us)
        packet = Packet(
            source=self.source_id,
            destination=self.destination_id,
            size_bytes=self.packet_size_bytes,
            packet_id=self._next_packet_id,
            created_us=self._next_arrival_us,
        )
        self._next_packet_id += 1
        self._next_arrival_us = max(now_us, self._next_arrival_us) + self._draw_gap()
        return packet


class TrafficStateArrays:
    """Traffic state of every MAC agent, mirrored into NumPy arrays.

    One row per agent, ordered by ascending ``node_id`` (so the layout --
    and everything computed from it -- is independent of the order the
    agents happened to be constructed in).  Static per-agent facts
    (``node_ids``, ``n_antennas``, ``supports_joining``) are captured at
    construction; the dynamic columns are pushed by the agents themselves
    through the listener callbacks :meth:`agent_refilled` /
    :meth:`agent_outcome`, which :class:`~repro.mac.agent.BaseMacAgent`
    invokes whenever a refill or a transmission outcome changes its queues.

    The point of the incremental updates is that a simulation round only
    pays Python-level work for the agents whose state *changed* (round
    participants and agents with a due Poisson arrival); everyone else is
    covered by the array reads.  :meth:`refill_due` is constructed so that
    skipped refills are provably no-ops: an agent's refill can only move
    packets when a transmission outcome touched its queues since the last
    refill (``refill_pending``) or a pending arrival has come due
    (``next_arrival_us <= now``), which are exactly the rows the mask
    selects.

    Dynamic columns
    ---------------
    backlogged:
        Whether any of the agent's queues holds unacknowledged bits (the
        batched form of ``has_traffic`` once due refills have run).
    next_arrival_us:
        Earliest pending source arrival, ``inf`` for always-backlogged
        (saturated) sources.
    join_rx_antennas:
        Largest antenna count among the agent's receivers that currently
        have queued traffic (0 when none do) -- the per-agent input of the
        n+ join-eligibility rule "some receiver has a spare dimension".
    queue_space:
        Whether some queue is below the refill target, i.e. a refill could
        actually accept a pending arrival.  Without it, a backlogged
        Poisson agent whose queues are full but whose next arrival lies in
        the past would be "due" -- and pointlessly refilled -- every round.
    refill_pending:
        Set when a transmission outcome changed the agent's queues;
        cleared by the next refill.
    """

    def __init__(self, agents: Sequence) -> None:
        self.agents = sorted(agents, key=lambda agent: agent.node_id)
        n = len(self.agents)
        self.node_ids = np.array([a.node_id for a in self.agents], dtype=np.int64)
        self.n_antennas = np.array([a.n_antennas for a in self.agents], dtype=np.int64)
        self.supports_joining = np.array(
            [bool(a.supports_joining) for a in self.agents], dtype=bool
        )
        self.backlogged = np.zeros(n, dtype=bool)
        self.next_arrival_us = np.full(n, np.inf, dtype=np.float64)
        self.join_rx_antennas = np.zeros(n, dtype=np.int64)
        self.queue_space = np.ones(n, dtype=bool)
        # Every agent starts dirty so the first round refills (and thereby
        # publishes) everyone, exactly like the per-agent loop's first
        # ``has_traffic`` sweep at time zero.
        self.refill_pending = np.ones(n, dtype=bool)
        self._row: Dict[int, int] = {
            int(node_id): index for index, node_id in enumerate(self.node_ids)
        }
        for agent in self.agents:
            agent.attach_traffic_listener(self)

    def __len__(self) -> int:
        return len(self.agents)

    # -- listener callbacks (invoked by the agents) -----------------------------

    def agent_refilled(
        self,
        node_id: int,
        backlogged: bool,
        next_arrival_us: float,
        join_rx_antennas: int,
        queue_space: bool,
    ) -> None:
        """An agent finished a refill; record its complete new state."""
        row = self._row[node_id]
        self.backlogged[row] = backlogged
        self.next_arrival_us[row] = next_arrival_us
        self.join_rx_antennas[row] = join_rx_antennas
        self.queue_space[row] = queue_space
        self.refill_pending[row] = False

    def agent_outcome(self, node_id: int, backlogged: bool, join_rx_antennas: int) -> None:
        """A transmission outcome changed an agent's queues.

        Arrival times are untouched (outcomes never pop sources); the row
        is marked dirty so the next round refills this agent.
        """
        row = self._row[node_id]
        self.backlogged[row] = backlogged
        self.join_rx_antennas[row] = join_rx_antennas
        self.refill_pending[row] = True

    # -- batched queries (used by the runner) -----------------------------------

    def refill_due(self, now_us: float) -> np.ndarray:
        """Mask of agents whose refill could actually move packets.

        An agent is due when an outcome dirtied its queues
        (``refill_pending``) or a pending arrival has come due *and* some
        queue can accept it.  Refills of agents outside the mask are
        provably no-ops, which is why the batched pipeline may skip them
        and still match the refill-everyone reference bit for bit.
        """
        return self.refill_pending | (
            self.queue_space & (self.next_arrival_us <= now_us)
        )

    def refill(self, now_us: float, mask: np.ndarray) -> None:
        """Refill the masked agents (each publishes its state back here)."""
        agents = self.agents
        for index in np.nonzero(mask)[0]:
            agents[index].refill(now_us)

    def next_traffic_time_us(self, now_us: float) -> float:
        """Batched ``min`` over every agent's ``next_traffic_time_us``."""
        if not self.agents:
            return float("inf")
        return float(np.where(self.backlogged, now_us, self.next_arrival_us).min())
