"""Two-fidelity PHY: escalate uncertain links to the full transceiver.

The MAC simulator normally predicts delivery from the post-projection-SNR
link abstraction (:mod:`repro.sim.link_abstraction` +
:func:`repro.phy.esnr.packet_delivery_probability`), which costs
microseconds per reception.  The full transceiver chain
(:mod:`repro.phy.transceiver`: convolutional encode, OFDM modulate, fade,
ZF equalise, Viterbi decode) costs ~10 ms per probe -- four orders of
magnitude more -- but is the ground truth the abstraction approximates.

This module promotes that split into an explicit **fidelity tier**
(``SimulationConfig.fidelity``):

``"abstraction"``
    The default; bit-identical to the pre-fidelity simulator.
``"auto"``
    Every attempted reception is classified by its ESNR distance to the
    delivery cliff (:func:`repro.phy.esnr.delivery_margin_db`).  Groups
    whose margin falls inside a configurable **uncertainty band**
    (``fidelity_band_db``, default +/-3 dB) escalate to a real
    encode->channel->decode of a probe frame, and the PHY pass/fail
    verdict overrides the abstraction's coin.  Far from the cliff the
    abstraction's confident predictions stand (the calibration in the
    cross-validation harness is what justifies that trust).
``"full"``
    Every evaluated reception escalates (an infinite band) -- the
    PHY-accurate reference mode.

Determinism contract
--------------------
The abstraction's delivery coin is *always* drawn, even when the verdict
is overridden, so the main generator consumes exactly the same stream as
an ``"abstraction"`` run.  All PHY randomness (probe payload bits, AWGN)
comes from dedicated streams seeded ``(seed, PHY_STREAM_TAG, tx, rx,
key-hash)``, and the escalated verdict is computed from jitter-free
deterministic SNRs -- a pure function of the configuration key.  Verdicts
are memoized per (link epoch, stream signature) exactly like the agents'
measured-SNR memo (:func:`repro.mac.plan.involved_node_ids`), so a fault
bumping any involved link's epoch invalidates exactly the affected
entries.  Together this makes ``"auto"``/``"full"`` results a pure
function of the seed across pipelines, worker counts and plan-cache
settings.

Cross-fidelity validation
-------------------------
:func:`cross_validate_links` is the standing harness: sample links from a
scenario's real network, run the abstraction and the full transceiver on
identical inputs (same post-projection SNRs, same MCS), and report a
calibrated agreement table.  Agreement *outside* the band is the number
that must stay high (the abstraction is trusted there); disagreement
*inside* the band is expected -- it is the reason the band exists.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mac.plan import involved_node_ids, stream_signature
from repro.phy.channel_est import ChannelEstimate
from repro.phy.esnr import (
    delivery_margin_db,
    esnr_for_modulation,
    packet_delivery_probability,
    select_mcs,
)
from repro.phy.ofdm import OfdmConfig, OfdmModem
from repro.phy.rates import MCS, MCS_TABLE
from repro.phy.transceiver import MimoReceiver, MimoTransmitter, StreamConfig
from repro.sim.link_abstraction import receiver_stream_snrs
from repro.sim.medium import ScheduledStream
from repro.sim.network import _subcarrier_bins

__all__ = [
    "PHY_STREAM_TAG",
    "FIDELITY_MODES",
    "DEFAULT_FIDELITY",
    "DEFAULT_BAND_DB",
    "DEFAULT_PROBE_BITS",
    "phy_stream_rng",
    "simulate_probe_delivery",
    "FidelityEngine",
    "LinkCheck",
    "FidelityReport",
    "cross_validate_links",
]

#: Stream tag mixed into the simulation seed for full-PHY probe draws
#: (payload bits and AWGN), decorrelating them from the backoff/delivery,
#: estimation, arrival and fault streams.
PHY_STREAM_TAG = 0x706879  # "phy"

#: The three fidelity tiers, in increasing PHY cost.
FIDELITY_MODES = ("abstraction", "auto", "full")

DEFAULT_FIDELITY = "abstraction"

#: Half-width (dB) of the uncertainty band around the delivery cliff.
#: Calibrated against the real chain: at ``margin = +band`` the probe
#: delivers essentially always, at ``margin = -band`` essentially never,
#: so outside the band the abstraction's confident verdicts can stand.
DEFAULT_BAND_DB = 3.0

#: Probe payload length (bits).  Long enough that the coded chain shows a
#: sharp delivery cliff (short probes let Viterbi luck out several dB
#: below threshold at 64-QAM), short enough to keep a probe ~10 ms.
DEFAULT_PROBE_BITS = 1024

# The probe chain is single-stream over the full 64-bin OFDM grid; the
# transceiver objects are stateless across calls, so module singletons
# avoid rebuilding codec tables per probe.
_OFDM = OfdmConfig()
_MODEM = OfdmModem(_OFDM)
_PROBE_TX = MimoTransmitter(1, _OFDM)
_PROBE_RX = MimoReceiver(1, _OFDM)


def _key_hash(key) -> int:
    """Stable 64-bit hash of a structural key (``hash()`` is per-process)."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def phy_stream_rng(seed, transmitter_id: int, receiver_id: int, key=()) -> np.random.Generator:
    """The dedicated PHY-probe generator of one (link, configuration).

    Seeded ``(seed, PHY_STREAM_TAG, tx, rx, key-hash)``: the same seed,
    link and configuration key always produce the same probe bits and
    noise, no matter in which round (or process) the escalation happens --
    the order-independence contract shared with the estimation, arrival
    and fault streams.
    """
    return np.random.default_rng(
        (seed, PHY_STREAM_TAG, transmitter_id, receiver_id, _key_hash(key))
    )


def simulate_probe_delivery(
    subcarrier_snrs_db: Sequence[float],
    mcs: MCS,
    rng: np.random.Generator,
    probe_bits: int = DEFAULT_PROBE_BITS,
    noise_power: float = 1.0,
) -> bool:
    """Run one probe frame through the full transceiver chain.

    The abstraction's per-tracked-bin post-projection SNRs are
    interpolated across the 64-bin OFDM grid and realised as a
    frequency-selective single-stream channel; a ``probe_bits`` payload is
    convolutionally encoded, modulated, faded, hit with complex AWGN of
    ``noise_power`` per bin (the modem's unitary FFT scaling maps
    time-domain variance 1:1 to per-bin variance), and decoded by the real
    ZF + Viterbi receiver under perfect CSI.  Delivered means the decoded
    payload is bit-exact -- the same all-or-nothing criterion the
    abstraction's delivery coin models.

    Both fidelities therefore see the *same* channel; what the probe adds
    is the reality of coding, interleaving and hard-decision demapping
    that :func:`~repro.phy.esnr.packet_delivery_probability` compresses
    into a logistic.
    """
    snrs = np.asarray(list(subcarrier_snrs_db), dtype=float)
    if snrs.size == 0:
        return False
    bins = np.asarray(_subcarrier_bins(snrs.size), dtype=float)
    order = np.argsort(bins)
    snr_per_bin = np.interp(
        np.arange(_OFDM.fft_size, dtype=float), bins[order], snrs[order]
    )
    amplitude = np.sqrt(np.power(10.0, snr_per_bin / 10.0) * noise_power)

    bits = rng.integers(0, 2, size=int(probe_bits), dtype=np.uint8)
    samples, layout = _PROBE_TX.build_frame(
        [StreamConfig(bits=bits, mcs=mcs, precoder=np.array([1.0 + 0j]))]
    )
    body = samples[0, layout.preamble_length :]
    grid = _MODEM.demodulate_grid(body)
    faded = _MODEM.modulate_grid(grid * amplitude[None, :])
    noise = np.sqrt(noise_power / 2.0) * (
        rng.standard_normal(faded.size) + 1j * rng.standard_normal(faded.size)
    )
    received = np.concatenate([samples[0, : layout.preamble_length], faded + noise])
    estimate = ChannelEstimate(
        matrices=amplitude.astype(complex)[:, None, None],
        valid_bins=np.arange(_OFDM.fft_size),
    )
    decoded = _PROBE_RX.decode(
        received.reshape(1, -1), layout, channel_estimate=estimate, noise_power=noise_power
    )
    return bool(np.array_equal(decoded[0].bits, bits))


class FidelityEngine:
    """Per-simulation escalation state of the ``"auto"``/``"full"`` tiers.

    One engine lives on the event loop; :func:`override_verdict` is called
    for every evaluated reception group *after* the abstraction has drawn
    its delivery coin.  ``None`` means "keep the abstraction's verdict"
    (the group is confidently far from the cliff); a bool is the full-PHY
    verdict and replaces it.

    Escalated verdicts are memoized under the same structural key shape
    as the agents' measured-SNR memo -- ``(tx, rx, planned signature,
    concurrent signature, epoch signature of every involved node)`` -- so
    a repeated contention configuration pays the ~10 ms probe once, and a
    fault bumping any involved link's epoch retires exactly the entries
    that observed the old channel.  Because the verdict is computed from
    jitter-free SNRs and a dedicated :func:`phy_stream_rng` stream, the
    memo is a pure cost optimisation: recomputing any entry yields the
    identical bit.
    """

    def __init__(
        self,
        network,
        seed,
        mode: str = "auto",
        band_db: float = DEFAULT_BAND_DB,
        probe_bits: int = DEFAULT_PROBE_BITS,
    ) -> None:
        if mode not in ("auto", "full"):
            raise ConfigurationError(
                f"FidelityEngine handles modes ('auto', 'full'), not {mode!r}; "
                "the 'abstraction' tier runs without an engine"
            )
        self.network = network
        self.seed = 0 if seed is None else seed
        self.mode = mode
        self.band_db = float(band_db)
        self.probe_bits = int(probe_bits)
        #: Reception groups examined / escalated to the PHY / memo hits
        #: among the escalations -- the numbers the benchmarks track.
        self.evaluations = 0
        self.escalations = 0
        self.memo_hits = 0
        self._memo: Dict[tuple, bool] = {}

    def in_band(self, subcarrier_snrs_db, mcs: MCS) -> bool:
        """Whether a stream's delivery margin falls in the uncertain band."""
        if self.mode == "full":
            return True
        return abs(delivery_margin_db(subcarrier_snrs_db, mcs)) <= self.band_db

    def override_verdict(
        self,
        transmitter_id: int,
        receiver_id: int,
        wanted_streams: Sequence[ScheduledStream],
        concurrent_streams: Sequence[ScheduledStream],
        measured_snrs: Dict[int, np.ndarray],
    ) -> Optional[bool]:
        """The PHY verdict of one reception group, or ``None`` to defer.

        ``measured_snrs`` are the per-stream SNRs the abstraction just
        used (including its suppression jitter); classification uses them
        so "uncertain" means *the abstraction's own prediction* is near
        the cliff.  The escalated verdict itself re-derives deterministic
        SNRs so it is a pure function of the memo key.
        """
        self.evaluations += 1
        escalate = any(
            self.in_band(measured_snrs[stream.stream_id], stream.mcs)
            for stream in wanted_streams
        )
        if not escalate:
            return None
        self.escalations += 1
        key = (
            transmitter_id,
            receiver_id,
            stream_signature(wanted_streams),
            stream_signature(concurrent_streams),
            self.network.epoch_signature(
                involved_node_ids(
                    wanted_streams,
                    concurrent_streams,
                    extra=(transmitter_id, receiver_id),
                )
            ),
        )
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        verdict = self._escalated_verdict(
            transmitter_id, receiver_id, wanted_streams, concurrent_streams, key
        )
        self._memo[key] = verdict
        return verdict

    def _escalated_verdict(
        self,
        transmitter_id: int,
        receiver_id: int,
        wanted_streams: Sequence[ScheduledStream],
        concurrent_streams: Sequence[ScheduledStream],
        key: tuple,
    ) -> bool:
        snrs = receiver_stream_snrs(
            self.network,
            receiver_id,
            list(wanted_streams),
            list(concurrent_streams),
            rng=None,
        )
        rng = phy_stream_rng(self.seed, transmitter_id, receiver_id, key)
        # One failed spatial stream fails the aggregate reception, the
        # same worst-stream rule the abstraction's min-probability uses.
        for stream in wanted_streams:
            if not simulate_probe_delivery(
                snrs[stream.stream_id],
                stream.mcs,
                rng,
                probe_bits=self.probe_bits,
                noise_power=self.network.noise_power,
            ):
                return False
        return True


# -- cross-fidelity validation -----------------------------------------------------


@dataclass
class LinkCheck:
    """Both fidelities' verdicts on one sampled (link, MCS) input."""

    transmitter_id: int
    receiver_id: int
    mcs_index: int
    esnr_db: float
    margin_db: float
    in_band: bool
    abstraction_probability: float
    abstraction_delivers: bool
    phy_delivered: int
    phy_trials: int

    @property
    def phy_delivers(self) -> bool:
        """Majority verdict of the probe trials."""
        return 2 * self.phy_delivered > self.phy_trials

    @property
    def agree(self) -> bool:
        return self.abstraction_delivers == self.phy_delivers


@dataclass
class FidelityReport:
    """Calibrated agreement table of :func:`cross_validate_links`."""

    scenario: str
    seed: int
    band_db: float
    probe_bits: int
    checks: List[LinkCheck] = field(default_factory=list)

    @property
    def outside_band(self) -> List[LinkCheck]:
        return [check for check in self.checks if not check.in_band]

    @property
    def inside_band(self) -> List[LinkCheck]:
        return [check for check in self.checks if check.in_band]

    @staticmethod
    def _agreement(checks: List[LinkCheck]) -> float:
        if not checks:
            return 1.0
        return sum(check.agree for check in checks) / len(checks)

    @property
    def agreement_outside_band(self) -> float:
        """Agreement where the abstraction's verdict would stand -- the
        rate that must exceed the pinned threshold."""
        return self._agreement(self.outside_band)

    @property
    def agreement_inside_band(self) -> float:
        """Agreement where ``"auto"`` escalates anyway; disagreement here
        is the band's justification, not a failure."""
        return self._agreement(self.inside_band)

    @property
    def escalation_fraction(self) -> float:
        if not self.checks:
            return 0.0
        return len(self.inside_band) / len(self.checks)

    def format_table(self) -> str:
        header = (
            f"cross-fidelity validation: scenario={self.scenario} seed={self.seed} "
            f"band=+/-{self.band_db:g} dB probe={self.probe_bits} bits"
        )
        columns = (
            f"{'link':>9}  {'mcs':>3}  {'esnr':>7}  {'margin':>7}  "
            f"{'band':>4}  {'p(model)':>8}  {'model':>5}  {'phy':>5}  agree"
        )
        rows = []
        for check in self.checks:
            rows.append(
                f"{check.transmitter_id:>4}->{check.receiver_id:<4} "
                f"{check.mcs_index:>4}  {check.esnr_db:>7.2f}  {check.margin_db:>+7.2f}  "
                f"{'in' if check.in_band else 'out':>4}  "
                f"{check.abstraction_probability:>8.3f}  "
                f"{'ok' if check.abstraction_delivers else 'fail':>5}  "
                f"{'ok' if check.phy_delivers else 'fail':>5}  "
                f"{'yes' if check.agree else 'NO':>5}"
            )
        summary = (
            f"agreement outside band: {self.agreement_outside_band:.3f} "
            f"({len(self.outside_band)} checks) | inside band: "
            f"{self.agreement_inside_band:.3f} ({len(self.inside_band)} checks) | "
            f"escalation fraction: {self.escalation_fraction:.3f}"
        )
        return "\n".join([header, columns, *rows, summary])


def _link_precoders(network, transmitter_id: int, receiver_id: int) -> np.ndarray:
    """Per-subcarrier maximum-ratio pre-coders from the true channel."""
    channel = network.true_channel(transmitter_id, receiver_id)
    _, _, vh = np.linalg.svd(channel)
    return np.conj(vh[:, 0, :])


def cross_validate_links(
    scenario,
    seed: int = 0,
    n_links: int = 8,
    config=None,
    band_db: Optional[float] = None,
    probe_bits: int = DEFAULT_PROBE_BITS,
    trials: int = 3,
) -> FidelityReport:
    """Run both fidelities on sampled links and tabulate their agreement.

    Samples ``n_links`` traffic pairs from the scenario's real network
    (placements and channels drawn exactly as a simulation run would,
    via :func:`repro.sim.runner.build_network`), computes each link's
    single-stream post-projection SNRs, and evaluates two MCS per link on
    *identical inputs*: the rate the simulator would select and its
    next-faster neighbour (which by construction sits at or below
    threshold, populating the uncertain region).  The abstraction's
    verdict is ``packet_delivery_probability >= 0.5``; the PHY's is the
    majority of ``trials`` seeded probe frames.

    Every draw (link sample, probe bits, noise) comes from dedicated
    ``(seed, PHY_STREAM_TAG, ...)`` streams, so the report is a pure
    function of its arguments -- which is what lets the standing tier-1
    test pin its agreement rates.
    """
    from repro.sim.runner import SimulationConfig, build_network
    from repro.sim.scenarios import scenario_factory

    if isinstance(scenario, str):
        scenario = scenario_factory(scenario)()
    config = config or SimulationConfig()
    if band_db is None:
        hint = getattr(scenario, "fidelity_band_db", None)
        band_db = (
            float(config.fidelity_band_db)
            if config.fidelity_band_db is not None
            else float(hint) if hint is not None else DEFAULT_BAND_DB
        )
    network = build_network(scenario, seed, config)
    sampler = np.random.default_rng((seed, PHY_STREAM_TAG, 0x76616C))  # "val"
    pairs = list(scenario.pairs)
    count = min(int(n_links), len(pairs))
    picks = [pairs[i] for i in sampler.choice(len(pairs), size=count, replace=False)]

    report = FidelityReport(
        scenario=scenario.name, seed=seed, band_db=band_db, probe_bits=probe_bits
    )
    for pair in picks:
        tx = pair.transmitter.node_id
        rx = pair.receivers[0].node_id
        stream = ScheduledStream(
            stream_id=0,
            transmitter_id=tx,
            receiver_id=rx,
            precoders=_link_precoders(network, tx, rx),
            power=1.0,
            mcs=MCS_TABLE[0],
            payload_bits=int(probe_bits),
            start_us=0.0,
            end_us=100.0,
        )
        snrs = receiver_stream_snrs(network, rx, [stream], [stream], rng=None)[0]
        selected = select_mcs(snrs, margin_db=config.bitrate_margin_db)
        candidates = {selected.index}
        if selected.index + 1 < len(MCS_TABLE):
            candidates.add(selected.index + 1)
        for index in sorted(candidates):
            mcs = MCS_TABLE[index]
            probability = packet_delivery_probability(snrs, mcs, int(probe_bits))
            margin = delivery_margin_db(snrs, mcs)
            rng = phy_stream_rng(seed, tx, rx, ("validate", index))
            delivered = sum(
                simulate_probe_delivery(
                    snrs, mcs, rng, probe_bits=probe_bits, noise_power=network.noise_power
                )
                for _ in range(trials)
            )
            report.checks.append(
                LinkCheck(
                    transmitter_id=tx,
                    receiver_id=rx,
                    mcs_index=index,
                    esnr_db=esnr_for_modulation(snrs, mcs.modulation),
                    margin_db=margin,
                    in_band=abs(margin) <= band_db,
                    abstraction_probability=probability,
                    abstraction_delivers=probability >= 0.5,
                    phy_delivered=int(delivered),
                    phy_trials=int(trials),
                )
            )
    return report
