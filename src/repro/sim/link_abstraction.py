"""Link abstraction: from streams on the air to post-projection SNRs.

Instead of simulating every sample of every packet, the MAC-level
simulator computes -- per OFDM subcarrier -- the SNR each wanted stream
would see at its receiver after the receiver projects out the
interference it can see and zero-forces among its wanted streams.  The
computation uses:

* the *true* channels of the run (the pre-coders, in contrast, were
  computed by the transmitters from *estimated* channels).  True
  channels come out of the :class:`repro.sim.network.ChannelBank` as
  read-only (possibly transposed) views of shared per-group tensors, so
  everything here treats them as immutable inputs -- slicing and
  einsum-ing views is fine, in-place writes would raise,
* the pre-coding vectors and power of every stream on the air,
* the residual-interference model of the hardware profile for streams
  that were pre-coded to protect this receiver (imperfect nulling and
  alignment, §6.2).

How an interfering stream is handled depends on what the receiver can
know about it:

* a stream whose transmitter *protected* this receiver (nulling or
  alignment) contributes only residual noise;
* a stream that was already on the air when this receiver's transmission
  started -- or another stream from the *same* transmitter -- was present
  in the preamble the receiver used for channel estimation, so the
  receiver projects it out (it costs a signal dimension);
* a stream that appeared later *without* protecting this receiver (a
  secondary-contention collision) is untreatable interference and is
  counted at full power.

All per-subcarrier quantities are computed as stacked ``(n_sub, ...)``
arrays through batched ``np.linalg`` operations; the readable
per-subcarrier formulations are kept as ``_*_reference`` functions and
asserted equivalent by the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mimo.decoder import post_projection_snr_db_batch
from repro.mimo.dof import InterferenceStrategy
from repro.sim.medium import ScheduledStream
from repro.utils.linalg import singular_value_ranks

__all__ = [
    "receiver_stream_snrs",
    "unprotected_interference_power",
    "unprotected_interference_power_batch",
    "interference_directions_at",
    "announced_decoding_subspace",
]


def unprotected_interference_power(
    channel: np.ndarray, stream: ScheduledStream, subcarrier: int
) -> float:
    """Average per-receive-antenna power the stream would create at a
    receiver with no protective pre-coding, on one subcarrier.

    For a unit-norm pre-coder drawn independently of the channel, the
    expected per-antenna interference power is ``power * ||H||_F^2 / (N M)``.
    """
    h = channel[subcarrier]
    n_rx, n_tx = h.shape
    return float(stream.power * np.sum(np.abs(h) ** 2) / (n_rx * n_tx))


def unprotected_interference_power_batch(
    channel: np.ndarray, stream: ScheduledStream
) -> np.ndarray:
    """:func:`unprotected_interference_power` on every subcarrier at once."""
    n_rx, n_tx = channel.shape[1:]
    return stream.power * np.sum(np.abs(channel) ** 2, axis=(1, 2)) / (n_rx * n_tx)


def _effective_column(channel: np.ndarray, stream: ScheduledStream, subcarrier: int) -> np.ndarray:
    """The effective (power-scaled) channel column of a stream at a receiver."""
    h = channel[subcarrier]
    precoder = stream.precoders[subcarrier]
    return np.sqrt(stream.power) * (h @ precoder)


def _effective_columns(channel: np.ndarray, stream: ScheduledStream) -> np.ndarray:
    """The effective channel column of a stream on every subcarrier,
    shape ``(n_sub, N)``."""
    return np.sqrt(stream.power) * np.einsum("knm,km->kn", channel, stream.precoders)


def interference_directions_at(
    network, receiver_id: int, streams: Sequence[ScheduledStream]
) -> np.ndarray:
    """Effective channel columns of ``streams`` at a receiver.

    Returns a complex array of shape ``(n_subcarriers, N, len(streams))``
    -- the directions along which those streams arrive, which is what the
    receiver projects out and what defines its unwanted space.
    """
    streams = list(streams)
    n_sub = network.n_subcarriers
    n_rx = network.station(receiver_id).n_antennas
    out = np.zeros((n_sub, n_rx, len(streams)), dtype=complex)
    for index, stream in enumerate(streams):
        channel = network.true_channel(stream.transmitter_id, receiver_id)
        out[:, :, index] = _effective_columns(channel, stream)
    return out


def _uniform_orthonormal_basis(stack: np.ndarray):
    """Batched :func:`repro.utils.linalg.orthonormal_basis` over a stack.

    Returns ``(bases, True)`` with shape ``(batch, n, rank)`` when every
    matrix in the stack has the same rank, else ``(None, False)`` so the
    caller can fall back to the per-matrix path.
    """
    u, s, _ = np.linalg.svd(stack, full_matrices=False)
    ranks = singular_value_ranks(s)
    rank = int(ranks[0])
    if not np.all(ranks == rank):
        return None, False
    return u[:, :, :rank], True


def announced_decoding_subspace(
    network,
    receiver_id: int,
    wanted_streams: Sequence[ScheduledStream],
    interference_streams: Sequence[ScheduledStream],
) -> np.ndarray:
    """The per-subcarrier U-perp a receiver announces in its light-weight CTS.

    U-perp spans the directions the receiver actually uses to decode its
    wanted streams: the wanted effective channels projected orthogonal to
    the interference the receiver already sees.  A joiner that keeps its
    signal orthogonal to U-perp (Claim 3.4) therefore cannot disturb the
    receiver's decoding.

    Returns an array of shape ``(n_subcarriers, N, n_wanted)``.
    """
    wanted = list(wanted_streams)
    n_wanted = len(wanted)
    wanted_dirs = interference_directions_at(network, receiver_id, wanted)
    interference_dirs = (
        interference_directions_at(network, receiver_id, interference_streams)
        if interference_streams
        else None
    )

    columns = wanted_dirs
    if interference_dirs is not None and interference_dirs.shape[2]:
        ortho, uniform = _uniform_orthonormal_basis(interference_dirs)
        if not uniform:
            return _announced_subspace_reference(wanted_dirs, interference_dirs, n_wanted)
        columns = columns - ortho @ (ortho.conj().transpose(0, 2, 1) @ columns)

    u, s, _ = np.linalg.svd(columns, full_matrices=False)
    ranks = singular_value_ranks(s)
    if not np.all(ranks == n_wanted):
        # Degenerate channel on some subcarrier: take the readable path,
        # which pads with arbitrary orthonormal directions.
        return _announced_subspace_reference(wanted_dirs, interference_dirs, n_wanted)
    return u[:, :, :n_wanted]


def _announced_subspace_reference(
    wanted_dirs: np.ndarray,
    interference_dirs: Optional[np.ndarray],
    n_wanted: int,
) -> np.ndarray:
    """Per-subcarrier reference formulation of the announced subspace."""
    from repro.utils.linalg import (
        orthonormal_basis,
        orthonormal_complement,
        project_out_subspace,
    )

    n_sub, n_rx, _ = wanted_dirs.shape
    out = np.zeros((n_sub, n_rx, n_wanted), dtype=complex)
    for k in range(n_sub):
        columns = wanted_dirs[k]
        if interference_dirs is not None and interference_dirs.shape[2]:
            columns = project_out_subspace(columns, interference_dirs[k])
        basis = orthonormal_basis(columns)
        out[k, :, : basis.shape[1]] = basis
        if basis.shape[1] < n_wanted:
            # Degenerate channel: pad with arbitrary orthonormal directions
            # so downstream shapes stay consistent.
            filler = orthonormal_complement(basis)
            missing = n_wanted - basis.shape[1]
            out[k, :, basis.shape[1] : n_wanted] = filler[:, :missing]
    return out


def receiver_stream_snrs(
    network,
    receiver_id: int,
    wanted_streams: Sequence[ScheduledStream],
    concurrent_streams: Sequence[ScheduledStream],
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, np.ndarray]:
    """Per-subcarrier post-projection SNRs of the wanted streams.

    Parameters
    ----------
    network:
        The :class:`repro.sim.network.Network` of the run (provides true
        channels, the hardware profile and the noise normalisation).
    receiver_id:
        The receiving node.
    wanted_streams:
        The streams this receiver wants to decode (all from one
        transmitter).
    concurrent_streams:
        Every stream on the air during the reception, including the wanted
        ones.
    rng:
        Optional generator for the residual-suppression spread; omit for a
        deterministic mean-suppression model.

    Returns
    -------
    dict
        Maps each wanted stream's ``stream_id`` to an array of
        per-subcarrier SNRs in dB.
    """
    wanted = list(wanted_streams)
    if not wanted:
        return {}
    wanted_ids = {s.stream_id for s in wanted}
    transmitter_id = wanted[0].transmitter_id
    first_wanted_order = min(s.join_order for s in wanted)
    n_sub = network.n_subcarriers
    noise = network.noise_power

    # Pre-fetch channels from every involved transmitter to this receiver.
    transmitters = {s.transmitter_id for s in concurrent_streams} | {transmitter_id}
    channels = {
        tx: network.true_channel(tx, receiver_id) for tx in transmitters if tx != receiver_id
    }

    projection_streams: List[ScheduledStream] = []
    residual_streams: List[ScheduledStream] = []
    raw_streams: List[ScheduledStream] = []
    for stream in concurrent_streams:
        if stream.stream_id in wanted_ids:
            continue
        if stream.transmitter_id == receiver_id:
            # A node does not interfere with its own reception (half duplex:
            # it would not be receiving at all; guard anyway).
            continue
        if stream.protects(receiver_id):
            residual_streams.append(stream)
        elif stream.transmitter_id == transmitter_id or stream.join_order <= first_wanted_order:
            projection_streams.append(stream)
        else:
            raw_streams.append(stream)

    wanted_matrix = np.stack(
        [_effective_columns(channels[s.transmitter_id], s) for s in wanted], axis=2
    )  # (n_sub, N, n_wanted)
    interference = (
        np.stack(
            [_effective_columns(channels[s.transmitter_id], s) for s in projection_streams],
            axis=2,
        )
        if projection_streams
        else None
    )

    residual_power = np.zeros(n_sub)
    if residual_streams:
        # One draw per (subcarrier, stream) in row-major order, matching the
        # draw order of the per-subcarrier loop so seeded runs reproduce.
        jitter = (
            network.hardware.draw_suppression_jitter(
                rng, size=(n_sub, len(residual_streams))
            )
            if rng is not None
            else None
        )
        for index, stream in enumerate(residual_streams):
            strategy = stream.protected_receivers.get(receiver_id, InterferenceStrategy.NULL)
            unprotected = unprotected_interference_power_batch(
                channels[stream.transmitter_id], stream
            )
            residual_power += network.hardware.residual_interference_power_batch(
                unprotected,
                aligned=strategy is InterferenceStrategy.ALIGN,
                suppression_jitter_db=None if jitter is None else jitter[:, index],
            )
    for stream in raw_streams:
        residual_power += unprotected_interference_power_batch(
            channels[stream.transmitter_id], stream
        )

    per_stream_db = post_projection_snr_db_batch(
        wanted_matrix,
        interference,
        noise_power=noise,
        signal_power=1.0,
        residual_interference_power=residual_power,
    )  # (n_sub, n_wanted)
    return {
        stream.stream_id: np.ascontiguousarray(per_stream_db[:, index])
        for index, stream in enumerate(wanted)
    }
