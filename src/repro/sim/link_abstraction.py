"""Link abstraction: from streams on the air to post-projection SNRs.

Instead of simulating every sample of every packet, the MAC-level
simulator computes -- per OFDM subcarrier -- the SNR each wanted stream
would see at its receiver after the receiver projects out the
interference it can see and zero-forces among its wanted streams.  The
computation uses:

* the *true* channels of the run (the pre-coders, in contrast, were
  computed by the transmitters from *estimated* channels),
* the pre-coding vectors and power of every stream on the air,
* the residual-interference model of the hardware profile for streams
  that were pre-coded to protect this receiver (imperfect nulling and
  alignment, §6.2).

How an interfering stream is handled depends on what the receiver can
know about it:

* a stream whose transmitter *protected* this receiver (nulling or
  alignment) contributes only residual noise;
* a stream that was already on the air when this receiver's transmission
  started -- or another stream from the *same* transmitter -- was present
  in the preamble the receiver used for channel estimation, so the
  receiver projects it out (it costs a signal dimension);
* a stream that appeared later *without* protecting this receiver (a
  secondary-contention collision) is untreatable interference and is
  counted at full power.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mimo.decoder import post_projection_snr_db
from repro.mimo.dof import InterferenceStrategy
from repro.sim.medium import ScheduledStream

__all__ = [
    "receiver_stream_snrs",
    "unprotected_interference_power",
    "interference_directions_at",
    "announced_decoding_subspace",
]


def unprotected_interference_power(
    channel: np.ndarray, stream: ScheduledStream, subcarrier: int
) -> float:
    """Average per-receive-antenna power the stream would create at a
    receiver with no protective pre-coding, on one subcarrier.

    For a unit-norm pre-coder drawn independently of the channel, the
    expected per-antenna interference power is ``power * ||H||_F^2 / (N M)``.
    """
    h = channel[subcarrier]
    n_rx, n_tx = h.shape
    return float(stream.power * np.sum(np.abs(h) ** 2) / (n_rx * n_tx))


def _effective_column(channel: np.ndarray, stream: ScheduledStream, subcarrier: int) -> np.ndarray:
    """The effective (power-scaled) channel column of a stream at a receiver."""
    h = channel[subcarrier]
    precoder = stream.precoders[subcarrier]
    return np.sqrt(stream.power) * (h @ precoder)


def interference_directions_at(
    network, receiver_id: int, streams: Sequence[ScheduledStream]
) -> np.ndarray:
    """Effective channel columns of ``streams`` at a receiver.

    Returns a complex array of shape ``(n_subcarriers, N, len(streams))``
    -- the directions along which those streams arrive, which is what the
    receiver projects out and what defines its unwanted space.
    """
    streams = list(streams)
    n_sub = network.n_subcarriers
    n_rx = network.station(receiver_id).n_antennas
    out = np.zeros((n_sub, n_rx, len(streams)), dtype=complex)
    for index, stream in enumerate(streams):
        channel = network.true_channel(stream.transmitter_id, receiver_id)
        for k in range(n_sub):
            out[k, :, index] = _effective_column(channel, stream, k)
    return out


def announced_decoding_subspace(
    network,
    receiver_id: int,
    wanted_streams: Sequence[ScheduledStream],
    interference_streams: Sequence[ScheduledStream],
) -> np.ndarray:
    """The per-subcarrier U-perp a receiver announces in its light-weight CTS.

    U-perp spans the directions the receiver actually uses to decode its
    wanted streams: the wanted effective channels projected orthogonal to
    the interference the receiver already sees.  A joiner that keeps its
    signal orthogonal to U-perp (Claim 3.4) therefore cannot disturb the
    receiver's decoding.

    Returns an array of shape ``(n_subcarriers, N, n_wanted)``.
    """
    from repro.utils.linalg import orthonormal_basis, project_out_subspace

    wanted = list(wanted_streams)
    n_sub = network.n_subcarriers
    n_rx = network.station(receiver_id).n_antennas
    n_wanted = len(wanted)
    out = np.zeros((n_sub, n_rx, n_wanted), dtype=complex)
    wanted_dirs = interference_directions_at(network, receiver_id, wanted)
    interference_dirs = (
        interference_directions_at(network, receiver_id, interference_streams)
        if interference_streams
        else None
    )
    for k in range(n_sub):
        columns = wanted_dirs[k]
        if interference_dirs is not None and interference_dirs.shape[2]:
            columns = project_out_subspace(columns, interference_dirs[k])
        basis = orthonormal_basis(columns)
        out[k, :, : basis.shape[1]] = basis
        if basis.shape[1] < n_wanted:
            # Degenerate channel: pad with arbitrary orthonormal directions
            # so downstream shapes stay consistent.
            from repro.utils.linalg import orthonormal_complement

            filler = orthonormal_complement(basis)
            missing = n_wanted - basis.shape[1]
            out[k, :, basis.shape[1] : n_wanted] = filler[:, :missing]
    return out


def receiver_stream_snrs(
    network,
    receiver_id: int,
    wanted_streams: Sequence[ScheduledStream],
    concurrent_streams: Sequence[ScheduledStream],
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, np.ndarray]:
    """Per-subcarrier post-projection SNRs of the wanted streams.

    Parameters
    ----------
    network:
        The :class:`repro.sim.network.Network` of the run (provides true
        channels, the hardware profile and the noise normalisation).
    receiver_id:
        The receiving node.
    wanted_streams:
        The streams this receiver wants to decode (all from one
        transmitter).
    concurrent_streams:
        Every stream on the air during the reception, including the wanted
        ones.
    rng:
        Optional generator for the residual-suppression spread; omit for a
        deterministic mean-suppression model.

    Returns
    -------
    dict
        Maps each wanted stream's ``stream_id`` to an array of
        per-subcarrier SNRs in dB.
    """
    wanted = list(wanted_streams)
    if not wanted:
        return {}
    wanted_ids = {s.stream_id for s in wanted}
    transmitter_id = wanted[0].transmitter_id
    first_wanted_order = min(s.join_order for s in wanted)
    n_sub = network.n_subcarriers
    noise = network.noise_power

    # Pre-fetch channels from every involved transmitter to this receiver.
    transmitters = {s.transmitter_id for s in concurrent_streams} | {transmitter_id}
    channels = {
        tx: network.true_channel(tx, receiver_id) for tx in transmitters if tx != receiver_id
    }

    projection_streams: List[ScheduledStream] = []
    residual_streams: List[ScheduledStream] = []
    raw_streams: List[ScheduledStream] = []
    for stream in concurrent_streams:
        if stream.stream_id in wanted_ids:
            continue
        if stream.transmitter_id == receiver_id:
            # A node does not interfere with its own reception (half duplex:
            # it would not be receiving at all; guard anyway).
            continue
        if stream.protects(receiver_id):
            residual_streams.append(stream)
        elif stream.transmitter_id == transmitter_id or stream.join_order <= first_wanted_order:
            projection_streams.append(stream)
        else:
            raw_streams.append(stream)

    snrs: Dict[int, List[float]] = {s.stream_id: [] for s in wanted}
    for k in range(n_sub):
        wanted_matrix = np.stack(
            [_effective_column(channels[s.transmitter_id], s, k) for s in wanted], axis=1
        )
        if projection_streams:
            interference = np.stack(
                [
                    _effective_column(channels[s.transmitter_id], s, k)
                    for s in projection_streams
                ],
                axis=1,
            )
        else:
            interference = None

        residual_power = 0.0
        for stream in residual_streams:
            strategy = stream.protected_receivers.get(receiver_id, InterferenceStrategy.NULL)
            unprotected = unprotected_interference_power(
                channels[stream.transmitter_id], stream, k
            )
            residual_power += network.hardware.residual_interference_power(
                unprotected, aligned=strategy is InterferenceStrategy.ALIGN, rng=rng
            )
        for stream in raw_streams:
            residual_power += unprotected_interference_power(
                channels[stream.transmitter_id], stream, k
            )

        per_stream = post_projection_snr_db(
            wanted_matrix,
            interference,
            noise_power=noise,
            signal_power=1.0,
            residual_interference_power=residual_power,
        )
        for index, stream in enumerate(wanted):
            snrs[stream.stream_id].append(float(per_stream[index]))
    return {stream_id: np.asarray(values) for stream_id, values in snrs.items()}
