"""Replayable crash capsules for failed sweep cells.

When a simulation inside a sweep dies -- an unexpected exception out of
the protocol code, or an :class:`~repro.exceptions.InvariantViolation`
from the runtime invariant layer -- the error string alone is rarely
enough to debug it: the interesting state is the exact (scenario, seed,
config, fault schedule) coordinate that produced it.  A *crash capsule*
is a small JSON file capturing exactly that coordinate, written next to
the results store when a cell fails:

* the scenario registry key and its structural fingerprint,
* the protocol spec (key plus fully-resolved parameters),
* the run index, run seed and full simulation config,
* the materialised fault schedule (type-tagged episodes, via
  :meth:`~repro.sim.faults.FaultSchedule.to_jsonable`),
* schema versions (capsule, cache-key, store layout) and a best-effort
  git revision,
* the error type/message/traceback and the tail of the simulation's
  per-round event ring buffer (the last transmission rounds before the
  crash, when the failure happened in-process).

Because every coordinate the simulator seeds from is recorded,
:func:`replay_capsule` re-executes the *identical* cell -- same
placement, same channel draws, same MAC streams, same fault episodes --
under ``validation="full"``, and reports whether the original exception
reproduced.  ``python -m repro.cli replay <capsule.json>`` wraps this.

Capsules are written by the sweep parent process
(:func:`repro.sim.sweep.run_sweep`); workers only ship error strings
over their pipes, so capsules for cells that failed *in a parallel
worker* carry no traceback or event ring -- the replay still
reconstructs the failure locally with both.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import ConfigurationError

__all__ = [
    "CAPSULE_SCHEMA_VERSION",
    "CAPSULE_DIRNAME",
    "CrashCapsule",
    "ReplayOutcome",
    "build_capsule",
    "write_capsule",
    "load_capsule",
    "replay_capsule",
]

#: Version of the capsule file format.  Bump on any change to the field
#: set below; a capsule newer than this build understands is refused.
CAPSULE_SCHEMA_VERSION = 1

#: Subdirectory of the cache directory where sweeps drop capsules.
CAPSULE_DIRNAME = "capsules"


@dataclass(frozen=True)
class CrashCapsule:
    """Everything needed to re-execute one failed sweep cell exactly."""

    scenario: str
    scenario_fingerprint: Optional[str]
    protocol: str
    protocol_params: Dict[str, Any]
    run: int
    run_seed: int
    config: Dict[str, Any]
    fault_schedule: Optional[List[dict]]
    error_type: str
    error_message: str
    traceback: Optional[str] = None
    events: List[dict] = field(default_factory=list)
    versions: Dict[str, Any] = field(default_factory=dict)
    schema: int = CAPSULE_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ReplayOutcome:
    """What happened when a capsule was re-executed.

    ``reproduced`` is the headline: the replay raised the same exception
    type with the same message.  A replay that completes cleanly (or
    raises something else -- e.g. an invariant checker firing *before*
    the originally recorded crash point) sets it ``False`` and records
    what actually happened.
    """

    reproduced: bool
    expected_type: str
    expected_message: str
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    traceback: Optional[str] = None
    fingerprint_matched: bool = True
    metrics: Optional[Any] = None  # NetworkMetrics when the replay completed


def _git_revision() -> Optional[str]:
    """Best-effort revision of the source tree, ``None`` off a checkout."""
    root = Path(__file__).resolve()
    for parent in root.parents:
        head = parent / ".git" / "HEAD"
        if not head.is_file():
            continue
        try:
            ref = head.read_text().strip()
            if ref.startswith("ref: "):
                return (parent / ".git" / ref[5:]).read_text().strip()
            return ref
        except OSError:
            return None
    return None


def _versions() -> Dict[str, Any]:
    # Imported lazily: sweep imports this module for capsule writing.
    from repro.sim.store import STORE_SCHEMA_VERSION
    from repro.sim.sweep import CACHE_SCHEMA_VERSION

    return {
        "capsule_schema": CAPSULE_SCHEMA_VERSION,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "store_schema": STORE_SCHEMA_VERSION,
        "git": _git_revision(),
    }


def _split_error(error: str) -> tuple:
    """Split the sweep's ``"TypeName: message"`` error strings."""
    head, sep, tail = error.partition(": ")
    if sep and head and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", head):
        return head, tail
    return "Exception", error


def build_capsule(
    scenario,
    scenario_key: str,
    scenario_fingerprint: Optional[str],
    spec,
    run: int,
    run_seed: int,
    config,
    error: str,
    traceback_text: Optional[str] = None,
    events: Optional[List[dict]] = None,
) -> CrashCapsule:
    """Assemble a capsule for one failed cell.

    ``scenario`` is the constructed scenario object (used to materialise
    the fault schedule the failing run saw); ``spec`` is the cell's
    :class:`~repro.mac.variants.ProtocolSpec`; ``error`` is the sweep's
    ``"TypeName: message"`` string.  ``traceback_text`` and ``events``
    are only available when the cell failed in the parent process.
    """
    from repro.sim.runner import build_fault_schedule, mac_seed

    schedule = build_fault_schedule(scenario, config, mac_seed(run_seed))
    error_type, error_message = _split_error(error)
    return CrashCapsule(
        scenario=scenario_key,
        scenario_fingerprint=scenario_fingerprint,
        protocol=spec.key,
        protocol_params=spec.resolved_params(),
        run=run,
        run_seed=run_seed,
        config=dataclasses.asdict(config),
        fault_schedule=schedule.to_jsonable() if schedule is not None else None,
        error_type=error_type,
        error_message=error_message,
        traceback=traceback_text,
        events=list(events or []),
        versions=_versions(),
    )


def _capsule_stem(capsule: CrashCapsule) -> str:
    raw = f"{capsule.scenario}--{capsule.protocol}--run{capsule.run}--seed{capsule.run_seed}"
    return re.sub(r"[^A-Za-z0-9._-]+", "-", raw)


def write_capsule(capsule: CrashCapsule, directory: Union[str, Path]) -> Path:
    """Write ``capsule`` atomically under ``directory``; returns the path.

    The filename is derived from the cell coordinate, so re-failing the
    same cell overwrites its previous capsule (latest failure wins).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{_capsule_stem(capsule)}.json"
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(capsule.to_dict(), indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def load_capsule(path: Union[str, Path]) -> CrashCapsule:
    """Parse a capsule file, with clean errors for anything unreadable."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read capsule {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigurationError(f"capsule {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(f"capsule {path} is not a JSON object")
    schema = data.get("schema")
    if not isinstance(schema, int):
        raise ConfigurationError(f"capsule {path} has no integer 'schema' field")
    if schema > CAPSULE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"capsule {path} uses schema {schema}, newer than this build's "
            f"{CAPSULE_SCHEMA_VERSION}; upgrade the library to replay it"
        )
    known = {f.name for f in dataclasses.fields(CrashCapsule)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"capsule {path} has unknown fields {sorted(unknown)!r}"
        )
    try:
        return CrashCapsule(**data)
    except TypeError as exc:
        raise ConfigurationError(f"capsule {path} is incomplete: {exc}") from exc


def replay_capsule(
    capsule: Union[CrashCapsule, str, Path],
    validation: str = "full",
) -> ReplayOutcome:
    """Re-execute a capsule's cell and report whether the crash reproduced.

    The cell is rebuilt exactly as the sweep worker built it -- same
    scenario factory, same :func:`~repro.sim.runner.build_network` draw
    from the run seed, same ``mac_seed`` MAC streams -- except that
    ``config.validation`` is forced to ``validation`` (default
    ``"full"``) so the invariant layer narrates the failure as early as
    possible.  The recorded fault schedule is replayed verbatim rather
    than re-derived, so capsules stay faithful even if episode
    generation changes.
    """
    from repro.mac.variants import resolve_protocol
    from repro.sim.faults import FaultSchedule
    from repro.sim.runner import (
        SimulationConfig,
        build_network,
        mac_seed,
        run_simulation,
    )
    from repro.sim.scenarios import scenario_factory
    from repro.sim.sweep import scenario_digest

    if not isinstance(capsule, CrashCapsule):
        capsule = load_capsule(capsule)

    scenario = scenario_factory(capsule.scenario)()
    fingerprint_matched = (
        capsule.scenario_fingerprint is None
        or scenario_digest(scenario) == capsule.scenario_fingerprint
    )
    try:
        config = SimulationConfig(**capsule.config)
    except TypeError as exc:
        raise ConfigurationError(
            f"capsule config does not match this build's SimulationConfig: {exc}"
        ) from exc
    config = dataclasses.replace(config, validation=validation)
    spec = resolve_protocol(capsule.protocol)
    schedule = (
        FaultSchedule.from_jsonable(capsule.fault_schedule)
        if capsule.fault_schedule
        else None
    )
    network = build_network(scenario, capsule.run_seed, config)
    try:
        metrics = run_simulation(
            scenario,
            spec,
            seed=mac_seed(capsule.run_seed),
            config=config,
            network=network,
            fault_schedule=schedule,
        )
    except Exception as exc:  # the point of a replay is to observe this
        import traceback as _traceback

        error_type = type(exc).__name__
        error_message = str(exc)
        return ReplayOutcome(
            reproduced=(
                error_type == capsule.error_type
                and error_message == capsule.error_message
            ),
            expected_type=capsule.error_type,
            expected_message=capsule.error_message,
            error_type=error_type,
            error_message=error_message,
            traceback=_traceback.format_exc(),
            fingerprint_matched=fingerprint_matched,
        )
    return ReplayOutcome(
        reproduced=False,
        expected_type=capsule.error_type,
        expected_message=capsule.error_message,
        fingerprint_matched=fingerprint_matched,
        metrics=metrics,
    )
