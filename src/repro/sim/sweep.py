"""Parallel experiment orchestration: sweep grids of (placement, protocol).

The paper's headline figures are Monte-Carlo sweeps -- many random node
placements, each simulated under several MAC protocols.  The serial
:func:`~repro.sim.runner.run_many` loop computes the ``n_runs x
n_protocols`` grid one cell at a time; this module computes the same grid

* **in parallel**, fanning *run-level tasks* out over a pool of worker
  processes -- one task per placement, covering every protocol that
  missed the cache, so each run's network is drawn exactly **once** and
  shared by all protocols simulated on it (just like the serial
  ``run_many`` loop).  Only when more workers than uncached runs are
  available does a run's protocol list split into chunks (each still
  sharing one draw), trading a few extra draws for full concurrency, and
* **incrementally**, memoising every cell in an on-disk results cache
  keyed by ``(scenario, protocol, run seed, config hash)`` so repeated
  figure invocations only recompute what actually changed.

Both are possible because every cell is a pure function of its seeds:
run ``r`` draws placements/channels from ``seed + 1000 * r`` and each
protocol simulation runs with its own seeded RNG streams (including the
channel-estimation stream, see
:meth:`~repro.sim.network.Network.reseed_estimation_noise`).  A parallel
sweep is therefore **byte-identical** to a serial one for a fixed seed --
the test suite asserts it -- and cached cells are interchangeable with
freshly computed ones.  Caching stays **cell-level** (per protocol) even
though work ships run-level: a task recomputes only the protocols whose
cells actually missed.

Typical use::

    from repro.sim.sweep import run_sweep

    result = run_sweep(
        "three-pair", ["802.11n", "n+"], n_runs=50,
        seed=0, workers=4, cache_dir=".sweep-cache",
    )
    result.results["n+"][0].total_throughput_mbps()

Scenarios are usually referred to by registry name
(:func:`repro.sim.scenarios.register_scenario`), which doubles as the
cache key; passing a bare callable still works but only caches when an
explicit ``scenario_key`` is supplied.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.channel.testbed import default_testbed
from repro.exceptions import ConfigurationError, SimulationError
from repro.mac.variants import ProtocolLike, ProtocolSpec, resolve_protocol
from repro.sim.faults import fault_profile
from repro.sim.metrics import NetworkMetrics
from repro.sim.runner import (
    SimulationConfig,
    build_network,
    mac_seed,
    placement_seed,
    run_simulation,
)
from repro.sim.scenarios import Scenario, scenario_factory

__all__ = [
    "FailedCell",
    "SweepResult",
    "SweepCache",
    "run_sweep",
    "config_digest",
    "scenario_digest",
    "default_workers",
]

#: Bump when the simulation's numeric behaviour changes in a way that
#: should invalidate previously cached sweep results.  The version is
#: part of every cell key, so cells written under an older schema are
#: *missed* (and recomputed), never replayed.
#: 2: channel estimates are measured once per simulation (static-channel
#:    invariant) instead of re-drawn on every planning query, which
#:    changes every simulated metric for a given seed.
#: 3: the grouped (v3) channel-draw contract landed -- scalars-first
#:    construction draws, shape-grouped estimation-noise prefetch -- and
#:    ``channel_draws`` joined both the scenario and the config digests,
#:    so a v2 cell can never be replayed for a sweep that selects a
#:    different contract.
#: 4: the fault-injection layer landed (repro.sim.faults): retransmission
#:    accounting changed at the partial-delivery boundary (span-aging
#:    fail(), retry reset on forward progress, drop accounting), which
#:    shifts every seeded metric, and the fault parameters joined both
#:    digests -- ``fault_profile``/``fault_trace`` via the config, the
#:    scenario's resolved profile parameters via the scenario digest --
#:    so a static-network cell can never be replayed for a faulted sweep
#:    (or vice versa).
#: 5: the two-fidelity PHY layer landed (repro.sim.fidelity): the
#:    ``fidelity``/``fidelity_band_db`` knobs joined both digests (the
#:    config fields automatically, the scenario hints explicitly), so an
#:    abstraction-tier cell can never be replayed for an escalating
#:    sweep (or vice versa); abstraction-tier metrics themselves are
#:    unchanged, but v4 cells predate the knobs' digest coverage.
#: 6: the protocol-variant framework landed (repro.mac.variants): the
#:    protocol coordinate of a cell key is now the *spec-canonical* form
#:    ``name`` or ``name[param=value,...]`` with non-default parameters
#:    sorted, so parameterised sweeps (``retry_cap``, the ``recovery``
#:    family) get distinct cells.  Within v6 a default-parameter spec
#:    canonicalises to the bare name, i.e. hashes identically to the
#:    pre-framework key payload -- but v5 cells are still missed (and
#:    recomputed) because the schema version itself is part of the key:
#:    default-parameter metrics are bit-identical, yet metrics now carry
#:    the ``recovered_bits`` counter, and replaying a v5 cell into a
#:    parameterised grid would silently alias specs the v5 payload never
#:    distinguished.
CACHE_SCHEMA_VERSION = 6


def config_digest(config: SimulationConfig) -> str:
    """Stable hex digest of a :class:`SimulationConfig`.

    Any field change -- duration, subcarriers, packet rate, margins --
    produces a different digest, which is how the results cache
    invalidates on config change.
    """
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scenario_digest(scenario: Scenario) -> str:
    """Stable hex digest of a scenario's *structure*.

    Covers everything that shapes the simulation: stations (ids, antenna
    counts, names), traffic pairs (endpoints, streams per receiver), the
    suggested packet rate, and the testbed (candidate locations, the
    full link budget and the hardware impairment profile).  Mixed into
    every cache key next to the registry name, so editing a scenario's
    definition -- a different antenna mix, a reshaped floor, a changed
    hardware profile -- invalidates its cached cells automatically
    instead of replaying stale results under the old name.

    Scenarios without a testbed factory are simulated on
    :func:`~repro.channel.testbed.default_testbed`, so that *effective*
    testbed is digested for them: an edit to the default floor or to the
    :class:`~repro.channel.hardware.HardwareProfile` defaults changes the
    digest and misses the cache, instead of silently replaying cells
    simulated under the old defaults.
    """
    testbed = scenario.make_testbed()
    if testbed is None:
        # The testbed the simulation will actually run on (see
        # repro.sim.network.Network), not the `None` placeholder.
        testbed = default_testbed()
    payload = json.dumps(
        {
            "stations": [
                (s.node_id, s.n_antennas, s.name) for s in scenario.stations
            ],
            "pairs": [
                (
                    p.transmitter.node_id,
                    [r.node_id for r in p.receivers],
                    list(p.streams_per_receiver),
                )
                for p in scenario.pairs
            ],
            "packet_rate_pps": scenario.packet_rate_pps,
            # The scenario's channel-draw contract hint changes every
            # seeded channel (see repro.sim.network.Network), so it is
            # part of the structure -- editing a scenario from "batched"
            # to "grouped" must miss the cache, not replay v2 cells.
            "channel_draws": scenario.channel_draws,
            # The *resolved* fault-profile parameters, not just the name:
            # retuning a registered profile (or editing a scenario's
            # profile hint) changes every seeded faulted metric, so it
            # must miss the cache like any other structural edit.
            "fault_profile": _scenario_fault_payload(scenario),
            # The fidelity hints change which deliveries are decided by
            # the full transceiver, i.e. seeded results -- same rule as
            # the channel-draw and fault hints above.
            "fidelity": getattr(scenario, "fidelity", None),
            "fidelity_band_db": getattr(scenario, "fidelity_band_db", None),
            "testbed": {
                "locations": [list(xy) for xy in testbed.locations],
                "tx_power_dbm": testbed.tx_power_dbm,
                "noise_floor_dbm": testbed.noise_floor_dbm,
                "path_loss_exponent": testbed.path_loss_exponent,
                "reference_loss_db": testbed.reference_loss_db,
                "shadowing_sigma_db": testbed.shadowing_sigma_db,
                "los_probability": testbed.los_probability,
                "n_taps": testbed.n_taps,
                "snr_range_db": [testbed.min_snr_db, testbed.max_snr_db],
                "hardware": dataclasses.asdict(testbed.hardware),
            },
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _scenario_fault_payload(scenario: Scenario) -> Optional[dict]:
    """The scenario's fault profile, resolved to its parameters.

    ``None`` for a static scenario (keeping pre-fault digests of such
    scenarios' *structure* dependent only on the other fields).
    """
    name = getattr(scenario, "fault_profile", None)
    if name is None:
        return None
    return {"name": name, "params": dataclasses.asdict(fault_profile(name))}


def default_workers() -> int:
    """Worker count used when ``workers`` is not given: the usable cores."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class SweepCache:
    """On-disk memo of simulated cells, one JSON file per cell.

    A cell is one ``(scenario, protocol, run seed, config)`` simulation;
    its key is a SHA-256 over those coordinates plus a schema version.
    Files are written atomically (temp file + rename) so a crashed or
    parallel writer can never leave a truncated entry, and unreadable
    entries are treated as misses rather than errors.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def cell_key(
        self,
        scenario_key: str,
        protocol: ProtocolLike,
        run_seed: int,
        config: SimulationConfig,
        scenario_fingerprint: Optional[str] = None,
    ) -> str:
        """The cache key of one sweep cell.

        ``scenario_fingerprint`` (see :func:`scenario_digest`) ties the
        key to the scenario's structure, not just its registry name.
        ``protocol`` is canonicalised through
        :func:`~repro.mac.variants.resolve_protocol` first, so a bare
        name and its default-parameter spec produce the *same* key
        (pre-framework call sites and spec-based ones share cells) while
        any non-default parameter lands in the key as part of the
        ``name[param=value,...]`` coordinate.
        """
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "scenario": scenario_key,
                "scenario_fingerprint": scenario_fingerprint,
                "protocol": resolve_protocol(protocol).key,
                "run_seed": run_seed,
                "config": dataclasses.asdict(config),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[NetworkMetrics]:
        """The cached metrics for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            return NetworkMetrics.from_dict(data["metrics"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, key: str, metrics: NetworkMetrics, describe: dict) -> None:
        """Persist one cell atomically; ``describe`` is stored for humans.

        The entry is written to a pid-suffixed temp file and moved into
        place with :func:`os.replace` -- atomic on POSIX -- so concurrent
        sweeps sharing a cache dir and crashed writers can never publish
        a truncated entry under the final name (a reader sees either the
        old complete entry or the new complete one).  A write that fails
        midway removes its temp file before re-raising.
        """
        path = self._path(key)
        payload = json.dumps({"cell": describe, "metrics": metrics.to_dict()}, indent=1)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(payload)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


@dataclass(frozen=True)
class FailedCell:
    """One sweep cell that could not be computed (see :func:`run_sweep`).

    Records the cell coordinates and the final exception string after
    every retry was exhausted, so a long sweep reports *which* cells are
    missing and why instead of aborting on the first worker crash.
    """

    protocol: str
    run: int
    run_seed: int
    error: str


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` call.

    Attributes
    ----------
    results:
        ``{protocol: [metrics of run 0, run 1, ...]}`` -- the same shape
        :func:`repro.sim.runner.run_many` returns.  A cell whose
        computation failed (see ``failures``) is ``None``.
    cache_hits, cache_misses:
        How many cells came from the cache vs were simulated.  A repeated
        invocation with an unchanged grid reports all hits.
    workers:
        Worker processes used for the simulated cells (1 = in-process).
    failures:
        The cells that still failed after retries, as
        :class:`FailedCell` records (empty for a clean sweep; always
        empty under ``strict=True``, which raises instead).
    """

    results: Dict[str, List[Optional[NetworkMetrics]]] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    failures: List[FailedCell] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        """Number of placements per protocol (failed cells included)."""
        return len(next(iter(self.results.values()), []))

    def totals_mbps(self, protocol: ProtocolLike) -> List[float]:
        """Per-run total network throughput of one protocol.

        ``protocol`` may be the grid key (a spec-canonical string such as
        ``"n+"`` or ``"n+[recovery=erasure]"``) or any form
        :func:`~repro.mac.variants.resolve_protocol` accepts.  Failed
        cells (``None`` in the grid) are skipped, so aggregates stay
        computable on a partially-failed sweep.
        """
        if not (isinstance(protocol, str) and protocol in self.results):
            protocol = resolve_protocol(protocol).key
        return [
            m.total_throughput_mbps() for m in self.results[protocol] if m is not None
        ]

    def link_names(self) -> List[str]:
        """The traffic-pair names of the swept scenario, in metric order."""
        for runs in self.results.values():
            for metrics in runs:
                if metrics is not None:
                    return list(metrics.links)
        return []


def _resolve_scenario(
    scenario: Union[str, Callable[[], Scenario]],
    scenario_key: Optional[str],
) -> Tuple[Callable[[], Scenario], Optional[str]]:
    """Turn a registry name or factory into ``(factory, cache key)``.

    A registry name is its own cache key.  A bare callable is only
    cacheable with an explicit ``scenario_key`` -- its arguments are not
    visible here, so guessing a key from its name could silently alias
    differently-parameterised sweeps.
    """
    if isinstance(scenario, str):
        return scenario_factory(scenario), scenario_key or scenario
    if not callable(scenario):
        raise ConfigurationError(
            f"scenario must be a registered name or a factory, got {scenario!r}"
        )
    return scenario, scenario_key


def _simulate_run(args: Tuple) -> List[NetworkMetrics]:
    """Worker entry point: simulate one placement under several protocols.

    Tasks ship run-level so the placement's network is drawn exactly once
    (one :func:`~repro.sim.runner.build_network` call) and shared by all
    the protocols that missed the cache -- the same sharing the serial
    :func:`~repro.sim.runner.run_many` loop does.  Byte-identical to
    per-cell computation either way, because every simulation reseeds its
    own RNG streams from ``mac_seed(run_seed)``.
    """
    factory, specs, run_seed, config = args
    scenario = factory()
    network = build_network(scenario, run_seed, config)
    return [
        run_simulation(
            scenario,
            spec,
            seed=mac_seed(run_seed),
            config=config,
            network=network,
        )
        for spec in specs
    ]


def run_sweep(
    scenario: Union[str, Callable[[], Scenario]],
    protocols: Sequence[ProtocolLike],
    n_runs: int,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    workers: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    scenario_key: Optional[str] = None,
    strict: bool = False,
    cell_timeout_s: Optional[float] = None,
    max_retries: int = 1,
    retry_backoff_s: float = 0.5,
) -> SweepResult:
    """Sweep ``n_runs`` placements x ``protocols``, in parallel and cached.

    Byte-identical to :func:`repro.sim.runner.run_many` with the same
    ``(scenario, protocols, n_runs, seed, config)`` -- regardless of
    worker count, cell execution order, or whether cells were replayed
    from the cache.  Retried tasks cannot perturb results either: every
    cell is a pure function of its seeds, so a retry recomputes the
    identical metrics.

    Parameters
    ----------
    scenario:
        A registered scenario name (preferred; also keys the cache) or a
        zero-argument factory returning a :class:`Scenario`.
    protocols:
        Protocols to compare on every placement: bare names, parameterised
        strings (``"n+[recovery=erasure]"``), ``(name, params)`` pairs or
        :class:`~repro.mac.variants.ProtocolSpec` objects, freely mixed --
        so a grid can range over protocol *parameters*, e.g.
        ``[("n+", {"retry_cap": c}) for c in (1, 3, 7)]``.  Every entry is
        resolved and validated *before* any worker is spawned; an unknown
        name or unknown/ill-typed parameter raises
        :class:`~repro.exceptions.ConfigurationError` listing the
        registered variants and their parameters.  The result grid is
        keyed by each spec's canonical string
        (:attr:`~repro.mac.variants.ProtocolSpec.key` -- the bare name
        for default parameters).
    n_runs:
        Number of random placements.
    seed:
        Base seed; run ``r`` uses placement seed ``seed + 1000 * r`` (see
        :func:`repro.sim.runner.placement_seed`).
    config:
        Simulation parameters; part of every cell's cache key.
    workers:
        Worker processes for uncached work.  Tasks ship run-level -- one
        task per placement covering every protocol that missed the cache,
        so each run draws its network exactly once no matter how many
        protocols are swept (when more workers than uncached runs are
        available, a run's protocols chunk across workers, each chunk
        drawing once).  ``1`` (default) simulates in-process; ``None``
        uses every usable core (:func:`default_workers`).
        Worker processes must be able to import :mod:`repro`, and
        callables passed as ``scenario`` must be picklable (module-level
        functions and :func:`functools.partial` of them are).
    cache_dir:
        Directory of the on-disk results cache; ``None`` disables
        caching.  Entries are invalidated by any change to the scenario
        name, protocol, seed or config.
    scenario_key:
        Cache key override, required to cache a bare-callable
        ``scenario``.
    strict:
        ``False`` (default): a task that still fails after retries is
        recorded in :attr:`SweepResult.failures` (its grid cells stay
        ``None``) and the sweep completes -- one pathological placement
        cannot abort an hours-long sweep.  ``True`` restores
        raise-on-failure (:class:`~repro.exceptions.SimulationError`).
    cell_timeout_s:
        Per-task timeout in seconds for the parallel path (``None``
        disables).  A timed-out task counts as a failed attempt and is
        retried; note the abandoned worker keeps running to completion
        in the background (``multiprocessing`` cannot safely interrupt
        it), so the pool temporarily runs one effective worker short.
        Ignored in-process (``workers=1``), where a timeout cannot be
        enforced without a second process.
    max_retries:
        How many times a failed/timed-out task is retried before its
        cells are declared failed.  Retries are deterministic replays
        (same payload, same seeds), so they only help against transient
        causes -- OOM kills, timeouts on a loaded machine.
    retry_backoff_s:
        Base of the exponential backoff slept before retry ``k``
        (``retry_backoff_s * 2**k`` seconds); ``0`` disables sleeping
        (used by the tests).

    Returns
    -------
    SweepResult
        Metrics grid plus cache-hit and failed-cell accounting.
    """
    config = config or SimulationConfig()
    factory, key = _resolve_scenario(scenario, scenario_key)
    # Fail fast: resolve every protocol entry up front, so an unknown
    # name or ill-typed parameter raises here -- with the registry
    # listing -- instead of dying inside a worker as a FailedCell.
    specs: List[ProtocolSpec] = [resolve_protocol(p) for p in protocols]
    if not specs:
        raise ConfigurationError("need at least one protocol to sweep")
    seen_keys = set()
    for spec in specs:
        if spec.key in seen_keys:
            raise ConfigurationError(
                f"duplicate protocol {spec.key!r} in the sweep grid"
            )
        seen_keys.add(spec.key)
    if n_runs < 1:
        raise ConfigurationError("need at least one run to sweep")

    cache = None
    fingerprint = None
    if cache_dir is not None:
        if key is None:
            raise ConfigurationError(
                "caching a factory scenario needs an explicit scenario_key"
            )
        cache = SweepCache(cache_dir)
        # Tie keys to the scenario's structure, not just its name, so an
        # edited scenario definition cannot replay stale cells.
        fingerprint = scenario_digest(factory())

    def _cell_key(spec: ProtocolSpec, run_seed: int) -> str:
        return cache.cell_key(key, spec, run_seed, config, fingerprint)

    grid: Dict[str, List[Optional[NetworkMetrics]]] = {
        spec.key: [None] * n_runs for spec in specs
    }
    # One pending task per run, listing the protocol specs whose cells
    # missed the cache: the unit of work shipped to a worker.  Specs keep
    # their sweep order inside each task so results are reproducible.
    pending: List[Tuple[int, int, List[ProtocolSpec]]] = []  # (run, run_seed, specs)
    misses = 0
    hits = 0
    for run in range(n_runs):
        run_seed = placement_seed(seed, run)
        missing: List[ProtocolSpec] = []
        for spec in specs:
            if cache is not None:
                cached = cache.load(_cell_key(spec, run_seed))
                if cached is not None:
                    grid[spec.key][run] = cached
                    hits += 1
                    continue
            missing.append(spec)
        if missing:
            pending.append((run, run_seed, missing))
            misses += len(missing)

    def _record(
        run: int, run_seed: int, spec: ProtocolSpec, metrics: NetworkMetrics
    ) -> None:
        grid[spec.key][run] = metrics
        if cache is not None:
            # Stored as soon as each task completes, so an interrupted or
            # partially failed sweep keeps every finished cell.
            cache.store(
                _cell_key(spec, run_seed),
                metrics,
                describe={
                    "scenario": key,
                    "scenario_fingerprint": fingerprint,
                    "protocol": spec.key,
                    "protocol_params": spec.resolved_params(),
                    "run": run,
                    "run_seed": run_seed,
                    "config_digest": config_digest(config),
                },
            )

    failures: List[FailedCell] = []

    def _fail(
        run: int, run_seed: int, missing: List[ProtocolSpec], error: str
    ) -> None:
        if strict:
            raise SimulationError(
                f"sweep cell failed after {max_retries} retries "
                f"(run {run}, run_seed {run_seed}, "
                f"protocols {[s.key for s in missing]}): {error}"
            )
        for spec in missing:
            failures.append(
                FailedCell(protocol=spec.key, run=run, run_seed=run_seed, error=error)
            )

    def _backoff(attempt: int) -> None:
        if retry_backoff_s > 0:
            time.sleep(retry_backoff_s * (2**attempt))

    if pending:
        n_requested = default_workers() if workers is None else max(1, int(workers))
        # One task normally covers all of a run's uncached protocols, so
        # the run's network is drawn once.  When more workers than
        # uncached runs are available, each run's protocol list is
        # chunked so the extra workers stay busy -- every chunk still
        # shares one network draw across its protocols, so the build
        # count only grows as far as the concurrency actually used.
        per_task = max(1, -(-misses // n_requested))  # ceil division
        tasks: List[Tuple[int, int, List[ProtocolSpec]]] = []
        for run, run_seed, missing in pending:
            for start in range(0, len(missing), per_task):
                tasks.append((run, run_seed, missing[start : start + per_task]))
        n_workers = min(n_requested, len(tasks))
        payloads = [
            (factory, list(missing), run_seed, config) for _, run_seed, missing in tasks
        ]
        if n_workers > 1:
            # fork keeps the already-imported repro modules; fall back to
            # spawn where fork is unavailable (e.g. macOS default policies).
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            with ctx.Pool(processes=n_workers) as pool:
                # All tasks are submitted up front (apply_async, one
                # handle each) so the pool stays saturated; results are
                # then collected task by task, which is where the
                # per-task timeout and bounded retry live.  Collection
                # order is submission order, so results -- and cache
                # writes -- land deterministically.
                handles = [
                    pool.apply_async(_simulate_run, (payload,)) for payload in payloads
                ]
                for (run, run_seed, missing), payload, handle in zip(
                    tasks, payloads, handles
                ):
                    metrics_list = None
                    error = "unknown error"
                    for attempt in range(max_retries + 1):
                        try:
                            metrics_list = handle.get(cell_timeout_s)
                            break
                        except multiprocessing.TimeoutError:
                            error = f"timed out after {cell_timeout_s} s"
                        except Exception as exc:  # worker raised
                            error = f"{type(exc).__name__}: {exc}"
                        if attempt < max_retries:
                            _backoff(attempt)
                            handle = pool.apply_async(_simulate_run, (payload,))
                    if metrics_list is None:
                        _fail(run, run_seed, missing, error)
                        continue
                    for spec, metrics in zip(missing, metrics_list):
                        _record(run, run_seed, spec, metrics)
        else:
            for (run, run_seed, missing), payload in zip(tasks, payloads):
                metrics_list = None
                error = "unknown error"
                for attempt in range(max_retries + 1):
                    try:
                        metrics_list = _simulate_run(payload)
                        break
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                        if attempt < max_retries:
                            _backoff(attempt)
                if metrics_list is None:
                    _fail(run, run_seed, missing, error)
                    continue
                for spec, metrics in zip(missing, metrics_list):
                    _record(run, run_seed, spec, metrics)
    else:
        n_workers = 1

    return SweepResult(
        results={protocol: list(column) for protocol, column in grid.items()},
        cache_hits=hits,
        cache_misses=misses,
        workers=n_workers if pending else 1,
        failures=failures,
    )
