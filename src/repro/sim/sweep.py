"""Parallel experiment orchestration: sweep grids of (placement, protocol).

The paper's headline figures are Monte-Carlo sweeps -- many random node
placements, each simulated under several MAC protocols.  The serial
:func:`~repro.sim.runner.run_many` loop computes the ``n_runs x
n_protocols`` grid one cell at a time; this module computes the same grid

* **in parallel**, fanning *run-level tasks* out over supervised worker
  processes -- one task per placement, covering every protocol that
  missed the cache, so each run's network is drawn exactly **once** and
  shared by all protocols simulated on it (just like the serial
  ``run_many`` loop).  Only when more workers than uncached runs are
  available does a run's protocol list split into chunks (each still
  sharing one draw), trading a few extra draws for full concurrency;
* **incrementally**, memoising every cell in a durable on-disk results
  store (:class:`~repro.sim.store.ResultsStore`, WAL-mode SQLite) keyed
  by ``(scenario, protocol, run seed, config hash)`` so repeated figure
  invocations only recompute what actually changed; and
* **durably**: with a cache directory, every sweep records a *manifest*
  (grid, digests, seeds, config) up front and tracks each cell through
  ``pending -> running -> done/failed``, so a sweep killed mid-run --
  SIGINT, SIGTERM, OOM, reboot -- checkpoints (or is trivially
  reconstructible from committed cell states) and a re-invocation with
  ``resume=True`` completes exactly the unfinished cells.  The worker
  pool is supervised (:mod:`repro.sim.supervisor`): heartbeats tell
  hung workers from slow cells, silently-killed workers (OOM) are
  detected and replaced with the affected cells re-queued, and repeated
  deaths shrink the pool instead of failing the sweep.

All of this is possible because every cell is a pure function of its
seeds: run ``r`` draws placements/channels from ``seed + 1000 * r`` and
each protocol simulation runs with its own seeded RNG streams (including
the channel-estimation stream, see
:meth:`~repro.sim.network.Network.reseed_estimation_noise`).  A parallel
sweep is therefore **byte-identical** to a serial one for a fixed seed,
a resumed sweep is byte-identical to an uninterrupted one -- the test
suite asserts both -- and cached cells are interchangeable with freshly
computed ones.  Caching stays **cell-level** (per protocol) even though
work ships run-level: a task recomputes only the protocols whose cells
actually missed.

Typical use::

    from repro.sim.sweep import run_sweep

    result = run_sweep(
        "three-pair", ["802.11n", "n+"], n_runs=50,
        seed=0, workers=4, cache_dir=".sweep-cache",
    )
    result.results["n+"][0].total_throughput_mbps()

    # After an interruption (Ctrl-C, kill, crash): same call + resume=True
    run_sweep("three-pair", ["802.11n", "n+"], n_runs=50,
              seed=0, workers=4, cache_dir=".sweep-cache", resume=True)

Scenarios are usually referred to by registry name
(:func:`repro.sim.scenarios.register_scenario`), which doubles as the
cache key; passing a bare callable still works but only caches when an
explicit ``scenario_key`` is supplied.  Legacy per-cell JSON caches
(the pre-store :class:`SweepCache` layout) migrate into the store
automatically the first time their directory is opened; pass
``cache_backend="json"`` to keep using the flat-file cache instead.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import threading
import time
import traceback as _traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.channel.testbed import default_testbed
from repro.exceptions import ConfigurationError, SimulationError
from repro.mac.variants import ProtocolLike, ProtocolSpec, resolve_protocol
from repro.sim.capsule import CAPSULE_DIRNAME, build_capsule, write_capsule
from repro.sim.faults import fault_profile
from repro.sim.metrics import NetworkMetrics
from repro.sim.runner import (
    SimulationConfig,
    build_network,
    mac_seed,
    placement_seed,
    run_simulation,
)
from repro.sim.scenarios import Scenario, scenario_factory
from repro.sim.store import ResultsStore
from repro.sim.supervisor import (
    PoolShrunk,
    TaskAssigned,
    TaskDone,
    TaskFailed,
    TaskRequeued,
    TaskRetry,
    WorkerDeath,
    WorkerSupervisor,
)

__all__ = [
    "FailedCell",
    "SweepResult",
    "SweepCache",
    "ResultsStore",
    "run_sweep",
    "cell_key",
    "config_digest",
    "scenario_digest",
    "sweep_manifest_digest",
    "default_workers",
]

#: Bump when the simulation's numeric behaviour changes in a way that
#: should invalidate previously cached sweep results.  The version is
#: part of every cell key, so cells written under an older schema are
#: *missed* (and recomputed), never replayed.
#: 2: channel estimates are measured once per simulation (static-channel
#:    invariant) instead of re-drawn on every planning query, which
#:    changes every simulated metric for a given seed.
#: 3: the grouped (v3) channel-draw contract landed -- scalars-first
#:    construction draws, shape-grouped estimation-noise prefetch -- and
#:    ``channel_draws`` joined both the scenario and the config digests,
#:    so a v2 cell can never be replayed for a sweep that selects a
#:    different contract.
#: 4: the fault-injection layer landed (repro.sim.faults): retransmission
#:    accounting changed at the partial-delivery boundary (span-aging
#:    fail(), retry reset on forward progress, drop accounting), which
#:    shifts every seeded metric, and the fault parameters joined both
#:    digests -- ``fault_profile``/``fault_trace`` via the config, the
#:    scenario's resolved profile parameters via the scenario digest --
#:    so a static-network cell can never be replayed for a faulted sweep
#:    (or vice versa).
#: 5: the two-fidelity PHY layer landed (repro.sim.fidelity): the
#:    ``fidelity``/``fidelity_band_db`` knobs joined both digests (the
#:    config fields automatically, the scenario hints explicitly), so an
#:    abstraction-tier cell can never be replayed for an escalating
#:    sweep (or vice versa); abstraction-tier metrics themselves are
#:    unchanged, but v4 cells predate the knobs' digest coverage.
#: 6: the protocol-variant framework landed (repro.mac.variants): the
#:    protocol coordinate of a cell key is now the *spec-canonical* form
#:    ``name`` or ``name[param=value,...]`` with non-default parameters
#:    sorted, so parameterised sweeps (``retry_cap``, the ``recovery``
#:    family) get distinct cells.  Within v6 a default-parameter spec
#:    canonicalises to the bare name, i.e. hashes identically to the
#:    pre-framework key payload -- but v5 cells are still missed (and
#:    recomputed) because the schema version itself is part of the key:
#:    default-parameter metrics are bit-identical, yet metrics now carry
#:    the ``recovered_bits`` counter, and replaying a v5 cell into a
#:    parameterised grid would silently alias specs the v5 payload never
#:    distinguished.
#: (The SQLite results store did NOT bump the schema: cell keys and
#: metrics payloads are unchanged, which is exactly what lets a legacy
#: v6 JSON cache migrate into the store and keep hitting.)
#: 7: the numerical-hardening layer landed (repro.utils.guarded + link
#:    quarantine): decompositions that previously raised out of a
#:    degenerate cell now fall back deterministically and quarantine the
#:    link, so cells that *crashed* under v6 produce metrics under v7
#:    (and metrics payloads carry the new ``quarantined_rounds``
#:    counter); the ``validation`` knob also joined the config digest.
#:    Healthy cells are bit-identical to v6, but replaying a v6 cache
#:    into a grid whose degenerate cells now complete would mix
#:    crash-semantics generations.
CACHE_SCHEMA_VERSION = 7


def config_digest(config: SimulationConfig) -> str:
    """Stable hex digest of a :class:`SimulationConfig`.

    Any field change -- duration, subcarriers, packet rate, margins --
    produces a different digest, which is how the results cache
    invalidates on config change.
    """
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scenario_digest(scenario: Scenario) -> str:
    """Stable hex digest of a scenario's *structure*.

    Covers everything that shapes the simulation: stations (ids, antenna
    counts, names), traffic pairs (endpoints, streams per receiver), the
    suggested packet rate, and the testbed (candidate locations, the
    full link budget and the hardware impairment profile).  Mixed into
    every cache key next to the registry name, so editing a scenario's
    definition -- a different antenna mix, a reshaped floor, a changed
    hardware profile -- invalidates its cached cells automatically
    instead of replaying stale results under the old name.

    Scenarios without a testbed factory are simulated on
    :func:`~repro.channel.testbed.default_testbed`, so that *effective*
    testbed is digested for them: an edit to the default floor or to the
    :class:`~repro.channel.hardware.HardwareProfile` defaults changes the
    digest and misses the cache, instead of silently replaying cells
    simulated under the old defaults.
    """
    testbed = scenario.make_testbed()
    if testbed is None:
        # The testbed the simulation will actually run on (see
        # repro.sim.network.Network), not the `None` placeholder.
        testbed = default_testbed()
    payload = json.dumps(
        {
            "stations": [
                (s.node_id, s.n_antennas, s.name) for s in scenario.stations
            ],
            "pairs": [
                (
                    p.transmitter.node_id,
                    [r.node_id for r in p.receivers],
                    list(p.streams_per_receiver),
                )
                for p in scenario.pairs
            ],
            "packet_rate_pps": scenario.packet_rate_pps,
            # The scenario's channel-draw contract hint changes every
            # seeded channel (see repro.sim.network.Network), so it is
            # part of the structure -- editing a scenario from "batched"
            # to "grouped" must miss the cache, not replay v2 cells.
            "channel_draws": scenario.channel_draws,
            # The *resolved* fault-profile parameters, not just the name:
            # retuning a registered profile (or editing a scenario's
            # profile hint) changes every seeded faulted metric, so it
            # must miss the cache like any other structural edit.
            "fault_profile": _scenario_fault_payload(scenario),
            # The fidelity hints change which deliveries are decided by
            # the full transceiver, i.e. seeded results -- same rule as
            # the channel-draw and fault hints above.
            "fidelity": getattr(scenario, "fidelity", None),
            "fidelity_band_db": getattr(scenario, "fidelity_band_db", None),
            "testbed": {
                "locations": [list(xy) for xy in testbed.locations],
                "tx_power_dbm": testbed.tx_power_dbm,
                "noise_floor_dbm": testbed.noise_floor_dbm,
                "path_loss_exponent": testbed.path_loss_exponent,
                "reference_loss_db": testbed.reference_loss_db,
                "shadowing_sigma_db": testbed.shadowing_sigma_db,
                "los_probability": testbed.los_probability,
                "n_taps": testbed.n_taps,
                "snr_range_db": [testbed.min_snr_db, testbed.max_snr_db],
                "hardware": dataclasses.asdict(testbed.hardware),
            },
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _scenario_fault_payload(scenario: Scenario) -> Optional[dict]:
    """The scenario's fault profile, resolved to its parameters.

    ``None`` for a static scenario (keeping pre-fault digests of such
    scenarios' *structure* dependent only on the other fields).
    """
    name = getattr(scenario, "fault_profile", None)
    if name is None:
        return None
    return {"name": name, "params": dataclasses.asdict(fault_profile(name))}


def cell_key(
    scenario_key: str,
    protocol: ProtocolLike,
    run_seed: int,
    config: SimulationConfig,
    scenario_fingerprint: Optional[str] = None,
) -> str:
    """The cache key of one sweep cell -- shared by every backend.

    ``scenario_fingerprint`` (see :func:`scenario_digest`) ties the key
    to the scenario's structure, not just its registry name.
    ``protocol`` is canonicalised through
    :func:`~repro.mac.variants.resolve_protocol` first, so a bare name
    and its default-parameter spec produce the *same* key (pre-framework
    call sites and spec-based ones share cells) while any non-default
    parameter lands in the key as part of the ``name[param=value,...]``
    coordinate.  The module-global :data:`CACHE_SCHEMA_VERSION` is part
    of the payload, so cells written under an older schema are missed,
    never replayed.
    """
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "scenario": scenario_key,
            "scenario_fingerprint": scenario_fingerprint,
            "protocol": resolve_protocol(protocol).key,
            "run_seed": run_seed,
            "config": dataclasses.asdict(config),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def sweep_manifest_digest(manifest: dict) -> str:
    """Stable hex digest identifying one sweep's full grid.

    The manifest covers everything that defines the sweep -- scenario
    key and structural fingerprint, the ordered protocol specs, run
    count, base seed, config -- so two invocations with the same digest
    are by construction computing the same cells, which is what makes
    ``resume=True`` safe to assert against.
    """
    payload = json.dumps(manifest, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_workers() -> int:
    """Worker count used when ``workers`` is not given.

    Honors the ``REPRO_WORKERS`` environment variable first (the
    operator's explicit ceiling, e.g. for a shared box or a CI
    container), then the scheduler affinity mask
    (``os.sched_getaffinity`` -- the cores this process may actually
    use, which on a CPU-limited container is less than the machine's
    core count), then the raw CPU count as a last resort.
    """
    override = os.environ.get("REPRO_WORKERS")
    if override is not None and override.strip():
        try:
            return max(1, int(override))
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer, got {override!r}"
            ) from None
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class SweepCache:
    """Legacy on-disk memo of simulated cells, one JSON file per cell.

    Superseded by the SQLite :class:`~repro.sim.store.ResultsStore`
    (the default ``run_sweep`` backend), which migrates a directory of
    these files automatically on first open; kept for the
    ``cache_backend="json"`` escape hatch and as the reference layout
    the migration reads.

    A cell is one ``(scenario, protocol, run seed, config)`` simulation;
    its key is a SHA-256 over those coordinates plus a schema version.
    Files are written atomically (temp file + rename) so a crashed or
    parallel writer can never leave a truncated entry, and unreadable
    entries are treated as misses rather than errors.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def cell_key(
        self,
        scenario_key: str,
        protocol: ProtocolLike,
        run_seed: int,
        config: SimulationConfig,
        scenario_fingerprint: Optional[str] = None,
    ) -> str:
        """The cache key of one sweep cell (see :func:`cell_key`)."""
        return cell_key(scenario_key, protocol, run_seed, config, scenario_fingerprint)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[NetworkMetrics]:
        """The cached metrics for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            return NetworkMetrics.from_dict(data["metrics"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, key: str, metrics: NetworkMetrics, describe: dict) -> None:
        """Persist one cell atomically; ``describe`` is stored for humans.

        The entry is written to a pid-suffixed temp file and moved into
        place with :func:`os.replace` -- atomic on POSIX -- so concurrent
        sweeps sharing a cache dir and crashed writers can never publish
        a truncated entry under the final name (a reader sees either the
        old complete entry or the new complete one).  A write that fails
        midway removes its temp file before re-raising.
        """
        path = self._path(key)
        payload = json.dumps({"cell": describe, "metrics": metrics.to_dict()}, indent=1)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(payload)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


@dataclass(frozen=True)
class FailedCell:
    """One sweep cell that could not be computed (see :func:`run_sweep`).

    Records the cell coordinates and the final exception string after
    every retry was exhausted, so a long sweep reports *which* cells are
    missing and why instead of aborting on the first worker crash.
    ``capsule_path`` points at the replayable crash capsule written next
    to the results store (``python -m repro.cli replay <path>`` re-runs
    the exact cell); ``None`` when the sweep ran without a cache
    directory.  ``traceback`` carries the full Python traceback of the
    simulation crash (captured in-worker for parallel sweeps); it is
    ``None`` only for failures outside a simulation, e.g. a worker that
    kept dying or a task that timed out.
    """

    protocol: str
    run: int
    run_seed: int
    error: str
    capsule_path: Optional[str] = None
    traceback: Optional[str] = None


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` call.

    Attributes
    ----------
    results:
        ``{protocol: [metrics of run 0, run 1, ...]}`` -- the same shape
        :func:`repro.sim.runner.run_many` returns.  A cell whose
        computation failed (see ``failures``) is ``None``.
    cache_hits, cache_misses:
        How many cells came from the cache vs were simulated.  A repeated
        invocation with an unchanged grid reports all hits.
    workers:
        Worker processes used for the simulated cells (1 = in-process).
    failures:
        The cells that still failed after retries, as
        :class:`FailedCell` records (empty for a clean sweep; always
        empty under ``strict=True``, which raises instead).
    worker_deaths:
        Workers lost and replaced during the sweep (OOM kills, hangs;
        deliberate slow-cell timeout kills included).  ``0`` on a
        healthy machine.
    sweep_id:
        Manifest digest recorded in the results store (``None`` when
        run without a cache directory or on the JSON backend).
    """

    results: Dict[str, List[Optional[NetworkMetrics]]] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    failures: List[FailedCell] = field(default_factory=list)
    worker_deaths: int = 0
    sweep_id: Optional[str] = None

    @property
    def n_runs(self) -> int:
        """Number of placements per protocol (failed cells included)."""
        return len(next(iter(self.results.values()), []))

    def totals_mbps(self, protocol: ProtocolLike) -> List[float]:
        """Per-run total network throughput of one protocol.

        ``protocol`` may be the grid key (a spec-canonical string such as
        ``"n+"`` or ``"n+[recovery=erasure]"``) or any form
        :func:`~repro.mac.variants.resolve_protocol` accepts.  Failed
        cells (``None`` in the grid) are skipped, so aggregates stay
        computable on a partially-failed sweep.
        """
        if not (isinstance(protocol, str) and protocol in self.results):
            protocol = resolve_protocol(protocol).key
        return [
            m.total_throughput_mbps() for m in self.results[protocol] if m is not None
        ]

    def link_names(self) -> List[str]:
        """The traffic-pair names of the swept scenario, in metric order."""
        for runs in self.results.values():
            for metrics in runs:
                if metrics is not None:
                    return list(metrics.links)
        return []


def _resolve_scenario(
    scenario: Union[str, Callable[[], Scenario]],
    scenario_key: Optional[str],
) -> Tuple[Callable[[], Scenario], Optional[str]]:
    """Turn a registry name or factory into ``(factory, cache key)``.

    A registry name is its own cache key.  A bare callable is only
    cacheable with an explicit ``scenario_key`` -- its arguments are not
    visible here, so guessing a key from its name could silently alias
    differently-parameterised sweeps.
    """
    if isinstance(scenario, str):
        return scenario_factory(scenario), scenario_key or scenario
    if not callable(scenario):
        raise ConfigurationError(
            f"scenario must be a registered name or a factory, got {scenario!r}"
        )
    return scenario, scenario_key


def _simulate_run(args: Tuple) -> List[Tuple]:
    """Worker entry point: simulate one placement under several protocols.

    Tasks ship run-level so the placement's network is drawn exactly once
    (one :func:`~repro.sim.runner.build_network` call) and shared by all
    the protocols that missed the cache -- the same sharing the serial
    :func:`~repro.sim.runner.run_many` loop does.  Byte-identical to
    per-cell computation either way, because every simulation reseeds its
    own RNG streams from ``mac_seed(run_seed)``.

    Returns one outcome per spec: ``("ok", metrics)`` for a completed
    cell, ``("error", error, traceback, event_ring)`` for a crashed one
    -- a crash in one protocol's simulation never fails the run's other
    cells.  Failures *before* any simulation (the scenario factory or
    the network draw) still raise and fail the whole task, because every
    cell of the run genuinely shares that cause.
    """
    factory, specs, run_seed, config = args
    scenario = factory()
    network = build_network(scenario, run_seed, config)
    outcomes = []
    for spec in specs:
        try:
            metrics = run_simulation(
                scenario,
                spec,
                seed=mac_seed(run_seed),
                config=config,
                network=network,
            )
        except Exception as exc:
            # Isolate the crash to this protocol's cell: the run's other
            # protocols are independent simulations off the same network
            # draw, and failing them too would write capsules that do
            # not reproduce.  The traceback and event ring travel as
            # plain picklable data so parallel workers ship them too.
            outcomes.append(
                (
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    _traceback.format_exc(),
                    getattr(exc, "_repro_event_ring", None),
                )
            )
        else:
            outcomes.append(("ok", metrics))
    return outcomes


def _open_cache(
    cache_dir: Union[str, Path], backend: str
) -> Union[ResultsStore, SweepCache]:
    if backend == "sqlite":
        return ResultsStore(cache_dir)
    if backend == "json":
        return SweepCache(cache_dir)
    raise ConfigurationError(
        f"unknown cache_backend {backend!r} (expected 'sqlite' or 'json')"
    )


class _InterruptRequested(KeyboardInterrupt):
    """Raised by the sweep's signal handlers to unwind to the checkpoint."""

    def __init__(self, signum: int) -> None:
        super().__init__(signum)
        self.signum = signum


def run_sweep(
    scenario: Union[str, Callable[[], Scenario]],
    protocols: Sequence[ProtocolLike],
    n_runs: int,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    workers: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    scenario_key: Optional[str] = None,
    strict: bool = False,
    cell_timeout_s: Optional[float] = None,
    max_retries: int = 1,
    retry_backoff_s: float = 0.5,
    resume: bool = False,
    cache_backend: str = "sqlite",
    hang_timeout_s: float = 30.0,
    max_worker_requeues: int = 3,
    shrink_after_deaths: int = 3,
) -> SweepResult:
    """Sweep ``n_runs`` placements x ``protocols`` -- parallel, cached, durable.

    Byte-identical to :func:`repro.sim.runner.run_many` with the same
    ``(scenario, protocols, n_runs, seed, config)`` -- regardless of
    worker count, cell execution order, whether cells were replayed
    from the cache, or whether the sweep was interrupted and resumed.
    Retried and re-queued tasks cannot perturb results either: every
    cell is a pure function of its seeds, so a replay recomputes the
    identical metrics.

    Parameters
    ----------
    scenario:
        A registered scenario name (preferred; also keys the cache) or a
        zero-argument factory returning a :class:`Scenario`.
    protocols:
        Protocols to compare on every placement: bare names, parameterised
        strings (``"n+[recovery=erasure]"``), ``(name, params)`` pairs or
        :class:`~repro.mac.variants.ProtocolSpec` objects, freely mixed --
        so a grid can range over protocol *parameters*, e.g.
        ``[("n+", {"retry_cap": c}) for c in (1, 3, 7)]``.  Every entry is
        resolved and validated *before* any worker is spawned; an unknown
        name or unknown/ill-typed parameter raises
        :class:`~repro.exceptions.ConfigurationError` listing the
        registered variants and their parameters.  The result grid is
        keyed by each spec's canonical string
        (:attr:`~repro.mac.variants.ProtocolSpec.key` -- the bare name
        for default parameters).
    n_runs:
        Number of random placements.
    seed:
        Base seed; run ``r`` uses placement seed ``seed + 1000 * r`` (see
        :func:`repro.sim.runner.placement_seed`).
    config:
        Simulation parameters; part of every cell's cache key.
    workers:
        Worker processes for uncached work.  Tasks ship run-level -- one
        task per placement covering every protocol that missed the cache,
        so each run draws its network exactly once no matter how many
        protocols are swept (when more workers than uncached runs are
        available, a run's protocols chunk across workers, each chunk
        drawing once).  ``1`` (default) simulates in-process; ``None``
        uses :func:`default_workers` (the ``REPRO_WORKERS`` override,
        else the usable cores).  Worker processes must be able to import
        :mod:`repro`, and callables passed as ``scenario`` must be
        picklable (module-level functions and :func:`functools.partial`
        of them are).
    cache_dir:
        Directory of the durable on-disk results store; ``None`` disables
        caching (and checkpointing).  Entries are invalidated by any
        change to the scenario name/structure, protocol, seed or config.
        A directory holding a legacy JSON cell cache is migrated into
        the store automatically (one shot; the JSON files are left in
        place).
    scenario_key:
        Cache key override, required to cache a bare-callable
        ``scenario``.
    strict:
        ``False`` (default): a task that still fails after retries is
        recorded in :attr:`SweepResult.failures` (its grid cells stay
        ``None``) and the sweep completes -- one pathological placement
        cannot abort an hours-long sweep.  ``True`` restores
        raise-on-failure (:class:`~repro.exceptions.SimulationError`).
    cell_timeout_s:
        Per-task timeout in seconds for the parallel path (``None``
        disables).  A timed-out task's worker is killed (not abandoned)
        and replaced; the task counts a failed attempt and is retried.
        Heartbeats keep a merely *slow* cell distinguishable from a
        *hung* worker -- see ``hang_timeout_s``.  Ignored in-process
        (``workers=1``), where a timeout cannot be enforced without a
        second process.
    max_retries:
        How many times a failed/timed-out task is retried before its
        cells are declared failed.  Retries are deterministic replays
        (same payload, same seeds), so they only help against transient
        causes -- OOM kills, timeouts on a loaded machine.
    retry_backoff_s:
        Base of the exponential backoff before retry ``k``
        (``retry_backoff_s * 2**k`` seconds); ``0`` disables it.  Never
        slept after the final failed attempt (no retry follows), and on
        the parallel path it is non-blocking (a not-before time, so
        other tasks keep flowing).
    resume:
        ``True`` requires a ``cache_dir`` (SQLite backend) holding a
        checkpoint for this exact manifest -- same scenario structure,
        protocols, ``n_runs``, ``seed`` and config -- and completes the
        cells that are not ``done`` yet.  Raises
        :class:`~repro.exceptions.ConfigurationError` when no such
        manifest was ever recorded (a typo'd grid resumes nothing).
        The result is byte-identical to running the sweep uninterrupted.
    cache_backend:
        ``"sqlite"`` (default): the durable
        :class:`~repro.sim.store.ResultsStore` with manifests,
        checkpointing and cross-sweep queries.  ``"json"``: the legacy
        flat-directory :class:`SweepCache` (no manifests, no resume).
    hang_timeout_s:
        A busy worker whose heartbeat goes stale this long is declared
        hung (SIGSTOP, deadlock -- distinct from a slow cell, which
        keeps heartbeating), killed, and replaced; the cell is
        re-queued.
    max_worker_requeues:
        Worker deaths tolerated per task before its cells fail -- the
        bound that stops a cell which reproducibly OOMs its worker from
        re-queueing forever.
    shrink_after_deaths:
        Graceful degradation: every this-many unexpected worker deaths
        permanently shrinks the pool by one worker (never below one),
        so a memory-starved machine converges to sustainable
        parallelism instead of failing the sweep.

    Durability
    ----------
    With a cache directory, the sweep records its manifest up front and
    drives every cell through ``pending -> running -> done/failed`` in
    the store.  SIGINT/SIGTERM are caught (main thread only): in-flight
    completed results are flushed, running cells are checkpointed back
    to ``pending``, the manifest is marked ``interrupted``, and the
    signal's default behaviour then proceeds (KeyboardInterrupt /
    termination).  ``resume=True`` -- or ``repro sweep --resume`` --
    picks the sweep up exactly where it stopped.

    Returns
    -------
    SweepResult
        Metrics grid plus cache-hit, failed-cell and worker-death
        accounting.
    """
    config = config or SimulationConfig()
    factory, key = _resolve_scenario(scenario, scenario_key)
    # Fail fast: resolve every protocol entry up front, so an unknown
    # name or ill-typed parameter raises here -- with the registry
    # listing -- instead of dying inside a worker as a FailedCell.
    specs: List[ProtocolSpec] = [resolve_protocol(p) for p in protocols]
    if not specs:
        raise ConfigurationError("need at least one protocol to sweep")
    seen_keys = set()
    for spec in specs:
        if spec.key in seen_keys:
            raise ConfigurationError(
                f"duplicate protocol {spec.key!r} in the sweep grid"
            )
        seen_keys.add(spec.key)
    if n_runs < 1:
        raise ConfigurationError("need at least one run to sweep")

    cache: Optional[Union[ResultsStore, SweepCache]] = None
    store: Optional[ResultsStore] = None
    fingerprint = None
    if cache_dir is not None:
        if key is None:
            raise ConfigurationError(
                "caching a factory scenario needs an explicit scenario_key"
            )
        cache = _open_cache(cache_dir, cache_backend)
        if isinstance(cache, ResultsStore):
            store = cache
        # Tie keys to the scenario's structure, not just its name, so an
        # edited scenario definition cannot replay stale cells.
        fingerprint = scenario_digest(factory())
    if resume and store is None:
        raise ConfigurationError(
            "resume=True needs a cache_dir with the SQLite results store "
            "(cache_backend='sqlite'); the store holds the checkpoint to resume"
        )

    # Each cell's key is needed more than once (grid registration, hit
    # scan, result recording) and hashing the config dataclass dominates
    # a warm replay, so keys are memoised for the duration of this call
    # (the config cannot change under us) and the constant config digest
    # is computed once.
    _keys: Dict[Tuple[str, int], str] = {}

    def _cell_key(spec: ProtocolSpec, run_seed: int) -> str:
        coord = (spec.key, run_seed)
        if coord not in _keys:
            _keys[coord] = cell_key(key, spec, run_seed, config, fingerprint)
        return _keys[coord]

    config_fingerprint = config_digest(config) if cache is not None else None

    def _describe(spec: ProtocolSpec, run: int, run_seed: int) -> dict:
        return {
            "scenario": key,
            "scenario_fingerprint": fingerprint,
            "protocol": spec.key,
            "protocol_params": spec.resolved_params(),
            "run": run,
            "run_seed": run_seed,
            "config_digest": config_fingerprint,
        }

    # -- manifest / checkpoint bookkeeping ---------------------------------
    sweep_id = None
    if store is not None:
        manifest = {
            "schema": CACHE_SCHEMA_VERSION,
            "scenario": key,
            "scenario_fingerprint": fingerprint,
            "protocols": [spec.key for spec in specs],
            "n_runs": n_runs,
            "seed": seed,
            "config": dataclasses.asdict(config),
        }
        sweep_id = sweep_manifest_digest(manifest)
        if resume and store.get_sweep(sweep_id) is None:
            raise ConfigurationError(
                f"nothing to resume: no checkpoint for this sweep manifest "
                f"(sweep_id {sweep_id[:12]}...) in {cache_dir}; run without "
                "resume=True to start it, or check that scenario/protocols/"
                "n_runs/seed/config match the interrupted invocation exactly"
            )
        # Record the full grid up front: every cell exists as a row
        # before any work starts, so an interruption at *any* point
        # leaves a store that knows exactly what remains.
        store.begin_sweep(
            sweep_id,
            manifest,
            cells=[
                (
                    _cell_key(spec, placement_seed(seed, run)),
                    _describe(spec, run, placement_seed(seed, run)),
                )
                for run in range(n_runs)
                for spec in specs
            ],
        )

    grid: Dict[str, List[Optional[NetworkMetrics]]] = {
        spec.key: [None] * n_runs for spec in specs
    }
    # One pending task per run, listing the protocol specs whose cells
    # missed the cache: the unit of work shipped to a worker.  Specs keep
    # their sweep order inside each task so results are reproducible.
    # Against the store the whole grid is prefetched in one batched
    # SELECT rather than a query per cell.
    preloaded: Dict[str, NetworkMetrics] = {}
    if store is not None:
        preloaded = store.load_many(
            [
                _cell_key(spec, placement_seed(seed, run))
                for run in range(n_runs)
                for spec in specs
            ]
        )
    pending: List[Tuple[int, int, List[ProtocolSpec]]] = []  # (run, run_seed, specs)
    misses = 0
    hits = 0
    for run in range(n_runs):
        run_seed = placement_seed(seed, run)
        missing: List[ProtocolSpec] = []
        for spec in specs:
            if cache is not None:
                if store is not None:
                    cached = preloaded.get(_cell_key(spec, run_seed))
                else:
                    cached = cache.load(_cell_key(spec, run_seed))
                if cached is not None:
                    grid[spec.key][run] = cached
                    hits += 1
                    continue
            missing.append(spec)
        if missing:
            pending.append((run, run_seed, missing))
            misses += len(missing)

    def _record(
        run: int, run_seed: int, spec: ProtocolSpec, metrics: NetworkMetrics
    ) -> None:
        grid[spec.key][run] = metrics
        if cache is not None:
            # Stored as soon as each task completes, so an interrupted or
            # partially failed sweep keeps every finished cell.
            cache.store(
                _cell_key(spec, run_seed), metrics, describe=_describe(spec, run, run_seed)
            )

    failures: List[FailedCell] = []

    def _fail(
        run: int,
        run_seed: int,
        missing: List[ProtocolSpec],
        error: str,
        traceback_text: Optional[str] = None,
        ring: Optional[List[dict]] = None,
    ) -> None:
        if strict:
            raise SimulationError(
                f"sweep cell failed after {max_retries} retries "
                f"(run {run}, run_seed {run_seed}, "
                f"protocols {[s.key for s in missing]}): {error}"
            )
        # Capsules are written parent-side (workers only ship error
        # strings), next to the results store; without a cache directory
        # there is nowhere durable to put them.
        capsule_dir = Path(cache_dir) / CAPSULE_DIRNAME if cache_dir is not None else None
        for spec in missing:
            capsule_path: Optional[str] = None
            if capsule_dir is not None:
                try:
                    capsule = build_capsule(
                        factory(), key, fingerprint, spec, run, run_seed,
                        config, error, traceback_text=traceback_text, events=ring,
                    )
                    capsule_path = str(write_capsule(capsule, capsule_dir))
                except Exception:
                    # A capsule is a debugging aid; failing to write one
                    # must never cost the sweep its failure record.
                    capsule_path = None
            failures.append(
                FailedCell(
                    protocol=spec.key, run=run, run_seed=run_seed, error=error,
                    capsule_path=capsule_path, traceback=traceback_text,
                )
            )
            if store is not None:
                store.mark_failed(
                    _cell_key(spec, run_seed), error, _describe(spec, run, run_seed),
                    capsule_path=capsule_path, traceback=traceback_text,
                )

    def _backoff(attempt: int) -> None:
        """Sleep the exponential backoff before retry ``attempt + 1``.

        Only ever called when a retry will actually follow -- the final
        failed attempt fails the cell immediately, without paying the
        (by then pointless) delay.
        """
        if retry_backoff_s > 0:
            time.sleep(retry_backoff_s * (2**attempt))

    n_workers = 1
    worker_deaths = 0
    interrupted: Dict[str, Optional[int]] = {"signum": None}

    def _handler(signum, frame):
        interrupted["signum"] = signum
        raise _InterruptRequested(signum)

    # Checkpointable sweeps catch SIGINT/SIGTERM so an interruption
    # flushes finished cells and records a resumable state first; the
    # signal's default behaviour proceeds afterwards.  Signal handlers
    # only work in the main thread; elsewhere the sweep simply runs
    # without them.
    handle_signals = (
        store is not None
        and pending
        and threading.current_thread() is threading.main_thread()
    )
    previous_handlers = {}
    if handle_signals:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _handler)

    try:
        if pending:
            n_requested = default_workers() if workers is None else max(1, int(workers))
            # One task normally covers all of a run's uncached protocols, so
            # the run's network is drawn once.  When more workers than
            # uncached runs are available, each run's protocol list is
            # chunked so the extra workers stay busy -- every chunk still
            # shares one network draw across its protocols, so the build
            # count only grows as far as the concurrency actually used.
            per_task = max(1, -(-misses // n_requested))  # ceil division
            tasks: List[Tuple[int, int, List[ProtocolSpec]]] = []
            for run, run_seed, missing in pending:
                for start in range(0, len(missing), per_task):
                    tasks.append((run, run_seed, missing[start : start + per_task]))
            n_workers = min(n_requested, len(tasks))
            payloads = [
                (factory, list(missing), run_seed, config)
                for _, run_seed, missing in tasks
            ]
            if n_workers > 1:
                supervisor = WorkerSupervisor(
                    _simulate_run,
                    payloads,
                    workers=n_workers,
                    task_timeout_s=cell_timeout_s,
                    max_retries=max_retries,
                    retry_backoff_s=retry_backoff_s,
                    hang_timeout_s=hang_timeout_s,
                    max_requeues=max_worker_requeues,
                    shrink_after_deaths=shrink_after_deaths,
                )
                events = supervisor.events()
                try:
                    for event in events:
                        if isinstance(event, TaskAssigned):
                            run, run_seed, missing = tasks[event.task_id]
                            if store is not None:
                                store.mark_running(
                                    [_cell_key(spec, run_seed) for spec in missing]
                                )
                        elif isinstance(event, TaskDone):
                            run, run_seed, missing = tasks[event.task_id]
                            for spec, outcome in zip(missing, event.result):
                                if outcome[0] == "ok":
                                    _record(run, run_seed, spec, outcome[1])
                                else:
                                    _, err, err_tb, err_ring = outcome
                                    _fail(run, run_seed, [spec], err,
                                          traceback_text=err_tb, ring=err_ring)
                        elif isinstance(event, TaskFailed):
                            run, run_seed, missing = tasks[event.task_id]
                            _fail(run, run_seed, missing, event.error)
                        elif isinstance(event, WorkerDeath):
                            worker_deaths += 1
                        # TaskRetry / TaskRequeued / PoolShrunk need no
                        # bookkeeping here: the cells stay `running` until
                        # they settle, and the supervisor owns pool size.
                finally:
                    events.close()  # tears the worker pool down
            else:
                for (run, run_seed, missing), payload in zip(tasks, payloads):
                    metrics_list = None
                    error = "unknown error"
                    error_tb: Optional[str] = None
                    error_ring: Optional[List[dict]] = None
                    if store is not None:
                        store.mark_running(
                            [_cell_key(spec, run_seed) for spec in missing]
                        )
                    for attempt in range(max_retries + 1):
                        try:
                            metrics_list = _simulate_run(payload)
                            break
                        except _InterruptRequested:
                            raise
                        except Exception as exc:
                            error = f"{type(exc).__name__}: {exc}"
                            # In-process we hold the live exception:
                            # capture the traceback and the event ring
                            # the runner boundary attached, for the
                            # crash capsule.
                            error_tb = _traceback.format_exc()
                            error_ring = getattr(exc, "_repro_event_ring", None)
                            if attempt < max_retries:
                                _backoff(attempt)
                    if metrics_list is None:
                        _fail(run, run_seed, missing, error,
                              traceback_text=error_tb, ring=error_ring)
                        continue
                    for spec, outcome in zip(missing, metrics_list):
                        if outcome[0] == "ok":
                            _record(run, run_seed, spec, outcome[1])
                        else:
                            _, err, err_tb, err_ring = outcome
                            _fail(run, run_seed, [spec], err,
                                  traceback_text=err_tb, ring=err_ring)
        if store is not None and sweep_id is not None:
            store.finish_sweep(sweep_id)
    except KeyboardInterrupt:
        # Includes _InterruptRequested from our handlers and a plain
        # Ctrl-C KeyboardInterrupt raised while no handler was installed
        # mid-cell: flush what finished (already stored cell by cell),
        # checkpoint running cells back to pending, mark the manifest
        # interrupted -- then let the signal's behaviour proceed.
        if store is not None and sweep_id is not None:
            store.checkpoint_sweep(sweep_id, status="interrupted")
        if handle_signals:
            for signum, previous in previous_handlers.items():
                signal.signal(signum, previous)
            previous_handlers = {}
        if interrupted["signum"] == signal.SIGTERM:
            # Re-deliver so the process dies with the genuine SIGTERM
            # disposition (exit status included), not an exception.
            os.kill(os.getpid(), signal.SIGTERM)
        raise KeyboardInterrupt from None
    finally:
        for signum, previous in previous_handlers.items():
            signal.signal(signum, previous)

    return SweepResult(
        results={protocol: list(column) for protocol, column in grid.items()},
        cache_hits=hits,
        cache_misses=misses,
        workers=n_workers if pending else 1,
        failures=failures,
        worker_deaths=worker_deaths,
        sweep_id=sweep_id,
    )
