"""The main simulation loop: contention, transmission, join, delivery.

The simulation advances round by round, where one round is one joint
transmission on the medium:

1. every backlogged node contends (condensed DCF); the winner starts
   transmitting after DIFS + backoff + its light-weight header;
2. if the protocol supports joining (n+), secondary contention rounds run
   while degrees of freedom and airtime remain; every joiner ends exactly
   with the first winner;
3. when the bodies end, each receiver's outcome is evaluated from the
   post-projection SNRs of its streams (with the residual interference of
   imperfect nulling/alignment included), ACKs are exchanged and queues
   and contention windows are updated.

Rounds are driven by the indexed event queue of
:class:`~repro.sim.engine.EventScheduler`: each round is one scheduled
event, and idle gaps between Poisson arrivals are skipped in a single
event instead of being polled slot by slot, so lightly-loaded or
many-node simulations no longer pay for empty airtime.  The original
condensed ``while`` loop is kept as
:func:`_run_simulation_condensed_reference` and the test suite asserts
that both produce bit-identical metrics.

The per-round MAC queries themselves are batched by default
(``pipeline="batched"``): agents mirror their traffic state into
:class:`~repro.sim.traffic.TrafficStateArrays` and the runner evaluates
the ``has_traffic`` / ``next_traffic_time_us`` / join-eligibility masks
for all agents with a handful of array operations per round, instead of
one Python call per agent -- the difference between a 6-station paper
topology and the ``dense-lan-100/200`` scenarios.  The per-agent scans
are kept as ``pipeline="per-agent"`` and asserted bit-identical.

The per-run environment (placements, channels) is frozen in a
:class:`~repro.sim.network.Network`, so different protocols can be
compared on identical channel realisations, as the paper does by running
all schemes at each set of node locations.  Channel-*estimation* noise is
drawn from a stream seeded per simulation
(:meth:`~repro.sim.network.Network.reseed_estimation_noise`), which makes
every ``(scenario, protocol, seed, config)`` simulation a pure function
of its arguments -- the property the parallel sweep orchestrator
(:mod:`repro.sim.sweep`) relies on to fan runs out across worker
processes and still match a serial sweep byte for byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.constants import SLOT_TIME_US
from repro.exceptions import ConfigurationError, SimulationError
from repro.mac.csma import resolve_contention
from repro.mac.plan import PlanCache
from repro.mac.variants import ProtocolLike, resolve_protocol
from repro.phy.esnr import packet_delivery_probability
from repro.sim.engine import EventScheduler
from repro.sim.faults import FaultInjector, FaultSchedule, fault_profile
from repro.sim.fidelity import DEFAULT_BAND_DB, FIDELITY_MODES, FidelityEngine
from repro.sim.invariants import InvariantSuite, effective_validation
from repro.sim.link_abstraction import receiver_stream_snrs
from repro.sim.medium import Medium, ScheduledStream
from repro.sim.metrics import NetworkMetrics
from repro.sim.network import Network
from repro.sim.scenarios import Scenario
from repro.sim.traffic import TrafficStateArrays

__all__ = [
    "SimulationConfig",
    "run_simulation",
    "run_many",
    "simulate_placement",
    "build_network",
    "build_fault_schedule",
    "effective_channel_draws",
    "effective_fault_profile",
    "effective_fidelity",
    "effective_fidelity_band_db",
    "effective_validation",
    "placement_seed",
    "mac_seed",
    "mac_factory",
]

#: Stream tag mixed into the simulation seed for channel-estimation noise,
#: so the estimation stream is decorrelated from backoff/delivery draws.
_ESTIMATION_STREAM_TAG = 0x657374  # "est"

#: Stream tag mixed into the simulation seed for Poisson packet arrivals.
#: Every (transmitter, receiver) flow draws its arrivals from its own
#: stream seeded ``(seed, tag, tx, rx)``, so arrival sequences do not
#: depend on the order agents are built or refilled in -- the same
#: order-independence contract channel-estimation noise already has.
_ARRIVAL_STREAM_TAG = 0x617272  # "arr"


def mac_factory(protocol) -> Callable:
    """Return the agent class of ``protocol``.

    A thin shim over the variant registry of :mod:`repro.mac.variants`
    (where the former hard-coded ``_PROTOCOLS`` dict now lives as
    declarative registrations): accepts any protocol form
    :func:`~repro.mac.variants.resolve_protocol` does and raises
    :class:`~repro.exceptions.ConfigurationError` -- listing the
    registered variants -- on unknown names.
    """
    return resolve_protocol(protocol).agent_class


@dataclass
class SimulationConfig:
    """Parameters of one simulation run.

    The config is part of the results-cache key used by
    :mod:`repro.sim.sweep`: two runs with equal configs (and equal
    scenario, protocol and seed) produce identical metrics, and any field
    change invalidates the cached entry.

    Attributes
    ----------
    duration_us:
        Length of the observation window in simulated microseconds.  The
        last transmission round may run past it; the metrics normalise by
        the actual elapsed time.
    packet_size_bytes:
        Payload of every generated packet (1500 in the paper).
    n_subcarriers:
        Number of OFDM subcarriers tracked by the link abstraction.  16
        keeps runs fast while retaining frequency selectivity; 64 is full
        fidelity; 8 is a common test/CI setting.
    min_join_airtime_us:
        A joiner needs at least this much airtime left in the ongoing
        transmission to bother joining (n+ only).
    bitrate_margin_db:
        Safety margin subtracted from the measured effective SNR before
        selecting a bitrate.
    max_rounds:
        Hard cap on transmission rounds (guards against runaway loops); a
        run that exceeds it raises :class:`~repro.exceptions.SimulationError`.
    packet_rate_pps:
        Per-flow Poisson packet arrival rate.  ``None`` (the default)
        means saturated sources, which is what the paper's evaluation
        uses; a positive rate models bursty traffic.  When ``None``, a
        scenario-level suggestion
        (:attr:`repro.sim.scenarios.Scenario.packet_rate_pps`, used by the
        bursty dense-LAN scenarios) applies instead; ``0`` explicitly
        forces saturated sources even on such a scenario.
    channel_draws:
        Which channel-draw contract builds the run's network (see
        :class:`repro.sim.network.Network`): ``"grouped"`` (the v3
        scalars-first contract), ``"batched"`` or ``"per-pair"`` (the
        mutually bit-identical v2 contracts).  ``None`` (the default)
        defers to the scenario's
        :attr:`~repro.sim.scenarios.Scenario.channel_draws` hint (the
        ``dense-lan-500`` tier declares ``"grouped"``), falling back to
        ``"batched"``.  Unlike ``pipeline``/``plan_cache`` this knob
        changes seeded results, so it is part of the sweep cache key
        (via the config digest).
    fault_profile:
        Name of a registered fault profile (:mod:`repro.sim.faults`) to
        inject -- deep fades, loss episodes, station churn.  ``None``
        (the default) defers to the scenario's
        :attr:`~repro.sim.scenarios.Scenario.fault_profile` hint (the
        ``dense-lan-*-faulty`` variants declare ``"mixed"``); ``"none"``
        (or ``""``) explicitly disables faults even on such a scenario.
        Like ``channel_draws`` this changes seeded results and is part
        of the sweep cache key.
    fault_trace:
        Path to a JSON/CSV loss-trace file
        (:meth:`repro.sim.faults.FaultSchedule.from_trace`) whose
        episodes are injected in addition to the profile's.  Part of the
        cache key; the digest records the path, so retracing a file in
        place requires a fresh cache dir (traces are normally immutable
        experiment inputs).
    fidelity:
        PHY fidelity tier (:mod:`repro.sim.fidelity`): ``"abstraction"``
        predicts every delivery from the link abstraction (bit-identical
        to the pre-fidelity simulator), ``"auto"`` escalates receptions
        whose delivery margin falls inside the uncertainty band to a real
        transceiver probe whose verdict overrides the abstraction's coin,
        and ``"full"`` escalates every evaluated reception.  ``None``
        (the default) defers to the scenario's
        :attr:`~repro.sim.scenarios.Scenario.fidelity` hint, falling back
        to ``"abstraction"``.  Changes seeded results, so it is part of
        the sweep cache key (via the config digest).
    fidelity_band_db:
        Half-width (dB) of the ``"auto"`` uncertainty band around the
        delivery cliff.  ``None`` defers to the scenario's
        :attr:`~repro.sim.scenarios.Scenario.fidelity_band_db` hint,
        falling back to
        :data:`repro.sim.fidelity.DEFAULT_BAND_DB`.  Part of the cache
        key for the same reason.
    validation:
        Runtime invariant checking (:mod:`repro.sim.invariants`):
        ``"off"`` runs no checkers (the execution path is exactly the
        unvalidated one), ``"cheap"`` verifies the aggregate
        conservation laws at transmission-round boundaries, ``"full"``
        additionally checks every link and queue each round (the mode
        ``repro replay`` re-executes crash capsules under).  ``None``
        (the default) defers to a scenario hint, falling back to
        ``"off"``.  Validation never changes seeded results -- a
        violated invariant raises instead of altering the run -- but
        the field still joins the config digest (all fields do), so
        keep it ``"off"`` for production sweeps.
    """

    duration_us: float = 100_000.0
    packet_size_bytes: int = 1500
    n_subcarriers: int = 16
    min_join_airtime_us: float = 96.0
    bitrate_margin_db: float = 1.0
    max_rounds: int = 200_000
    packet_rate_pps: Optional[float] = None
    channel_draws: Optional[str] = None
    fault_profile: Optional[str] = None
    fault_trace: Optional[str] = None
    fidelity: Optional[str] = None
    fidelity_band_db: Optional[float] = None
    validation: Optional[str] = None


@dataclass
class _TransmissionGroup:
    """One (transmitter, receiver) reception to evaluate at the end."""

    agent: object
    receiver_id: int
    streams: List[ScheduledStream]
    payload_bits: int
    collided: bool = False
    joined: bool = False


def _effective_packet_rate(scenario: Scenario, config: SimulationConfig) -> Optional[float]:
    """The Poisson rate in effect: explicit config beats the scenario hint.

    A config rate of ``0`` (or below) means "explicitly saturated" -- the
    only way to override a bursty scenario's suggested rate back to the
    paper's saturated sources.
    """
    if config.packet_rate_pps is not None:
        return config.packet_rate_pps if config.packet_rate_pps > 0 else None
    return getattr(scenario, "packet_rate_pps", None)


def effective_channel_draws(scenario: Scenario, config: SimulationConfig) -> str:
    """The channel-draw contract in effect: config beats the scenario hint.

    ``None`` everywhere resolves to ``"batched"``, the default v2
    contract.  This is *the* resolution rule -- :func:`build_network`,
    :func:`run_simulation` and the condensed reference all route through
    it, so a scenario that declares the grouped contract (e.g.
    ``dense-lan-500``) is built identically everywhere.
    """
    if config.channel_draws is not None:
        return config.channel_draws
    return getattr(scenario, "channel_draws", None) or "batched"


def effective_fault_profile(
    scenario: Scenario, config: SimulationConfig
) -> Optional[str]:
    """The fault profile in effect: config beats the scenario hint.

    Mirrors :func:`effective_channel_draws`: an explicit config value
    wins, with ``"none"``/``""`` meaning "explicitly fault-free" (the
    only way to run a ``dense-lan-*-faulty`` scenario without its
    faults); ``None`` everywhere means no faults.
    """
    if config.fault_profile is not None:
        name = config.fault_profile
        return None if name in ("", "none") else name
    return getattr(scenario, "fault_profile", None)


def effective_fidelity(scenario: Scenario, config: SimulationConfig) -> str:
    """The PHY fidelity tier in effect: config beats the scenario hint.

    Mirrors :func:`effective_channel_draws`: ``None`` everywhere resolves
    to ``"abstraction"``, the bit-identical-to-before default.  This is
    *the* resolution rule -- the event loops, the condensed reference's
    refusal and the sweep digests all route through it.
    """
    name = config.fidelity
    if name is None:
        name = getattr(scenario, "fidelity", None)
    name = name or "abstraction"
    if name not in FIDELITY_MODES:
        raise ConfigurationError(
            f"unknown fidelity {name!r}; choose from {FIDELITY_MODES}"
        )
    return name


def effective_fidelity_band_db(scenario: Scenario, config: SimulationConfig) -> float:
    """The uncertainty band half-width in effect: config beats the hint."""
    if config.fidelity_band_db is not None:
        return float(config.fidelity_band_db)
    hint = getattr(scenario, "fidelity_band_db", None)
    return float(hint) if hint is not None else DEFAULT_BAND_DB


def build_fault_schedule(
    scenario: Scenario, config: SimulationConfig, seed
) -> Optional[FaultSchedule]:
    """Materialise the run's fault episodes, or ``None`` for none.

    This is *the* definition of how a (scenario, config, seed) triple
    becomes a fault schedule -- :func:`run_simulation` and the sweep
    digests both resolve faults here.  Profile episodes are generated
    from dedicated ``(seed, FAULT_STREAM_TAG, ...)`` streams; trace
    episodes (``config.fault_trace``) are appended verbatim.  Returns
    ``None`` when nothing is configured or everything generated empty,
    so the caller's no-fault path is exactly the pre-fault code.
    """
    episodes = []
    name = effective_fault_profile(scenario, config)
    if name is not None:
        profile = fault_profile(name)
        episodes.extend(
            FaultSchedule.from_profile(
                profile, scenario, seed, config.duration_us
            ).episodes
        )
    if config.fault_trace:
        episodes.extend(FaultSchedule.from_trace(config.fault_trace).episodes)
    if not episodes:
        return None
    return FaultSchedule(episodes)


def _build_agents(
    scenario: Scenario,
    network: Network,
    protocol: ProtocolLike,
    rng: np.random.Generator,
    config: SimulationConfig,
    seed: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
) -> Dict[int, object]:
    spec = resolve_protocol(protocol)
    agent_class = spec.agent_class
    packet_rate = _effective_packet_rate(scenario, config)
    arrival_seed = None if seed is None else (seed, _ARRIVAL_STREAM_TAG)
    agents: Dict[int, object] = {}
    for pair in scenario.pairs:
        agents[pair.transmitter.node_id] = agent_class(
            pair,
            network,
            rng,
            packet_size_bytes=config.packet_size_bytes,
            bitrate_margin_db=config.bitrate_margin_db,
            packet_rate_pps=packet_rate,
            arrival_seed=arrival_seed,
            plan_cache=plan_cache,
            spec=spec,
        )
    return agents


def _groups_from_streams(
    agent, streams: Sequence[ScheduledStream], collided: bool, joined: bool
) -> List[_TransmissionGroup]:
    groups: Dict[int, _TransmissionGroup] = {}
    for stream in streams:
        group = groups.get(stream.receiver_id)
        if group is None:
            group = _TransmissionGroup(
                agent=agent,
                receiver_id=stream.receiver_id,
                streams=[],
                payload_bits=0,
                collided=collided,
                joined=joined,
            )
            groups[stream.receiver_id] = group
        group.streams.append(stream)
        group.payload_bits += stream.payload_bits
    return [g for g in groups.values() if g.payload_bits > 0 or g.collided]


def _evaluate_group(
    network: Network,
    group: _TransmissionGroup,
    all_streams: Sequence[ScheduledStream],
    rng: np.random.Generator,
    fidelity: Optional[FidelityEngine] = None,
) -> bool:
    """Decide whether the group's payload was delivered."""
    if group.collided:
        return False
    if group.payload_bits <= 0:
        return False
    snrs = receiver_stream_snrs(
        network, group.receiver_id, group.streams, list(all_streams), rng=rng
    )
    probability = 1.0
    for stream in group.streams:
        per_subcarrier = snrs[stream.stream_id]
        probability = min(
            probability,
            packet_delivery_probability(per_subcarrier, stream.mcs, group.payload_bits),
        )
    # The abstraction's coin is drawn unconditionally so the main
    # generator consumes the identical stream under every fidelity tier.
    delivered = bool(rng.random() < probability)
    if fidelity is not None:
        verdict = fidelity.override_verdict(
            group.agent.node_id, group.receiver_id, group.streams, all_streams, snrs
        )
        if verdict is not None:
            delivered = verdict
    return delivered


def _slot_aligned_idle_end_reference(
    now_us: float, next_arrival_us: float, duration_us: float
) -> float:
    """Slot-by-slot walk across an idle gap (the readable reference).

    This is exactly the condensed loop's polling: step the clock one 9 us
    slot at a time until the next arrival (or the window end) is reached,
    accumulating floating-point rounding along the way.  O(gap / slot)
    Python iterations -- degenerate for sparse bursty traffic, which is
    why the runners use :func:`_slot_aligned_idle_end` instead.
    """
    time = now_us + SLOT_TIME_US
    while time < next_arrival_us and time < duration_us:
        time += SLOT_TIME_US
    return time


def _slot_aligned_idle_end(
    now_us: float, next_arrival_us: float, duration_us: float
) -> float:
    """First slot boundary at or past the next arrival (or window end).

    Bit-for-bit equal to :func:`_slot_aligned_idle_end_reference`: the
    slot times are generated with ``np.cumsum`` over ``[now + slot, slot,
    slot, ...]``, whose sequential left-to-right float64 additions
    reproduce the reference's ``time += SLOT_TIME_US`` accumulation
    exactly (a closed form ``now + k * slot`` would round differently).
    The boundary slot is then located with a binary search, in bounded
    chunks so a day-long gap cannot allocate an unbounded array.
    """
    target = min(next_arrival_us, duration_us)
    time = now_us + SLOT_TIME_US
    while time < target:
        estimated_steps = (target - time) / SLOT_TIME_US
        size = int(min(max(estimated_steps + 2.0, 16.0), 65536.0))
        steps = np.full(size, SLOT_TIME_US)
        steps[0] = time
        times = np.cumsum(steps)
        index = int(np.searchsorted(times, target, side="left"))
        if index < size:
            return float(times[index])
        time = float(times[-1])
    return time


class _EventDrivenLoop:
    """Drives the contention/transmission rounds on an :class:`EventScheduler`.

    Each round is one scheduled event; the handler resolves contention,
    plays out the joint transmission exactly like the condensed loop, and
    schedules the next round at the time the condensed loop would have
    reached.  Idle gaps (all queues empty, next Poisson arrival in the
    future) are crossed in a single event scheduled at the first busy
    slot, instead of one iteration per 9 us slot, which is what lets the
    runner scale to many lightly-loaded nodes.

    The per-round queries are factored into three hooks --
    :meth:`_contending_agents`, :meth:`_next_traffic_time_us` and
    :meth:`_join_eligible` -- implemented here as the straightforward
    per-agent scans.  :class:`_BatchedEventDrivenLoop` overrides them with
    array computations over :class:`~repro.sim.traffic.TrafficStateArrays`;
    this class is the readable reference pipeline the batched one is
    asserted bit-identical against.
    """

    pipeline_name = "per-agent"

    def __init__(
        self,
        scenario: Scenario,
        protocol: ProtocolLike,
        rng: np.random.Generator,
        config: SimulationConfig,
        network: Network,
        seed: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
        fault_schedule: Optional[FaultSchedule] = None,
    ) -> None:
        self.config = config
        self.rng = rng
        self.network = network
        self.plan_cache = plan_cache
        self.agents = _build_agents(
            scenario, network, protocol, rng, config, seed, plan_cache
        )
        self.medium = Medium()
        self.metrics = NetworkMetrics()
        for pair in scenario.pairs:
            self.metrics.link(pair.name)
        self.scheduler = EventScheduler()
        self.rounds = 0
        # No injector for an empty/absent schedule: every fault hook in
        # _round() is behind an ``is not None`` check, so the no-fault
        # execution path is exactly the pre-fault one (strict no-op).
        self.faults: Optional[FaultInjector] = None
        if fault_schedule is not None and not fault_schedule.empty:
            self.faults = FaultInjector(fault_schedule, network, seed)
        # No engine under "abstraction": the delivery path is exactly the
        # pre-fidelity code (strict no-op), like the fault hooks above.
        self.fidelity: Optional[FidelityEngine] = None
        mode = effective_fidelity(scenario, config)
        if mode != "abstraction":
            self.fidelity = FidelityEngine(
                network,
                seed,
                mode=mode,
                band_db=effective_fidelity_band_db(scenario, config),
            )
        # No suite under "off": every invariant hook is behind an
        # ``is not None`` check, so the unvalidated path is exactly the
        # pre-invariant one (strict no-op, like faults and fidelity).
        self.invariants: Optional[InvariantSuite] = None
        validation = effective_validation(scenario, config)
        if validation != "off":
            self.invariants = InvariantSuite(validation)
        # Last-N round summaries for crash capsules: when a run dies, the
        # runner boundary attaches this ring to the exception so the
        # capsule records what the simulation was doing when it crashed.
        self.event_ring: deque = deque(maxlen=64)

    def run(self) -> NetworkMetrics:
        """Run rounds until the observation window closes."""
        self.scheduler.schedule_at(0.0, self._round)
        while self.scheduler.step():
            pass
        if self.faults is not None:
            self.faults.finalize()
        for agent in self.agents.values():
            link = self.metrics.link(agent.name)
            link.packets_dropped = sum(
                queue.dropped_packets for queue in agent.queues.values()
            )
            link.quarantined_rounds = agent.quarantined_rounds
        self.metrics.elapsed_us = self.scheduler.now_us
        if self.invariants is not None:
            # One closing pass over the final accounting (the last round's
            # check ran before packets_dropped/quarantined_rounds landed).
            self.invariants.check_round(self)
        return self.metrics

    # -- per-round queries (overridden by the batched pipeline) -----------------

    def _contending_agents(self, now: float) -> List[object]:
        """Agents that want to contend right now (refills their queues)."""
        return [agent for agent in self.agents.values() if agent.has_traffic(now)]

    def _next_traffic_time_us(self, now: float) -> float:
        """Earliest time any agent could want to contend again."""
        return min(
            (agent.next_traffic_time_us(now) for agent in self.agents.values()),
            default=float("inf"),
        )

    def _join_eligible(self, now: float, exhausted: set) -> List[object]:
        """Agents eligible for this secondary-contention round."""
        return [
            agent
            for agent in self.agents.values()
            if agent.supports_joining
            and agent.node_id not in exhausted
            and agent.can_join(now, self.medium, self.config.min_join_airtime_us)
        ]

    # -- event handlers ---------------------------------------------------------

    def _schedule_round(self, time_us: float) -> None:
        self.scheduler.schedule_at(time_us, self._round)

    def _idle_poll_time(self, now: float) -> float:
        """First slot boundary at which an agent will have traffic.

        Mirrors the condensed loop's slot-by-slot polling (including its
        quantisation to slot multiples of the current time and its stop at
        the window end) without calling into the agents at every slot.
        """
        return _slot_aligned_idle_end(
            now, self._next_traffic_time_us(now), self.config.duration_us
        )

    def _round(self) -> None:
        now = self.scheduler.now_us
        config = self.config
        if now >= config.duration_us:
            return  # window over; nothing rescheduled, the queue drains

        faults = self.faults
        if faults is not None:
            # Episodes apply at round boundaries: fades/restores mutate
            # the channels (bumping epochs) and churn updates the
            # away-set before anyone contends or plans at `now`.
            faults.advance(now)

        contending = self._contending_agents(now)
        if faults is not None and contending:
            contending = [a for a in contending if faults.agent_active(a)]
        if not contending:
            wake = self._idle_poll_time(now)
            if faults is not None:
                # Never jump an idle gap over a fault boundary: a
                # returning station (or an ending fade) must be
                # re-examined the moment it happens.
                wake = min(wake, faults.next_boundary_us(now))
            self._schedule_round(wake)
            return

        self.rounds += 1
        if self.rounds > config.max_rounds:
            raise SimulationError("simulation exceeded the configured round budget")

        agents, medium, metrics, rng = self.agents, self.medium, self.metrics, self.rng
        outcome = resolve_contention([agent.contender for agent in contending], rng)
        self.event_ring.append(
            {
                "round": self.rounds,
                "now_us": now,
                "contenders": len(contending),
                "winners": list(outcome.winners),
                "collision": bool(outcome.collision),
            }
        )
        groups: List[_TransmissionGroup] = []

        if outcome.collision:
            # Every collided winner transmits; all of their frames are lost.
            end_max = now + outcome.start_delay_us
            ack_us = 0.0
            for node_id in outcome.winners:
                agent = agents[node_id]
                body_start = now + outcome.start_delay_us + agent.header_duration_us()
                streams = agent.plan_initial(body_start, medium)
                if not streams:
                    continue
                medium.add_streams(streams)
                groups.extend(_groups_from_streams(agent, streams, collided=True, joined=False))
                metrics.link(agent.name).collisions += 1
                end_max = max(end_max, max(s.end_us for s in streams))
                ack_us = max(ack_us, agent.ack_duration_us())
            end_of_round = end_max + ack_us
        else:
            winner = agents[outcome.winners[0]]
            body_start = now + outcome.start_delay_us + winner.header_duration_us()
            streams = winner.plan_initial(body_start, medium)
            if not streams:
                # Nothing to send after all (race with traffic); burn a slot.
                self._schedule_round(now + outcome.start_delay_us)
                return
            medium.add_streams(streams)
            groups.extend(_groups_from_streams(winner, streams, collided=False, joined=False))
            metrics.link(winner.name).transmissions += 1
            ack_us = winner.ack_duration_us()

            # Secondary contention for the unused degrees of freedom.
            sense_start = body_start
            exhausted: set = set()
            while True:
                eligible = self._join_eligible(sense_start, exhausted)
                if faults is not None and eligible:
                    eligible = [a for a in eligible if faults.agent_active(a)]
                if not eligible:
                    break
                join_round = resolve_contention([a.contender for a in eligible], rng)
                join_agents = [agents[node_id] for node_id in join_round.winners]
                join_body_start = (
                    sense_start
                    + join_round.start_delay_us
                    + max(a.header_duration_us() for a in join_agents)
                )
                if join_body_start + config.min_join_airtime_us > medium.current_end_us:
                    break
                added_any = False
                for agent in join_agents:
                    join_streams = agent.plan_join(join_body_start, medium)
                    if not join_streams:
                        exhausted.add(agent.node_id)
                        continue
                    medium.add_streams(join_streams)
                    groups.extend(
                        _groups_from_streams(
                            agent,
                            join_streams,
                            collided=join_round.collision,
                            joined=True,
                        )
                    )
                    link = metrics.link(agent.name)
                    link.joins += 1
                    if join_round.collision:
                        link.collisions += 1
                    added_any = True
                sense_start = join_body_start
                if not added_any:
                    # Every winner of this round was unable to join.
                    continue
            end_of_round = medium.current_end_us + ack_us

        # Evaluate deliveries with the final set of concurrent streams.
        all_streams = medium.active_streams
        for group in groups:
            delivered = _evaluate_group(
                self.network, group, all_streams, rng, self.fidelity
            )
            if faults is not None and delivered:
                # Loss episodes overlapping the group's body interval
                # lose the packet with their combined rate.  The coins
                # come from the dedicated delivery stream and are only
                # flipped when an episode actually overlaps, so runs
                # without overlap consume no fault randomness.  Under the
                # "erasure" recovery policy the payload rides as n coded
                # fragments of which any k reconstruct it, so the episode
                # must erase more than n - k fragments to cost the packet;
                # a decoded frame's erased share lands in recovered_bits
                # (and only then -- a lost frame recovers nothing, so no
                # bit is ever both recovered and dropped).
                body_start = min(s.start_us for s in group.streams)
                body_end = max(s.end_us for s in group.streams)
                rate = faults.loss_rate(
                    group.agent.node_id, group.receiver_id, body_start, body_end
                )
                if rate > 0.0:
                    recovering = group.agent
                    if recovering.recovery == "erasure":
                        erased = faults.draw_erasure(rate, recovering.erasure_n)
                        if erased > recovering.erasure_n - recovering.erasure_k:
                            delivered = False
                        elif erased > 0:
                            metrics.link(recovering.name).recovered_bits += (
                                group.payload_bits * erased
                            ) // recovering.erasure_n
                    elif faults.draw_loss(rate):
                        delivered = False
            agent = group.agent
            link = metrics.link(agent.name)
            link.attempted_bits += group.payload_bits
            link.airtime_us += sum(s.duration_us for s in group.streams) / max(
                len(group.streams), 1
            )
            if delivered:
                link.delivered_bits += group.payload_bits
                link.packets_delivered += 1
            else:
                link.packets_failed += 1
            agent.record_outcome(
                group.receiver_id, group.payload_bits, delivered,
                collided=group.collided,
            )

        medium.clear()
        if self.invariants is not None:
            self.invariants.check_round(self)
        self._schedule_round(max(end_of_round, now + SLOT_TIME_US))


class _BatchedEventDrivenLoop(_EventDrivenLoop):
    """The batched round pipeline: per-round queries as array operations.

    Identical round mechanics to :class:`_EventDrivenLoop`, but the three
    per-round scans -- who has traffic, when does traffic arrive next, who
    may join -- are computed for all agents at once from the incrementally
    maintained :class:`~repro.sim.traffic.TrafficStateArrays`, so a round
    costs Python-level work only for the agents whose state changed
    (participants and due Poisson arrivals) plus O(1) array operations,
    instead of one ``has_traffic`` / ``can_join`` call per agent.  The
    test suite asserts this pipeline's metrics are bit-identical to the
    per-agent reference (and to the condensed slot-polling loop).
    """

    pipeline_name = "batched"

    def __init__(
        self,
        scenario: Scenario,
        protocol: ProtocolLike,
        rng: np.random.Generator,
        config: SimulationConfig,
        network: Network,
        seed: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
        fault_schedule: Optional[FaultSchedule] = None,
    ) -> None:
        super().__init__(
            scenario, protocol, rng, config, network, seed, plan_cache, fault_schedule
        )
        self.arrays = TrafficStateArrays(self.agents.values())
        # The vectorized join mask encodes the n+ eligibility rule; fall
        # back to per-agent ``can_join`` for any joining protocol that has
        # not declared its rule equivalent.
        self._vectorized_join = all(
            agent.vectorized_join_eligibility
            for agent in self.agents.values()
            if agent.supports_joining
        )

    # -- batched per-round queries ----------------------------------------------

    def _contending_agents(self, now: float) -> List[object]:
        arrays = self.arrays
        due = arrays.refill_due(now)
        if due.any():
            arrays.refill(now, due)
        backlogged = arrays.backlogged
        if not backlogged.any():
            return []
        if backlogged.all():
            return arrays.agents
        return [arrays.agents[index] for index in np.nonzero(backlogged)[0]]

    def _next_traffic_time_us(self, now: float) -> float:
        return self.arrays.next_traffic_time_us(now)

    def _join_eligible(self, now: float, exhausted: set) -> List[object]:
        if not self._vectorized_join:
            return super()._join_eligible(now, exhausted)
        arrays, medium = self.arrays, self.medium
        joinable = arrays.supports_joining
        if exhausted:
            joinable = joinable & ~np.isin(arrays.node_ids, list(exhausted))
        if not joinable.any():
            return []
        # ``can_join`` refills (through ``has_traffic``) before its other
        # checks, for every joinable agent -- replay those side effects
        # first so Poisson pops land at the same instants as the per-agent
        # pipeline's, then evaluate the eligibility rule on the arrays.
        due = joinable & arrays.refill_due(now)
        if due.any():
            arrays.refill(now, due)
        if not medium.busy:
            return []
        if medium.current_end_us - now < self.config.min_join_airtime_us:
            return []
        used = medium.used_degrees_of_freedom
        mask = (
            joinable
            & arrays.backlogged
            & (arrays.n_antennas > used)
            & (arrays.join_rx_antennas > used)
        )
        if not mask.any():
            return []
        busy_nodes = medium.transmitting_nodes() + medium.receiving_nodes()
        mask &= ~np.isin(arrays.node_ids, busy_nodes)
        return [arrays.agents[index] for index in np.nonzero(mask)[0]]


#: Pipeline name -> event-driven loop implementation.  Both produce
#: bit-identical metrics; "per-agent" is the readable reference.
_PIPELINES: Dict[str, type] = {
    _BatchedEventDrivenLoop.pipeline_name: _BatchedEventDrivenLoop,
    _EventDrivenLoop.pipeline_name: _EventDrivenLoop,
}


def run_simulation(
    scenario: Scenario,
    protocol: ProtocolLike,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    network: Optional[Network] = None,
    pipeline: str = "batched",
    plan_cache: bool = True,
    fault_schedule: Optional[FaultSchedule] = None,
) -> NetworkMetrics:
    """Simulate one run of ``protocol`` on ``scenario``.

    The result is a pure function of the arguments: the same
    ``(scenario, protocol, seed, config)`` always yields the same
    :class:`~repro.sim.metrics.NetworkMetrics`, no matter what else was
    simulated before (channel-estimation noise gets its own stream seeded
    from ``seed``).  This is the contract the sweep cache and the parallel
    orchestrator of :mod:`repro.sim.sweep` build on.

    Parameters
    ----------
    scenario:
        The topology (stations and traffic pairs).  Scenarios can carry a
        custom testbed (dense LANs need more candidate locations) and a
        suggested Poisson packet rate; both are honoured here.
    protocol:
        Any form :func:`~repro.mac.variants.resolve_protocol` accepts: a
        registered variant name (``"csma"``, ``"802.11n"``, ``"n+"``,
        ``"beamforming"``), a parameterised string
        (``"n+[recovery=erasure]"``), a ``(name, params)`` pair or a
        :class:`~repro.mac.variants.ProtocolSpec`.  A bare name is
        exactly a default-parameter spec -- bit-identical to every
        pre-framework run.
    seed:
        Seed for placements, channels, backoff and delivery draws.
    config:
        Simulation parameters; defaults to :class:`SimulationConfig()`.
    network:
        Reuse an existing network (same placements/channels) instead of
        drawing a new one -- this is how protocols are compared on the
        same channel realisation.
    pipeline:
        ``"batched"`` (default) evaluates the per-round MAC queries --
        who has traffic, when does traffic arrive next, who may join --
        as array operations over all agents at once;  ``"per-agent"``
        runs the readable reference pipeline that asks every agent
        individually.  Both produce bit-identical metrics (the test suite
        asserts it), so the choice never affects results, only speed --
        which is why ``pipeline`` is deliberately not part of the sweep
        cache key.
    plan_cache:
        ``True`` (default) memoizes the pure per-round planning math
        (pre-coder decompositions, measured post-projection SNRs) in a
        per-simulation :class:`~repro.mac.plan.PlanCache`, turning
        repeated contention configurations into dictionary hits.
        Channels are static within a run and channel estimates are
        measured once per simulation, so the cached and uncached paths
        produce bit-identical metrics (the test suite asserts it) --
        like ``pipeline``, this knob is deliberately not part of the
        sweep cache key.
    fault_schedule:
        An explicit :class:`~repro.sim.faults.FaultSchedule` to inject,
        overriding whatever :func:`build_fault_schedule` would resolve
        from the scenario/config (mainly a test hook).  ``None`` (the
        default) resolves the schedule from ``config.fault_profile`` /
        ``config.fault_trace`` / the scenario hint; an *empty* schedule
        -- explicit or resolved -- is a strict no-op, bit-identical to
        a fault-free run.
    """
    config = config or SimulationConfig()
    protocol = resolve_protocol(protocol)
    try:
        loop_class = _PIPELINES[pipeline]
    except KeyError:
        raise ConfigurationError(
            f"unknown pipeline {pipeline!r}; choose from {sorted(_PIPELINES)}"
        ) from None
    if fault_schedule is None:
        fault_schedule = build_fault_schedule(scenario, config, seed)
    rng = np.random.default_rng(seed)
    if network is None:
        network = Network(
            scenario.stations,
            scenario.pairs,
            rng,
            testbed=scenario.make_testbed(),
            n_subcarriers=config.n_subcarriers,
            channel_draws=effective_channel_draws(scenario, config),
        )
    network.reseed_estimation_noise((seed, _ESTIMATION_STREAM_TAG))
    loop = loop_class(
        scenario,
        protocol,
        rng,
        config,
        network,
        seed=seed,
        plan_cache=PlanCache() if plan_cache else None,
        fault_schedule=fault_schedule,
    )
    try:
        return loop.run()
    except Exception as exc:
        # Attach the last-N round summaries so the crash-capsule writer
        # (repro.sim.capsule) can record what the run was doing; the
        # exception itself propagates unchanged.
        exc._repro_event_ring = list(loop.event_ring)
        raise


def _run_simulation_condensed_reference(
    scenario: Scenario,
    protocol: ProtocolLike,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    network: Optional[Network] = None,
) -> NetworkMetrics:
    """The original slot-polling ``while`` loop, kept as the readable
    reference implementation.

    The event-driven runner must produce bit-identical metrics; the test
    suite asserts this for saturated and bursty traffic.  Unlike the
    event-driven loop this one pays one iteration per 9 us slot of idle
    airtime, which is why it was replaced.

    Fault injection is an event-driven-only feature: this loop has no
    event boundaries to apply episodes at, so it refuses fault-enabled
    configurations instead of silently ignoring them.
    """
    config = config or SimulationConfig()
    if build_fault_schedule(scenario, config, seed) is not None:
        raise ConfigurationError(
            "the condensed reference loop does not support fault injection; "
            "use run_simulation (or disable faults with fault_profile='none')"
        )
    if effective_fidelity(scenario, config) != "abstraction":
        raise ConfigurationError(
            "the condensed reference loop predates the fidelity layer; "
            "use run_simulation (or fidelity='abstraction')"
        )
    if effective_validation(scenario, config) != "off":
        raise ConfigurationError(
            "the condensed reference loop predates the invariant layer; "
            "use run_simulation (or validation='off')"
        )
    rng = np.random.default_rng(seed)
    if network is None:
        network = Network(
            scenario.stations,
            scenario.pairs,
            rng,
            testbed=scenario.make_testbed(),
            n_subcarriers=config.n_subcarriers,
            channel_draws=effective_channel_draws(scenario, config),
        )
    network.reseed_estimation_noise((seed, _ESTIMATION_STREAM_TAG))
    agents = _build_agents(scenario, network, protocol, rng, config, seed)
    medium = Medium()
    metrics = NetworkMetrics()
    for pair in scenario.pairs:
        metrics.link(pair.name)

    now = 0.0
    rounds = 0
    while now < config.duration_us:
        contending = [agent for agent in agents.values() if agent.has_traffic(now)]
        if not contending:
            now += SLOT_TIME_US
            continue

        rounds += 1
        if rounds > config.max_rounds:
            raise SimulationError("simulation exceeded the configured round budget")

        outcome = resolve_contention([agent.contender for agent in contending], rng)
        groups: List[_TransmissionGroup] = []

        if outcome.collision:
            # Every collided winner transmits; all of their frames are lost.
            end_max = now + outcome.start_delay_us
            ack_us = 0.0
            for node_id in outcome.winners:
                agent = agents[node_id]
                body_start = now + outcome.start_delay_us + agent.header_duration_us()
                streams = agent.plan_initial(body_start, medium)
                if not streams:
                    continue
                medium.add_streams(streams)
                groups.extend(_groups_from_streams(agent, streams, collided=True, joined=False))
                metrics.link(agent.name).collisions += 1
                end_max = max(end_max, max(s.end_us for s in streams))
                ack_us = max(ack_us, agent.ack_duration_us())
            end_of_round = end_max + ack_us
        else:
            winner = agents[outcome.winners[0]]
            body_start = now + outcome.start_delay_us + winner.header_duration_us()
            streams = winner.plan_initial(body_start, medium)
            if not streams:
                # Nothing to send after all (race with traffic); burn a slot.
                now += outcome.start_delay_us
                continue
            medium.add_streams(streams)
            groups.extend(_groups_from_streams(winner, streams, collided=False, joined=False))
            metrics.link(winner.name).transmissions += 1
            ack_us = winner.ack_duration_us()

            sense_start = body_start
            exhausted: set = set()
            while True:
                eligible = [
                    agent
                    for agent in agents.values()
                    if agent.supports_joining
                    and agent.node_id not in exhausted
                    and agent.can_join(sense_start, medium, config.min_join_airtime_us)
                ]
                if not eligible:
                    break
                join_round = resolve_contention([a.contender for a in eligible], rng)
                join_agents = [agents[node_id] for node_id in join_round.winners]
                join_body_start = (
                    sense_start
                    + join_round.start_delay_us
                    + max(a.header_duration_us() for a in join_agents)
                )
                if join_body_start + config.min_join_airtime_us > medium.current_end_us:
                    break
                added_any = False
                for agent in join_agents:
                    join_streams = agent.plan_join(join_body_start, medium)
                    if not join_streams:
                        exhausted.add(agent.node_id)
                        continue
                    medium.add_streams(join_streams)
                    groups.extend(
                        _groups_from_streams(
                            agent,
                            join_streams,
                            collided=join_round.collision,
                            joined=True,
                        )
                    )
                    link = metrics.link(agent.name)
                    link.joins += 1
                    if join_round.collision:
                        link.collisions += 1
                    added_any = True
                sense_start = join_body_start
                if not added_any:
                    continue
            end_of_round = medium.current_end_us + ack_us

        all_streams = medium.active_streams
        for group in groups:
            delivered = _evaluate_group(network, group, all_streams, rng)
            agent = group.agent
            link = metrics.link(agent.name)
            link.attempted_bits += group.payload_bits
            link.airtime_us += sum(s.duration_us for s in group.streams) / max(
                len(group.streams), 1
            )
            if delivered:
                link.delivered_bits += group.payload_bits
                link.packets_delivered += 1
            else:
                link.packets_failed += 1
            agent.record_outcome(
                group.receiver_id, group.payload_bits, delivered,
                collided=group.collided,
            )

        medium.clear()
        now = max(end_of_round, now + SLOT_TIME_US)

    for agent in agents.values():
        link = metrics.link(agent.name)
        link.packets_dropped = sum(
            queue.dropped_packets for queue in agent.queues.values()
        )
        link.quarantined_rounds = agent.quarantined_rounds
    metrics.elapsed_us = now
    return metrics


def placement_seed(seed: int, run: int) -> int:
    """The seed of run ``run`` in a sweep whose base seed is ``seed``.

    Placements and channels are drawn from ``placement_seed(seed, run)``;
    the MAC simulation of every protocol on that placement uses
    :func:`mac_seed` of it.  Both :func:`run_many` and the parallel
    sweeps of :mod:`repro.sim.sweep` use this scheme, which is what makes
    their results interchangeable (and cacheable per run).
    """
    return seed + 1000 * run


def mac_seed(run_seed: int) -> int:
    """The MAC-simulation seed of a run whose placement seed is ``run_seed``.

    Offset from the placement seed so backoff/delivery draws are
    decorrelated from the channel draws.
    """
    return run_seed + 17


def build_network(scenario: Scenario, run_seed: int, config: SimulationConfig) -> Network:
    """Draw the placements and channels of one run.

    This is *the* definition of how a run seed becomes a network --
    :func:`run_many`, :func:`simulate_placement` and the sweep
    orchestrator all build their networks here, which is what keeps
    serial, parallel and cached results in lockstep.
    """
    return Network(
        scenario.stations,
        scenario.pairs,
        np.random.default_rng(run_seed),
        testbed=scenario.make_testbed(),
        n_subcarriers=config.n_subcarriers,
        channel_draws=effective_channel_draws(scenario, config),
    )


def simulate_placement(
    scenario_factory: Callable[[], Scenario],
    protocol: ProtocolLike,
    run_seed: int,
    config: Optional[SimulationConfig] = None,
) -> NetworkMetrics:
    """Simulate one protocol on one random placement, self-contained.

    Draws the network from ``run_seed`` (:func:`build_network`) and runs
    the MAC simulation with :func:`mac_seed(run_seed) <mac_seed>` --
    exactly what :func:`run_many` does for each (run, protocol) cell.
    Because the result depends only on the arguments, this is the unit
    of work the parallel sweep ships to worker processes and the unit
    the results cache stores.
    """
    config = config or SimulationConfig()
    scenario = scenario_factory()
    network = build_network(scenario, run_seed, config)
    return run_simulation(
        scenario, protocol, seed=mac_seed(run_seed), config=config, network=network
    )


def run_many(
    scenario_factory: Callable[[], Scenario],
    protocols: Sequence[ProtocolLike],
    n_runs: int,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
) -> Dict[str, List[NetworkMetrics]]:
    """Run every protocol over ``n_runs`` independent channel realisations.

    For each run (i.e. each random assignment of nodes to locations) all
    protocols are simulated on the *same* network, mirroring the paper's
    methodology of comparing schemes location by location.  ``protocols``
    entries may be bare names or any parameterised form
    :func:`~repro.mac.variants.resolve_protocol` accepts, so one call can
    compare ``"n+"`` against ``("n+", {"recovery": "erasure"})`` on
    identical channels.  All specs are resolved (and validated) up front,
    before any simulation runs.

    Seeding semantics
    -----------------
    Run ``r`` draws its placement and channels from
    :func:`placement_seed(seed, r) <placement_seed>` (``seed + 1000 * r``)
    via :func:`build_network` and simulates every protocol with
    :func:`mac_seed` of that run seed.  Each (run, protocol) cell is a
    pure function of those seeds, so the cells can be computed in any
    order -- serially here, or in parallel / from a cache by
    :func:`repro.sim.sweep.run_sweep`, whose results are byte-identical
    to this function's.

    Returns
    -------
    dict
        ``{spec key: [metrics of run 0, metrics of run 1, ...]}``, where
        a spec's key is its canonical string form
        (:attr:`~repro.mac.variants.ProtocolSpec.key`) -- the bare name
        for default-parameter specs, so existing callers see unchanged
        dictionaries.
    """
    config = config or SimulationConfig()
    specs = [resolve_protocol(protocol) for protocol in protocols]
    results: Dict[str, List[NetworkMetrics]] = {}
    for spec in specs:
        if spec.key in results:
            raise ConfigurationError(
                f"duplicate protocol {spec.key!r} in the protocol list"
            )
        results[spec.key] = []
    for run in range(n_runs):
        run_seed = placement_seed(seed, run)
        scenario = scenario_factory()
        network = build_network(scenario, run_seed, config)
        for spec in specs:
            metrics = run_simulation(
                scenario,
                spec,
                seed=mac_seed(run_seed),
                config=config,
                network=network,
            )
            results[spec.key].append(metrics)
    return results
