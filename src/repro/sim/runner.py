"""The main simulation loop: contention, transmission, join, delivery.

Each iteration of the loop is one joint transmission on the medium:

1. every backlogged node contends (condensed DCF); the winner starts
   transmitting after DIFS + backoff + its light-weight header;
2. if the protocol supports joining (n+), secondary contention rounds run
   while degrees of freedom and airtime remain; every joiner ends exactly
   with the first winner;
3. when the bodies end, each receiver's outcome is evaluated from the
   post-projection SNRs of its streams (with the residual interference of
   imperfect nulling/alignment included), ACKs are exchanged and queues
   and contention windows are updated.

The per-run environment (placements, channels) is frozen in a
:class:`~repro.sim.network.Network`, so different protocols can be
compared on identical channel realisations, as the paper does by running
all schemes at each set of node locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import SLOT_TIME_US
from repro.exceptions import ConfigurationError, SimulationError
from repro.mac.csma import resolve_contention
from repro.phy.esnr import packet_delivery_probability
from repro.sim.link_abstraction import receiver_stream_snrs
from repro.sim.medium import Medium, ScheduledStream
from repro.sim.metrics import NetworkMetrics
from repro.sim.network import Network
from repro.sim.scenarios import Scenario

__all__ = ["SimulationConfig", "run_simulation", "run_many", "mac_factory"]

#: Registry of protocol names to agent classes (filled lazily to avoid
#: circular imports between the MAC and simulation packages).
_PROTOCOLS: Dict[str, Callable] = {}


def mac_factory(protocol: str) -> Callable:
    """Return the agent class registered under ``protocol``.

    Supported names: ``"802.11n"``, ``"n+"``, ``"beamforming"``.
    """
    if not _PROTOCOLS:
        from repro.mac.beamforming import BeamformingMac
        from repro.mac.dot11n import Dot11nMac
        from repro.mac.nplus import NPlusMac

        _PROTOCOLS.update(
            {
                Dot11nMac.protocol_name: Dot11nMac,
                NPlusMac.protocol_name: NPlusMac,
                BeamformingMac.protocol_name: BeamformingMac,
            }
        )
    try:
        return _PROTOCOLS[protocol]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; choose from {sorted(_PROTOCOLS)}"
        ) from None


@dataclass
class SimulationConfig:
    """Parameters of one simulation run.

    Attributes
    ----------
    duration_us:
        Simulated time.
    packet_size_bytes:
        Payload of every generated packet (1500 in the paper).
    n_subcarriers:
        Subcarriers tracked by the link abstraction.
    min_join_airtime_us:
        A joiner needs at least this much airtime left to bother joining.
    bitrate_margin_db:
        Safety margin for bitrate selection.
    max_rounds:
        Hard cap on transmission rounds (guards against runaway loops).
    packet_rate_pps:
        Per-flow Poisson packet arrival rate.  ``None`` (the default) means
        saturated sources, which is what the paper's evaluation uses; a
        finite rate models bursty traffic.
    """

    duration_us: float = 100_000.0
    packet_size_bytes: int = 1500
    n_subcarriers: int = 16
    min_join_airtime_us: float = 96.0
    bitrate_margin_db: float = 1.0
    max_rounds: int = 200_000
    packet_rate_pps: Optional[float] = None


@dataclass
class _TransmissionGroup:
    """One (transmitter, receiver) reception to evaluate at the end."""

    agent: object
    receiver_id: int
    streams: List[ScheduledStream]
    payload_bits: int
    collided: bool = False
    joined: bool = False


def _build_agents(
    scenario: Scenario,
    network: Network,
    protocol: str,
    rng: np.random.Generator,
    config: SimulationConfig,
) -> Dict[int, object]:
    agent_class = mac_factory(protocol)
    agents: Dict[int, object] = {}
    for pair in scenario.pairs:
        agents[pair.transmitter.node_id] = agent_class(
            pair,
            network,
            rng,
            packet_size_bytes=config.packet_size_bytes,
            bitrate_margin_db=config.bitrate_margin_db,
            packet_rate_pps=config.packet_rate_pps,
        )
    return agents


def _groups_from_streams(
    agent, streams: Sequence[ScheduledStream], collided: bool, joined: bool
) -> List[_TransmissionGroup]:
    groups: Dict[int, _TransmissionGroup] = {}
    for stream in streams:
        group = groups.get(stream.receiver_id)
        if group is None:
            group = _TransmissionGroup(
                agent=agent,
                receiver_id=stream.receiver_id,
                streams=[],
                payload_bits=0,
                collided=collided,
                joined=joined,
            )
            groups[stream.receiver_id] = group
        group.streams.append(stream)
        group.payload_bits += stream.payload_bits
    return [g for g in groups.values() if g.payload_bits > 0 or g.collided]


def _evaluate_group(
    network: Network,
    group: _TransmissionGroup,
    all_streams: Sequence[ScheduledStream],
    rng: np.random.Generator,
) -> bool:
    """Decide whether the group's payload was delivered."""
    if group.collided:
        return False
    if group.payload_bits <= 0:
        return False
    snrs = receiver_stream_snrs(
        network, group.receiver_id, group.streams, list(all_streams), rng=rng
    )
    probability = 1.0
    for stream in group.streams:
        per_subcarrier = snrs[stream.stream_id]
        probability = min(
            probability,
            packet_delivery_probability(per_subcarrier, stream.mcs, group.payload_bits),
        )
    return bool(rng.random() < probability)


def run_simulation(
    scenario: Scenario,
    protocol: str,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    network: Optional[Network] = None,
) -> NetworkMetrics:
    """Simulate one run of ``protocol`` on ``scenario``.

    Parameters
    ----------
    scenario:
        The topology (stations and traffic pairs).
    protocol:
        ``"802.11n"``, ``"n+"`` or ``"beamforming"``.
    seed:
        Seed for placements, channels, backoff and delivery draws.
    config:
        Simulation parameters.
    network:
        Reuse an existing network (same placements/channels) instead of
        drawing a new one -- this is how protocols are compared on the
        same channel realisation.
    """
    config = config or SimulationConfig()
    rng = np.random.default_rng(seed)
    if network is None:
        network = Network(
            scenario.stations,
            scenario.pairs,
            rng,
            n_subcarriers=config.n_subcarriers,
        )
    agents = _build_agents(scenario, network, protocol, rng, config)
    medium = Medium()
    metrics = NetworkMetrics()
    for pair in scenario.pairs:
        metrics.link(pair.name)

    now = 0.0
    rounds = 0
    while now < config.duration_us:
        rounds += 1
        if rounds > config.max_rounds:
            raise SimulationError("simulation exceeded the configured round budget")

        contending = [agent for agent in agents.values() if agent.has_traffic(now)]
        if not contending:
            now += SLOT_TIME_US
            continue

        outcome = resolve_contention([agent.contender for agent in contending], rng)
        groups: List[_TransmissionGroup] = []

        if outcome.collision:
            # Every collided winner transmits; all of their frames are lost.
            end_max = now + outcome.start_delay_us
            ack_us = 0.0
            for node_id in outcome.winners:
                agent = agents[node_id]
                body_start = now + outcome.start_delay_us + agent.header_duration_us()
                streams = agent.plan_initial(body_start, medium)
                if not streams:
                    continue
                medium.add_streams(streams)
                groups.extend(_groups_from_streams(agent, streams, collided=True, joined=False))
                metrics.link(agent.name).collisions += 1
                end_max = max(end_max, max(s.end_us for s in streams))
                ack_us = max(ack_us, agent.ack_duration_us())
            end_of_round = end_max + ack_us
        else:
            winner = agents[outcome.winners[0]]
            body_start = now + outcome.start_delay_us + winner.header_duration_us()
            streams = winner.plan_initial(body_start, medium)
            if not streams:
                # Nothing to send after all (race with traffic); burn a slot.
                now += outcome.start_delay_us
                continue
            medium.add_streams(streams)
            groups.extend(_groups_from_streams(winner, streams, collided=False, joined=False))
            metrics.link(winner.name).transmissions += 1
            ack_us = winner.ack_duration_us()

            # Secondary contention for the unused degrees of freedom.
            sense_start = body_start
            exhausted: set = set()
            while True:
                eligible = [
                    agent
                    for agent in agents.values()
                    if agent.supports_joining
                    and agent.node_id not in exhausted
                    and agent.can_join(sense_start, medium, config.min_join_airtime_us)
                ]
                if not eligible:
                    break
                join_round = resolve_contention([a.contender for a in eligible], rng)
                join_agents = [agents[node_id] for node_id in join_round.winners]
                join_body_start = (
                    sense_start
                    + join_round.start_delay_us
                    + max(a.header_duration_us() for a in join_agents)
                )
                if join_body_start + config.min_join_airtime_us > medium.current_end_us:
                    break
                added_any = False
                for agent in join_agents:
                    join_streams = agent.plan_join(join_body_start, medium)
                    if not join_streams:
                        exhausted.add(agent.node_id)
                        continue
                    medium.add_streams(join_streams)
                    groups.extend(
                        _groups_from_streams(
                            agent,
                            join_streams,
                            collided=join_round.collision,
                            joined=True,
                        )
                    )
                    link = metrics.link(agent.name)
                    link.joins += 1
                    if join_round.collision:
                        link.collisions += 1
                    added_any = True
                sense_start = join_body_start
                if not added_any:
                    # Every winner of this round was unable to join.
                    continue
            end_of_round = medium.current_end_us + ack_us

        # Evaluate deliveries with the final set of concurrent streams.
        all_streams = medium.active_streams
        for group in groups:
            delivered = _evaluate_group(network, group, all_streams, rng)
            agent = group.agent
            link = metrics.link(agent.name)
            link.attempted_bits += group.payload_bits
            link.airtime_us += sum(s.duration_us for s in group.streams) / max(
                len(group.streams), 1
            )
            if delivered:
                link.delivered_bits += group.payload_bits
                link.packets_delivered += 1
            else:
                link.packets_failed += 1
            agent.record_outcome(group.receiver_id, group.payload_bits, delivered)

        medium.clear()
        now = max(end_of_round, now + SLOT_TIME_US)

    metrics.elapsed_us = now
    return metrics


def run_many(
    scenario_factory: Callable[[], Scenario],
    protocols: Sequence[str],
    n_runs: int,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
) -> Dict[str, List[NetworkMetrics]]:
    """Run every protocol over ``n_runs`` independent channel realisations.

    For each run (i.e. each random assignment of nodes to locations) all
    protocols are simulated on the *same* network, mirroring the paper's
    methodology of comparing schemes location by location.
    """
    config = config or SimulationConfig()
    results: Dict[str, List[NetworkMetrics]] = {protocol: [] for protocol in protocols}
    for run in range(n_runs):
        run_seed = seed + 1000 * run
        scenario = scenario_factory()
        network_rng = np.random.default_rng(run_seed)
        network = Network(
            scenario.stations,
            scenario.pairs,
            network_rng,
            n_subcarriers=config.n_subcarriers,
        )
        for protocol in protocols:
            metrics = run_simulation(
                scenario,
                protocol,
                seed=run_seed + 17,
                config=config,
                network=network,
            )
            results[protocol].append(metrics)
    return results
