"""One simulated network instance: stations, placements and channels.

A :class:`Network` freezes everything that is random *per run* in the
paper's methodology -- the assignment of nodes to testbed locations and
the resulting channels -- so the MAC protocols under comparison see the
exact same propagation environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.hardware import HardwareProfile
from repro.channel.multipath import MultipathChannel, frequency_response_batch
from repro.channel.testbed import Testbed, default_testbed
from repro.exceptions import ConfigurationError
from repro.sim.node import Station, TrafficPair
from repro.utils.db import db_to_linear

__all__ = ["Network"]


@lru_cache(maxsize=None)
def _subcarrier_bins(n_subcarriers: int) -> np.ndarray:
    """The OFDM data bins tracked at a given subcarrier resolution.

    The bin choice is a pure function of ``n_subcarriers`` (the 64-point
    data-index layout is a protocol constant), so the lookup is computed
    once per resolution instead of rebuilding ``OfdmConfig`` for every
    network.  The cached array is marked read-only because it is shared
    between all networks of the process.
    """
    from repro.phy.ofdm import OfdmConfig

    data_bins = np.array(OfdmConfig().data_indices)
    if n_subcarriers >= data_bins.size:
        bins = data_bins
    else:
        picks = np.linspace(0, data_bins.size - 1, n_subcarriers).round().astype(int)
        bins = data_bins[picks]
    bins.setflags(write=False)
    return bins


class Network:
    """Stations plus the (true) channels between every pair of them.

    Parameters
    ----------
    stations:
        All nodes in the network.
    pairs:
        The transmitter-receiver pairs with traffic.
    rng:
        Random generator used for placements, fading and estimation error.
    testbed:
        The synthetic deployment; defaults to :func:`default_testbed`.
    n_subcarriers:
        Number of (evenly spaced) OFDM subcarriers tracked by the link
        abstraction.  16 keeps runs fast while retaining frequency
        selectivity; use 64 for full fidelity.
    forced_link_snrs_db:
        Optional map ``(tx_id, rx_id) -> SNR`` overriding the geometric
        link budget for controlled experiments.
    channel_draws:
        ``"batched"`` (default) draws every station pair's channel with
        the vectorized group pipeline (station pairs grouped by antenna
        shape, tap scaling and the 64-point FFT computed for a whole
        group at once); ``"per-pair"`` runs the readable per-pair loop.
        Both are bit-identical -- the per-pair loop is kept as the
        reference the batched path is asserted against.
    """

    def __init__(
        self,
        stations: List[Station],
        pairs: List[TrafficPair],
        rng: np.random.Generator,
        testbed: Optional[Testbed] = None,
        n_subcarriers: int = 16,
        forced_link_snrs_db: Optional[Dict[Tuple[int, int], float]] = None,
        channel_draws: str = "batched",
    ) -> None:
        if n_subcarriers < 1:
            raise ConfigurationError("need at least one subcarrier")
        if channel_draws not in ("batched", "per-pair"):
            raise ConfigurationError(
                f"unknown channel_draws {channel_draws!r}; "
                "choose 'batched' or 'per-pair'"
            )
        self.stations: Dict[int, Station] = {s.node_id: s for s in stations}
        if len(self.stations) != len(stations):
            raise ConfigurationError("station ids must be unique")
        self.pairs = list(pairs)
        self.rng = rng
        self.testbed = testbed or default_testbed()
        self.n_subcarriers = n_subcarriers
        self.noise_power = 1.0
        self.hardware: HardwareProfile = self.testbed.hardware
        self._forced_snrs = dict(forced_link_snrs_db or {})
        self._estimation_rng: Optional[np.random.Generator] = None
        self._estimate_memo: Dict[Tuple[int, int, bool], np.ndarray] = {}

        self._place_stations()
        self._channels: Dict[Tuple[int, int], np.ndarray] = {}
        self._link_snrs: Dict[Tuple[int, int], float] = {}
        if channel_draws == "batched":
            self._draw_channels()
        else:
            self._draw_channels_reference()

    # -- construction helpers -----------------------------------------------------

    def _place_stations(self) -> None:
        placements = self.testbed.place_nodes(len(self.stations), self.rng)
        for station, location in zip(self.stations.values(), placements):
            station.location = int(location)

    def _subcarrier_indices(self) -> np.ndarray:
        return _subcarrier_bins(self.n_subcarriers)

    def _pair_iter(self):
        """Unordered station pairs in canonical draw order, with the
        forced SNR (or ``None``) of each."""
        ids = sorted(self.stations)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                forced = self._forced_snrs.get((a, b), self._forced_snrs.get((b, a)))
                yield a, b, forced

    def _store_pair(self, a: int, b: int, response: np.ndarray, snr_db: float) -> None:
        """Record a drawn channel and its reciprocal direction."""
        self._channels[(a, b)] = response
        self._channels[(b, a)] = np.transpose(response, (0, 2, 1)).copy()
        self._link_snrs[(a, b)] = snr_db
        self._link_snrs[(b, a)] = snr_db

    def _draw_channels(self) -> None:
        """Draw every pair's channel with batched per-group math.

        Random numbers are consumed in exactly the order of
        :meth:`_draw_channels_reference` -- per pair: shadowing, the
        line-of-sight coin, then the tap normals in one call -- so the
        result is bit-identical.  Everything downstream of the draws
        (path loss, tap scaling, the 64-point FFT, the subcarrier
        selection) runs once per antenna-shape group instead of once per
        pair, which is what makes 100-200 station construction cheap.
        """
        if not self.stations:
            return
        bins = self._subcarrier_indices()
        testbed = self.testbed
        n_taps = testbed.n_taps

        # Deterministic geometry, vectorized once: the log-distance path
        # loss of every placed-location pair, through the same
        # Testbed.path_loss_at_distance formula (and hypot/log10 ufuncs)
        # the scalar per-pair path evaluates -- bit-identical elementwise.
        ids = sorted(self.stations)
        coords = np.array(
            [testbed.locations[self.stations[node].location] for node in ids], dtype=float
        )
        index_of = {node: row for row, node in enumerate(ids)}
        deltas = coords[:, None, :] - coords[None, :, :]
        losses = testbed.path_loss_at_distance(
            np.hypot(deltas[..., 0], deltas[..., 1])
        )

        # Pass 1: the per-pair draws, in reference order.  Only the three
        # rng calls (and bookkeeping) remain per pair; the draw sequence
        # itself is defined once, in Testbed.draw_link_scalars.
        groups: Dict[Tuple[int, int], dict] = {}
        rng = self.rng
        for a, b, forced in self._pair_iter():
            sta_a = self.stations[a]
            sta_b = self.stations[b]
            snr, decay = testbed.draw_link_scalars(
                sta_a.location,
                sta_b.location,
                rng,
                snr_db=forced,
                path_loss_db=losses[index_of[a], index_of[b]],
            )
            n_tx = sta_a.n_antennas
            n_rx = sta_b.n_antennas
            raw = rng.standard_normal((n_taps, 2, n_rx, n_tx))
            group = groups.setdefault(
                (n_tx, n_rx), {"pairs": [], "snrs": [], "decays": [], "raws": []}
            )
            group["pairs"].append((a, b))
            group["snrs"].append(snr)
            group["decays"].append(decay)
            group["raws"].append(raw)

        # Pass 2: per antenna-shape group, scale all taps and compute all
        # frequency responses in one stacked FFT + fancy-index pass.
        for (n_tx, n_rx), group in groups.items():
            snrs = np.asarray(group["snrs"], dtype=float)
            taps = MultipathChannel.random_batch(
                n_rx,
                n_tx,
                rng=None,
                n_channels=len(group["pairs"]),
                n_taps=n_taps,
                decay_samples=np.asarray(group["decays"]),
                average_gain=db_to_linear(snrs),
                raw=np.stack(group["raws"]),
            )
            responses = frequency_response_batch(taps, 64)[:, bins]  # (C, n_sub, N, M)
            for index, (a, b) in enumerate(group["pairs"]):
                self._store_pair(a, b, responses[index], float(snrs[index]))

    def _draw_channels_reference(self) -> None:
        """Draw one frequency-selective channel per unordered station pair
        and derive the reverse direction by reciprocity (transposition).

        The readable per-pair loop, kept as the reference
        :meth:`_draw_channels` is asserted bit-identical against.
        """
        bins = self._subcarrier_indices()
        for a, b, forced in self._pair_iter():
            sta_a = self.stations[a]
            sta_b = self.stations[b]
            link = self.testbed.link(
                sta_a.location,
                sta_b.location,
                n_tx=sta_a.n_antennas,
                n_rx=sta_b.n_antennas,
                rng=self.rng,
                snr_db=forced,
            )
            response = link.frequency_response(64)[bins]  # (n_sub, N_b, M_a)
            self._store_pair(a, b, response, link.snr_db)

    # -- lookups ---------------------------------------------------------------------

    def station(self, node_id: int) -> Station:
        """The station with the given id."""
        return self.stations[node_id]

    def pair_for_transmitter(self, node_id: int) -> TrafficPair:
        """The traffic pair whose transmitter is ``node_id``."""
        for pair in self.pairs:
            if pair.transmitter.node_id == node_id:
                return pair
        raise ConfigurationError(f"node {node_id} is not a transmitter of any pair")

    def link_snr_db(self, tx_id: int, rx_id: int) -> float:
        """The average SNR of the link between two stations."""
        return self._link_snrs[(tx_id, rx_id)]

    def true_channel(self, tx_id: int, rx_id: int) -> np.ndarray:
        """The true per-subcarrier channel ``(n_subcarriers, N_rx, M_tx)``."""
        if tx_id == rx_id:
            raise ConfigurationError("a node has no channel to itself")
        return self._channels[(tx_id, rx_id)]

    def reseed_estimation_noise(self, seed) -> None:
        """Give channel-estimation noise its own seeded random stream.

        :meth:`estimated_channel` draws measurement noise on every call.
        By default those draws come from the network's construction
        generator, which makes a protocol's estimates depend on how much
        randomness *previously simulated protocols* consumed.  The runner
        calls this at the start of every simulation (seeded from the
        simulation seed) so each (protocol, seed) simulation sees an
        estimation-noise stream that is independent of execution order --
        the property that lets sweeps run protocols in parallel, in any
        order, or out of a cache and still match a serial run bit for bit.

        ``seed`` is anything :func:`numpy.random.default_rng` accepts.
        Reseeding also clears the per-simulation estimate memo (see
        :meth:`estimated_channel`), so a new simulation re-measures every
        channel once from its own stream.
        """
        self._estimation_rng = np.random.default_rng(seed)
        self._estimate_memo.clear()

    def estimated_channel(
        self, tx_id: int, rx_id: int, reciprocity: bool = False
    ) -> np.ndarray:
        """A noisy estimate of the channel, as a node would measure it.

        ``reciprocity=True`` models an estimate derived from the reverse
        direction (what a joiner does with overheard CTS headers), which
        carries the additional calibration error of §2's footnote 2.

        Channels are static within a run, so a node measures each channel
        *once* (on the first preamble it overhears) and reuses that
        estimate for the rest of the simulation: the first call per
        ``(tx, rx, reciprocity)`` draws measurement noise, later calls
        return the memoized estimate.  This static-channel invariant is
        what makes transmission planning a pure function of the
        contention configuration -- the property the plan cache of
        :mod:`repro.mac.plan` relies on.  :meth:`reseed_estimation_noise`
        (called by the runner at the start of every simulation) clears
        the memo.

        Measurement noise is drawn from the stream installed by
        :meth:`reseed_estimation_noise` when one is set (the runner always
        sets one), falling back to the construction generator otherwise.
        """
        key = (tx_id, rx_id, reciprocity)
        memo = self._estimate_memo.get(key)
        if memo is not None:
            return memo
        true = self.true_channel(tx_id, rx_id)
        rng = self._estimation_rng if self._estimation_rng is not None else self.rng
        estimate = self.hardware.perturb_channel(true, rng, reciprocity=reciprocity)
        estimate.setflags(write=False)
        self._estimate_memo[key] = estimate
        return estimate

    # -- summary ---------------------------------------------------------------------

    def describe(self) -> str:
        """A short human-readable summary of the drawn network."""
        lines = []
        for pair in self.pairs:
            tx = pair.transmitter
            for receiver in pair.receivers:
                snr = self.link_snr_db(tx.node_id, receiver.node_id)
                lines.append(
                    f"{tx.name} ({tx.n_antennas} ant) -> {receiver.name} "
                    f"({receiver.n_antennas} ant): {snr:.1f} dB"
                )
        return "\n".join(lines)
