"""One simulated network instance: stations, placements and channels.

A :class:`Network` freezes everything that is random *per run* in the
paper's methodology -- the assignment of nodes to testbed locations and
the resulting channels -- so the MAC protocols under comparison see the
exact same propagation environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.hardware import HardwareProfile
from repro.channel.testbed import Testbed, default_testbed
from repro.exceptions import ConfigurationError
from repro.sim.node import Station, TrafficPair

__all__ = ["Network"]


class Network:
    """Stations plus the (true) channels between every pair of them.

    Parameters
    ----------
    stations:
        All nodes in the network.
    pairs:
        The transmitter-receiver pairs with traffic.
    rng:
        Random generator used for placements, fading and estimation error.
    testbed:
        The synthetic deployment; defaults to :func:`default_testbed`.
    n_subcarriers:
        Number of (evenly spaced) OFDM subcarriers tracked by the link
        abstraction.  16 keeps runs fast while retaining frequency
        selectivity; use 64 for full fidelity.
    forced_link_snrs_db:
        Optional map ``(tx_id, rx_id) -> SNR`` overriding the geometric
        link budget for controlled experiments.
    """

    def __init__(
        self,
        stations: List[Station],
        pairs: List[TrafficPair],
        rng: np.random.Generator,
        testbed: Optional[Testbed] = None,
        n_subcarriers: int = 16,
        forced_link_snrs_db: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> None:
        if n_subcarriers < 1:
            raise ConfigurationError("need at least one subcarrier")
        self.stations: Dict[int, Station] = {s.node_id: s for s in stations}
        if len(self.stations) != len(stations):
            raise ConfigurationError("station ids must be unique")
        self.pairs = list(pairs)
        self.rng = rng
        self.testbed = testbed or default_testbed()
        self.n_subcarriers = n_subcarriers
        self.noise_power = 1.0
        self.hardware: HardwareProfile = self.testbed.hardware
        self._forced_snrs = dict(forced_link_snrs_db or {})
        self._estimation_rng: Optional[np.random.Generator] = None

        self._place_stations()
        self._channels: Dict[Tuple[int, int], np.ndarray] = {}
        self._link_snrs: Dict[Tuple[int, int], float] = {}
        self._draw_channels()

    # -- construction helpers -----------------------------------------------------

    def _place_stations(self) -> None:
        placements = self.testbed.place_nodes(len(self.stations), self.rng)
        for station, location in zip(self.stations.values(), placements):
            station.location = int(location)

    def _subcarrier_indices(self) -> np.ndarray:
        from repro.phy.ofdm import OfdmConfig

        data_bins = np.array(OfdmConfig().data_indices)
        if self.n_subcarriers >= data_bins.size:
            return data_bins
        picks = np.linspace(0, data_bins.size - 1, self.n_subcarriers).round().astype(int)
        return data_bins[picks]

    def _draw_channels(self) -> None:
        """Draw one frequency-selective channel per unordered station pair
        and derive the reverse direction by reciprocity (transposition)."""
        bins = self._subcarrier_indices()
        ids = sorted(self.stations)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                sta_a = self.stations[a]
                sta_b = self.stations[b]
                forced = self._forced_snrs.get((a, b), self._forced_snrs.get((b, a)))
                link = self.testbed.link(
                    sta_a.location,
                    sta_b.location,
                    n_tx=sta_a.n_antennas,
                    n_rx=sta_b.n_antennas,
                    rng=self.rng,
                    snr_db=forced,
                )
                response = link.frequency_response(64)[bins]  # (n_sub, N_b, M_a)
                self._channels[(a, b)] = response
                self._channels[(b, a)] = np.transpose(response, (0, 2, 1)).copy()
                self._link_snrs[(a, b)] = link.snr_db
                self._link_snrs[(b, a)] = link.snr_db

    # -- lookups ---------------------------------------------------------------------

    def station(self, node_id: int) -> Station:
        """The station with the given id."""
        return self.stations[node_id]

    def pair_for_transmitter(self, node_id: int) -> TrafficPair:
        """The traffic pair whose transmitter is ``node_id``."""
        for pair in self.pairs:
            if pair.transmitter.node_id == node_id:
                return pair
        raise ConfigurationError(f"node {node_id} is not a transmitter of any pair")

    def link_snr_db(self, tx_id: int, rx_id: int) -> float:
        """The average SNR of the link between two stations."""
        return self._link_snrs[(tx_id, rx_id)]

    def true_channel(self, tx_id: int, rx_id: int) -> np.ndarray:
        """The true per-subcarrier channel ``(n_subcarriers, N_rx, M_tx)``."""
        if tx_id == rx_id:
            raise ConfigurationError("a node has no channel to itself")
        return self._channels[(tx_id, rx_id)]

    def reseed_estimation_noise(self, seed) -> None:
        """Give channel-estimation noise its own seeded random stream.

        :meth:`estimated_channel` draws measurement noise on every call.
        By default those draws come from the network's construction
        generator, which makes a protocol's estimates depend on how much
        randomness *previously simulated protocols* consumed.  The runner
        calls this at the start of every simulation (seeded from the
        simulation seed) so each (protocol, seed) simulation sees an
        estimation-noise stream that is independent of execution order --
        the property that lets sweeps run protocols in parallel, in any
        order, or out of a cache and still match a serial run bit for bit.

        ``seed`` is anything :func:`numpy.random.default_rng` accepts.
        """
        self._estimation_rng = np.random.default_rng(seed)

    def estimated_channel(
        self, tx_id: int, rx_id: int, reciprocity: bool = False
    ) -> np.ndarray:
        """A noisy estimate of the channel, as a node would measure it.

        ``reciprocity=True`` models an estimate derived from the reverse
        direction (what a joiner does with overheard CTS headers), which
        carries the additional calibration error of §2's footnote 2.

        Measurement noise is drawn from the stream installed by
        :meth:`reseed_estimation_noise` when one is set (the runner always
        sets one), falling back to the construction generator otherwise.
        """
        true = self.true_channel(tx_id, rx_id)
        rng = self._estimation_rng if self._estimation_rng is not None else self.rng
        return self.hardware.perturb_channel(true, rng, reciprocity=reciprocity)

    # -- summary ---------------------------------------------------------------------

    def describe(self) -> str:
        """A short human-readable summary of the drawn network."""
        lines = []
        for pair in self.pairs:
            tx = pair.transmitter
            for receiver in pair.receivers:
                snr = self.link_snr_db(tx.node_id, receiver.node_id)
                lines.append(
                    f"{tx.name} ({tx.n_antennas} ant) -> {receiver.name} "
                    f"({receiver.n_antennas} ant): {snr:.1f} dB"
                )
        return "\n".join(lines)
