"""One simulated network instance: stations, placements and channels.

A :class:`Network` freezes everything that is random *per run* in the
paper's methodology -- the assignment of nodes to testbed locations and
the resulting channels -- so the MAC protocols under comparison see the
exact same propagation environment.

Channels are held in a :class:`ChannelBank`: one stacked read-only
tensor per antenna-shape group plus an index from a directed ``(tx,
rx)`` link to ``(group, slot, transposed)``.  The reciprocal direction
of every pair is served as a transposed *view* of the same memory (no
copies), which halves construction memory; the read-only flag guards the
shared-view invariant.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.hardware import HardwareProfile
from repro.channel.multipath import (
    MultipathChannel,
    frequency_response_at_bins_batch,
    frequency_response_batch,
)
from repro.channel.testbed import Testbed, default_testbed
from repro.exceptions import ConfigurationError, DimensionError
from repro.sim.node import Station, TrafficPair
from repro.utils.db import db_to_linear

__all__ = ["ChannelBank", "Network"]

#: The recognised channel-draw contracts, most recent first.  "grouped"
#: is the v3 contract (scalars-first, one tap draw per antenna-shape
#: group, estimation noise prefetched in stacked draws); "batched" and
#: "per-pair" are the mutually bit-identical v2 contracts (per-pair draw
#: order, vectorized vs readable math).
DRAW_CONTRACTS = ("grouped", "batched", "per-pair")

#: Station ids are packed two-per-int64 (``a * 2**32 + b``) to index
#: directed links in :class:`ChannelBank`; ids must stay below 2**31 so
#: packed keys cannot overflow the signed 64-bit key array.
_PAIR_KEY_BASE = 1 << 31


@lru_cache(maxsize=None)
def _subcarrier_bins(n_subcarriers: int) -> np.ndarray:
    """The OFDM data bins tracked at a given subcarrier resolution.

    The bin choice is a pure function of ``n_subcarriers`` (the 64-point
    data-index layout is a protocol constant), so the lookup is computed
    once per resolution instead of rebuilding ``OfdmConfig`` for every
    network.  The cached array is marked read-only because it is shared
    between all networks of the process.
    """
    from repro.phy.ofdm import OfdmConfig

    data_bins = np.array(OfdmConfig().data_indices)
    if n_subcarriers >= data_bins.size:
        bins = data_bins
    else:
        picks = np.linspace(0, data_bins.size - 1, n_subcarriers).round().astype(int)
        bins = data_bins[picks]
    bins.setflags(write=False)
    return bins


class ChannelBank:
    """Structure-of-arrays storage of every station pair's channel.

    Channels drawn per unordered pair ``(a, b)`` (``a < b`` in canonical
    draw order) are stored as one stacked tensor per antenna-shape group
    -- shape ``(n_pairs_in_group, n_sub, N, M)`` -- plus an index
    mapping a *directed* ``(tx, rx)`` link to ``(group, slot,
    transposed)``.  The reciprocal ``b -> a`` direction is served as a
    read-only transposed **view** of the same memory instead of a
    ``.copy()``, halving construction memory.  Every stored array is
    marked non-writable: a consumer mutating a returned channel would
    silently corrupt the reverse direction and every memoized plan built
    from it, so mutation raises instead (the shared-view invariant;
    ``.copy()`` first for a scratch buffer).
    """

    def __init__(self) -> None:
        self._stacks: List[np.ndarray] = []
        self._snrs: List[np.ndarray] = []
        #: Per-group ``(n_pairs_in_group, 2)`` int64 arrays of unordered
        #: ``(a, b)`` station ids in slot order.  The directed-link index
        #: is derived lazily from these (see :meth:`_sorted_index`): one
        #: lexsorted key array searched with ``np.searchsorted`` replaces
        #: the old per-pair dict inserts, which dominated bank
        #: construction at the 500-station tiers.
        self._pair_groups: List[np.ndarray] = []
        self._sorted_keys: Optional[np.ndarray] = None
        self._sorted_groups: Optional[np.ndarray] = None
        self._sorted_slots: Optional[np.ndarray] = None
        #: Resolved ``(tx, rx) -> (group, slot, transposed)`` lookups.
        #: Hot paths query the same few directed links every round, so
        #: each binary search is paid once per link per topology.
        self._memo: Dict[Tuple[int, int], Tuple[int, int, bool]] = {}

    # -- construction ---------------------------------------------------------

    def add_group(
        self,
        pairs: Sequence[Tuple[int, int]],
        responses: np.ndarray,
        snrs_db: Sequence[float],
    ) -> None:
        """Store one antenna-shape group of drawn channels.

        ``pairs`` lists unordered ``(a, b)`` station ids in slot order;
        ``responses`` is the stacked ``(len(pairs), n_sub, N, M)``
        tensor whose slot ``i`` is the ``a -> b`` response of
        ``pairs[i]``, and ``snrs_db`` the per-pair average link SNRs.
        """
        responses = np.asarray(responses)
        snrs = np.asarray(snrs_db, dtype=float)
        if responses.ndim != 4 or responses.shape[0] != len(pairs):
            raise DimensionError(
                f"responses must have shape ({len(pairs)}, n_sub, N, M), "
                f"got {responses.shape}"
            )
        if snrs.shape != (len(pairs),):
            raise DimensionError(
                f"snrs_db must have one entry per pair, got shape {snrs.shape}"
            )
        pair_array = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
        if pair_array.size and (
            pair_array.min() < 0 or pair_array.max() >= _PAIR_KEY_BASE
        ):
            raise ConfigurationError(
                "station ids must be non-negative and fit in 31 bits to be "
                "packed into the pair-index keys"
            )
        responses.setflags(write=False)
        snrs.setflags(write=False)
        pair_array.setflags(write=False)
        self._stacks.append(responses)
        self._snrs.append(snrs)
        self._pair_groups.append(pair_array)
        # Invalidate the lazily built sorted index and resolved lookups.
        self._sorted_keys = None
        self._sorted_groups = None
        self._sorted_slots = None
        self._memo.clear()

    # -- lookups --------------------------------------------------------------

    def _sorted_index(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The lazily built ``(keys, groups, slots)`` sorted index.

        All stored pairs are packed into one int64 key per direction-
        canonical pair (``a * 2**32 + b``), lexsorted once, and searched
        with :func:`np.searchsorted`.  Building this is O(pairs log
        pairs) of pure array work -- no per-pair Python dict inserts --
        and is amortised over every lookup until the next
        :meth:`add_group`.
        """
        if self._sorted_keys is None:
            if self._pair_groups:
                pairs = np.concatenate(self._pair_groups, axis=0)
                groups = np.repeat(
                    np.arange(len(self._pair_groups), dtype=np.int64),
                    [len(block) for block in self._pair_groups],
                )
                slots = np.concatenate(
                    [np.arange(len(block), dtype=np.int64) for block in self._pair_groups]
                )
                keys = pairs[:, 0] * (1 << 32) + pairs[:, 1]
                order = np.argsort(keys, kind="stable")
                self._sorted_keys = keys[order]
                self._sorted_groups = groups[order]
                self._sorted_slots = slots[order]
            else:
                empty = np.empty(0, dtype=np.int64)
                self._sorted_keys = empty
                self._sorted_groups = empty
                self._sorted_slots = empty
        return self._sorted_keys, self._sorted_groups, self._sorted_slots

    def _locate(self, a: int, b: int) -> Optional[Tuple[int, int]]:
        """``(group, slot)`` storing the directed pair ``(a, b)``, if any."""
        keys, groups, slots = self._sorted_index()
        key = (a << 32) + b
        position = int(np.searchsorted(keys, key))
        if position < keys.size and keys[position] == key:
            return int(groups[position]), int(slots[position])
        return None

    def lookup(self, tx_id: int, rx_id: int) -> Tuple[int, int, bool]:
        """``(group, slot, transposed)`` of a directed link.

        ``transposed`` is ``True`` when the link is served as the
        transposed view of the stored reciprocal direction.  Raises
        ``KeyError`` for a link no group covers.
        """
        link = (tx_id, rx_id)
        entry = self._memo.get(link)
        if entry is None:
            found = self._locate(tx_id, rx_id)
            if found is not None:
                entry = (found[0], found[1], False)
            else:
                found = self._locate(rx_id, tx_id)
                if found is None:
                    raise KeyError(link)
                entry = (found[0], found[1], True)
            self._memo[link] = entry
        return entry

    def channel(self, tx_id: int, rx_id: int) -> np.ndarray:
        """The read-only ``(n_sub, N, M)`` response of a directed link."""
        group, slot, transposed = self.lookup(tx_id, rx_id)
        response = self._stacks[group][slot]
        return response.transpose(0, 2, 1) if transposed else response

    def snr_db(self, tx_id: int, rx_id: int) -> float:
        """The average SNR of a directed link (symmetric by reciprocity)."""
        group, slot, _ = self.lookup(tx_id, rx_id)
        return float(self._snrs[group][slot])

    def __contains__(self, link: Tuple[int, int]) -> bool:
        tx_id, rx_id = link
        if (tx_id, rx_id) in self._memo:
            return True
        return (
            self._locate(tx_id, rx_id) is not None
            or self._locate(rx_id, tx_id) is not None
        )

    # -- in-place update kernels -----------------------------------------------

    def _writable_group(self, group: int):
        """Context values for an in-place write to one group's arrays.

        The stacks stay read-only to consumers at all times -- views
        handed out by :meth:`channel` keep the non-writable flag they
        were created with -- so only these kernels, which re-freeze in a
        ``finally``, ever write.
        """
        return self._stacks[group], self._snrs[group]

    def scale_links(
        self,
        links: Sequence[Tuple[int, int]],
        amplitude_scale: float,
        snr_delta_db: float = 0.0,
    ) -> None:
        """Scale the stored tensors of ``links`` in place, O(affected slots).

        The canonical stored tensor is scaled once per link, which fades
        both directions at once (the reciprocal is a transposed view of
        the same memory).  Affected slots are grouped per antenna-shape
        group and written with one fancy-indexed multiply each -- no
        group is rebuilt.  ``snr_delta_db`` adjusts the stored link SNRs
        by the same episode (a fade of depth ``d`` dB passes
        ``amplitude_scale=10**(-d/20)``, ``snr_delta_db=-d``).
        """
        by_group: Dict[int, List[int]] = {}
        for tx_id, rx_id in links:
            group, slot, _ = self.lookup(tx_id, rx_id)
            by_group.setdefault(group, []).append(slot)
        for group, slots in by_group.items():
            stack, snrs = self._writable_group(group)
            stack.setflags(write=True)
            snrs.setflags(write=True)
            try:
                stack[slots] *= amplitude_scale
                snrs[slots] += snr_delta_db
            finally:
                stack.setflags(write=False)
                snrs.setflags(write=False)

    def update_links(
        self, updates: Sequence[Tuple[int, int, np.ndarray, float]]
    ) -> None:
        """Replace the stored tensor and SNR of each link, in place.

        ``updates`` holds ``(tx_id, rx_id, response, snr_db)`` with the
        response in ``(tx, rx)`` orientation and the slot's stored shape
        (transposed automatically when the canonical stored direction is
        the reciprocal).  Writes are batched per group into one stacked
        fancy-index assignment -- O(affected slots), never a rebuild --
        which is what makes restoring (or re-drawing) a faded link cheap
        even in the 500-station tiers.
        """
        grouped: Dict[int, Tuple[List[int], List[np.ndarray], List[float]]] = {}
        for tx_id, rx_id, response, snr_db in updates:
            group, slot, transposed = self.lookup(tx_id, rx_id)
            data = np.asarray(response)
            if transposed:
                data = data.transpose(0, 2, 1)
            stack = self._stacks[group]
            if data.shape != stack.shape[1:]:
                raise DimensionError(
                    f"link ({tx_id}, {rx_id}) update has shape {data.shape}, "
                    f"stored slots have shape {stack.shape[1:]}"
                )
            slots, tensors, snr_values = grouped.setdefault(group, ([], [], []))
            slots.append(slot)
            tensors.append(data)
            snr_values.append(float(snr_db))
        for group, (slots, tensors, snr_values) in grouped.items():
            stack, snrs = self._writable_group(group)
            stack.setflags(write=True)
            snrs.setflags(write=True)
            try:
                stack[slots] = np.stack(tensors)
                snrs[slots] = snr_values
            finally:
                stack.setflags(write=False)
                snrs.setflags(write=False)

    def snapshot_links(
        self, links: Sequence[Tuple[int, int]]
    ) -> List[Tuple[np.ndarray, float]]:
        """Copies of ``links``' current tensors (in ``(tx, rx)``
        orientation) and SNRs, suitable for a bit-exact
        :meth:`update_links` restore later."""
        return [
            (self.channel(tx_id, rx_id).copy(), self.snr_db(tx_id, rx_id))
            for tx_id, rx_id in links
        ]

    def pairs(self) -> List[Tuple[int, int]]:
        """The stored unordered pairs, in (group, slot) order."""
        return [
            (int(a), int(b)) for block in self._pair_groups for a, b in block
        ]

    @property
    def n_pairs(self) -> int:
        """Number of stored unordered pairs."""
        return sum(len(block) for block in self._pair_groups)

    @property
    def n_groups(self) -> int:
        """Number of antenna-shape groups."""
        return len(self._stacks)

    @property
    def nbytes(self) -> int:
        """Bytes held by the stacked tensors (reciprocals are free views)."""
        return sum(stack.nbytes for stack in self._stacks) + sum(
            snrs.nbytes for snrs in self._snrs
        )


class Network:
    """Stations plus the (true) channels between every pair of them.

    Parameters
    ----------
    stations:
        All nodes in the network.
    pairs:
        The transmitter-receiver pairs with traffic.
    rng:
        Random generator used for placements, fading and estimation error.
    testbed:
        The synthetic deployment; defaults to :func:`default_testbed`.
    n_subcarriers:
        Number of (evenly spaced) OFDM subcarriers tracked by the link
        abstraction.  16 keeps runs fast while retaining frequency
        selectivity; use 64 for full fidelity.
    forced_link_snrs_db:
        Optional map ``(tx_id, rx_id) -> SNR`` overriding the geometric
        link budget for controlled experiments.
    channel_draws:
        Which draw contract turns the generator into channels:

        * ``"batched"`` (default) -- the v2 contract: per pair (in
          canonical order) the shadowing draw, the line-of-sight coin
          and one tap-normal draw, with tap scaling and the 64-point FFT
          vectorized per antenna-shape group.
        * ``"per-pair"`` -- the readable v2 reference loop; bit-identical
          to ``"batched"`` (the test suite asserts it down to the
          post-draw generator state).
        * ``"grouped"`` -- the v3 contract: randomness is consumed
          scalars-first (one shadowing draw for *all* pairs, one
          line-of-sight draw for all pairs, then ONE tap draw per
          antenna-shape group -- no per-pair rng calls at all) and
          estimation noise is prefetched in stacked shape-grouped draws
          (:meth:`prefetch_estimates`).  Seeded results deliberately
          differ from v2, which is why selecting it rides the
          ``CACHE_SCHEMA_VERSION`` 3 bump (:mod:`repro.sim.sweep`).
    """

    def __init__(
        self,
        stations: List[Station],
        pairs: List[TrafficPair],
        rng: np.random.Generator,
        testbed: Optional[Testbed] = None,
        n_subcarriers: int = 16,
        forced_link_snrs_db: Optional[Dict[Tuple[int, int], float]] = None,
        channel_draws: str = "batched",
    ) -> None:
        if n_subcarriers < 1:
            raise ConfigurationError("need at least one subcarrier")
        if channel_draws not in DRAW_CONTRACTS:
            raise ConfigurationError(
                f"unknown channel_draws {channel_draws!r}; "
                f"choose one of {list(DRAW_CONTRACTS)}"
            )
        self.stations: Dict[int, Station] = {s.node_id: s for s in stations}
        if len(self.stations) != len(stations):
            raise ConfigurationError("station ids must be unique")
        self.pairs = list(pairs)
        self.rng = rng
        self.testbed = testbed or default_testbed()
        self.n_subcarriers = n_subcarriers
        self.noise_power = 1.0
        self.hardware: HardwareProfile = self.testbed.hardware
        self.channel_draws = channel_draws
        self._forced_snrs = dict(forced_link_snrs_db or {})
        self._estimation_rng: Optional[np.random.Generator] = None
        self._estimate_memo: Dict[Tuple[int, int, bool], np.ndarray] = {}
        # Per-link channel epochs (canonical (min, max) pair -> bump
        # count).  Empty for every link that never changed, so the
        # static-network fast paths stay allocation-free.
        self._link_epochs: Dict[Tuple[int, int], int] = {}

        self._place_stations()
        self.channels = ChannelBank()
        if channel_draws == "grouped":
            self._draw_channels_grouped()
        elif channel_draws == "batched":
            self._draw_channels()
        else:
            self._draw_channels_reference()

    # -- construction helpers -----------------------------------------------------

    def _place_stations(self) -> None:
        placements = self.testbed.place_nodes(len(self.stations), self.rng)
        # Assign locations in sorted-id order (not station-list order) so
        # the node-id -> location mapping -- and therefore every channel
        # -- never depends on how the caller ordered the station list.
        for node_id, location in zip(sorted(self.stations), placements):
            self.stations[node_id].location = int(location)

    def _subcarrier_indices(self) -> np.ndarray:
        return _subcarrier_bins(self.n_subcarriers)

    def _pair_iter(self):
        """Unordered station pairs in canonical draw order, with the
        forced SNR (or ``None``) of each."""
        ids = sorted(self.stations)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                forced = self._forced_snrs.get((a, b), self._forced_snrs.get((b, a)))
                yield a, b, forced

    def _pair_losses(self, ids: List[int]) -> np.ndarray:
        """Log-distance path loss of every placed-location pair.

        Vectorized once through the same
        :meth:`~repro.channel.testbed.Testbed.path_loss_at_distance`
        formula (and hypot/log10 ufuncs) the scalar per-pair path
        evaluates -- bit-identical elementwise.
        """
        coords = np.array(
            [self.testbed.locations[self.stations[node].location] for node in ids],
            dtype=float,
        )
        deltas = coords[:, None, :] - coords[None, :, :]
        return self.testbed.path_loss_at_distance(
            np.hypot(deltas[..., 0], deltas[..., 1])
        )

    def _forced_snr_rows(self, ids: List[int]) -> Optional[np.ndarray]:
        """Forced SNR per canonical pair row (``NaN`` = unforced).

        Matches the precedence of :meth:`_pair_iter`: a ``(a, b)`` entry
        with ``a < b`` wins over its ``(b, a)`` mirror.
        """
        if not self._forced_snrs:
            return None
        n = len(ids)
        index_of = {node: row for row, node in enumerate(ids)}
        forced = np.full(n * (n - 1) // 2, np.nan)
        for prefer_forward in (False, True):
            for (x, y), snr in self._forced_snrs.items():
                if x == y or x not in index_of or y not in index_of:
                    continue
                if (x < y) != prefer_forward:
                    continue
                i, j = sorted((index_of[x], index_of[y]))
                row = i * n - i * (i + 1) // 2 + (j - i - 1)
                forced[row] = float(snr)
        return forced

    def _draw_channels_grouped(self) -> None:
        """Draw every pair's channel under the ``"grouped"`` v3 contract.

        Randomness is consumed **scalars-first**, with no per-pair rng
        calls at all:

        1. one ``rng.normal`` call draws every pair's shadowing, in
           canonical pair order (forced-SNR pairs draw and discard
           theirs, so the stream layout depends only on the pair count);
        2. one ``rng.random`` call draws every line-of-sight coin;
        3. one ``rng.standard_normal`` call per antenna-shape group
           draws all of that group's tap normals -- groups ordered by
           ``(n_tx, n_rx)``, pairs inside a group in canonical order.

        Frequency responses are evaluated directly at the tracked bins
        (:func:`~repro.channel.multipath.frequency_response_at_bins_batch`),
        skipping the padded 64-point FFT.  Because draws depend only on
        the *sorted* station ids, the result is independent of station-
        and pair-list order (asserted by the test suite).  The draw
        order deliberately differs from the v2 contracts -- it removes
        their ~3 small rng calls per pair -- which is why this contract
        rides the ``CACHE_SCHEMA_VERSION`` 3 bump.
        """
        ids = sorted(self.stations)
        n = len(ids)
        if n < 2:
            return
        bins = self._subcarrier_indices()
        testbed = self.testbed
        n_taps = testbed.n_taps

        # Canonical pair table: np.triu_indices walks rows in the exact
        # order of _pair_iter's nested loop.
        ai, bi = np.triu_indices(n, k=1)
        losses = self._pair_losses(ids)[ai, bi]
        antennas = np.array([self.stations[node].n_antennas for node in ids])
        n_tx = antennas[ai]
        n_rx = antennas[bi]

        snrs, decays = testbed.draw_link_scalars_batch(
            losses, self.rng, forced_snr_db=self._forced_snr_rows(ids)
        )

        id_arr = np.array(ids)
        shape_key = n_tx * (int(antennas.max()) + 1) + n_rx
        for key in np.unique(shape_key):  # sorted == (n_tx, n_rx) lexicographic
            rows = np.flatnonzero(shape_key == key)  # ascending == canonical order
            m, r = int(n_tx[rows[0]]), int(n_rx[rows[0]])
            raw = self.rng.standard_normal((rows.size, n_taps, 2, r, m))
            taps = MultipathChannel.random_batch(
                r,
                m,
                rng=None,
                n_channels=rows.size,
                n_taps=n_taps,
                decay_samples=decays[rows],
                average_gain=db_to_linear(snrs[rows]),
                raw=raw,
            )
            responses = frequency_response_at_bins_batch(taps, bins)
            pairs = list(zip(id_arr[ai[rows]].tolist(), id_arr[bi[rows]].tolist()))
            self.channels.add_group(pairs, responses, snrs[rows])

    def _draw_channels(self) -> None:
        """Draw every pair's channel with batched per-group math (v2).

        Random numbers are consumed in exactly the order of
        :meth:`_draw_channels_reference` -- per pair: shadowing, the
        line-of-sight coin, then the tap normals in one call -- so the
        result is bit-identical.  Everything downstream of the draws
        (path loss, tap scaling, the 64-point FFT, the subcarrier
        selection) runs once per antenna-shape group instead of once per
        pair, which is what makes 100-200 station construction cheap.
        """
        if not self.stations:
            return
        bins = self._subcarrier_indices()
        testbed = self.testbed
        n_taps = testbed.n_taps

        ids = sorted(self.stations)
        losses = self._pair_losses(ids)
        index_of = {node: row for row, node in enumerate(ids)}

        # Pass 1: the per-pair draws, in reference order.  Only the three
        # rng calls (and bookkeeping) remain per pair; the draw sequence
        # itself is defined once, in Testbed.draw_link_scalars.
        groups: Dict[Tuple[int, int], dict] = {}
        rng = self.rng
        for a, b, forced in self._pair_iter():
            sta_a = self.stations[a]
            sta_b = self.stations[b]
            snr, decay = testbed.draw_link_scalars(
                sta_a.location,
                sta_b.location,
                rng,
                snr_db=forced,
                path_loss_db=losses[index_of[a], index_of[b]],
            )
            n_tx = sta_a.n_antennas
            n_rx = sta_b.n_antennas
            raw = rng.standard_normal((n_taps, 2, n_rx, n_tx))
            group = groups.setdefault(
                (n_tx, n_rx), {"pairs": [], "snrs": [], "decays": [], "raws": []}
            )
            group["pairs"].append((a, b))
            group["snrs"].append(snr)
            group["decays"].append(decay)
            group["raws"].append(raw)

        # Pass 2: per antenna-shape group, scale all taps and compute all
        # frequency responses in one stacked FFT + fancy-index pass.
        for (n_tx, n_rx), group in groups.items():
            snrs = np.asarray(group["snrs"], dtype=float)
            taps = MultipathChannel.random_batch(
                n_rx,
                n_tx,
                rng=None,
                n_channels=len(group["pairs"]),
                n_taps=n_taps,
                decay_samples=np.asarray(group["decays"]),
                average_gain=db_to_linear(snrs),
                raw=np.stack(group["raws"]),
            )
            responses = frequency_response_batch(taps, 64)[:, bins]  # (C, n_sub, N, M)
            self.channels.add_group(group["pairs"], responses, snrs)

    def _draw_channels_reference(self) -> None:
        """Draw one frequency-selective channel per unordered station pair
        and derive the reverse direction by reciprocity (transposition).

        The readable per-pair loop, kept as the reference
        :meth:`_draw_channels` is asserted bit-identical against.  The
        drawn responses land in the same :class:`ChannelBank` layout as
        the other contracts (grouped by antenna shape at the end).
        """
        bins = self._subcarrier_indices()
        groups: Dict[Tuple[int, int], dict] = {}
        for a, b, forced in self._pair_iter():
            sta_a = self.stations[a]
            sta_b = self.stations[b]
            link = self.testbed.link(
                sta_a.location,
                sta_b.location,
                n_tx=sta_a.n_antennas,
                n_rx=sta_b.n_antennas,
                rng=self.rng,
                snr_db=forced,
            )
            response = link.frequency_response(64)[bins]  # (n_sub, N_b, M_a)
            group = groups.setdefault(
                (sta_a.n_antennas, sta_b.n_antennas),
                {"pairs": [], "responses": [], "snrs": []},
            )
            group["pairs"].append((a, b))
            group["responses"].append(response)
            group["snrs"].append(link.snr_db)
        for group in groups.values():
            self.channels.add_group(
                group["pairs"], np.stack(group["responses"]), group["snrs"]
            )

    # -- lookups ---------------------------------------------------------------------

    def station(self, node_id: int) -> Station:
        """The station with the given id."""
        return self.stations[node_id]

    def pair_for_transmitter(self, node_id: int) -> TrafficPair:
        """The traffic pair whose transmitter is ``node_id``."""
        for pair in self.pairs:
            if pair.transmitter.node_id == node_id:
                return pair
        raise ConfigurationError(f"node {node_id} is not a transmitter of any pair")

    def link_snr_db(self, tx_id: int, rx_id: int) -> float:
        """The average SNR of the link between two stations."""
        return self.channels.snr_db(tx_id, rx_id)

    def true_channel(self, tx_id: int, rx_id: int) -> np.ndarray:
        """The true per-subcarrier channel ``(n_subcarriers, N_rx, M_tx)``.

        The returned array is **read-only**: the reciprocal direction is
        a transposed view of the same memory (see :class:`ChannelBank`),
        so mutating it would corrupt both directions -- ``.copy()``
        first if a writable scratch buffer is needed.
        """
        if tx_id == rx_id:
            raise ConfigurationError("a node has no channel to itself")
        return self.channels.channel(tx_id, rx_id)

    # -- dynamic channels (fault injection) --------------------------------------

    def link_epoch(self, a: int, b: int) -> int:
        """How many times the channel between two stations has changed.

        0 for every link in a static network -- epochs only exist once
        :meth:`bump_link_epoch` (via :meth:`fade_link` /
        :meth:`restore_link`) touches the link.
        """
        key = (a, b) if a < b else (b, a)
        return self._link_epochs.get(key, 0)

    @property
    def link_epochs(self) -> Dict[Tuple[int, int], int]:
        """Read-only view of every bumped link's epoch (empty while the
        network is static).  The invariant layer reads this to assert
        epochs are monotone; mutate only via :meth:`bump_link_epoch`."""
        return self._link_epochs

    def bump_link_epoch(self, a: int, b: int) -> None:
        """Record that the channel between two stations changed.

        Increments the link's epoch and evicts exactly that link's
        entries from the estimate memo (both directions, both
        reciprocity flavours) -- the rest of the memo stays valid, so a
        fade on one link never forces the network to re-measure
        everything.  Plan-cache entries are not evicted here: their keys
        embed :meth:`epoch_signature`, so entries built against the old
        epoch simply stop being hit.
        """
        key = (a, b) if a < b else (b, a)
        self._link_epochs[key] = self._link_epochs.get(key, 0) + 1
        for reciprocity in (False, True):
            self._estimate_memo.pop((a, b, reciprocity), None)
            self._estimate_memo.pop((b, a, reciprocity), None)

    def epoch_signature(self, node_ids: Iterable[int]) -> tuple:
        """The epochs of every bumped link among ``node_ids``, as a
        hashable cache-key component.

        Returns ``()`` while no link has ever changed (the static case
        -- a cheap guard on the empty dict), so epoch-keying is free
        until faults actually occur.  Otherwise a sorted tuple of
        ``((a, b), epoch)`` for bumped links with both endpoints in the
        set: a cached plan keyed with this signature is hit only while
        every channel it could have read is unchanged, which is the
        exact-invalidation contract the fault layer relies on.
        """
        if not self._link_epochs:
            return ()
        ids = set(node_ids)
        return tuple(
            sorted(
                (pair, epoch)
                for pair, epoch in self._link_epochs.items()
                if pair[0] in ids and pair[1] in ids
            )
        )

    def snapshot_link(self, tx_id: int, rx_id: int) -> Tuple[np.ndarray, float]:
        """A ``(response copy, snr_db)`` snapshot of one directed link,
        for bit-exact restore via :meth:`restore_link`."""
        return self.channels.snapshot_links([(tx_id, rx_id)])[0]

    def fade_link(self, tx_id: int, rx_id: int, depth_db: float) -> None:
        """Apply a deep fade: scale the link's channel down by
        ``depth_db`` (amplitude ``10**(-depth/20)``) and bump its epoch.

        The stored canonical tensor is scaled in place, so both
        directions of the pair fade together (reciprocity).
        """
        depth = float(depth_db)
        self.channels.scale_links(
            [(tx_id, rx_id)], 10.0 ** (-depth / 20.0), snr_delta_db=-depth
        )
        self.bump_link_epoch(tx_id, rx_id)

    def restore_link(
        self, tx_id: int, rx_id: int, response: np.ndarray, snr_db: float
    ) -> None:
        """Write a snapshot back (ending a fade) and bump the epoch.

        With the :meth:`snapshot_link` taken before the fade this is
        bit-exact: an ended fade leaves the channel identical to one
        that never faded.
        """
        self.channels.update_links([(tx_id, rx_id, response, snr_db)])
        self.bump_link_epoch(tx_id, rx_id)

    def reseed_estimation_noise(self, seed) -> None:
        """Give channel-estimation noise its own seeded random stream.

        :meth:`estimated_channel` draws measurement noise on every call.
        By default those draws come from the network's construction
        generator, which makes a protocol's estimates depend on how much
        randomness *previously simulated protocols* consumed.  The runner
        calls this at the start of every simulation (seeded from the
        simulation seed) so each (protocol, seed) simulation sees an
        estimation-noise stream that is independent of execution order --
        the property that lets sweeps run protocols in parallel, in any
        order, or out of a cache and still match a serial run bit for bit.

        ``seed`` is anything :func:`numpy.random.default_rng` accepts.
        Reseeding also clears the per-simulation estimate memo (see
        :meth:`estimated_channel`), so a new simulation re-measures every
        channel once from its own stream.
        """
        self._estimation_rng = np.random.default_rng(seed)
        self._estimate_memo.clear()

    def estimated_channel(
        self, tx_id: int, rx_id: int, reciprocity: bool = False
    ) -> np.ndarray:
        """A noisy estimate of the channel, as a node would measure it.

        ``reciprocity=True`` models an estimate derived from the reverse
        direction (what a joiner does with overheard CTS headers), which
        carries the additional calibration error of §2's footnote 2.

        Channels are static within a run, so a node measures each channel
        *once* (on the first preamble it overhears) and reuses that
        estimate for the rest of the simulation: the first call per
        ``(tx, rx, reciprocity)`` draws measurement noise, later calls
        return the memoized estimate.  This static-channel invariant is
        what makes transmission planning a pure function of the
        contention configuration -- the property the plan cache of
        :mod:`repro.mac.plan` relies on.  :meth:`reseed_estimation_noise`
        (called by the runner at the start of every simulation) clears
        the memo.

        Measurement noise is drawn from the stream installed by
        :meth:`reseed_estimation_noise` when one is set (the runner always
        sets one), falling back to the construction generator otherwise.
        Under the ``"grouped"`` contract, :meth:`prefetch_estimates` can
        fill the memo for many links in stacked draws before the
        per-link queries arrive.
        """
        key = (tx_id, rx_id, reciprocity)
        memo = self._estimate_memo.get(key)
        if memo is not None:
            return memo
        true = self.true_channel(tx_id, rx_id)
        rng = self._estimation_rng if self._estimation_rng is not None else self.rng
        estimate = self.hardware.perturb_channel(true, rng, reciprocity=reciprocity)
        estimate.setflags(write=False)
        self._estimate_memo[key] = estimate
        return estimate

    def prefetch_estimates(self, links: Iterable[Tuple[int, int, bool]]) -> None:
        """Measure a batch of links now, in stacked shape-grouped draws.

        Under the ``"grouped"`` (v3) draw contract the links of a
        contention configuration are measured together: the unmemoized
        queries are grouped by (channel shape, reciprocity) in
        first-appearance order and each group draws its measurement
        noise in one
        :meth:`~repro.channel.hardware.HardwareProfile.perturb_channel_batch`
        call.  Later :meth:`estimated_channel` calls hit the memo.

        Under the v2 contracts (``"batched"``/``"per-pair"``) this is a
        **no-op**: they keep the lazy one-link-at-a-time draw order so
        seeded v2 results stay reproducible.

        ``links`` is an iterable of ``(tx_id, rx_id, reciprocity)``.
        Prefetching is deterministic but *order-sensitive* (like every
        draw), so callers must pass links in a deterministic order --
        the MAC layers pass them in medium/receiver order.
        """
        if self.channel_draws != "grouped":
            return
        pending: Dict[Tuple[tuple, bool], Dict[tuple, np.ndarray]] = {}
        for tx_id, rx_id, reciprocity in links:
            key = (tx_id, rx_id, bool(reciprocity))
            if key in self._estimate_memo:
                continue
            true = self.true_channel(tx_id, rx_id)
            bucket = pending.setdefault((true.shape, bool(reciprocity)), {})
            bucket.setdefault(key, true)
        if not pending:
            return
        rng = self._estimation_rng if self._estimation_rng is not None else self.rng
        for (_, reciprocity), bucket in pending.items():
            stack = np.stack(list(bucket.values()))
            estimates = self.hardware.perturb_channel_batch(
                stack, rng, reciprocity=reciprocity
            )
            estimates.setflags(write=False)
            for index, key in enumerate(bucket):
                self._estimate_memo[key] = estimates[index]

    # -- summary ---------------------------------------------------------------------

    def describe(self) -> str:
        """A short human-readable summary of the drawn network."""
        lines = []
        for pair in self.pairs:
            tx = pair.transmitter
            for receiver in pair.receivers:
                snr = self.link_snr_db(tx.node_id, receiver.node_id)
                lines.append(
                    f"{tx.name} ({tx.n_antennas} ant) -> {receiver.name} "
                    f"({receiver.n_antennas} ant): {snr:.1f} dB"
                )
        return "\n".join(lines)
