"""Durable SQLite-backed results store for sweep cells.

:class:`ResultsStore` replaces the flat-directory JSON
:class:`~repro.sim.sweep.SweepCache` as the default persistence layer of
:func:`~repro.sim.sweep.run_sweep`.  It keeps the cache's contract --
cells keyed by the existing ``(scenario, protocol, run seed, config,
schema version)`` digest, ``load``/``store`` returning and accepting
:class:`~repro.sim.metrics.NetworkMetrics`, unreadable state treated as
a miss -- and adds what a pile of JSON files cannot provide:

* **durability**: one WAL-mode SQLite database, written in short atomic
  transactions, so a crashed or killed sweep process can never leave a
  torn cell (SQLite's journal guarantees a reader sees the last
  committed row);
* **a cell state machine**: every cell of a sweep is a row that moves
  ``pending -> running -> done`` (or ``failed``), which is what makes a
  sweep *resumable* -- a re-invocation sees exactly which cells still
  need computing;
* **sweep manifests**: :meth:`begin_sweep` records the full grid
  (scenario, fingerprint, protocols, seeds, config) up front under a
  manifest digest, so ``--resume`` can verify it is continuing the same
  sweep and ``repro results`` can enumerate past sweeps;
* **queries across sweeps**: cells carry their coordinates (scenario,
  protocol, run, run seed, config digest) as indexed columns, so the
  store answers "all done n+ cells on dense-lan-50" without touching
  the metrics payloads.

Legacy JSON caches migrate in one shot: opening a store in a directory
that still holds ``<cell key>.json`` files imports every readable entry
under its original key (the key scheme is unchanged, so migrated cells
replay exactly where the JSON files would have) and records the
migration in the store's meta table.  The JSON files are left in place
untouched.

Concurrency model: only the sweep *parent* process touches the store
(workers ship metrics back over pipes), so a single connection per
store suffices; WAL mode plus a generous busy timeout make concurrent
sweeps sharing one cache directory safe, if serialised at commit time.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.sim.metrics import NetworkMetrics

__all__ = [
    "ResultsStore",
    "CellRecord",
    "SweepRecord",
    "STORE_FILENAME",
    "STORE_SCHEMA_VERSION",
    "CELL_STATES",
]

#: Filename of the database inside a cache directory.
STORE_FILENAME = "results.sqlite"

#: Version of the store's *table layout* (independent of the cell-key
#: schema version, which lives in :mod:`repro.sim.sweep` and is part of
#: every cell key).  An on-disk store with a newer layout than this
#: build understands is refused rather than guessed at; an *older*
#: layout is migrated in place (additive ``ALTER TABLE``s only).
#: 2: failed cells carry ``capsule_path`` (the replayable crash capsule
#:    written next to the store) and ``traceback``.
STORE_SCHEMA_VERSION = 2

#: The cell state machine: manifest rows start ``pending``, move to
#: ``running`` when shipped to a worker, and finish ``done`` (metrics
#: attached) or ``failed`` (error attached).  An interrupted sweep's
#: checkpoint resets ``running`` rows to ``pending`` so a resume
#: recomputes exactly the unfinished cells.
CELL_STATES = ("pending", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id      TEXT PRIMARY KEY,
    manifest_json TEXT NOT NULL,
    status        TEXT NOT NULL CHECK (status IN ('running','interrupted','done')),
    created_at    REAL NOT NULL,
    updated_at    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    key                  TEXT PRIMARY KEY,
    status               TEXT NOT NULL CHECK (status IN ('pending','running','done','failed')),
    scenario             TEXT,
    scenario_fingerprint TEXT,
    protocol             TEXT,
    run                  INTEGER,
    run_seed             INTEGER,
    config_digest        TEXT,
    sweep_id             TEXT,
    metrics_json         TEXT,
    error                TEXT,
    capsule_path         TEXT,
    traceback            TEXT,
    updated_at           REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cells_coords ON cells (scenario, protocol, status);
CREATE INDEX IF NOT EXISTS idx_cells_sweep  ON cells (sweep_id, status);
"""

_DESCRIBE_COLUMNS = (
    "scenario",
    "scenario_fingerprint",
    "protocol",
    "run",
    "run_seed",
    "config_digest",
)


@dataclass(frozen=True)
class CellRecord:
    """One cell row, metrics left as the raw JSON payload (lazy parse)."""

    key: str
    status: str
    scenario: Optional[str]
    protocol: Optional[str]
    run: Optional[int]
    run_seed: Optional[int]
    config_digest: Optional[str]
    sweep_id: Optional[str]
    error: Optional[str]
    updated_at: float
    metrics_json: Optional[str] = None
    capsule_path: Optional[str] = None
    traceback: Optional[str] = None

    def metrics(self) -> Optional[NetworkMetrics]:
        """Parse the stored metrics; ``None`` for non-``done`` cells."""
        if self.metrics_json is None:
            return None
        try:
            return NetworkMetrics.from_dict(json.loads(self.metrics_json))
        except (ValueError, KeyError, TypeError):
            return None


@dataclass(frozen=True)
class SweepRecord:
    """One recorded sweep manifest plus its lifecycle status."""

    sweep_id: str
    manifest: dict
    status: str
    created_at: float
    updated_at: float


class ResultsStore:
    """SQLite results store, drop-in behind the JSON cache's interface.

    ``root`` is the cache directory (the database lives at
    ``root/results.sqlite``, next to any legacy JSON cells) or a direct
    path to a ``.sqlite``/``.db`` file.  Opening is self-healing: a
    file SQLite refuses to read is set aside as ``*.corrupt.<pid>`` and
    a fresh store is created -- mirroring the JSON cache's
    corrupt-entry-as-miss policy at whole-store granularity.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        root = Path(root)
        if root.suffix in (".sqlite", ".db"):
            self.root = root.parent
            self.path = root
        else:
            self.root = root
            self.path = root / STORE_FILENAME
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            # An uncreatable cache directory (read-only filesystem, a
            # file where a directory was expected) is a configuration
            # problem, reported cleanly before any file is touched.
            raise ConfigurationError(
                f"cannot create cache directory {self.root}: {exc}"
            ) from exc
        self._conn = self._open()
        self._migrate_legacy_json()

    # -- connection lifecycle ----------------------------------------------

    def _open(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except sqlite3.DatabaseError as exc:
            if not self.path.exists():
                # SQLite could not even create the file: an unwritable
                # directory, not a corrupt store.  Nothing partial was
                # written; report the configuration problem cleanly.
                raise ConfigurationError(
                    f"cannot create results store at {self.path}: {exc}"
                ) from exc
            # An unreadable database (torn beyond WAL recovery, or not
            # SQLite at all) is set aside, not fatal: the cells it held
            # become misses, exactly like a corrupt JSON entry did.
            quarantine = self.path.with_suffix(f".corrupt.{os.getpid()}")
            try:
                os.replace(self.path, quarantine)
            except OSError as err:
                # Cannot even move the file aside (read-only directory):
                # surface the underlying problem instead of retrying.
                raise ConfigurationError(
                    f"results store at {self.path} is unreadable and cannot "
                    f"be quarantined: {err}"
                ) from err
            for sidecar in (self.path.parent / (self.path.name + "-wal"),
                            self.path.parent / (self.path.name + "-shm")):
                sidecar.unlink(missing_ok=True)
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        with conn:
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT value FROM store_meta WHERE key='store_schema'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES ('store_schema', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
            elif int(row["value"]) < STORE_SCHEMA_VERSION:
                # Additive in-place migration of an older layout.  v1 -> v2
                # only adds nullable columns, so existing rows (and every
                # cached cell) are untouched.
                if int(row["value"]) < 2:
                    conn.execute("ALTER TABLE cells ADD COLUMN capsule_path TEXT")
                    conn.execute("ALTER TABLE cells ADD COLUMN traceback TEXT")
                conn.execute(
                    "UPDATE store_meta SET value=? WHERE key='store_schema'",
                    (str(STORE_SCHEMA_VERSION),),
                )
        # Raised outside the transaction block: inside it, closing the
        # connection would make the context-manager exit raise a
        # DatabaseError, which _open() would mistake for corruption and
        # quarantine a perfectly healthy (just newer) store.
        if row is not None and int(row["value"]) > STORE_SCHEMA_VERSION:
            conn.close()
            raise ConfigurationError(
                f"results store {self.path} uses layout version {row['value']}, "
                f"newer than this build's {STORE_SCHEMA_VERSION}; "
                "upgrade the library or use a fresh cache directory"
            )
        return conn

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- legacy JSON migration ---------------------------------------------

    def _migrate_legacy_json(self) -> None:
        """One-shot import of a JSON :class:`SweepCache` directory.

        Every readable ``<key>.json`` cell in the store's directory is
        inserted as a ``done`` row under its original key -- the key
        scheme is unchanged, so migrated cells hit exactly where the
        JSON files would have.  Unreadable files are skipped (they were
        misses before, they stay misses).  The migration runs once per
        store (recorded in ``store_meta``); the JSON files are left in
        place for the old code path and for inspection.
        """
        done = self._conn.execute(
            "SELECT value FROM store_meta WHERE key='json_migration_done'"
        ).fetchone()
        if done is not None:
            return
        imported = 0
        for entry in sorted(self.root.glob("*.json")):
            key = entry.stem
            if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
                continue  # not a cell file
            try:
                payload = json.loads(entry.read_text())
                metrics_json = json.dumps(payload["metrics"], sort_keys=True)
                NetworkMetrics.from_dict(payload["metrics"])  # validate
            except (OSError, ValueError, KeyError, TypeError):
                continue
            describe = payload.get("cell") or {}
            if not isinstance(describe, dict):
                describe = {}
            self._upsert(
                key,
                status="done",
                describe=describe,
                metrics_json=metrics_json,
                error=None,
                keep_done=True,
            )
            imported += 1
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO store_meta (key, value) VALUES "
                "('json_migration_done', ?)",
                (json.dumps({"imported": imported, "at": time.time()}),),
            )

    # -- SweepCache-compatible interface -----------------------------------

    def cell_key(
        self,
        scenario_key: str,
        protocol,
        run_seed: int,
        config,
        scenario_fingerprint: Optional[str] = None,
    ) -> str:
        """The cache key of one sweep cell (the digest scheme is shared
        with -- and defined by -- :meth:`repro.sim.sweep.SweepCache.cell_key`)."""
        from repro.sim.sweep import cell_key as _cell_key

        return _cell_key(scenario_key, protocol, run_seed, config, scenario_fingerprint)

    def load(self, key: str) -> Optional[NetworkMetrics]:
        """The cached metrics for ``key``, or ``None`` on a miss.

        Only ``done`` cells hit; ``pending``/``running``/``failed`` rows
        (and unparseable payloads) are misses, so a previously failed or
        interrupted cell is recomputed, never replayed.
        """
        try:
            row = self._conn.execute(
                "SELECT metrics_json FROM cells WHERE key=? AND status='done'",
                (key,),
            ).fetchone()
        except sqlite3.DatabaseError:
            return None
        if row is None or row["metrics_json"] is None:
            return None
        try:
            return NetworkMetrics.from_dict(json.loads(row["metrics_json"]))
        except (ValueError, KeyError, TypeError):
            return None

    def load_many(self, keys: Sequence[str]) -> Dict[str, NetworkMetrics]:
        """The cached metrics for every hit among ``keys``.

        One batched ``SELECT`` instead of a round-trip per cell -- the
        warm-replay fast path.  Misses (and unparseable payloads) are
        simply absent from the returned mapping; the hit semantics are
        exactly :meth:`load`'s.
        """
        hits: Dict[str, NetworkMetrics] = {}
        chunk_size = 500  # stay well under SQLite's bound-variable limit
        for start in range(0, len(keys), chunk_size):
            chunk = list(keys[start : start + chunk_size])
            placeholders = ",".join("?" * len(chunk))
            try:
                rows = self._conn.execute(
                    f"SELECT key, metrics_json FROM cells WHERE status='done' "
                    f"AND key IN ({placeholders})",
                    chunk,
                ).fetchall()
            except sqlite3.DatabaseError:
                continue
            for row in rows:
                if row["metrics_json"] is None:
                    continue
                try:
                    hits[row["key"]] = NetworkMetrics.from_dict(
                        json.loads(row["metrics_json"])
                    )
                except (ValueError, KeyError, TypeError):
                    continue
        return hits

    def store(self, key: str, metrics: NetworkMetrics, describe: dict) -> None:
        """Persist one finished cell atomically (upsert to ``done``)."""
        self._upsert(
            key,
            status="done",
            describe=describe,
            metrics_json=json.dumps(metrics.to_dict(), sort_keys=True),
            error=None,
        )

    def __len__(self) -> int:
        """Finished cells in the store (parity with the JSON cache's
        file count, which only ever held completed cells)."""
        return self.count("done")

    # -- cell state machine -------------------------------------------------

    def _upsert(
        self,
        key: str,
        status: str,
        describe: dict,
        metrics_json: Optional[str],
        error: Optional[str],
        sweep_id: Optional[str] = None,
        keep_done: bool = False,
        capsule_path: Optional[str] = None,
        traceback: Optional[str] = None,
    ) -> None:
        values = {col: describe.get(col) for col in _DESCRIBE_COLUMNS}
        clause = ""
        if keep_done:
            clause = " WHERE cells.status != 'done'"
        with self._conn:
            self._conn.execute(
                "INSERT INTO cells (key, status, scenario, scenario_fingerprint, "
                "protocol, run, run_seed, config_digest, sweep_id, metrics_json, "
                "error, capsule_path, traceback, updated_at) "
                "VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?) "
                "ON CONFLICT(key) DO UPDATE SET status=excluded.status, "
                "scenario=excluded.scenario, "
                "scenario_fingerprint=excluded.scenario_fingerprint, "
                "protocol=excluded.protocol, run=excluded.run, "
                "run_seed=excluded.run_seed, config_digest=excluded.config_digest, "
                "sweep_id=COALESCE(excluded.sweep_id, cells.sweep_id), "
                "metrics_json=excluded.metrics_json, error=excluded.error, "
                "capsule_path=excluded.capsule_path, "
                "traceback=excluded.traceback, "
                "updated_at=excluded.updated_at" + clause,
                (
                    key,
                    status,
                    values["scenario"],
                    values["scenario_fingerprint"],
                    values["protocol"],
                    values["run"],
                    values["run_seed"],
                    values["config_digest"],
                    sweep_id,
                    metrics_json,
                    error,
                    capsule_path,
                    traceback,
                    time.time(),
                ),
            )

    def mark_running(self, keys: Sequence[str]) -> None:
        """Move cells to ``running`` (shipped to a worker)."""
        now = time.time()
        with self._conn:
            self._conn.executemany(
                "UPDATE cells SET status='running', updated_at=? WHERE key=?",
                [(now, key) for key in keys],
            )

    def mark_pending(self, keys: Sequence[str]) -> None:
        """Move cells back to ``pending`` (re-queued / checkpointed)."""
        now = time.time()
        with self._conn:
            self._conn.executemany(
                "UPDATE cells SET status='pending', updated_at=? WHERE key=?",
                [(now, key) for key in keys],
            )

    def mark_failed(
        self,
        key: str,
        error: str,
        describe: dict,
        capsule_path: Optional[str] = None,
        traceback: Optional[str] = None,
    ) -> None:
        """Record a cell whose computation failed after every retry,
        with the path of its replayable crash capsule (when one was
        written) and the parent-side traceback (when available)."""
        self._upsert(key, status="failed", describe=describe,
                     metrics_json=None, error=error,
                     capsule_path=capsule_path, traceback=traceback)

    def count(self, status: Optional[str] = None) -> int:
        """Number of cells, optionally restricted to one state."""
        if status is None:
            row = self._conn.execute("SELECT COUNT(*) AS n FROM cells").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM cells WHERE status=?", (status,)
            ).fetchone()
        return int(row["n"])

    # -- sweep manifests / checkpointing ------------------------------------

    def begin_sweep(
        self,
        sweep_id: str,
        manifest: dict,
        cells: Sequence[Tuple[str, dict]],
    ) -> None:
        """Record a sweep manifest and materialise its cell rows.

        Every grid cell not yet in the store is inserted ``pending``;
        cells that already exist keep their state (``done`` cells are
        the resume/cache hits, ``failed`` cells will be retried once the
        miss scan queues them).  Any ``running`` rows belonging to this
        manifest are reset to ``pending`` -- they can only be leftovers
        of a sweep process that died without checkpointing.
        """
        now = time.time()
        with self._conn:
            self._conn.execute(
                "INSERT INTO sweeps (sweep_id, manifest_json, status, created_at, "
                "updated_at) VALUES (?,?,?,?,?) "
                "ON CONFLICT(sweep_id) DO UPDATE SET status='running', updated_at=?",
                (sweep_id, json.dumps(manifest, sort_keys=True), "running", now,
                 now, now),
            )
            self._conn.executemany(
                "INSERT INTO cells (key, status, scenario, scenario_fingerprint, "
                "protocol, run, run_seed, config_digest, sweep_id, metrics_json, "
                "error, updated_at) VALUES (?,?,?,?,?,?,?,?,?,?,?,?) "
                "ON CONFLICT(key) DO UPDATE SET sweep_id=excluded.sweep_id, "
                "updated_at=excluded.updated_at",
                [
                    (
                        key,
                        "pending",
                        describe.get("scenario"),
                        describe.get("scenario_fingerprint"),
                        describe.get("protocol"),
                        describe.get("run"),
                        describe.get("run_seed"),
                        describe.get("config_digest"),
                        sweep_id,
                        None,
                        None,
                        now,
                    )
                    for key, describe in cells
                ],
            )
            self._conn.execute(
                "UPDATE cells SET status='pending', updated_at=? "
                "WHERE sweep_id=? AND status='running'",
                (now, sweep_id),
            )

    def checkpoint_sweep(self, sweep_id: str, status: str = "interrupted") -> None:
        """Flush an interrupted sweep to a resumable state.

        All of the manifest's ``running`` cells go back to ``pending``
        (their workers are gone; the results were either stored already
        or lost with the worker) and the sweep row records ``status``.
        """
        now = time.time()
        with self._conn:
            self._conn.execute(
                "UPDATE cells SET status='pending', updated_at=? "
                "WHERE sweep_id=? AND status='running'",
                (now, sweep_id),
            )
            self._conn.execute(
                "UPDATE sweeps SET status=?, updated_at=? WHERE sweep_id=?",
                (status, now, sweep_id),
            )

    def finish_sweep(self, sweep_id: str) -> None:
        """Mark a sweep's manifest complete."""
        with self._conn:
            self._conn.execute(
                "UPDATE sweeps SET status='done', updated_at=? WHERE sweep_id=?",
                (time.time(), sweep_id),
            )

    def get_sweep(self, sweep_id: str) -> Optional[SweepRecord]:
        """The recorded manifest for ``sweep_id``, or ``None``."""
        row = self._conn.execute(
            "SELECT * FROM sweeps WHERE sweep_id=?", (sweep_id,)
        ).fetchone()
        if row is None:
            return None
        return SweepRecord(
            sweep_id=row["sweep_id"],
            manifest=json.loads(row["manifest_json"]),
            status=row["status"],
            created_at=row["created_at"],
            updated_at=row["updated_at"],
        )

    def sweeps(self) -> List[SweepRecord]:
        """All recorded sweep manifests, most recent first."""
        rows = self._conn.execute(
            "SELECT * FROM sweeps ORDER BY updated_at DESC"
        ).fetchall()
        return [
            SweepRecord(
                sweep_id=row["sweep_id"],
                manifest=json.loads(row["manifest_json"]),
                status=row["status"],
                created_at=row["created_at"],
                updated_at=row["updated_at"],
            )
            for row in rows
        ]

    # -- cross-sweep queries -------------------------------------------------

    def query(
        self,
        scenario: Optional[str] = None,
        protocol: Optional[str] = None,
        status: Optional[str] = None,
        sweep_id: Optional[str] = None,
        with_metrics: bool = False,
    ) -> List[CellRecord]:
        """Cells matching the given coordinates, across all sweeps.

        Filters compose with AND; ``with_metrics`` attaches the raw
        metrics JSON (parse lazily via :meth:`CellRecord.metrics`).
        Rows come back ordered by (scenario, protocol, run) so query
        output -- and the ``repro results`` tables built from it -- is
        deterministic.
        """
        clauses, params = [], []
        for column, value in (
            ("scenario", scenario),
            ("protocol", protocol),
            ("status", status),
            ("sweep_id", sweep_id),
        ):
            if value is not None:
                clauses.append(f"{column}=?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        columns = (
            "key, status, scenario, scenario_fingerprint, protocol, run, "
            "run_seed, config_digest, sweep_id, error, capsule_path, "
            "traceback, updated_at"
        )
        if with_metrics:
            columns += ", metrics_json"
        rows = self._conn.execute(
            f"SELECT {columns} FROM cells{where} "
            "ORDER BY scenario, protocol, run, key",
            params,
        ).fetchall()
        return [
            CellRecord(
                key=row["key"],
                status=row["status"],
                scenario=row["scenario"],
                protocol=row["protocol"],
                run=row["run"],
                run_seed=row["run_seed"],
                config_digest=row["config_digest"],
                sweep_id=row["sweep_id"],
                error=row["error"],
                capsule_path=row["capsule_path"],
                traceback=row["traceback"],
                updated_at=row["updated_at"],
                metrics_json=row["metrics_json"] if with_metrics else None,
            )
            for row in rows
        ]

    def summary(self) -> Dict[Tuple[str, str], Dict[str, int]]:
        """``{(scenario, protocol): {status: count}}`` across the store."""
        rows = self._conn.execute(
            "SELECT scenario, protocol, status, COUNT(*) AS n FROM cells "
            "GROUP BY scenario, protocol, status "
            "ORDER BY scenario, protocol, status"
        ).fetchall()
        out: Dict[Tuple[str, str], Dict[str, int]] = {}
        for row in rows:
            coords = (row["scenario"] or "?", row["protocol"] or "?")
            out.setdefault(coords, {})[row["status"]] = int(row["n"])
        return out
