"""The evaluation topologies: the paper's Figs. 2, 3 and 4 plus dense LANs.

Every scenario is a :class:`Scenario` -- stations, traffic pairs and
(optionally) a custom testbed and a suggested traffic model.  Factories
for the canonical topologies are registered in a name-to-factory registry
so experiments, the CLI and the sweep cache can refer to a topology by a
stable string::

    >>> from repro.sim.scenarios import scenario_factory, available_scenarios
    >>> available_scenarios()  # doctest: +ELLIPSIS
    ['dense-lan-20', ...]
    >>> scenario = scenario_factory("three-pair")()

The ``dense-lan-*`` family models the production-scale regime the
ROADMAP asks for: 20-500 node LANs with heterogeneous 1x1/2x2/3x3 antenna
mixes on a larger synthetic floor, in saturated and bursty variants.
The 100/200-station tier is the workload of the batched round pipeline
(``repro.sim.runner``, ``pipeline="batched"``); the 500-station tier
additionally declares the grouped (v3) channel-draw contract
(``channel_draws="grouped"``), whose scalars-first construction is what
makes a 124750-pair network draw affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.node import Station, TrafficPair

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.channel.testbed import Testbed

__all__ = [
    "Scenario",
    "two_pair_scenario",
    "three_pair_scenario",
    "heterogeneous_ap_scenario",
    "custom_pairs_scenario",
    "dense_lan_scenario",
    "register_scenario",
    "scenario_factory",
    "available_scenarios",
]


@dataclass
class Scenario:
    """A set of stations and traffic pairs.

    Attributes
    ----------
    name:
        Scenario label used in result tables and cache keys.
    stations:
        Every node (transmitters and receivers).
    pairs:
        The transmitter-receiver pairs with traffic.
    testbed_factory:
        Optional zero-argument callable building the
        :class:`~repro.channel.testbed.Testbed` this scenario should be
        placed on.  ``None`` means the default 20-location office floor;
        dense scenarios supply a larger floor so 20-50 nodes fit.
    packet_rate_pps:
        Optional suggested per-flow Poisson arrival rate.  ``None`` means
        saturated sources.  A :class:`~repro.sim.runner.SimulationConfig`
        with an explicit ``packet_rate_pps`` overrides this hint.
    channel_draws:
        Optional suggested channel-draw contract
        (:class:`repro.sim.network.Network`): ``"grouped"``, ``"batched"``
        or ``"per-pair"``.  ``None`` means the default (``"batched"``).
        The 500-station tier declares ``"grouped"`` -- at that density
        the v2 per-pair draw order is the dominant construction cost.  A
        config with an explicit
        :attr:`~repro.sim.runner.SimulationConfig.channel_draws`
        overrides this hint.  The hint is part of
        :func:`repro.sim.sweep.scenario_digest` because it changes every
        seeded channel.
    fault_profile:
        Optional suggested fault profile (:mod:`repro.sim.faults`): the
        name of a registered :class:`~repro.sim.faults.FaultProfile`
        whose episodes -- deep fades, loss bursts, station churn -- are
        injected into every run.  ``None`` means a static network.  A
        config with an explicit
        :attr:`~repro.sim.runner.SimulationConfig.fault_profile`
        overrides this hint (``"none"`` disables).  Part of
        :func:`repro.sim.sweep.scenario_digest` (resolved parameters,
        not just the name) because faults change seeded results.
    fidelity:
        Optional suggested PHY fidelity tier (:mod:`repro.sim.fidelity`):
        ``"abstraction"``, ``"auto"`` or ``"full"``.  ``None`` means the
        default (``"abstraction"``).  A config with an explicit
        :attr:`~repro.sim.runner.SimulationConfig.fidelity` overrides
        this hint.  Part of :func:`repro.sim.sweep.scenario_digest`
        because escalated verdicts change seeded results.
    fidelity_band_db:
        Optional suggested uncertainty-band half-width (dB) for the
        ``"auto"`` tier; ``None`` means
        :data:`repro.sim.fidelity.DEFAULT_BAND_DB`.  Config override
        wins.  Part of the scenario digest for the same reason.
    """

    name: str
    stations: List[Station]
    pairs: List[TrafficPair]
    testbed_factory: Optional[Callable[[], "Testbed"]] = None
    packet_rate_pps: Optional[float] = None
    channel_draws: Optional[str] = None
    fault_profile: Optional[str] = None
    fidelity: Optional[str] = None
    fidelity_band_db: Optional[float] = None

    def station_by_name(self, name: str) -> Station:
        """Look up a station by its label."""
        for station in self.stations:
            if station.name == name:
                return station
        raise KeyError(f"no station named {name!r}")

    @property
    def max_antennas(self) -> int:
        """Maximum antenna count among transmitters (= network DoF, §1)."""
        return max(pair.transmitter.n_antennas for pair in self.pairs)

    def make_testbed(self) -> Optional["Testbed"]:
        """Build this scenario's testbed, or ``None`` for the default floor."""
        if self.testbed_factory is None:
            return None
        return self.testbed_factory()


def two_pair_scenario() -> Scenario:
    """Fig. 2: a single-antenna pair plus a 2-antenna pair."""
    tx1 = Station(0, 1, "tx1")
    rx1 = Station(1, 1, "rx1")
    tx2 = Station(2, 2, "tx2")
    rx2 = Station(3, 2, "rx2")
    pairs = [
        TrafficPair(tx1, [rx1]),
        TrafficPair(tx2, [rx2]),
    ]
    return Scenario("two-pair", [tx1, rx1, tx2, rx2], pairs)


def three_pair_scenario() -> Scenario:
    """Fig. 3: 1-, 2- and 3-antenna pairs contending for the medium.

    This is the topology of the main throughput comparison (Fig. 12).
    """
    tx1 = Station(0, 1, "tx1")
    rx1 = Station(1, 1, "rx1")
    tx2 = Station(2, 2, "tx2")
    rx2 = Station(3, 2, "rx2")
    tx3 = Station(4, 3, "tx3")
    rx3 = Station(5, 3, "rx3")
    pairs = [
        TrafficPair(tx1, [rx1]),
        TrafficPair(tx2, [rx2]),
        TrafficPair(tx3, [rx3]),
    ]
    return Scenario("three-pair", [tx1, rx1, tx2, rx2, tx3, rx3], pairs)


def heterogeneous_ap_scenario() -> Scenario:
    """Fig. 4: transmitters and receivers with different antenna counts.

    A single-antenna client c1 transmits uplink to a 2-antenna AP1, while
    a 3-antenna AP2 has downlink traffic for two 2-antenna clients c2 and
    c3.  This is the topology of Fig. 13.
    """
    c1 = Station(0, 1, "c1")
    ap1 = Station(1, 2, "AP1")
    ap2 = Station(2, 3, "AP2")
    c2 = Station(3, 2, "c2")
    c3 = Station(4, 2, "c3")
    pairs = [
        TrafficPair(c1, [ap1]),
        TrafficPair(ap2, [c2, c3], streams_per_receiver=[1, 1]),
    ]
    return Scenario("heterogeneous-ap", [c1, ap1, ap2, c2, c3], pairs)


def custom_pairs_scenario(antenna_counts: List[int], name: str = "custom") -> Scenario:
    """Build a scenario of independent pairs with given antenna counts.

    ``antenna_counts=[1, 2, 3]`` reproduces :func:`three_pair_scenario`;
    other lists let the benchmarks sweep the network's heterogeneity.
    """
    stations: List[Station] = []
    pairs: List[TrafficPair] = []
    node_id = 0
    for index, antennas in enumerate(antenna_counts, start=1):
        tx = Station(node_id, antennas, f"tx{index}")
        rx = Station(node_id + 1, antennas, f"rx{index}")
        node_id += 2
        stations.extend([tx, rx])
        pairs.append(TrafficPair(tx, [rx]))
    return Scenario(name, stations, pairs)


def dense_lan_scenario(
    n_pairs: int = 10,
    antenna_mix: Sequence[int] = (1, 2, 3),
    seed: int = 0,
    packet_rate_pps: Optional[float] = None,
    name: Optional[str] = None,
    channel_draws: Optional[str] = None,
    fault_profile: Optional[str] = None,
) -> Scenario:
    """A dense LAN: many contending pairs with a heterogeneous antenna mix.

    This is the scaling workload beyond the paper's 2-3 pair topologies:
    ``n_pairs`` transmitter-receiver pairs (so ``2 * n_pairs`` stations)
    whose antenna counts are drawn from ``antenna_mix`` -- the default
    mixes 1x1, 2x2 and 3x3 links like a real office LAN.  The scenario
    carries a :func:`~repro.channel.testbed.dense_testbed` sized to hold
    every node, so placements still vary run by run while the topology
    (which pair has how many antennas) is frozen by ``seed``.

    Parameters
    ----------
    n_pairs:
        Number of traffic pairs.  10-25 pairs give the 20-50 node LANs of
        the registered ``dense-lan-20/30/50`` scenarios; 50 and 100 pairs
        give the ``dense-lan-100/200`` tier.
    antenna_mix:
        Antenna counts to draw from, one draw per pair.  At least one
        pair is forced to the largest count so the network always has
        multiple degrees of freedom.
    seed:
        Freezes the antenna assignment (not the placements, which are per
        run).  Factories with the same arguments build identical
        scenarios, which keeps sweep cache keys stable.
    packet_rate_pps:
        Suggested per-flow Poisson rate for the bursty variants; ``None``
        keeps the paper's saturated sources.
    name:
        Scenario label; defaults to ``dense-lan-<n_stations>``.
    channel_draws:
        Suggested draw contract for the network construction; the
        500-station tier passes ``"grouped"`` (the v3 scalars-first
        contract) because the v2 per-pair draw order dominates its
        124750-pair build.
    fault_profile:
        Suggested fault profile for the ``*-faulty`` variants: the name
        of a registered :class:`~repro.sim.faults.FaultProfile` injected
        into every run (config override wins; ``"none"`` disables).
    """
    if n_pairs < 1:
        raise ConfigurationError("a dense LAN needs at least one pair")
    if not antenna_mix:
        raise ConfigurationError("antenna_mix must not be empty")
    from repro.channel.testbed import dense_testbed

    rng = np.random.default_rng(seed)
    mix = [int(a) for a in antenna_mix]
    counts = [mix[int(i)] for i in rng.integers(0, len(mix), size=n_pairs)]
    if max(counts) == 1 and max(mix) > 1:
        # Guarantee the network has spare degrees of freedom to share.
        counts[0] = max(mix)

    stations: List[Station] = []
    pairs: List[TrafficPair] = []
    node_id = 0
    for index, antennas in enumerate(counts, start=1):
        tx = Station(node_id, antennas, f"tx{index}")
        rx = Station(node_id + 1, antennas, f"rx{index}")
        node_id += 2
        stations.extend([tx, rx])
        pairs.append(TrafficPair(tx, [rx]))

    n_locations = max(2 * n_pairs + 8, 24)
    label = name or f"dense-lan-{2 * n_pairs}"
    return Scenario(
        label,
        stations,
        pairs,
        testbed_factory=partial(dense_testbed, n_locations=n_locations, seed=seed),
        packet_rate_pps=packet_rate_pps,
        channel_draws=channel_draws,
        fault_profile=fault_profile,
    )


# -- registry -------------------------------------------------------------------

#: Name -> zero-argument factory.  Stable names double as sweep cache keys.
_SCENARIOS: Dict[str, Callable[[], Scenario]] = {}


def register_scenario(
    name: str, factory: Callable[[], Scenario], overwrite: bool = False
) -> None:
    """Register a zero-argument scenario factory under a stable name.

    Registered names are accepted everywhere a scenario is selected: the
    CLI's ``--scenario`` flag, the figure experiments and
    :func:`repro.sim.sweep.run_sweep` (where the name also keys the
    results cache).  Registering a parameterised family is a one-liner
    with :func:`functools.partial`, as the ``dense-lan-*`` entries below
    demonstrate.
    """
    if name in _SCENARIOS and not overwrite:
        raise ConfigurationError(f"scenario {name!r} is already registered")
    _SCENARIOS[name] = factory


def scenario_factory(name: str) -> Callable[[], Scenario]:
    """Look up a registered scenario factory by name.

    Raises :class:`~repro.exceptions.ConfigurationError` with the list of
    known names on a miss (``help(repro.sim.scenarios)`` and
    ``python -m repro.cli scenarios`` both show what is available).
    """
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {available_scenarios()}"
        ) from None


def available_scenarios() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_SCENARIOS)


register_scenario("two-pair", two_pair_scenario)
register_scenario("three-pair", three_pair_scenario)
register_scenario("heterogeneous-ap", heterogeneous_ap_scenario)
# The dense-LAN family: 20/30/50-station saturated LANs plus a bursty
# 20-station variant (Poisson arrivals instead of saturated sources).
register_scenario("dense-lan-20", partial(dense_lan_scenario, n_pairs=10, seed=20))
register_scenario("dense-lan-30", partial(dense_lan_scenario, n_pairs=15, seed=30))
register_scenario("dense-lan-50", partial(dense_lan_scenario, n_pairs=25, seed=50))
register_scenario(
    "dense-lan-20-bursty",
    partial(dense_lan_scenario, n_pairs=10, seed=20, packet_rate_pps=300.0,
            name="dense-lan-20-bursty"),
)
# The 100/200-station tier served by the batched round pipeline.  At this
# density a saturated LAN is contention-bound (the paper's DCF model
# collapses under 50+ simultaneous contenders, which is itself a result
# worth reproducing), so each size also ships a bursty variant where
# single-winner rounds, joins and idle gaps all occur -- the workload the
# per-round batching is measured on (benchmarks/bench_dense_rounds.py).
register_scenario("dense-lan-100", partial(dense_lan_scenario, n_pairs=50, seed=100))
register_scenario("dense-lan-200", partial(dense_lan_scenario, n_pairs=100, seed=200))
register_scenario(
    "dense-lan-100-bursty",
    partial(dense_lan_scenario, n_pairs=50, seed=100, packet_rate_pps=150.0,
            name="dense-lan-100-bursty"),
)
register_scenario(
    "dense-lan-200-bursty",
    partial(dense_lan_scenario, n_pairs=100, seed=200, packet_rate_pps=150.0,
            name="dense-lan-200-bursty"),
)
# The 500-station backbone tier: 124750 channel pairs per placement.
# In the spirit of LINC's argument that loss/scale pathologies only
# surface at backbone-scale workloads, this tier exists to exercise the
# grouped (v3) draw contract -- at this density the v2 per-pair rng
# calls dominate construction, so the scenario declares
# channel_draws="grouped" (scalars-first draws, ChannelBank views,
# batched estimation prefetch).  As with the 100/200 tier, the
# saturated variant is contention-collapsed by design; the bursty
# variant is the meaningful workload.
register_scenario(
    "dense-lan-500",
    partial(dense_lan_scenario, n_pairs=250, seed=500, channel_draws="grouped"),
)
register_scenario(
    "dense-lan-500-bursty",
    partial(dense_lan_scenario, n_pairs=250, seed=500, packet_rate_pps=150.0,
            name="dense-lan-500-bursty", channel_draws="grouped"),
)
# The faulty variants: the same topologies under the "mixed" fault
# profile (deep fades + bursty loss episodes + station churn, see
# repro.sim.faults).  These are the robustness workloads -- the paper's
# dense heterogeneous-LAN story only matters under disturbance, and
# LinkGuardian/LINC (PAPERS.md) make episodic loss the first-class
# object.  Bursty arrivals keep the runs out of the contention-collapse
# regime so fades, churn gaps and retransmissions all actually occur.
register_scenario(
    "dense-lan-20-faulty",
    partial(dense_lan_scenario, n_pairs=10, seed=20, packet_rate_pps=300.0,
            name="dense-lan-20-faulty", fault_profile="mixed"),
)
register_scenario(
    "dense-lan-50-faulty",
    partial(dense_lan_scenario, n_pairs=25, seed=50, packet_rate_pps=200.0,
            name="dense-lan-50-faulty", fault_profile="mixed"),
)
register_scenario(
    "dense-lan-100-faulty",
    partial(dense_lan_scenario, n_pairs=50, seed=100, packet_rate_pps=150.0,
            name="dense-lan-100-faulty", fault_profile="mixed"),
)
