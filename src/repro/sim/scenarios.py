"""The evaluation topologies of the paper (Figs. 2, 3 and 4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.node import Station, TrafficPair

__all__ = [
    "Scenario",
    "two_pair_scenario",
    "three_pair_scenario",
    "heterogeneous_ap_scenario",
    "custom_pairs_scenario",
]


@dataclass
class Scenario:
    """A set of stations and traffic pairs.

    Attributes
    ----------
    name:
        Scenario label used in result tables.
    stations:
        Every node (transmitters and receivers).
    pairs:
        The transmitter-receiver pairs with traffic.
    """

    name: str
    stations: List[Station]
    pairs: List[TrafficPair]

    def station_by_name(self, name: str) -> Station:
        """Look up a station by its label."""
        for station in self.stations:
            if station.name == name:
                return station
        raise KeyError(f"no station named {name!r}")

    @property
    def max_antennas(self) -> int:
        """Maximum antenna count among transmitters (= network DoF, §1)."""
        return max(pair.transmitter.n_antennas for pair in self.pairs)


def two_pair_scenario() -> Scenario:
    """Fig. 2: a single-antenna pair plus a 2-antenna pair."""
    tx1 = Station(0, 1, "tx1")
    rx1 = Station(1, 1, "rx1")
    tx2 = Station(2, 2, "tx2")
    rx2 = Station(3, 2, "rx2")
    pairs = [
        TrafficPair(tx1, [rx1]),
        TrafficPair(tx2, [rx2]),
    ]
    return Scenario("two-pair", [tx1, rx1, tx2, rx2], pairs)


def three_pair_scenario() -> Scenario:
    """Fig. 3: 1-, 2- and 3-antenna pairs contending for the medium.

    This is the topology of the main throughput comparison (Fig. 12).
    """
    tx1 = Station(0, 1, "tx1")
    rx1 = Station(1, 1, "rx1")
    tx2 = Station(2, 2, "tx2")
    rx2 = Station(3, 2, "rx2")
    tx3 = Station(4, 3, "tx3")
    rx3 = Station(5, 3, "rx3")
    pairs = [
        TrafficPair(tx1, [rx1]),
        TrafficPair(tx2, [rx2]),
        TrafficPair(tx3, [rx3]),
    ]
    return Scenario("three-pair", [tx1, rx1, tx2, rx2, tx3, rx3], pairs)


def heterogeneous_ap_scenario() -> Scenario:
    """Fig. 4: transmitters and receivers with different antenna counts.

    A single-antenna client c1 transmits uplink to a 2-antenna AP1, while
    a 3-antenna AP2 has downlink traffic for two 2-antenna clients c2 and
    c3.  This is the topology of Fig. 13.
    """
    c1 = Station(0, 1, "c1")
    ap1 = Station(1, 2, "AP1")
    ap2 = Station(2, 3, "AP2")
    c2 = Station(3, 2, "c2")
    c3 = Station(4, 2, "c3")
    pairs = [
        TrafficPair(c1, [ap1]),
        TrafficPair(ap2, [c2, c3], streams_per_receiver=[1, 1]),
    ]
    return Scenario("heterogeneous-ap", [c1, ap1, ap2, c2, c3], pairs)


def custom_pairs_scenario(antenna_counts: List[int], name: str = "custom") -> Scenario:
    """Build a scenario of independent pairs with given antenna counts.

    ``antenna_counts=[1, 2, 3]`` reproduces :func:`three_pair_scenario`;
    other lists let the benchmarks sweep the network's heterogeneity.
    """
    stations: List[Station] = []
    pairs: List[TrafficPair] = []
    node_id = 0
    for index, antennas in enumerate(antenna_counts, start=1):
        tx = Station(node_id, antennas, f"tx{index}")
        rx = Station(node_id + 1, antennas, f"rx{index}")
        node_id += 2
        stations.extend([tx, rx])
        pairs.append(TrafficPair(tx, [rx]))
    return Scenario(name, stations, pairs)
