"""Network simulation tying the PHY, channel, MIMO and MAC layers together.

The simulator operates at transmission granularity: contention rounds are
resolved with the condensed DCF model (:mod:`repro.mac.csma`), concurrent
transmissions are tracked on a shared :class:`~repro.sim.medium.Medium`,
and packet reception is decided by a link abstraction that computes
per-subcarrier post-projection SNRs from the true channels, the
pre-coders actually used, and the residual interference left by imperfect
nulling/alignment.

* :mod:`repro.sim.engine` -- a minimal discrete-event scheduler.
* :mod:`repro.sim.node` -- stations (nodes with antennas and a location).
* :mod:`repro.sim.medium` -- the shared medium and the streams on the air.
* :mod:`repro.sim.traffic` -- saturated and Poisson traffic sources.
* :mod:`repro.sim.metrics` -- throughput and fairness accounting.
* :mod:`repro.sim.link_abstraction` -- post-projection SNR evaluation.
* :mod:`repro.sim.network` -- nodes + channels + hardware for one run.
* :mod:`repro.sim.scenarios` -- the registered topologies: the paper's
  Figs. 2, 3 and 4 plus the dense-LAN family.
* :mod:`repro.sim.runner` -- the event-driven contention/transmission loop.
* :mod:`repro.sim.sweep` -- parallel, cached placement x protocol sweeps.
"""

from repro.sim.engine import EventScheduler
from repro.sim.node import Station, TrafficPair
from repro.sim.medium import Medium, ScheduledStream
from repro.sim.traffic import SaturatedSource, PoissonSource
from repro.sim.metrics import LinkMetrics, NetworkMetrics
from repro.sim.network import Network
from repro.sim.scenarios import (
    Scenario,
    available_scenarios,
    dense_lan_scenario,
    heterogeneous_ap_scenario,
    register_scenario,
    scenario_factory,
    three_pair_scenario,
    two_pair_scenario,
)
from repro.sim.runner import (
    SimulationConfig,
    run_simulation,
    run_many,
    simulate_placement,
)
from repro.sim.sweep import SweepCache, SweepResult, run_sweep

__all__ = [
    "EventScheduler",
    "Station",
    "TrafficPair",
    "Medium",
    "ScheduledStream",
    "SaturatedSource",
    "PoissonSource",
    "LinkMetrics",
    "NetworkMetrics",
    "Network",
    "Scenario",
    "available_scenarios",
    "dense_lan_scenario",
    "register_scenario",
    "scenario_factory",
    "three_pair_scenario",
    "two_pair_scenario",
    "heterogeneous_ap_scenario",
    "SimulationConfig",
    "run_simulation",
    "run_many",
    "simulate_placement",
    "SweepCache",
    "SweepResult",
    "run_sweep",
]
