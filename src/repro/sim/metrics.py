"""Throughput and fairness accounting.

Metrics round-trip losslessly through plain dicts
(:meth:`NetworkMetrics.to_dict` / :meth:`NetworkMetrics.from_dict`),
which is what the sweep results cache serialises to JSON and what worker
processes ship back to the orchestrator.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["LinkMetrics", "NetworkMetrics", "empirical_cdf", "jain_fairness_index"]


@dataclass
class LinkMetrics:
    """Counters for one transmitter-receiver pair.

    Attributes
    ----------
    pair_name:
        Human-readable label of the pair.
    delivered_bits:
        Payload bits acknowledged.
    attempted_bits:
        Payload bits put on the air.
    packets_delivered, packets_failed:
        Transmission outcomes at packet granularity.
    airtime_us:
        Time this pair spent transmitting data bodies.
    transmissions, joins, collisions:
        Protocol-level event counts.
    packets_dropped:
        Packets abandoned at the retry cap (see
        :meth:`repro.mac.retransmission.RetransmissionQueue.fail`).  The
        default of 0 keeps :meth:`from_dict` compatible with cache
        entries written before the counter existed.
    recovered_bits:
        Payload bits that would have been lost to a fault episode but
        were reconstructed receiver-side by the ``erasure`` recovery
        policy (fragments erased, yet at least ``erasure_k`` of
        ``erasure_n`` survived).  Recovered bits are always a subset of
        the attempt's delivered bits -- a frame is either decoded (its
        erased fragments counted here) or lost (nothing recovered), so no
        bit is both recovered and dropped.  Same default-0 back-compat
        pattern as ``packets_dropped``.
    quarantined_rounds:
        Planning calls in which this pair's transmitter declined (or
        trimmed) a transmission because the link was quarantined by the
        numerical guards (:mod:`repro.utils.guarded`): a degenerate
        decomposition fell back deterministically instead of raising, and
        the link sits out until its channel epoch changes.  Same
        default-0 back-compat pattern as ``packets_dropped``.
    """

    pair_name: str
    delivered_bits: int = 0
    attempted_bits: int = 0
    packets_delivered: int = 0
    packets_failed: int = 0
    airtime_us: float = 0.0
    transmissions: int = 0
    joins: int = 0
    collisions: int = 0
    packets_dropped: int = 0
    recovered_bits: int = 0
    quarantined_rounds: int = 0

    def throughput_mbps(self, elapsed_us: float) -> float:
        """Delivered throughput over an observation window."""
        if elapsed_us <= 0:
            return 0.0
        return self.delivered_bits / elapsed_us

    @property
    def delivery_ratio(self) -> float:
        """Fraction of attempted bits that were delivered."""
        if self.attempted_bits == 0:
            return 0.0
        return self.delivered_bits / self.attempted_bits

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe), inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LinkMetrics":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class NetworkMetrics:
    """Aggregated counters for one simulation run.

    Attributes
    ----------
    elapsed_us:
        Length of the observation window.
    links:
        Per-pair metrics keyed by pair name.
    """

    elapsed_us: float = 0.0
    links: Dict[str, LinkMetrics] = field(default_factory=dict)

    def link(self, pair_name: str) -> LinkMetrics:
        """Get (or create) the metrics of a pair.

        This is the *recording* accessor used by the simulation loops;
        looking up a pair that has no entry yet creates one.  Read paths
        (:meth:`throughput_mbps`, :meth:`fairness_index`, ...) must never
        use it: creating a zero-valued ``LinkMetrics`` as a side effect of
        a query would silently change aggregates such as the Jain-index
        denominator.
        """
        if pair_name not in self.links:
            self.links[pair_name] = LinkMetrics(pair_name=pair_name)
        return self.links[pair_name]

    # -- aggregates -------------------------------------------------------------

    def total_throughput_mbps(self) -> float:
        """Sum of per-link throughputs, Mb/s."""
        return sum(m.throughput_mbps(self.elapsed_us) for m in self.links.values())

    def throughput_mbps(self, pair_name: str) -> float:
        """Throughput of one pair, Mb/s.

        A pure query: asking about a pair that never transmitted returns
        0.0 without creating a metrics entry for it (so repeated queries
        cannot shift :meth:`fairness_index` or the serialised form).
        """
        metrics = self.links.get(pair_name)
        if metrics is None:
            return 0.0
        return metrics.throughput_mbps(self.elapsed_us)

    def per_link_throughputs(self) -> Dict[str, float]:
        """Throughput of every pair, Mb/s."""
        return {
            name: metrics.throughput_mbps(self.elapsed_us)
            for name, metrics in self.links.items()
        }

    def fairness_index(self) -> float:
        """Jain fairness index of the per-link throughputs."""
        return jain_fairness_index(self.per_link_throughputs().values())

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe), inverse of :meth:`from_dict`.

        All counters are ints/floats, so the round trip is lossless --
        the sweep cache relies on ``from_dict(to_dict(m))`` being equal to
        ``m`` field for field.
        """
        return {
            "elapsed_us": self.elapsed_us,
            "links": {name: link.to_dict() for name, link in self.links.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkMetrics":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            elapsed_us=data["elapsed_us"],
            links={
                name: LinkMetrics.from_dict(link)
                for name, link in data.get("links", {}).items()
            },
        )


def empirical_cdf(values: Sequence[float]) -> tuple:
    """Return ``(sorted_values, cumulative_probabilities)`` for CDF plots.

    This is the form used by every CDF figure in the paper's evaluation.
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        return np.array([]), np.array([])
    probabilities = np.arange(1, data.size + 1) / data.size
    return data, probabilities


def jain_fairness_index(values: Iterable[float]) -> float:
    """Jain's fairness index: 1.0 means perfectly equal shares."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0 or np.all(data == 0):
        return 1.0
    return float(np.sum(data) ** 2 / (data.size * np.sum(data**2)))
