"""Stations and traffic pairs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import ConfigurationError

__all__ = ["Station", "TrafficPair"]


@dataclass
class Station:
    """A wireless node.

    Attributes
    ----------
    node_id:
        Unique identifier.
    n_antennas:
        Number of antennas (1-4 in the paper's scenarios).
    name:
        Optional human-readable label ("tx1", "AP2", ...).
    location:
        Index into the testbed's location list, assigned per run.
    """

    node_id: int
    n_antennas: int
    name: str = ""
    location: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_antennas < 1:
            raise ConfigurationError(
                f"station {self.node_id} must have at least one antenna"
            )
        if not self.name:
            self.name = f"node{self.node_id}"


@dataclass
class TrafficPair:
    """A transmitter-receiver pair with traffic demand.

    Attributes
    ----------
    transmitter:
        The sending station.
    receivers:
        Destination stations.  Usually one; an access point transmitting
        to several clients at once (Fig. 4) lists them all.
    streams_per_receiver:
        Spatial streams destined to each receiver when this pair wins an
        uncontended medium; the MAC may use fewer when joining.
    """

    transmitter: Station
    receivers: List[Station]
    streams_per_receiver: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.receivers:
            raise ConfigurationError("a traffic pair needs at least one receiver")
        if not self.streams_per_receiver:
            # Default: use as many streams as both ends can support, split
            # evenly across receivers.
            per_receiver = max(1, self.transmitter.n_antennas // len(self.receivers))
            self.streams_per_receiver = [
                min(per_receiver, receiver.n_antennas) for receiver in self.receivers
            ]
        if len(self.streams_per_receiver) != len(self.receivers):
            raise ConfigurationError(
                "streams_per_receiver must align with receivers "
                f"({len(self.streams_per_receiver)} vs {len(self.receivers)})"
            )
        total = sum(self.streams_per_receiver)
        if total > self.transmitter.n_antennas:
            raise ConfigurationError(
                f"pair {self.transmitter.name}: {total} streams exceed "
                f"{self.transmitter.n_antennas} antennas"
            )

    @property
    def name(self) -> str:
        """Readable pair label, e.g. ``"tx1->rx1"``."""
        receivers = "+".join(r.name for r in self.receivers)
        return f"{self.transmitter.name}->{receivers}"

    @property
    def n_streams(self) -> int:
        """Total streams of an uncontended transmission."""
        return int(sum(self.streams_per_receiver))
