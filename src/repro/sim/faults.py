"""Fault injection: deep fades, bursty loss episodes and station churn.

Everything the simulator builds is frozen at construction time --
channels are static, stations never leave -- which is exactly the
assumption this module breaks.  A :class:`FaultSchedule` is a list of
timed episodes:

* :class:`FadeEpisode` -- a per-link deep fade: the link's channel
  tensor is scaled down by a drawn fade depth for a drawn duration and
  restored bit-exactly afterwards (the pre-fade tensor is snapshotted,
  not re-derived, so an ended fade leaves the channel identical to one
  that never faded);
* :class:`LossEpisode` -- a trace-driven loss episode in the
  LinkGuardian style: during ``(start_us, start_us + duration_us)``
  deliveries overlapping the episode are additionally lost with
  ``loss_rate`` (network-wide, or scoped to one link).  Episodes come
  from a seeded generator (:func:`loss_episode_generator`) or from a
  JSON/CSV trace file (:meth:`FaultSchedule.from_trace`);
* :class:`ChurnEpisode` -- station churn: the node departs at
  ``start_us`` and returns ``duration_us`` later; while away, agents
  transmitting to or from it neither contend nor join.

Schedules are either materialised from a declarative
:class:`FaultProfile` (registered by name, see :data:`FAULT_PROFILES`)
or built directly by tests.  **Determinism**: every episode draw comes
from a dedicated stream seeded ``(seed, FAULT_STREAM_TAG, substream,
ids...)`` -- one stream per faded link, per churned node, one for the
loss process and one for the delivery coin flips -- so faulted runs are
bit-reproducible and independent of iteration order, and an empty
schedule consumes no randomness at all (the strict no-op contract the
test suite asserts).

At run time the :class:`FaultInjector` applies episodes at event
boundaries (the runner calls :meth:`FaultInjector.advance` at the top
of every round) and bumps the per-link **channel epoch** of every faded
link (:meth:`repro.sim.network.Network.bump_link_epoch`), which is what
invalidates exactly that link's estimate memos and plan-cache entries.
"""

from __future__ import annotations

import csv
import heapq
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "FAULT_STREAM_TAG",
    "FadeEpisode",
    "LossEpisode",
    "ChurnEpisode",
    "FaultProfile",
    "FaultSchedule",
    "FaultInjector",
    "loss_episode_generator",
    "register_fault_profile",
    "fault_profile",
    "available_fault_profiles",
]

#: Stream tag mixed into the simulation seed for every fault draw, so
#: fault randomness is decorrelated from the backoff/delivery/estimation
#: streams (the same convention as ``_ESTIMATION_STREAM_TAG`` /
#: ``_ARRIVAL_STREAM_TAG`` in :mod:`repro.sim.runner`).
FAULT_STREAM_TAG = 0x666C74  # "flt"

#: Substream selectors under :data:`FAULT_STREAM_TAG`.  Fades draw from
#: ``(seed, tag, _FADE, tx, rx)`` -- one stream per link -- churn from
#: ``(seed, tag, _CHURN, node)``, the loss process from ``(seed, tag,
#: _LOSS)`` and the per-delivery loss coin flips from ``(seed, tag,
#: _DELIVERY)``.  Per-entity streams make the generated schedule
#: independent of the order links/nodes are iterated in.
_FADE_SUBSTREAM = 1
_LOSS_SUBSTREAM = 2
_CHURN_SUBSTREAM = 3
_DELIVERY_SUBSTREAM = 4


@dataclass(frozen=True)
class FadeEpisode:
    """A deep fade on one link: scale the channel down, then restore."""

    start_us: float
    duration_us: float
    tx_id: int
    rx_id: int
    depth_db: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass(frozen=True)
class LossEpisode:
    """A loss episode: deliveries overlapping it are lost with ``loss_rate``.

    ``tx_id``/``rx_id`` of ``None`` mean the episode is network-wide
    (every link); otherwise it is scoped to one directed link.
    """

    start_us: float
    duration_us: float
    loss_rate: float
    tx_id: Optional[int] = None
    rx_id: Optional[int] = None

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass(frozen=True)
class ChurnEpisode:
    """A station departure: ``node_id`` is away for ``duration_us``."""

    start_us: float
    duration_us: float
    node_id: int

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass(frozen=True)
class FaultProfile:
    """Declarative fault intensities, materialised per run into episodes.

    All rates are episode arrival rates (per second of simulated time,
    exponential gaps between episodes of the same entity); ranges are
    uniform draw bounds.  A rate of ``0`` disables that fault class --
    the all-zero default profile generates an empty schedule, which is a
    strict no-op.  Profiles are JSON-able (``dataclasses.asdict``) so
    the sweep cache can digest the resolved parameters, not just the
    registry name.

    Attributes
    ----------
    fade_rate_per_s, fade_depth_db, fade_duration_us:
        Deep-fade episodes per second *per traffic link*, and the
        uniform ranges their depth (dB) and duration are drawn from.
        Fades target the traffic links (where they change outcomes);
        interference-only links keep their drawn channels.
    loss_rate_per_s, loss_duration_us, loss_rate_range:
        Network-wide loss episodes per second and the uniform ranges of
        their duration and loss probability (LinkGuardian-style).
    churn_rate_per_s, churn_downtime_us:
        Departures per second *per station* and the uniform range of
        the downtime before the station returns.
    """

    fade_rate_per_s: float = 0.0
    fade_depth_db: Tuple[float, float] = (10.0, 30.0)
    fade_duration_us: Tuple[float, float] = (2_000.0, 10_000.0)
    loss_rate_per_s: float = 0.0
    loss_duration_us: Tuple[float, float] = (1_000.0, 8_000.0)
    loss_rate_range: Tuple[float, float] = (0.1, 0.9)
    churn_rate_per_s: float = 0.0
    churn_downtime_us: Tuple[float, float] = (4_000.0, 15_000.0)

    @property
    def is_empty(self) -> bool:
        """Whether this profile can never generate an episode."""
        return (
            self.fade_rate_per_s <= 0
            and self.loss_rate_per_s <= 0
            and self.churn_rate_per_s <= 0
        )


def _renewal_process(
    rng: np.random.Generator,
    rate_per_s: float,
    duration_us: float,
    draw_episode,
) -> Iterator[tuple]:
    """Episodes of one entity: exponential gaps, non-overlapping.

    The next episode's gap is drawn from the *end* of the previous one,
    so episodes of the same entity never overlap -- which is what lets a
    fade restore its snapshot without worrying about nesting.
    ``draw_episode(rng)`` returns ``(duration, *extras)`` and defines
    the per-episode draw order.
    """
    if rate_per_s <= 0:
        return
    mean_gap_us = 1e6 / rate_per_s
    time = float(rng.exponential(mean_gap_us))
    while time < duration_us:
        drawn = draw_episode(rng)
        yield (time, *drawn)
        time += drawn[0] + float(rng.exponential(mean_gap_us))


def loss_episode_generator(
    seed,
    duration_us: float,
    episode_rate_per_s: float,
    duration_range_us: Tuple[float, float] = (1_000.0, 8_000.0),
    loss_rate_range: Tuple[float, float] = (0.1, 0.9),
) -> Iterator[Tuple[float, float, float]]:
    """Generate ``(start_us, duration_us, loss_rate)`` tuples, seeded.

    The LinkGuardian-style loss-trace generator: episode starts follow a
    renewal process with exponential gaps (``episode_rate_per_s`` per
    second), durations and loss rates are uniform in their ranges.  All
    randomness comes from the dedicated ``(seed, FAULT_STREAM_TAG,
    loss)`` stream, so the trace is a pure function of the seed.
    """
    rng = np.random.default_rng((seed, FAULT_STREAM_TAG, _LOSS_SUBSTREAM))

    def draw(generator: np.random.Generator) -> tuple:
        episode_duration = float(generator.uniform(*duration_range_us))
        loss = float(generator.uniform(*loss_rate_range))
        return episode_duration, loss

    yield from _renewal_process(rng, episode_rate_per_s, duration_us, draw)


Episode = Union[FadeEpisode, LossEpisode, ChurnEpisode]

#: Type tag <-> episode class, for the JSON round trip of a schedule
#: (crash capsules serialize the exact episodes a failed run injected).
_EPISODE_TYPES: Dict[str, type] = {
    "fade": FadeEpisode,
    "loss": LossEpisode,
    "churn": ChurnEpisode,
}


@dataclass
class FaultSchedule:
    """The materialised episodes of one run, in no particular order."""

    episodes: List[Episode] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """An empty schedule is a strict no-op (asserted by the tests)."""
        return not self.episodes

    @property
    def fades(self) -> List[FadeEpisode]:
        return [e for e in self.episodes if isinstance(e, FadeEpisode)]

    @property
    def losses(self) -> List[LossEpisode]:
        return [e for e in self.episodes if isinstance(e, LossEpisode)]

    @property
    def churn(self) -> List[ChurnEpisode]:
        return [e for e in self.episodes if isinstance(e, ChurnEpisode)]

    @classmethod
    def from_profile(
        cls, profile: FaultProfile, scenario, seed, duration_us: float
    ) -> "FaultSchedule":
        """Materialise a profile into episodes for one simulation.

        Fades are generated per *traffic link* (transmitter to each of
        its receivers), churn per station; each entity draws from its
        own ``(seed, tag, substream, ids...)`` stream so the schedule
        is independent of iteration order.  Loss episodes come from
        :func:`loss_episode_generator` with the same ``seed``.
        """
        episodes: List[Episode] = []

        def fade_draw(rng: np.random.Generator) -> tuple:
            episode_duration = float(rng.uniform(*profile.fade_duration_us))
            depth = float(rng.uniform(*profile.fade_depth_db))
            return episode_duration, depth

        if profile.fade_rate_per_s > 0:
            for pair in scenario.pairs:
                tx_id = pair.transmitter.node_id
                for receiver in pair.receivers:
                    rx_id = receiver.node_id
                    rng = np.random.default_rng(
                        (seed, FAULT_STREAM_TAG, _FADE_SUBSTREAM, tx_id, rx_id)
                    )
                    for start, dur, depth in _renewal_process(
                        rng, profile.fade_rate_per_s, duration_us, fade_draw
                    ):
                        episodes.append(
                            FadeEpisode(start, dur, tx_id, rx_id, depth)
                        )

        if profile.loss_rate_per_s > 0:
            for start, dur, rate in loss_episode_generator(
                seed,
                duration_us,
                profile.loss_rate_per_s,
                profile.loss_duration_us,
                profile.loss_rate_range,
            ):
                episodes.append(LossEpisode(start, dur, rate))

        def churn_draw(rng: np.random.Generator) -> tuple:
            return (float(rng.uniform(*profile.churn_downtime_us)),)

        if profile.churn_rate_per_s > 0:
            for station in scenario.stations:
                rng = np.random.default_rng(
                    (seed, FAULT_STREAM_TAG, _CHURN_SUBSTREAM, station.node_id)
                )
                for start, dur in _renewal_process(
                    rng, profile.churn_rate_per_s, duration_us, churn_draw
                ):
                    episodes.append(ChurnEpisode(start, dur, station.node_id))

        return cls(episodes)

    def to_jsonable(self) -> List[dict]:
        """Type-tagged plain-dict episodes, inverse of :meth:`from_jsonable`.

        Crash capsules store this form so a failed run replays against
        the *exact* episodes it injected, independent of how the original
        schedule was resolved (profile, trace or explicit).
        """
        out: List[dict] = []
        for episode in self.episodes:
            for tag, klass in _EPISODE_TYPES.items():
                if isinstance(episode, klass):
                    out.append({"type": tag, **asdict(episode)})
                    break
            else:  # pragma: no cover - schedules only hold known episode types
                raise ConfigurationError(
                    f"cannot serialize episode of type {type(episode).__name__}"
                )
        return out

    @classmethod
    def from_jsonable(cls, data: Sequence[dict]) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_jsonable` output."""
        episodes: List[Episode] = []
        for index, entry in enumerate(data):
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"episode {index}: expected an object, got {type(entry).__name__}"
                )
            fields = dict(entry)
            tag = fields.pop("type", None)
            klass = _EPISODE_TYPES.get(tag)
            if klass is None:
                raise ConfigurationError(
                    f"episode {index}: unknown episode type {tag!r} "
                    f"(expected one of {sorted(_EPISODE_TYPES)})"
                )
            try:
                episodes.append(klass(**fields))
            except TypeError as exc:
                raise ConfigurationError(f"episode {index}: {exc}") from None
        return cls(episodes)

    @classmethod
    def from_trace(cls, path: Union[str, Path]) -> "FaultSchedule":
        """Load loss episodes from a JSON or CSV trace file.

        JSON: a list of objects (or ``{"episodes": [...]}``) with keys
        ``start_us``, ``duration_us``, ``loss_rate`` and optional
        ``tx_id``/``rx_id``.  CSV: rows of ``start_us, duration_us,
        loss_rate[, tx_id, rx_id]``; a header row and ``#`` comment
        lines are skipped.  This is the LinkGuardian-style trace-driven
        path: measured (or generated) loss traces replay identically
        across runs and protocols.

        Every row is validated as it is read; a malformed trace raises
        :class:`~repro.exceptions.ConfigurationError` (a ``ValueError``)
        naming the offending row and field -- never a raw
        ``KeyError``/``TypeError``/``IndexError`` from the middle of the
        parse.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault trace {path}: {exc}") from exc
        rows: List[Tuple[str, dict]] = []  # (human row label, fields)
        if path.suffix.lower() == ".json":
            try:
                data = json.loads(text)
            except ValueError as exc:
                raise ConfigurationError(
                    f"fault trace {path} is not valid JSON: {exc}"
                ) from None
            if isinstance(data, dict):
                data = data.get("episodes", [])
            if not isinstance(data, list):
                raise ConfigurationError(
                    f"fault trace {path} must be a JSON list of episode objects "
                    f"(or {{'episodes': [...]}}), got {type(data).__name__}"
                )
            for index, entry in enumerate(data):
                if not isinstance(entry, dict):
                    raise ConfigurationError(
                        f"fault trace {path}, episode {index}: expected an "
                        f"object, got {type(entry).__name__}"
                    )
                rows.append((f"episode {index}", dict(entry)))
        else:
            for lineno, record in enumerate(csv.reader(text.splitlines()), start=1):
                if not record or record[0].lstrip().startswith("#"):
                    continue
                try:
                    float(record[0])
                except ValueError:
                    continue  # header row
                if len(record) < 3:
                    raise ConfigurationError(
                        f"fault trace {path}, line {lineno}: expected at least "
                        f"3 fields (start_us, duration_us, loss_rate), got "
                        f"{len(record)}"
                    )
                row = {
                    "start_us": record[0],
                    "duration_us": record[1],
                    "loss_rate": record[2],
                }
                if len(record) >= 5 and record[3].strip() and record[4].strip():
                    row["tx_id"] = record[3]
                    row["rx_id"] = record[4]
                rows.append((f"line {lineno}", row))

        def _field(label: str, row: dict, name: str, convert, required=True):
            if name not in row or row[name] is None:
                if not required:
                    return None
                raise ConfigurationError(
                    f"fault trace {path}, {label}: missing required field "
                    f"{name!r} (have {sorted(row)})"
                )
            value = row[name]
            try:
                return convert(value)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"fault trace {path}, {label}: field {name!r} must be "
                    f"{'an integer' if convert is int else 'a number'}, "
                    f"got {value!r}"
                ) from None

        episodes: List[Episode] = []
        for label, row in rows:
            episode = LossEpisode(
                start_us=_field(label, row, "start_us", float),
                duration_us=_field(label, row, "duration_us", float),
                loss_rate=_field(label, row, "loss_rate", float),
                tx_id=_field(label, row, "tx_id", int, required=False),
                rx_id=_field(label, row, "rx_id", int, required=False),
            )
            if episode.duration_us <= 0:
                raise ConfigurationError(
                    f"fault trace {path}, {label}: non-positive duration "
                    f"{episode.duration_us}"
                )
            if not 0.0 <= episode.loss_rate <= 1.0:
                raise ConfigurationError(
                    f"fault trace {path}, {label}: loss rate "
                    f"{episode.loss_rate} outside [0, 1]"
                )
            episodes.append(episode)
        return cls(episodes)


def _stateful_sort_key(episode: Episode) -> tuple:
    """Deterministic application order for episodes starting together."""
    if isinstance(episode, FadeEpisode):
        return (episode.start_us, 0, episode.tx_id, episode.rx_id)
    return (episode.start_us, 1, episode.node_id, 0)  # type: ignore[union-attr]


class FaultInjector:
    """Applies a schedule's episodes to a live simulation.

    The runner calls :meth:`advance` at the top of every round; starts
    and ends that have come due are applied in time order (ends before
    starts at the same instant), so channel state and the away-set are
    always consistent with the current clock.  Fades snapshot the
    pre-fade tensor and restore it verbatim -- an ended fade leaves the
    channel bit-identical to never having faded -- and bump the link's
    channel epoch on both edges, which is what invalidates the link's
    estimate memos and plan-cache entries (and only those).

    Loss episodes are stateless: :meth:`loss_rate` combines the
    episodes overlapping a delivery interval as ``1 - prod(1 - r)`` and
    :meth:`draw_loss` flips the coin from the dedicated delivery
    stream.  The stream is only consumed when an episode actually
    overlaps, preserving the strict no-op contract.
    """

    def __init__(self, schedule: FaultSchedule, network, seed) -> None:
        self.network = network
        self._pending = sorted(
            (e for e in schedule.episodes if not isinstance(e, LossEpisode)),
            key=_stateful_sort_key,
        )
        self._next = 0
        # Active fades/departures as a heap of (end_us, seq, payload);
        # seq breaks ties so payloads are never compared.
        self._active: List[tuple] = []
        self._seq = 0
        self._away: Dict[int, int] = {}
        self._losses = sorted(
            (e for e in schedule.episodes if isinstance(e, LossEpisode)),
            key=lambda e: (e.start_us, e.duration_us, e.loss_rate),
        )
        self._delivery_rng = np.random.default_rng(
            (seed, FAULT_STREAM_TAG, _DELIVERY_SUBSTREAM)
        )
        #: Counters exposed for tests and benchmarks.
        self.fades_applied = 0
        self.departures_applied = 0
        self.losses_drawn = 0

    # -- state transitions -------------------------------------------------------

    def advance(self, now_us: float) -> None:
        """Apply every start/end boundary at or before ``now_us``."""
        while True:
            next_end = self._active[0][0] if self._active else float("inf")
            next_start = (
                self._pending[self._next].start_us
                if self._next < len(self._pending)
                else float("inf")
            )
            boundary = min(next_end, next_start)
            if boundary > now_us:
                return
            if next_end <= next_start:
                _, _, payload = heapq.heappop(self._active)
                self._expire(payload)
            else:
                episode = self._pending[self._next]
                self._next += 1
                self._apply(episode)

    def _push_active(self, end_us: float, payload: tuple) -> None:
        heapq.heappush(self._active, (end_us, self._seq, payload))
        self._seq += 1

    def _apply(self, episode: Episode) -> None:
        if isinstance(episode, FadeEpisode):
            snapshot = self.network.snapshot_link(episode.tx_id, episode.rx_id)
            self.network.fade_link(episode.tx_id, episode.rx_id, episode.depth_db)
            self.fades_applied += 1
            self._push_active(
                episode.end_us, ("fade", episode.tx_id, episode.rx_id, snapshot)
            )
        else:
            assert isinstance(episode, ChurnEpisode)
            self._away[episode.node_id] = self._away.get(episode.node_id, 0) + 1
            self.departures_applied += 1
            self._push_active(episode.end_us, ("churn", episode.node_id))

    def _expire(self, payload: tuple) -> None:
        if payload[0] == "fade":
            _, tx_id, rx_id, (response, snr_db) = payload
            self.network.restore_link(tx_id, rx_id, response, snr_db)
        else:
            node_id = payload[1]
            count = self._away.get(node_id, 0) - 1
            if count <= 0:
                self._away.pop(node_id, None)
            else:
                self._away[node_id] = count

    def finalize(self) -> None:
        """Restore every still-active fade and clear the away-set.

        Called at the end of a run so a fade that outlives the
        observation window cannot leak scaled channels into the next
        simulation on the same (shared) network -- protocols compared on
        one channel realisation must all start from the pristine draw.
        """
        while self._active:
            _, _, payload = heapq.heappop(self._active)
            self._expire(payload)
        self._away.clear()

    def next_boundary_us(self, now_us: float) -> float:
        """The next start/end instant after ``now_us`` (``inf`` when done).

        The runner clamps its idle wake-ups to this so a single
        scheduler event can never jump over a fade edge or a returning
        station.  After :meth:`advance(now_us) <advance>` the boundary
        is strictly in the future.
        """
        boundary = float("inf")
        if self._active:
            boundary = self._active[0][0]
        if self._next < len(self._pending):
            boundary = min(boundary, self._pending[self._next].start_us)
        return boundary

    # -- churn queries ----------------------------------------------------------

    def node_active(self, node_id: int) -> bool:
        """Whether a station is currently present."""
        return node_id not in self._away

    def agent_active(self, agent) -> bool:
        """Whether an agent may contend/join: its transmitter and every
        receiver of its pair must be present."""
        if agent.node_id in self._away:
            return False
        return all(r.node_id not in self._away for r in agent.pair.receivers)

    # -- loss queries ------------------------------------------------------------

    def loss_rate(
        self, tx_id: int, rx_id: int, start_us: float, end_us: float
    ) -> float:
        """Combined loss probability over a delivery interval.

        Every episode overlapping ``[start_us, end_us)`` and matching
        the link (or network-wide) contributes independently:
        ``1 - prod(1 - rate)``.  ``0.0`` when nothing overlaps, in which
        case the caller must not draw (no stream consumption).
        """
        passthrough = 1.0
        for episode in self._losses:
            if episode.start_us >= end_us:
                break
            if episode.end_us <= start_us:
                continue
            if episode.tx_id is not None and (
                episode.tx_id != tx_id or episode.rx_id != rx_id
            ):
                continue
            passthrough *= 1.0 - episode.loss_rate
        return 1.0 - passthrough

    def draw_loss(self, rate: float) -> bool:
        """Flip the delivery-loss coin from the dedicated stream."""
        self.losses_drawn += 1
        return bool(self._delivery_rng.random() < rate)

    def draw_erasure(self, rate: float, n_fragments: int) -> int:
        """How many of ``n_fragments`` coded fragments the episode erases.

        The ``erasure`` recovery policy carries a payload as ``n`` coded
        fragments, each lost independently with the episode's combined
        ``rate``; the frame survives as long as ``erasure_k`` fragments
        arrive.  One call counts as one entry of the dedicated delivery
        stream (``losses_drawn``) regardless of ``n_fragments``, mirroring
        :meth:`draw_loss` -- but note the stream itself advances by
        ``n_fragments`` values, so erasure and plain-loss runs draw
        different coin sequences by construction.
        """
        self.losses_drawn += 1
        return int((self._delivery_rng.random(n_fragments) < rate).sum())


# -- profile registry --------------------------------------------------------------

#: Name -> declarative profile.  Stable names are what scenarios and the
#: CLI's ``--fault-profile`` refer to; the sweep cache digests the
#: *resolved* parameters so editing a profile invalidates cached cells.
FAULT_PROFILES: Dict[str, FaultProfile] = {}


def register_fault_profile(
    name: str, profile: FaultProfile, overwrite: bool = False
) -> None:
    """Register a fault profile under a stable name."""
    if name in FAULT_PROFILES and not overwrite:
        raise ConfigurationError(f"fault profile {name!r} is already registered")
    FAULT_PROFILES[name] = profile


def fault_profile(name: str) -> FaultProfile:
    """Look up a registered fault profile by name."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault profile {name!r}; choose from {available_fault_profiles()}"
        ) from None


def available_fault_profiles() -> List[str]:
    """Sorted names of every registered fault profile."""
    return sorted(FAULT_PROFILES)


# The built-in profiles.  Rates are tuned to the compressed 40-100 ms
# observation windows the experiments use: a handful of episodes per
# entity per run, long enough to span several transmission rounds.
register_fault_profile(
    "deep-fades", FaultProfile(fade_rate_per_s=40.0, fade_depth_db=(12.0, 30.0))
)
register_fault_profile(
    "bursty-loss", FaultProfile(loss_rate_per_s=60.0, loss_rate_range=(0.2, 0.9))
)
register_fault_profile(
    "churn", FaultProfile(churn_rate_per_s=15.0, churn_downtime_us=(4_000.0, 12_000.0))
)
register_fault_profile(
    "mixed",
    FaultProfile(
        fade_rate_per_s=25.0,
        fade_depth_db=(12.0, 30.0),
        loss_rate_per_s=40.0,
        loss_rate_range=(0.2, 0.8),
        churn_rate_per_s=10.0,
        churn_downtime_us=(4_000.0, 12_000.0),
    ),
)
