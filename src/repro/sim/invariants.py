"""Runtime invariant checks for the simulation loops.

The simulator's accounting obeys conservation laws -- a link can never
deliver more bits than it attempted, recovery can never reconstruct more
than was delivered, the clock and the channel epochs only move forward.
Silent corruption of any of these (a numerical guard gone wrong, a
miscounted retransmission, a fault episode applied twice) historically
surfaced only as subtly-off sweep results.  This module turns the laws
into explicit checkers that run *during* a simulation and raise
:class:`~repro.exceptions.InvariantViolation` -- naming the checker, the
round and the links involved -- the moment one breaks, which is exactly
the point a crash capsule (:mod:`repro.sim.capsule`) is most useful.

Three validation modes, resolved by :func:`effective_validation` with the
same config-beats-scenario-hint rule as the other simulation knobs:

``"off"``
    The default.  No checker runs; the loops carry ``invariants=None``
    and the execution path is exactly the unvalidated one (strict no-op,
    bit-identical to every committed golden).
``"cheap"``
    Aggregate conservation laws at transmission-round boundaries:
    O(links) sums per round, cheap enough for the precommit smoke.
``"full"``
    Everything in ``"cheap"`` plus per-link and per-queue checks each
    round.  This is the mode ``repro replay`` re-executes crash capsules
    under.

Checkers live in a registry (:func:`invariant`); registering a new law is
one decorated function.  Every checker receives the running loop object
and the :class:`InvariantSuite` (for cross-round state such as the last
observed clock and epoch map).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError, InvariantViolation

__all__ = [
    "VALIDATION_MODES",
    "effective_validation",
    "invariant",
    "registered_invariants",
    "InvariantSuite",
]

#: The validation modes accepted by ``SimulationConfig.validation``.
VALIDATION_MODES = ("off", "cheap", "full")

#: Registry: checker name -> (scope, function).  Scope is "cheap" or
#: "full"; cheap checkers run in both validating modes, full checkers
#: only under ``validation="full"``.
_REGISTRY: Dict[str, Tuple[str, Callable]] = {}


def effective_validation(scenario, config) -> str:
    """The validation mode in effect: config beats the scenario hint.

    Mirrors :func:`repro.sim.runner.effective_fidelity`: ``None``
    everywhere resolves to ``"off"``, the bit-identical-to-before
    default.  Scenarios have no validation field today, but the hint
    lookup keeps the resolution rule uniform with every other knob.
    """
    name = getattr(config, "validation", None)
    if name is None:
        name = getattr(scenario, "validation", None)
    name = name or "off"
    if name not in VALIDATION_MODES:
        raise ConfigurationError(
            f"unknown validation mode {name!r}; choose from {VALIDATION_MODES}"
        )
    return name


def invariant(name: str, *, scope: str = "cheap"):
    """Register a checker under ``name``.

    ``scope="cheap"`` checkers run under both ``"cheap"`` and ``"full"``;
    ``scope="full"`` checkers only under ``"full"``.
    """
    if scope not in ("cheap", "full"):
        raise ConfigurationError(f"invariant scope must be 'cheap' or 'full', got {scope!r}")

    def register(fn):
        _REGISTRY[name] = (scope, fn)
        return fn

    return register


def registered_invariants(mode: str = "full") -> List[str]:
    """Names of the checkers active under ``mode`` (registration order)."""
    if mode == "off":
        return []
    return [
        name
        for name, (scope, _) in _REGISTRY.items()
        if scope == "cheap" or mode == "full"
    ]


class InvariantSuite:
    """The checkers active for one run, plus their cross-round state.

    The event-driven loops call :meth:`check_round` at the end of every
    transmission round (and once more when the run closes); any violated
    law raises :class:`~repro.exceptions.InvariantViolation` out of the
    loop, which the runner boundary turns into a crash capsule.
    """

    def __init__(self, mode: str) -> None:
        if mode not in ("cheap", "full"):
            raise ConfigurationError(
                f"an InvariantSuite validates 'cheap' or 'full', got {mode!r}"
            )
        self.mode = mode
        self.checkers = [
            (name, fn)
            for name, (scope, fn) in _REGISTRY.items()
            if scope == "cheap" or mode == "full"
        ]
        self.rounds_checked = 0
        self._last_now_us = -math.inf
        self._last_epochs: Dict[tuple, int] = {}
        self._last_drops: Dict[tuple, int] = {}

    def check_round(self, loop) -> None:
        """Run every active checker against the loop's current state."""
        for name, fn in self.checkers:
            fn(self, loop)
        self.rounds_checked += 1

    def fail(self, checker: str, loop, links=(), detail: str = "") -> None:
        raise InvariantViolation(checker, getattr(loop, "rounds", -1), links, detail)


# -- cheap checkers: aggregate conservation at round boundaries ---------------


@invariant("delivered-within-attempted")
def _check_delivered_within_attempted(suite: InvariantSuite, loop) -> None:
    links = loop.metrics.links.values()
    delivered = sum(m.delivered_bits for m in links)
    attempted = sum(m.attempted_bits for m in links)
    if delivered > attempted:
        suite.fail(
            "delivered-within-attempted",
            loop,
            detail=f"{delivered} bits delivered but only {attempted} attempted",
        )


@invariant("recovered-within-delivered")
def _check_recovered_within_delivered(suite: InvariantSuite, loop) -> None:
    links = loop.metrics.links.values()
    recovered = sum(m.recovered_bits for m in links)
    delivered = sum(m.delivered_bits for m in links)
    if recovered > delivered:
        suite.fail(
            "recovered-within-delivered",
            loop,
            detail=f"{recovered} bits recovered but only {delivered} delivered",
        )


@invariant("finite-metrics")
def _check_finite_metrics(suite: InvariantSuite, loop) -> None:
    for name, link in loop.metrics.links.items():
        airtime = link.airtime_us
        if not math.isfinite(airtime) or airtime < 0:
            suite.fail(
                "finite-metrics", loop, links=(name,), detail=f"airtime_us={airtime!r}"
            )
        for field in ("delivered_bits", "attempted_bits", "recovered_bits"):
            value = getattr(link, field)
            if value < 0:
                suite.fail(
                    "finite-metrics", loop, links=(name,), detail=f"{field}={value!r}"
                )


@invariant("clock-monotone")
def _check_clock_monotone(suite: InvariantSuite, loop) -> None:
    now = loop.scheduler.now_us
    if not math.isfinite(now) or now < suite._last_now_us:
        suite.fail(
            "clock-monotone",
            loop,
            detail=f"clock moved from {suite._last_now_us} to {now}",
        )
    suite._last_now_us = now


@invariant("epoch-monotone")
def _check_epoch_monotone(suite: InvariantSuite, loop) -> None:
    epochs = dict(loop.network.link_epochs)
    for pair, epoch in epochs.items():
        previous = suite._last_epochs.get(pair, 0)
        if epoch < previous:
            suite.fail(
                "epoch-monotone",
                loop,
                links=(f"{pair[0]}->{pair[1]}",),
                detail=f"epoch went from {previous} to {epoch}",
            )
    suite._last_epochs = epochs


# -- full checkers: per-link / per-queue, every round -------------------------


@invariant("per-link-conservation", scope="full")
def _check_per_link_conservation(suite: InvariantSuite, loop) -> None:
    for name, link in loop.metrics.links.items():
        if link.delivered_bits > link.attempted_bits:
            suite.fail(
                "per-link-conservation",
                loop,
                links=(name,),
                detail=(
                    f"{link.delivered_bits} bits delivered but only "
                    f"{link.attempted_bits} attempted"
                ),
            )
        if link.recovered_bits > link.delivered_bits:
            suite.fail(
                "per-link-conservation",
                loop,
                links=(name,),
                detail=(
                    f"{link.recovered_bits} bits recovered but only "
                    f"{link.delivered_bits} delivered"
                ),
            )


@invariant("per-link-counters", scope="full")
def _check_per_link_counters(suite: InvariantSuite, loop) -> None:
    for name, link in loop.metrics.links.items():
        for field in (
            "packets_delivered",
            "packets_failed",
            "transmissions",
            "joins",
            "collisions",
            "packets_dropped",
            "quarantined_rounds",
        ):
            value = getattr(link, field)
            if value < 0:
                suite.fail(
                    "per-link-counters", loop, links=(name,), detail=f"{field}={value!r}"
                )


@invariant("queue-drops-monotone", scope="full")
def _check_queue_drops_monotone(suite: InvariantSuite, loop) -> None:
    """Drop accounting closes: a queue's drop counter never runs backwards
    (packets leave the retry path exactly once)."""
    for agent in loop.agents.values():
        for receiver_id, queue in agent.queues.items():
            key = (agent.node_id, receiver_id)
            dropped = queue.dropped_packets
            previous = suite._last_drops.get(key, 0)
            if dropped < previous:
                suite.fail(
                    "queue-drops-monotone",
                    loop,
                    links=(f"{agent.node_id}->{receiver_id}",),
                    detail=f"dropped_packets went from {previous} to {dropped}",
                )
            suite._last_drops[key] = dropped
