"""Worker supervision for the parallel sweep path.

``multiprocessing.Pool`` computes, but it does not *supervise*: a worker
that is OOM-killed leaves its ``apply_async`` handle hanging forever, a
hung worker is indistinguishable from a slow cell, and there is no
policy for a machine that keeps killing workers.  This module replaces
the pool with a :class:`WorkerSupervisor` that owns one
:class:`multiprocessing.Process` per worker, talks to each over its own
pipe, and watches three distinct failure signals:

* **silent death** (OOM killer, external SIGKILL): the process is gone
  while a task is assigned.  The task is re-queued (it is a pure
  function of its seeds, so a replay is byte-identical) and a
  replacement worker is spawned.
* **hang** (deadlock, SIGSTOP, a wedged C extension): the process is
  alive but its *heartbeat* -- a timestamp a daemon thread inside the
  worker refreshes every ``heartbeat_interval_s`` -- has gone stale for
  ``hang_timeout_s``.  A genuinely slow cell keeps heartbeating, so
  slow and hung are told apart instead of sharing one timeout.  The
  worker is killed, the task re-queued.
* **slow cell** (``task_timeout_s``): heartbeats are fresh but the task
  exceeded its deadline.  The worker is killed (unlike the old pool
  path, which had to abandon it still running) and the task counts a
  failed *attempt* -- retried up to ``max_retries`` times, with
  exponential backoff that is **skipped after the final attempt**
  (no pointless sleep when no retry will follow; backoff is
  non-blocking either way, implemented as a not-before timestamp so
  other tasks keep flowing while one waits out its backoff).

Graceful degradation: every unexpected death (killed or hung -- not
deliberate timeout kills) is counted, and each ``shrink_after_deaths``
of them permanently shrinks the target pool by one worker (never below
one).  A machine whose memory ceiling keeps OOM-killing an 8-worker
sweep therefore converges to the parallelism it can actually sustain
instead of failing the sweep.  Per-task re-queues are bounded by
``max_requeues`` so a cell that itself reproducibly kills its worker
eventually fails that cell -- and only that cell.

The supervisor is deliberately generic -- ``worker_fn(payload) ->
result`` with opaque payloads -- so it is testable without simulating
anything; :mod:`repro.sim.sweep` feeds it run-level simulation tasks.
Progress is reported as a stream of event objects from :meth:`events`,
which is how the sweep layer mirrors assignments and completions into
the results store's cell state machine.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "WorkerSupervisor",
    "TaskAssigned",
    "TaskDone",
    "TaskRetry",
    "TaskRequeued",
    "TaskFailed",
    "WorkerDeath",
    "PoolShrunk",
]


# -- events ------------------------------------------------------------------


@dataclass(frozen=True)
class TaskAssigned:
    """A task was shipped to a worker (mirror the cell to ``running``)."""

    task_id: int
    attempt: int


@dataclass(frozen=True)
class TaskDone:
    """A task completed; ``result`` is ``worker_fn``'s return value."""

    task_id: int
    result: Any


@dataclass(frozen=True)
class TaskRetry:
    """An attempt failed; the task will be retried after its backoff."""

    task_id: int
    attempt: int
    error: str


@dataclass(frozen=True)
class TaskRequeued:
    """A worker died under the task; re-queued without consuming an attempt."""

    task_id: int
    requeues: int
    reason: str


@dataclass(frozen=True)
class TaskFailed:
    """Attempts (or re-queues) exhausted; the task's cells are failed."""

    task_id: int
    error: str


@dataclass(frozen=True)
class WorkerDeath:
    """A worker left the pool abnormally (killed, hung, or timeout-killed)."""

    reason: str
    task_id: Optional[int]
    deliberate: bool  # True for our own timeout kills


@dataclass(frozen=True)
class PoolShrunk:
    """Graceful degradation reduced the target pool size."""

    target: int


# -- worker process ----------------------------------------------------------


def _worker_main(conn, heartbeat, worker_fn) -> None:
    """Worker process body: heartbeat thread + recv/compute/send loop.

    SIGINT is ignored so a Ctrl-C to the sweep's process group interrupts
    only the parent, which then shuts workers down deliberately (after
    checkpointing).  Every exception -- including worker-side
    KeyboardInterrupt remnants -- is reported over the pipe rather than
    crashing the worker, so the parent's accounting stays exact.

    The heartbeat thread doubles as an orphan watchdog: if the parent
    dies without shutting us down (SIGKILL to the sweep process), the
    worker exits on its own within one beat.  Pipe EOF alone cannot be
    relied on for this -- under ``fork``, sibling workers inherit copies
    of the parent-side pipe ends, so a dead parent does not close them.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    stop = threading.Event()
    parent_pid = os.getppid()

    def _beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            if os.getppid() != parent_pid:  # reparented: supervisor is gone
                os._exit(1)
            stop.wait(heartbeat.interval)

    heartbeat.value = time.monotonic()
    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    try:
        while True:
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                break
            if payload is None:  # shutdown sentinel
                break
            try:
                result = worker_fn(payload)
            except BaseException as exc:  # report, don't die
                try:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                except (BrokenPipeError, OSError):
                    break
                continue
            try:
                conn.send(("ok", result))
            except (BrokenPipeError, OSError):
                break
    finally:
        stop.set()
        conn.close()


class _Heartbeat:
    """Shared monotonic timestamp plus the interval it is refreshed at.

    A tiny wrapper (rather than a bare ``multiprocessing.Value``) so the
    beat interval travels with the value into the worker process.  It
    crosses the process boundary as a ``Process`` arg: under ``fork`` by
    inheritance, under ``spawn`` via multiprocessing's own reduction of
    the inner shared ``Value``.
    """

    def __init__(self, ctx, interval: float) -> None:
        self._value = ctx.Value("d", time.monotonic(), lock=False)
        self.interval = interval

    @property
    def value(self) -> float:
        return self._value.value

    @value.setter
    def value(self, stamp: float) -> None:
        self._value.value = stamp


@dataclass
class _Task:
    task_id: int
    payload: Any
    attempt: int = 0
    requeues: int = 0
    not_before: float = 0.0


@dataclass
class _Worker:
    proc: multiprocessing.Process
    conn: Any
    heartbeat: _Heartbeat
    task: Optional[_Task] = None
    deadline: Optional[float] = None
    retired: bool = field(default=False)


# -- supervisor --------------------------------------------------------------


class WorkerSupervisor:
    """Run ``payloads`` through supervised worker processes.

    Parameters
    ----------
    worker_fn:
        Module-level callable executed in the workers (must be picklable
        under the chosen start method).
    payloads:
        One opaque payload per task; task ids are their indices.
    workers:
        Initial pool size (capped at the number of tasks).
    task_timeout_s:
        Per-attempt wall-clock deadline for one task; ``None`` disables.
        Exceeding it kills the worker and consumes an attempt.
    max_retries:
        Failed/timed-out attempts retried per task beyond the first.
    retry_backoff_s:
        Base of the exponential backoff before retry ``k``
        (``retry_backoff_s * 2**k`` seconds).  Never applied after the
        final attempt, and never blocks other tasks (scheduled as a
        not-before time, not a sleep).
    heartbeat_interval_s / hang_timeout_s:
        Worker liveness: heartbeats refresh every interval; a busy
        worker whose heartbeat is older than ``hang_timeout_s`` is
        declared hung and replaced.
    max_requeues:
        Worker deaths tolerated per task before the task fails.
    shrink_after_deaths:
        Unexpected worker deaths per one-worker shrink of the target
        pool size (never below one).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        workers: int,
        task_timeout_s: Optional[float] = None,
        max_retries: int = 1,
        retry_backoff_s: float = 0.5,
        heartbeat_interval_s: float = 0.25,
        hang_timeout_s: float = 30.0,
        max_requeues: int = 3,
        shrink_after_deaths: int = 3,
        start_method: Optional[str] = None,
        poll_interval_s: float = 0.05,
    ) -> None:
        self._worker_fn = worker_fn
        self._queue: Deque[_Task] = deque(
            _Task(task_id=i, payload=p) for i, p in enumerate(payloads)
        )
        self._n_tasks = len(self._queue)
        self._target = max(1, min(int(workers), self._n_tasks))
        self._task_timeout_s = task_timeout_s
        self._max_retries = max(0, int(max_retries))
        self._retry_backoff_s = retry_backoff_s
        self._heartbeat_interval_s = heartbeat_interval_s
        self._hang_timeout_s = hang_timeout_s
        self._max_requeues = max(0, int(max_requeues))
        self._shrink_after_deaths = max(1, int(shrink_after_deaths))
        self._poll_interval_s = poll_interval_s
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: List[_Worker] = []
        self._stop = False
        self.deaths = 0
        self.timeout_kills = 0

    # -- public control ------------------------------------------------------

    def request_stop(self) -> None:
        """Stop dispatching and wind down (signal-handler safe: only
        sets a flag; the event loop notices on its next iteration)."""
        self._stop = True

    @property
    def stopped(self) -> bool:
        return self._stop

    @property
    def target_pool_size(self) -> int:
        """Current degradation target (initial workers minus shrinks)."""
        return self._target

    # -- event loop ----------------------------------------------------------

    def events(self) -> Iterator[object]:
        """Drive the pool; yield progress events until all tasks settle.

        The generator owns the worker processes: leaving it (completion,
        interruption, or an exception in the consumer) tears the pool
        down via ``finally``, so no worker outlives the sweep.
        """
        try:
            while (self._queue or self._busy()) and not self._stop:
                for event in self._assign():
                    yield event
                for event in self._collect():
                    yield event
                for event in self._check_health():
                    yield event
        finally:
            self._shutdown()

    # -- internals -----------------------------------------------------------

    def _busy(self) -> List[_Worker]:
        return [w for w in self._workers if w.task is not None]

    def _alive(self) -> List[_Worker]:
        return [w for w in self._workers if not w.retired]

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        heartbeat = _Heartbeat(self._ctx, self._heartbeat_interval_s)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, heartbeat, self._worker_fn),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc=proc, conn=parent_conn, heartbeat=heartbeat)
        self._workers.append(worker)
        return worker

    def _retire(self, worker: _Worker, kill: bool = False) -> None:
        worker.retired = True
        worker.task = None
        worker.deadline = None
        try:
            if kill:
                worker.proc.kill()
            elif worker.proc.is_alive():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    worker.proc.terminate()
        finally:
            worker.conn.close()
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():  # pragma: no cover - stubborn worker
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        self._workers.remove(worker)

    def _outstanding(self) -> int:
        return len(self._queue) + len(self._busy())

    def _assign(self) -> List[object]:
        events: List[object] = []
        now = time.monotonic()
        # Top the pool up to the (possibly shrunk) target, but never
        # beyond the work left to do.
        while len(self._alive()) < min(self._target, self._outstanding()):
            self._spawn()
        # Retire surplus idle workers after a shrink.
        for worker in list(self._workers):
            if worker.task is None and len(self._alive()) > self._target:
                self._retire(worker)
        idle = [w for w in self._workers if w.task is None and not w.retired]
        ready = [t for t in self._queue if t.not_before <= now]
        for worker in idle:
            if not ready:
                break
            task = ready.pop(0)
            self._queue.remove(task)
            try:
                worker.conn.send(task.payload)
            except (BrokenPipeError, OSError):
                # Worker died between spawn and first task; health check
                # will reap it.  Put the task back untouched.
                self._queue.appendleft(task)
                continue
            worker.task = task
            worker.deadline = (
                now + self._task_timeout_s if self._task_timeout_s else None
            )
            events.append(TaskAssigned(task_id=task.task_id, attempt=task.attempt))
        return events

    def _collect(self) -> List[object]:
        events: List[object] = []
        busy = self._busy()
        if not busy:
            if self._queue:
                # Everything queued is waiting out a backoff; sleep the
                # smaller of the poll interval and the nearest release.
                now = time.monotonic()
                delay = min(t.not_before for t in self._queue) - now
                time.sleep(max(0.0, min(self._poll_interval_s, delay)))
            return events
        by_conn: Dict[Any, _Worker] = {w.conn: w for w in busy}
        try:
            ready = _connection_wait(list(by_conn), timeout=self._poll_interval_s)
        except OSError:  # a conn died mid-wait; health check reaps it
            ready = []
        for conn in ready:
            worker = by_conn[conn]
            try:
                kind, value = conn.recv()
            except (EOFError, OSError):
                continue  # worker died; the health check handles it
            task = worker.task
            worker.task = None
            worker.deadline = None
            if task is None:  # pragma: no cover - defensive
                continue
            if kind == "ok":
                events.append(TaskDone(task_id=task.task_id, result=value))
            else:
                events.extend(self._attempt_failed(task, str(value)))
        return events

    def _check_health(self) -> List[object]:
        events: List[object] = []
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.retired or worker.task is None:
                # An idle worker that died is silently replaced on the
                # next assign pass; it holds no task to account for.
                if not worker.retired and not worker.proc.is_alive():
                    self._retire(worker, kill=True)
                continue
            task = worker.task
            if not worker.proc.is_alive():
                code = worker.proc.exitcode
                reason = f"worker killed (exit code {code})"
                events.extend(self._death(worker, task, reason, deliberate=False))
            elif now - worker.heartbeat.value > self._hang_timeout_s:
                stale = now - worker.heartbeat.value
                reason = f"worker hung (no heartbeat for {stale:.1f} s)"
                events.extend(self._death(worker, task, reason, deliberate=False))
            elif worker.deadline is not None and now > worker.deadline:
                reason = f"timed out after {self._task_timeout_s} s"
                events.extend(self._timeout(worker, task, reason))
        return events

    def _death(
        self, worker: _Worker, task: _Task, reason: str, deliberate: bool
    ) -> List[object]:
        """An unexpected worker loss: re-queue the task, replace, maybe shrink."""
        events: List[object] = [
            WorkerDeath(reason=reason, task_id=task.task_id, deliberate=deliberate)
        ]
        self._retire(worker, kill=True)
        self.deaths += 1
        if self.deaths % self._shrink_after_deaths == 0 and self._target > 1:
            self._target -= 1
            events.append(PoolShrunk(target=self._target))
        task.requeues += 1
        if task.requeues <= self._max_requeues:
            task.not_before = 0.0
            self._queue.append(task)
            events.append(
                TaskRequeued(task_id=task.task_id, requeues=task.requeues, reason=reason)
            )
        else:
            events.append(
                TaskFailed(
                    task_id=task.task_id,
                    error=f"{reason}; task re-queued {task.requeues - 1} time(s) "
                    "and its worker died every time",
                )
            )
        return events

    def _timeout(self, worker: _Worker, task: _Task, reason: str) -> List[object]:
        """A slow cell past its deadline: kill the worker, consume an attempt."""
        events: List[object] = [
            WorkerDeath(reason=reason, task_id=task.task_id, deliberate=True)
        ]
        self.timeout_kills += 1
        self._retire(worker, kill=True)
        events.extend(self._attempt_failed(task, reason))
        return events

    def _attempt_failed(self, task: _Task, error: str) -> List[object]:
        """Account one failed attempt; retry with backoff or fail the task.

        The exponential backoff is only scheduled when a retry will
        actually follow -- after the final attempt the task fails
        immediately, with no residual sleep.
        """
        if task.attempt < self._max_retries:
            if self._retry_backoff_s > 0:
                task.not_before = time.monotonic() + self._retry_backoff_s * (
                    2**task.attempt
                )
            task.attempt += 1
            self._queue.append(task)
            return [TaskRetry(task_id=task.task_id, attempt=task.attempt, error=error)]
        return [TaskFailed(task_id=task.task_id, error=error)]

    def _shutdown(self) -> None:
        for worker in list(self._workers):
            self._retire(worker, kill=worker.task is not None)
