"""The shared wireless medium: which streams are on the air right now.

The medium is pure bookkeeping -- signal combination and SNR evaluation
live in :mod:`repro.sim.link_abstraction`.  Every stream on the air is a
:class:`ScheduledStream` carrying the information that, in the real
protocol, other nodes learn from the light-weight headers: transmitter,
receiver, bitrate, duration, number of streams, and which receivers the
stream was pre-coded to protect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import MediumAccessError
from repro.mimo.dof import InterferenceStrategy
from repro.phy.rates import MCS

__all__ = ["ScheduledStream", "Medium"]


@dataclass
class ScheduledStream:
    """One spatial stream scheduled on the medium.

    Attributes
    ----------
    stream_id:
        Unique id within the simulation run.
    transmitter_id, receiver_id:
        Endpoints of the stream.
    precoders:
        ``(n_subcarriers, M)`` pre-coding vectors (unit norm).
    power:
        Transmit power of this stream (linear, noise-normalised units).
    mcs:
        The bitrate selected for the stream.
    payload_bits:
        Payload bits carried (after fragmentation/aggregation).
    start_us, end_us:
        Transmission interval of the data body.
    join_order:
        0 for the first contention winner's streams, 1 for the second
        winner's, and so on; collisions share a join order.
    protected_receivers:
        Receivers this stream was pre-coded to protect, with the strategy
        used at each (nulling or alignment).
    """

    stream_id: int
    transmitter_id: int
    receiver_id: int
    precoders: np.ndarray
    power: float
    mcs: MCS
    payload_bits: int
    start_us: float
    end_us: float
    join_order: int = 0
    protected_receivers: Dict[int, InterferenceStrategy] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        """Length of the data body, microseconds."""
        return self.end_us - self.start_us

    def protects(self, receiver_id: int) -> bool:
        """Whether this stream was pre-coded to protect ``receiver_id``."""
        return receiver_id in self.protected_receivers


class Medium:
    """Tracks the streams currently on the air."""

    def __init__(self) -> None:
        self._streams: List[ScheduledStream] = []
        self._next_stream_id = 0

    # -- ids -------------------------------------------------------------------

    def next_stream_id(self) -> int:
        """Allocate a fresh stream id."""
        value = self._next_stream_id
        self._next_stream_id += 1
        return value

    # -- state -----------------------------------------------------------------

    @property
    def active_streams(self) -> List[ScheduledStream]:
        """Streams currently on the air (a copy)."""
        return list(self._streams)

    @property
    def used_degrees_of_freedom(self) -> int:
        """Number of concurrent streams on the air."""
        return len(self._streams)

    @property
    def busy(self) -> bool:
        """Whether anything is transmitting."""
        return bool(self._streams)

    @property
    def current_end_us(self) -> float:
        """When the current joint transmission ends (-inf when idle)."""
        if not self._streams:
            return float("-inf")
        return max(s.end_us for s in self._streams)

    def transmitting_nodes(self) -> List[int]:
        """Ids of nodes currently transmitting."""
        seen: List[int] = []
        for stream in self._streams:
            if stream.transmitter_id not in seen:
                seen.append(stream.transmitter_id)
        return seen

    def receiving_nodes(self) -> List[int]:
        """Ids of nodes currently receiving."""
        seen: List[int] = []
        for stream in self._streams:
            if stream.receiver_id not in seen:
                seen.append(stream.receiver_id)
        return seen

    def streams_to(self, receiver_id: int) -> List[ScheduledStream]:
        """Streams destined to a given receiver."""
        return [s for s in self._streams if s.receiver_id == receiver_id]

    def streams_from(self, transmitter_id: int) -> List[ScheduledStream]:
        """Streams sent by a given transmitter."""
        return [s for s in self._streams if s.transmitter_id == transmitter_id]

    def max_join_order(self) -> int:
        """Largest join order currently on the air (-1 when idle)."""
        if not self._streams:
            return -1
        return max(s.join_order for s in self._streams)

    # -- mutation -----------------------------------------------------------------

    def add_streams(self, streams: List[ScheduledStream]) -> None:
        """Put new streams on the air."""
        self._streams.extend(streams)

    def remove_streams(self, streams: List[ScheduledStream]) -> None:
        """Take streams off the air."""
        for stream in streams:
            try:
                self._streams.remove(stream)
            except ValueError:
                raise MediumAccessError(
                    f"stream {stream.stream_id} is not on the medium"
                ) from None

    def clear(self) -> None:
        """Remove every stream (end of a joint transmission)."""
        self._streams.clear()
