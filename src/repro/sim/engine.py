"""A minimal discrete-event scheduler.

The indexed event queue at the heart of the simulator: the main loop
(:mod:`repro.sim.runner`) schedules every contention/transmission round
as an event here (which is how idle gaps are crossed in one hop instead
of one slot at a time), and anything on its own clock -- Poisson packet
arrivals, periodic metric snapshots, user callbacks in the examples --
uses the same ``schedule``/``run_until`` primitives.  Events that share
a timestamp run in scheduling order, so seeded runs are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.exceptions import SimulationError

__all__ = ["EventScheduler"]


@dataclass(order=True)
class _Event:
    time_us: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventScheduler:
    """A heap-based event queue keyed by simulation time in microseconds."""

    def __init__(self) -> None:
        self._queue: List[_Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now_us(self) -> float:
        """Current simulation time, microseconds."""
        return self._now

    def schedule_at(self, time_us: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` at an absolute time."""
        if time_us < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time_us} us, current time is {self._now} us"
            )
        event = _Event(time_us=time_us, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay_us: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` after a relative delay."""
        if delay_us < 0:
            raise SimulationError(f"delay must be non-negative, got {delay_us}")
        return self.schedule_at(self._now + delay_us, callback)

    def cancel(self, event: _Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancelled = True

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time_us
            event.callback()
            return True
        return False

    def run_until(self, time_us: float) -> None:
        """Run every event scheduled at or before ``time_us``."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time_us > time_us:
                break
            self.step()
        self._now = max(self._now, time_us)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Run until the queue drains; returns the number of events run."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise SimulationError(f"event budget of {max_events} exceeded")
        return count
