"""Tapped-delay-line multipath channels and their frequency responses.

The paper handles multipath by running nulling and alignment per OFDM
subcarrier (§4, "Multipath").  This module provides the corresponding
channel substrate: a per-antenna-pair FIR channel whose 64-point frequency
response gives the per-subcarrier MIMO matrices the MIMO layer consumes,
and a time-domain ``apply`` for the sample-level experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.constants import CYCLIC_PREFIX_LENGTH, NUM_SUBCARRIERS
from repro.exceptions import ConfigurationError, DimensionError
from repro.channel.models import complex_gaussian

__all__ = [
    "exponential_power_delay_profile",
    "MultipathChannel",
    "frequency_response_batch",
    "frequency_response_at_bins_batch",
]


def exponential_power_delay_profile(n_taps: int, decay_samples: float = 3.0) -> np.ndarray:
    """Return a normalised exponential power-delay profile.

    Parameters
    ----------
    n_taps:
        Number of channel taps (must not exceed the cyclic prefix).
    decay_samples:
        Exponential decay constant in samples; larger means a longer,
        more frequency-selective channel.
    """
    if n_taps < 1:
        raise ConfigurationError("a channel needs at least one tap")
    profile = np.exp(-np.arange(n_taps) / max(decay_samples, 1e-9))
    return profile / profile.sum()


@dataclass
class MultipathChannel:
    """A static frequency-selective MIMO channel.

    Attributes
    ----------
    taps:
        Complex array of shape ``(n_taps, n_rx, n_tx)``; ``taps[d]`` is the
        channel matrix of delay ``d`` samples.
    """

    taps: np.ndarray

    def __post_init__(self) -> None:
        self.taps = np.asarray(self.taps, dtype=complex)
        if self.taps.ndim != 3:
            raise DimensionError(
                f"taps must have shape (n_taps, n_rx, n_tx), got {self.taps.shape}"
            )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def random(
        cls,
        n_rx: int,
        n_tx: int,
        rng: np.random.Generator,
        n_taps: int = 4,
        decay_samples: float = 3.0,
        average_gain: float = 1.0,
    ) -> "MultipathChannel":
        """Draw a random Rayleigh multipath channel.

        ``average_gain`` scales the total power of the channel (linear).
        The number of taps must stay within the cyclic prefix so that OFDM
        sees no inter-symbol interference, matching the design assumption
        of §4.
        """
        if n_taps > CYCLIC_PREFIX_LENGTH:
            raise ConfigurationError(
                f"n_taps ({n_taps}) must not exceed the cyclic prefix "
                f"({CYCLIC_PREFIX_LENGTH})"
            )
        profile = exponential_power_delay_profile(n_taps, decay_samples)
        taps = np.zeros((n_taps, n_rx, n_tx), dtype=complex)
        for d in range(n_taps):
            taps[d] = complex_gaussian((n_rx, n_tx), rng, profile[d] * average_gain)
        return cls(taps=taps)

    @classmethod
    def random_batch(
        cls,
        n_rx: int,
        n_tx: int,
        rng: Optional[np.random.Generator],
        n_channels: int,
        n_taps: int = 4,
        decay_samples=3.0,
        average_gain=1.0,
        raw: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Draw the taps of ``n_channels`` Rayleigh channels at once.

        Returns a complex array of shape ``(n_channels, n_taps, n_rx,
        n_tx)``; slice ``c`` is bit-identical to the taps of the ``c``-th
        of ``n_channels`` sequential :meth:`random` calls on the same
        generator (one ``standard_normal`` call fills array elements in
        the same order the per-channel, per-tap draws consume them).
        ``decay_samples`` and ``average_gain`` may be scalars or
        per-channel arrays of length ``n_channels``.

        ``raw`` lets a caller that must interleave other draws between
        channels (e.g. per-link shadowing) pre-draw the standard normals
        itself: shape ``(n_channels, n_taps, 2, n_rx, n_tx)``, where the
        ``2`` axis is (real, imaginary) -- exactly what
        ``rng.standard_normal`` consumes per tap.  When ``raw`` is given,
        ``rng`` is unused and may be ``None``.
        """
        if n_channels < 0:
            raise ConfigurationError(f"n_channels must be non-negative, got {n_channels}")
        if n_taps > CYCLIC_PREFIX_LENGTH:
            raise ConfigurationError(
                f"n_taps ({n_taps}) must not exceed the cyclic prefix "
                f"({CYCLIC_PREFIX_LENGTH})"
            )
        if raw is None:
            if rng is None:
                raise ConfigurationError("random_batch needs an rng when raw is not given")
            raw = rng.standard_normal((n_channels, n_taps, 2, n_rx, n_tx))
        raw = np.asarray(raw, dtype=float)
        if raw.shape != (n_channels, n_taps, 2, n_rx, n_tx):
            raise DimensionError(
                f"raw must have shape {(n_channels, n_taps, 2, n_rx, n_tx)}, "
                f"got {raw.shape}"
            )
        decays = np.broadcast_to(np.asarray(decay_samples, dtype=float), (n_channels,))
        gains = np.broadcast_to(np.asarray(average_gain, dtype=float), (n_channels,))
        # The profile is a pure function of (n_taps, decay); computing it
        # once per distinct decay through the scalar helper keeps every
        # float identical to what the per-channel constructor produces.
        profiles = np.empty((n_channels, n_taps))
        for value in np.unique(decays):
            profiles[decays == value] = exponential_power_delay_profile(n_taps, float(value))
        variance = profiles * gains[:, None]  # (n_channels, n_taps)
        scale = np.sqrt(variance / 2.0)
        return scale[:, :, None, None] * (raw[:, :, 0] + 1j * raw[:, :, 1])

    @classmethod
    def flat(cls, matrix: np.ndarray) -> "MultipathChannel":
        """Wrap a flat channel matrix as a single-tap multipath channel."""
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.ndim != 2:
            raise DimensionError(f"matrix must be 2-D, got shape {matrix.shape}")
        return cls(taps=matrix.reshape(1, *matrix.shape))

    # -- properties -----------------------------------------------------------

    @property
    def n_taps(self) -> int:
        """Number of delay taps."""
        return self.taps.shape[0]

    @property
    def n_rx(self) -> int:
        """Number of receive antennas."""
        return self.taps.shape[1]

    @property
    def n_tx(self) -> int:
        """Number of transmit antennas."""
        return self.taps.shape[2]

    # -- conversions -----------------------------------------------------------

    def frequency_response(self, fft_size: int = NUM_SUBCARRIERS) -> np.ndarray:
        """Per-subcarrier channel matrices.

        Returns a complex array of shape ``(fft_size, n_rx, n_tx)`` where
        slice ``k`` is the channel matrix seen on subcarrier ``k``.
        """
        padded = np.zeros((fft_size, self.n_rx, self.n_tx), dtype=complex)
        padded[: self.n_taps] = self.taps
        return np.fft.fft(padded, axis=0)

    def average_matrix(self) -> np.ndarray:
        """The frequency-averaged (narrowband-equivalent) channel matrix."""
        return self.frequency_response().mean(axis=0)

    # -- application ------------------------------------------------------------

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Convolve transmitted samples with the channel.

        Parameters
        ----------
        samples:
            Shape ``(n_tx, n_samples)`` (or 1-D for a single antenna).

        Returns
        -------
        numpy.ndarray
            Received samples of shape ``(n_rx, n_samples)`` (the
            convolution tail is truncated so input and output lengths
            match, mimicking a continuously running receiver).
        """
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim == 1:
            samples = samples.reshape(1, -1)
        if samples.shape[0] != self.n_tx:
            raise DimensionError(
                f"channel expects {self.n_tx} transmit antennas, got {samples.shape[0]}"
            )
        n_samples = samples.shape[1]
        out = np.zeros((self.n_rx, n_samples), dtype=complex)
        for rx in range(self.n_rx):
            for tx in range(self.n_tx):
                impulse = self.taps[:, rx, tx]
                out[rx] += np.convolve(samples[tx], impulse)[:n_samples]
        return out

    # -- composition ------------------------------------------------------------

    def scaled(self, gain: float) -> "MultipathChannel":
        """Return a copy with every tap scaled by ``sqrt(gain)`` (power gain)."""
        return MultipathChannel(taps=self.taps * np.sqrt(gain))


def frequency_response_batch(taps: np.ndarray, fft_size: int = NUM_SUBCARRIERS) -> np.ndarray:
    """Per-subcarrier matrices of a whole stack of channels in one FFT.

    ``taps`` has shape ``(n_channels, n_taps, n_rx, n_tx)`` (what
    :meth:`MultipathChannel.random_batch` returns); the result has shape
    ``(n_channels, fft_size, n_rx, n_tx)`` and slice ``c`` is bit-identical
    to ``MultipathChannel(taps[c]).frequency_response(fft_size)``.
    """
    taps = np.asarray(taps, dtype=complex)
    if taps.ndim != 4:
        raise DimensionError(
            f"taps must have shape (n_channels, n_taps, n_rx, n_tx), got {taps.shape}"
        )
    n_channels, n_taps, n_rx, n_tx = taps.shape
    padded = np.zeros((n_channels, fft_size, n_rx, n_tx), dtype=complex)
    padded[:, :n_taps] = taps
    return np.fft.fft(padded, axis=1)


def frequency_response_at_bins_batch(
    taps: np.ndarray, bins: np.ndarray, fft_size: int = NUM_SUBCARRIERS
) -> np.ndarray:
    """Frequency responses of a stack of channels, at selected bins only.

    Evaluates the DFT of the zero-padded taps directly at the requested
    ``bins`` -- one einsum against an ``(n_taps, n_bins)`` twiddle matrix
    -- instead of a full ``fft_size``-point FFT followed by bin
    selection.  For the testbed's few-tap channels this is cheaper, and
    (more importantly at the 500-station tier) it never materialises the
    ``(n_channels, fft_size, n_rx, n_tx)`` padded intermediate.  The
    result equals ``frequency_response_batch(taps, fft_size)[:, bins]``
    up to floating-point rounding; the grouped (v3) draw contract of
    :meth:`repro.sim.network.Network._draw_channels_grouped` pins *this*
    formulation.

    ``taps`` has shape ``(n_channels, n_taps, n_rx, n_tx)``; the result
    has shape ``(n_channels, len(bins), n_rx, n_tx)``.
    """
    taps = np.asarray(taps, dtype=complex)
    if taps.ndim != 4:
        raise DimensionError(
            f"taps must have shape (n_channels, n_taps, n_rx, n_tx), got {taps.shape}"
        )
    bins = np.asarray(bins, dtype=int)
    if bins.ndim != 1:
        raise DimensionError(f"bins must be 1-D, got shape {bins.shape}")
    delays = np.arange(taps.shape[1])
    twiddle = np.exp((-2j * np.pi / fft_size) * np.outer(delays, bins))
    return np.einsum("ctnm,tk->cknm", taps, twiddle)
