"""Hardware impairment models.

Perfect nulling and alignment are impossible on real radios: channel
estimates are noisy, the hardware is slightly non-linear and reciprocity
calibration is imperfect, so a joiner's interference is suppressed by a
finite amount (~25-27 dB in the paper's USRP2 measurements, §6.2).  The
:class:`HardwareProfile` gathers those knobs so every layer draws its
imperfections from a single place, keeping the simulation honest about
the *residual interference* that drives the paper's Fig. 11 and the small
single-antenna throughput loss in Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    ALIGNMENT_SUPPRESSION_DB,
    NOISE_FLOOR_DBM,
    NULLING_SUPPRESSION_DB,
)
from repro.utils.db import db_to_linear

__all__ = ["HardwareProfile"]


@dataclass(frozen=True)
class HardwareProfile:
    """Per-node hardware characteristics.

    Attributes
    ----------
    noise_floor_dbm:
        Receiver noise floor over the simulated bandwidth.
    nulling_suppression_db:
        How far below its uncontrolled level a nulled interferer ends up.
    alignment_suppression_db:
        Same for alignment (slightly worse, because the aligner also needs
        the receiver's estimate of its unwanted subspace, §6.2).
    channel_estimation_error_db:
        Power of the channel-estimation error relative to the channel
        (dB); drives the spread of the residual error.
    reciprocity_error_db:
        Additional error of reverse-channel (reciprocity-derived)
        estimates relative to forward estimates.
    max_cfo_hz:
        Largest carrier-frequency offset between any two nodes.
    """

    noise_floor_dbm: float = NOISE_FLOOR_DBM
    nulling_suppression_db: float = NULLING_SUPPRESSION_DB
    alignment_suppression_db: float = ALIGNMENT_SUPPRESSION_DB
    channel_estimation_error_db: float = -30.0
    reciprocity_error_db: float = -32.0
    max_cfo_hz: float = 2_000.0

    # -- derived quantities ----------------------------------------------------

    @property
    def noise_floor_mw(self) -> float:
        """Noise floor in milliwatts."""
        return float(db_to_linear(self.noise_floor_dbm))

    def estimation_error_variance(self, channel_power: float) -> float:
        """Variance of the channel-estimation error for a channel of the
        given average power."""
        return float(channel_power * db_to_linear(self.channel_estimation_error_db))

    def residual_interference_power(
        self, interference_power: float, aligned: bool, rng: np.random.Generator | None = None
    ) -> float:
        """Residual interference power after nulling or alignment.

        Parameters
        ----------
        interference_power:
            The interference power (linear) the joiner would create with
            no nulling/alignment at all.
        aligned:
            ``True`` for alignment, ``False`` for nulling.
        rng:
            Optional generator; when provided, the suppression fluctuates
            log-normally by a couple of dB around its mean, reproducing
            the spread of Fig. 11.
        """
        suppression_db = (
            self.alignment_suppression_db if aligned else self.nulling_suppression_db
        )
        if rng is not None:
            suppression_db = suppression_db + self.draw_suppression_jitter(rng)
        return float(interference_power * db_to_linear(-suppression_db))

    #: Standard deviation (dB) of the per-packet suppression fluctuation
    #: around the mean, reproducing the spread of Fig. 11.
    SUPPRESSION_JITTER_SIGMA_DB = 2.0

    def draw_suppression_jitter(self, rng: np.random.Generator, size=None):
        """Draw the suppression fluctuation (dB) around the mean.

        Vector draws fill in C order, so one ``size=(n_sub, n_streams)``
        draw reproduces the sequence of the equivalent nested scalar loop.
        """
        return rng.normal(0.0, self.SUPPRESSION_JITTER_SIGMA_DB, size=size)

    def residual_interference_power_batch(
        self,
        interference_power: np.ndarray,
        aligned: bool,
        suppression_jitter_db: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`residual_interference_power`.

        Parameters
        ----------
        interference_power:
            Per-subcarrier unprotected interference powers (linear).
        aligned:
            ``True`` for alignment, ``False`` for nulling.
        suppression_jitter_db:
            Optional per-subcarrier suppression fluctuation in dB (the
            caller draws it, so it can control the draw order of a shared
            generator).
        """
        suppression_db = (
            self.alignment_suppression_db if aligned else self.nulling_suppression_db
        )
        if suppression_jitter_db is not None:
            suppression_db = suppression_db + np.asarray(suppression_jitter_db, dtype=float)
        return np.asarray(interference_power, dtype=float) * db_to_linear(-suppression_db)

    def perturb_channel(
        self, channel: np.ndarray, rng: np.random.Generator, reciprocity: bool = False
    ) -> np.ndarray:
        """Return a noisy estimate of ``channel``.

        Adds complex Gaussian error at ``channel_estimation_error_db``
        below the channel power (plus the reciprocity penalty when the
        estimate is derived from the reverse direction).
        """
        channel = np.asarray(channel, dtype=complex)
        power = float(np.mean(np.abs(channel) ** 2)) if channel.size else 0.0
        error_db = self.channel_estimation_error_db
        if reciprocity:
            error_db = 10 * np.log10(
                db_to_linear(error_db) + db_to_linear(self.reciprocity_error_db)
            )
        variance = power * db_to_linear(error_db)
        error = np.sqrt(variance / 2.0) * (
            rng.standard_normal(channel.shape) + 1j * rng.standard_normal(channel.shape)
        )
        return channel + error

    def perturb_channel_batch(
        self, channels: np.ndarray, rng: np.random.Generator, reciprocity: bool = False
    ) -> np.ndarray:
        """Noisy estimates of a stack of same-shape channels at once.

        ``channels`` has shape ``(n_channels, ...)``.  The error normals
        are drawn as one ``(n_channels, 2, ...)`` block, which consumes
        the generator in exactly the order of ``n_channels`` sequential
        :meth:`perturb_channel` calls -- slice ``c`` of the result is
        bit-identical to ``perturb_channel(channels[c], rng,
        reciprocity)`` (the test suite asserts it).  One stacked call
        instead of two rng calls plus bookkeeping per link is what makes
        the grouped estimate prefetch
        (:meth:`repro.sim.network.Network.prefetch_estimates`) cheap.
        """
        channels = np.asarray(channels, dtype=complex)
        if channels.ndim < 2:
            raise ValueError(
                f"channels must be a stack with shape (n_channels, ...), got {channels.shape}"
            )
        n_channels = channels.shape[0]
        if channels.size:
            power = np.mean(np.abs(channels) ** 2, axis=tuple(range(1, channels.ndim)))
        else:
            power = np.zeros(n_channels)
        error_db = self.channel_estimation_error_db
        if reciprocity:
            error_db = 10 * np.log10(
                db_to_linear(error_db) + db_to_linear(self.reciprocity_error_db)
            )
        variance = power * db_to_linear(error_db)
        raw = rng.standard_normal((n_channels, 2) + channels.shape[1:])
        scale = np.sqrt(variance / 2.0).reshape((n_channels,) + (1,) * (channels.ndim - 1))
        return channels + scale * (raw[:, 0] + 1j * raw[:, 1])

    def draw_cfo(self, rng: np.random.Generator) -> float:
        """Draw a carrier-frequency offset for a node, in Hz."""
        return float(rng.uniform(-self.max_cfo_hz, self.max_cfo_hz))
