"""Elementary channel models: AWGN and small-scale MIMO fading."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.db import db_to_linear

__all__ = [
    "awgn",
    "complex_gaussian",
    "rayleigh_mimo_channel",
    "rician_mimo_channel",
    "apply_flat_channel",
]


def complex_gaussian(shape, rng: np.random.Generator, variance: float = 1.0) -> np.ndarray:
    """Circularly-symmetric complex Gaussian samples with the given variance."""
    if variance < 0:
        raise ConfigurationError(f"variance must be non-negative, got {variance}")
    scale = np.sqrt(variance / 2.0)
    return scale * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


def awgn(samples: np.ndarray, noise_power: float, rng: np.random.Generator) -> np.ndarray:
    """Add white Gaussian noise of the given (linear) power to ``samples``."""
    samples = np.asarray(samples, dtype=complex)
    return samples + complex_gaussian(samples.shape, rng, noise_power)


def rayleigh_mimo_channel(n_rx: int, n_tx: int, rng: np.random.Generator) -> np.ndarray:
    """An ``(n_rx, n_tx)`` i.i.d. Rayleigh-fading channel matrix with unit
    average power per entry."""
    return complex_gaussian((n_rx, n_tx), rng, 1.0)


def rician_mimo_channel(
    n_rx: int,
    n_tx: int,
    rng: np.random.Generator,
    k_factor_db: float = 6.0,
) -> np.ndarray:
    """An ``(n_rx, n_tx)`` Rician channel with the given K-factor.

    The line-of-sight component has a random but common phase ramp across
    antennas, modelling a dominant direct path (used for the line-of-sight
    locations of the testbed).
    """
    k = db_to_linear(k_factor_db)
    scatter = rayleigh_mimo_channel(n_rx, n_tx, rng)
    phase_rx = np.exp(1j * 2 * np.pi * rng.random(n_rx))
    phase_tx = np.exp(1j * 2 * np.pi * rng.random(n_tx))
    los = np.outer(phase_rx, phase_tx)
    return np.sqrt(k / (k + 1)) * los + np.sqrt(1 / (k + 1)) * scatter


def apply_flat_channel(samples: np.ndarray, channel: np.ndarray) -> np.ndarray:
    """Apply a flat (frequency-non-selective) MIMO channel matrix.

    Parameters
    ----------
    samples:
        Transmitted samples, shape ``(n_tx, n_samples)``.
    channel:
        Channel matrix, shape ``(n_rx, n_tx)``.

    Returns
    -------
    numpy.ndarray
        Received samples, shape ``(n_rx, n_samples)`` (noise-free).
    """
    samples = np.asarray(samples, dtype=complex)
    channel = np.asarray(channel, dtype=complex)
    if samples.ndim == 1:
        samples = samples.reshape(1, -1)
    if channel.ndim == 1:
        channel = channel.reshape(1, -1)
    if channel.shape[1] != samples.shape[0]:
        raise ConfigurationError(
            f"channel expects {channel.shape[1]} transmit antennas, got {samples.shape[0]}"
        )
    return channel @ samples
