"""A synthetic testbed standing in for the paper's Fig. 10 deployment.

The paper evaluates n+ on ~20 USRP2 node locations spread over an office
floor, mixing line-of-sight and non-line-of-sight links, and repeats each
experiment with nodes assigned to random locations.  We reproduce the
*statistics* that matter for the results -- link SNRs spanning roughly
5-32 dB, frequency-selective fading, and independent channels per antenna
pair -- with a log-distance path-loss model plus log-normal shadowing and
Rayleigh/Rician multipath.

All link budgets are expressed relative to the receiver noise floor, so a
"channel" handed to the MIMO/PHY layers is already scaled such that a
unit-power transmit signal arrives with the link's SNR when the noise has
unit power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.hardware import HardwareProfile
from repro.channel.multipath import MultipathChannel
from repro.constants import MAX_TX_POWER_DBM, NOISE_FLOOR_DBM
from repro.exceptions import ConfigurationError
from repro.utils.db import db_to_linear

__all__ = ["Testbed", "TestbedLink", "default_testbed", "dense_testbed"]


@dataclass(frozen=True)
class TestbedLink:
    """A directional link between two placed nodes.

    Attributes
    ----------
    tx_location, rx_location:
        Indices into the testbed's location list.
    snr_db:
        Average SNR of the link at full transmit power (single antenna,
        unit-power stream).
    channel:
        The frequency-selective MIMO channel, scaled so that the average
        per-antenna-pair power gain equals the linear SNR (i.e. noise has
        unit power at the receiver).
    """

    tx_location: int
    rx_location: int
    snr_db: float
    channel: MultipathChannel

    @property
    def average_matrix(self) -> np.ndarray:
        """Frequency-averaged channel matrix."""
        return self.channel.average_matrix()

    def frequency_response(self, fft_size: int = 64) -> np.ndarray:
        """Per-subcarrier channel matrices, shape ``(fft_size, n_rx, n_tx)``."""
        return self.channel.frequency_response(fft_size)


@dataclass
class Testbed:
    """The synthetic deployment area.

    Attributes
    ----------
    locations:
        Candidate node positions in metres.
    tx_power_dbm:
        Transmit power used for link budgets.
    noise_floor_dbm:
        Receiver noise floor.
    path_loss_exponent:
        Log-distance path-loss exponent (office environments: ~3).
    reference_loss_db:
        Path loss at the 1 m reference distance.
    shadowing_sigma_db:
        Standard deviation of log-normal shadowing.
    los_probability:
        Probability that a link is treated as line-of-sight (Rician).
    n_taps:
        Multipath taps per link (within the cyclic prefix).
    hardware:
        The hardware impairment profile shared by all nodes.
    min_snr_db, max_snr_db:
        Links are clamped into this SNR range, mirroring the 5-32 dB
        operating range reported in §6.2.
    """

    locations: List[Tuple[float, float]]
    tx_power_dbm: float = MAX_TX_POWER_DBM
    noise_floor_dbm: float = NOISE_FLOOR_DBM
    path_loss_exponent: float = 3.3
    reference_loss_db: float = 56.7
    shadowing_sigma_db: float = 6.0
    los_probability: float = 0.35
    n_taps: int = 3
    hardware: HardwareProfile = field(default_factory=HardwareProfile)
    min_snr_db: float = 5.0
    max_snr_db: float = 30.0

    def __post_init__(self) -> None:
        if len(self.locations) < 2:
            raise ConfigurationError("a testbed needs at least two locations")

    # -- geometry -----------------------------------------------------------

    @property
    def n_locations(self) -> int:
        """Number of candidate node positions."""
        return len(self.locations)

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two locations, metres."""
        xa, ya = self.locations[a]
        xb, yb = self.locations[b]
        return float(np.hypot(xa - xb, ya - yb))

    def place_nodes(self, n_nodes: int, rng: np.random.Generator) -> List[int]:
        """Assign ``n_nodes`` nodes to distinct random locations."""
        if n_nodes > self.n_locations:
            raise ConfigurationError(
                f"cannot place {n_nodes} nodes on {self.n_locations} locations"
            )
        return list(rng.choice(self.n_locations, size=n_nodes, replace=False))

    # -- link budget ----------------------------------------------------------

    def path_loss_at_distance(self, distance):
        """Log-distance path loss at ``distance`` metres (scalar or array).

        Distances clamp to the 1 m reference.  This is *the* propagation
        formula: the scalar :meth:`path_loss_db` and the vectorized
        all-pairs computation of the batched network construction both
        evaluate it, so a model change cannot diverge between them.
        """
        return self.reference_loss_db + 10 * self.path_loss_exponent * np.log10(
            np.maximum(distance, 1.0)
        )

    def path_loss_db(self, a: int, b: int) -> float:
        """Deterministic log-distance path loss between two locations."""
        return self.path_loss_at_distance(self.distance(a, b))

    def link_snr_db(
        self,
        a: int,
        b: int,
        rng: Optional[np.random.Generator] = None,
        path_loss_db: Optional[float] = None,
    ) -> float:
        """Average link SNR (dB) including shadowing, clamped to the
        testbed's operating range.

        ``path_loss_db`` lets a caller that already computed the
        deterministic loss (e.g. vectorized over all pairs) skip the
        per-call :meth:`path_loss_db`; the shadowing draw, budget
        arithmetic and clamp are shared either way.
        """
        loss = self.path_loss_db(a, b) if path_loss_db is None else path_loss_db
        if rng is not None:
            loss = loss + rng.normal(0.0, self.shadowing_sigma_db)
        snr = self.tx_power_dbm - loss - self.noise_floor_dbm
        # min/max, not np.clip: same value, but cheap enough for the
        # batched construction's once-per-pair call.
        return float(min(max(snr, self.min_snr_db), self.max_snr_db))

    # -- channel generation ------------------------------------------------------

    def draw_link_scalars(
        self,
        tx_location: int,
        rx_location: int,
        rng: np.random.Generator,
        snr_db: Optional[float] = None,
        path_loss_db: Optional[float] = None,
    ) -> Tuple[float, float]:
        """The per-link scalar draws, in canonical order.

        This is *the* definition of a link's scalar random-draw sequence
        -- the shadowed SNR (one ``rng.normal``, skipped when ``snr_db``
        forces the budget) followed by the line-of-sight coin (one
        ``rng.random``) -- shared by :meth:`link`, :meth:`link_batch` and
        the batched network construction
        (:meth:`repro.sim.network.Network._draw_channels`), so the
        bit-identity contract between those paths lives in one place.

        ``path_loss_db`` lets a caller that has already computed the
        deterministic log-distance loss (e.g. vectorized over all pairs)
        skip the per-link :meth:`path_loss_db` call; the shadowing,
        clamping and float arithmetic stay identical either way.

        Returns ``(snr_db, decay_samples)``.
        """
        if snr_db is None:
            snr_db = self.link_snr_db(
                tx_location, rx_location, rng, path_loss_db=path_loss_db
            )
        else:
            snr_db = float(snr_db)
        line_of_sight = rng.random() < self.los_probability
        # Line of sight: a strong first tap plus weak scattering.
        return snr_db, 0.6 if line_of_sight else 1.5

    def draw_link_scalars_batch(
        self,
        path_loss_db: np.ndarray,
        rng: np.random.Generator,
        forced_snr_db: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Every link's scalar draws at once -- the grouped (v3) contract.

        Where :meth:`draw_link_scalars` interleaves the two scalar draws
        link by link (the contract the ``"batched"``/``"per-pair"`` v2
        network constructions share), this consumes randomness
        **scalars-first**: ONE ``rng.normal`` call draws the shadowing of
        every link, then ONE ``rng.random`` call draws every
        line-of-sight coin.  A shadowing value is drawn (and discarded)
        even for links whose SNR is forced, so the stream layout depends
        only on the link count, never on the forced set.  Seeded results
        therefore differ from the v2 contracts by design -- selecting
        this contract rides the ``CACHE_SCHEMA_VERSION`` bump (see
        :mod:`repro.sim.sweep`).

        Parameters
        ----------
        path_loss_db:
            Deterministic log-distance losses, shape ``(n_links,)``.
        rng:
            The construction generator.
        forced_snr_db:
            Optional ``(n_links,)`` array of forced SNRs, ``NaN`` where
            the link derives its budget from the geometry.

        Returns ``(snr_db, decay_samples)`` arrays of shape ``(n_links,)``.
        """
        loss = np.asarray(path_loss_db, dtype=float)
        shadow = rng.normal(0.0, self.shadowing_sigma_db, size=loss.shape)
        snr = self.tx_power_dbm - (loss + shadow) - self.noise_floor_dbm
        snr = np.minimum(np.maximum(snr, self.min_snr_db), self.max_snr_db)
        if forced_snr_db is not None:
            forced = np.asarray(forced_snr_db, dtype=float)
            snr = np.where(np.isnan(forced), snr, forced)
        line_of_sight = rng.random(loss.shape) < self.los_probability
        decay = np.where(line_of_sight, 0.6, 1.5)
        return snr, decay

    def link(
        self,
        tx_location: int,
        rx_location: int,
        n_tx: int,
        n_rx: int,
        rng: np.random.Generator,
        snr_db: Optional[float] = None,
    ) -> TestbedLink:
        """Draw the channel of a link.

        Parameters
        ----------
        tx_location, rx_location:
            Location indices of the two endpoints.
        n_tx, n_rx:
            Antenna counts.
        rng:
            Random generator (placements, shadowing and fading).
        snr_db:
            Force the average link SNR instead of deriving it from the
            geometry; used by controlled experiments such as Fig. 11.
        """
        snr_db, decay = self.draw_link_scalars(tx_location, rx_location, rng, snr_db)
        channel = MultipathChannel.random(
            n_rx=n_rx,
            n_tx=n_tx,
            rng=rng,
            n_taps=self.n_taps,
            decay_samples=decay,
            average_gain=float(db_to_linear(snr_db)),
        )
        return TestbedLink(
            tx_location=tx_location,
            rx_location=rx_location,
            snr_db=float(snr_db),
            channel=channel,
        )

    def link_batch(
        self,
        tx_locations: Sequence[int],
        rx_locations: Sequence[int],
        n_tx: int,
        n_rx: int,
        rng: np.random.Generator,
        snr_db: Optional[Sequence[Optional[float]]] = None,
    ) -> List[TestbedLink]:
        """Draw many same-antenna-shape links with batched channel math.

        Bit-identical to calling :meth:`link` once per ``(tx_locations[i],
        rx_locations[i])`` with the same generator: the scalar draws
        (shadowing, line-of-sight) and the per-link tap normals are
        consumed in exactly the per-link order, but the tap scaling and
        any further processing run as one stacked operation over the
        whole batch.  ``snr_db`` may be ``None`` (derive every link from
        geometry) or a sequence with ``None``/forced entries per link.
        """
        tx_locations = list(tx_locations)
        rx_locations = list(rx_locations)
        if len(tx_locations) != len(rx_locations):
            raise ConfigurationError(
                f"need one rx location per tx location, got "
                f"{len(tx_locations)} vs {len(rx_locations)}"
            )
        n_links = len(tx_locations)
        forced = list(snr_db) if snr_db is not None else [None] * n_links
        if len(forced) != n_links:
            raise ConfigurationError(
                f"snr_db must have one entry per link, got {len(forced)}"
            )

        snrs: List[float] = []
        decays: List[float] = []
        raws: List[np.ndarray] = []
        for a, b, forced_snr in zip(tx_locations, rx_locations, forced):
            snr, decay = self.draw_link_scalars(a, b, rng, forced_snr)
            snrs.append(snr)
            decays.append(decay)
            raws.append(rng.standard_normal((self.n_taps, 2, n_rx, n_tx)))

        gains = db_to_linear(np.asarray(snrs, dtype=float))
        taps = MultipathChannel.random_batch(
            n_rx,
            n_tx,
            rng=None,
            n_channels=n_links,
            n_taps=self.n_taps,
            decay_samples=np.asarray(decays),
            average_gain=gains,
            raw=np.stack(raws) if raws else np.zeros((0, self.n_taps, 2, n_rx, n_tx)),
        )
        return [
            TestbedLink(
                tx_location=a,
                rx_location=b,
                snr_db=snrs[index],
                channel=MultipathChannel(taps=taps[index]),
            )
            for index, (a, b) in enumerate(zip(tx_locations, rx_locations))
        ]

    def link_between_placed(
        self,
        placements: Sequence[int],
        tx_index: int,
        rx_index: int,
        n_tx: int,
        n_rx: int,
        rng: np.random.Generator,
    ) -> TestbedLink:
        """Convenience wrapper: link between two already-placed nodes."""
        return self.link(placements[tx_index], placements[rx_index], n_tx, n_rx, rng)


def default_testbed(hardware: Optional[HardwareProfile] = None) -> Testbed:
    """The default synthetic floor plan.

    Twenty candidate locations laid out over a ~30 m x 20 m office floor:
    a central corridor (mostly line-of-sight links) and offices on either
    side (non-line-of-sight), echoing the deployment sketched in Fig. 10.
    """
    corridor = [(5.0 * i, 10.0) for i in range(1, 7)]
    north_offices = [(4.0 + 6.0 * i, 16.5) for i in range(5)]
    south_offices = [(4.0 + 6.0 * i, 3.5) for i in range(5)]
    corners = [(1.0, 1.0), (29.0, 1.0), (1.0, 19.0), (29.0, 19.0)]
    locations = corridor + north_offices + south_offices + corners
    return Testbed(locations=locations, hardware=hardware or HardwareProfile())


def dense_testbed(
    n_locations: int = 64,
    width_m: float = 60.0,
    height_m: float = 40.0,
    seed: int = 0,
    hardware: Optional[HardwareProfile] = None,
) -> Testbed:
    """A larger synthetic floor for the dense-LAN scenarios.

    The default 20-location floor of :func:`default_testbed` cannot hold
    the 20-50 node scenarios of :func:`repro.sim.scenarios.dense_lan_scenario`,
    so this builds a bigger one: ``n_locations`` candidate positions on a
    jittered grid covering ``width_m`` x ``height_m`` metres (roughly a
    whole office storey at the defaults).  The layout is deterministic
    given ``seed`` -- the jitter comes from a generator seeded here, not
    from any per-run randomness -- so scenarios built on it have stable
    geometry for caching and cross-run comparisons.
    """
    if n_locations < 2:
        raise ConfigurationError("a testbed needs at least two locations")
    rng = np.random.default_rng(seed)
    n_cols = int(np.ceil(np.sqrt(n_locations * width_m / height_m)))
    n_rows = int(np.ceil(n_locations / n_cols))
    xs = np.linspace(2.0, width_m - 2.0, n_cols)
    ys = np.linspace(2.0, height_m - 2.0, n_rows)
    spacing = min(
        xs[1] - xs[0] if n_cols > 1 else width_m,
        ys[1] - ys[0] if n_rows > 1 else height_m,
    )
    grid = [(float(x), float(y)) for y in ys for x in xs][:n_locations]
    jitter = rng.uniform(-0.3, 0.3, size=(len(grid), 2)) * spacing
    locations = [
        (
            float(np.clip(x + dx, 0.5, width_m - 0.5)),
            float(np.clip(y + dy, 0.5, height_m - 0.5)),
        )
        for (x, y), (dx, dy) in zip(grid, jitter)
    ]
    return Testbed(locations=locations, hardware=hardware or HardwareProfile())
