"""Channel reciprocity with calibration error.

n+ transmitters learn the channel *to* the receivers of ongoing
transmissions by overhearing those receivers' light-weight CTS messages
and applying reciprocity (§2).  Real hardware adds its own transmit/receive
chains on top of the over-the-air channel; the paper calibrates those
offline (footnote 2), leaving a small residual error.  This module models
that pipeline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.hardware import HardwareProfile

__all__ = ["reverse_channel", "calibrated_reverse_channel"]


def reverse_channel(forward: np.ndarray) -> np.ndarray:
    """The ideal reverse channel: the transpose of the forward channel.

    ``forward[j, i]`` is the gain from antenna ``i`` of node A to antenna
    ``j`` of node B; electromagnetics makes the reverse gain identical, so
    the B-to-A matrix is the transpose (not the conjugate transpose).
    """
    return np.asarray(forward, dtype=complex).T.copy()


def calibrated_reverse_channel(
    forward: np.ndarray,
    hardware: HardwareProfile,
    rng: np.random.Generator,
    calibration_quality_db: Optional[float] = None,
) -> np.ndarray:
    """Reverse channel as estimated by a real node after calibration.

    The result equals the true reverse channel plus a complex Gaussian
    calibration/estimation error ``calibration_quality_db`` below the
    channel power (defaults to the hardware profile's reciprocity error).
    """
    ideal = reverse_channel(forward)
    if calibration_quality_db is None:
        return hardware.perturb_channel(ideal, rng, reciprocity=True)
    power = float(np.mean(np.abs(ideal) ** 2)) if ideal.size else 0.0
    variance = power * 10 ** (calibration_quality_db / 10.0)
    error = np.sqrt(variance / 2.0) * (
        rng.standard_normal(ideal.shape) + 1j * rng.standard_normal(ideal.shape)
    )
    return ideal + error
