"""Wireless channel and testbed models.

This package replaces the paper's physical USRP2 testbed with a synthetic
but behaviour-preserving substitute:

* :mod:`repro.channel.models` -- AWGN and flat Rayleigh/Rician MIMO fading.
* :mod:`repro.channel.multipath` -- tapped-delay-line multipath and the
  per-subcarrier frequency-selective channel it induces.
* :mod:`repro.channel.hardware` -- hardware impairments: noise floor,
  per-node carrier-frequency offsets, channel-estimation error and the
  finite nulling/alignment depth observed on real radios (§6.2).
* :mod:`repro.channel.reciprocity` -- forward/reverse channel reciprocity
  with a calibration error term (§2, footnote 2).
* :mod:`repro.channel.testbed` -- a synthetic floor plan standing in for
  the testbed of Fig. 10: node placement, log-distance path loss,
  shadowing, and per-link MIMO channel generation.
"""

from repro.channel.models import awgn, rayleigh_mimo_channel, rician_mimo_channel
from repro.channel.multipath import MultipathChannel, exponential_power_delay_profile
from repro.channel.hardware import HardwareProfile
from repro.channel.reciprocity import reverse_channel
from repro.channel.testbed import Testbed, TestbedLink, default_testbed

__all__ = [
    "awgn",
    "rayleigh_mimo_channel",
    "rician_mimo_channel",
    "MultipathChannel",
    "exponential_power_delay_profile",
    "HardwareProfile",
    "reverse_channel",
    "Testbed",
    "TestbedLink",
    "default_testbed",
]
