"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: full-PHY-heavy or otherwise expensive tests, deselected by "
        "`make test-fast` (pytest -m 'not slow')",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for generators with distinct but deterministic seeds."""

    def make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
