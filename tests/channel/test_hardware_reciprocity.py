"""Tests for hardware impairments and reciprocity modelling."""

import numpy as np
import pytest

from repro.channel.hardware import HardwareProfile
from repro.channel.reciprocity import calibrated_reverse_channel, reverse_channel
from repro.utils.db import linear_to_db


class TestHardwareProfile:
    def test_noise_floor_conversion(self):
        profile = HardwareProfile(noise_floor_dbm=-90.0)
        assert linear_to_db(profile.noise_floor_mw) == pytest.approx(-90.0)

    def test_residual_interference_suppression_amount(self):
        profile = HardwareProfile(nulling_suppression_db=27.0, alignment_suppression_db=25.0)
        interference = 100.0
        nulled = profile.residual_interference_power(interference, aligned=False)
        aligned = profile.residual_interference_power(interference, aligned=True)
        assert linear_to_db(interference / nulled) == pytest.approx(27.0, abs=1e-9)
        assert linear_to_db(interference / aligned) == pytest.approx(25.0, abs=1e-9)

    def test_alignment_leaves_more_residual_than_nulling(self):
        profile = HardwareProfile()
        interference = 50.0
        assert profile.residual_interference_power(
            interference, aligned=True
        ) > profile.residual_interference_power(interference, aligned=False)

    def test_randomised_suppression_has_spread(self, rng):
        profile = HardwareProfile()
        values = [
            profile.residual_interference_power(10.0, aligned=False, rng=rng) for _ in range(200)
        ]
        assert np.std(linear_to_db(values)) > 0.5

    def test_perturb_channel_error_level(self, rng):
        profile = HardwareProfile(channel_estimation_error_db=-30.0)
        channel = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        errors = []
        for _ in range(300):
            estimate = profile.perturb_channel(channel, rng)
            errors.append(np.mean(np.abs(estimate - channel) ** 2))
        error_db = linear_to_db(np.mean(errors) / np.mean(np.abs(channel) ** 2))
        assert error_db == pytest.approx(-30.0, abs=1.5)

    def test_reciprocity_estimates_are_noisier(self, rng):
        profile = HardwareProfile()
        channel = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        direct = np.mean(
            [
                np.mean(np.abs(profile.perturb_channel(channel, rng) - channel) ** 2)
                for _ in range(300)
            ]
        )
        reciprocal = np.mean(
            [
                np.mean(
                    np.abs(profile.perturb_channel(channel, rng, reciprocity=True) - channel) ** 2
                )
                for _ in range(300)
            ]
        )
        assert reciprocal > direct

    def test_cfo_draw_is_bounded(self, rng):
        profile = HardwareProfile(max_cfo_hz=1000.0)
        draws = [profile.draw_cfo(rng) for _ in range(100)]
        assert all(-1000.0 <= value <= 1000.0 for value in draws)

    def test_estimation_error_variance_scales_with_channel_power(self):
        profile = HardwareProfile(channel_estimation_error_db=-20.0)
        assert profile.estimation_error_variance(10.0) == pytest.approx(0.1)


class TestReciprocity:
    def test_ideal_reverse_is_transpose(self, rng):
        forward = rng.standard_normal((2, 3)) + 1j * rng.standard_normal((2, 3))
        reverse = reverse_channel(forward)
        assert reverse.shape == (3, 2)
        assert np.allclose(reverse, forward.T)

    def test_calibrated_reverse_is_close_to_transpose(self, rng):
        profile = HardwareProfile()
        forward = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        estimate = calibrated_reverse_channel(forward, profile, rng)
        relative_error = np.linalg.norm(estimate - forward.T) / np.linalg.norm(forward)
        assert relative_error < 0.2

    def test_calibration_quality_parameter(self, rng):
        forward = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        profile = HardwareProfile()
        coarse = calibrated_reverse_channel(forward, profile, rng, calibration_quality_db=-10.0)
        fine = calibrated_reverse_channel(forward, profile, rng, calibration_quality_db=-40.0)
        assert np.linalg.norm(fine - forward.T) < np.linalg.norm(coarse - forward.T)
