"""Tests for elementary channel models."""

import numpy as np
import pytest

from repro.channel.models import (
    apply_flat_channel,
    awgn,
    complex_gaussian,
    rayleigh_mimo_channel,
    rician_mimo_channel,
)
from repro.exceptions import ConfigurationError


class TestComplexGaussian:
    def test_variance_matches_request(self, rng):
        samples = complex_gaussian(100_000, rng, variance=4.0)
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(4.0, rel=0.05)

    def test_zero_variance(self, rng):
        assert np.allclose(complex_gaussian(10, rng, 0.0), 0)

    def test_negative_variance_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            complex_gaussian(10, rng, -1.0)

    def test_circular_symmetry(self, rng):
        samples = complex_gaussian(100_000, rng)
        assert abs(np.mean(samples.real)) < 0.02
        assert abs(np.mean(samples.imag)) < 0.02
        assert np.var(samples.real) == pytest.approx(np.var(samples.imag), rel=0.05)


class TestAwgn:
    def test_noise_power(self, rng):
        clean = np.zeros(50_000, dtype=complex)
        noisy = awgn(clean, 0.5, rng)
        assert np.mean(np.abs(noisy) ** 2) == pytest.approx(0.5, rel=0.05)

    def test_signal_preserved_in_mean(self, rng):
        clean = np.ones(50_000, dtype=complex)
        noisy = awgn(clean, 0.1, rng)
        assert np.mean(noisy).real == pytest.approx(1.0, abs=0.02)


class TestFadingChannels:
    def test_rayleigh_unit_average_power(self, rng):
        gains = [np.abs(rayleigh_mimo_channel(2, 2, rng)) ** 2 for _ in range(2000)]
        assert np.mean(gains) == pytest.approx(1.0, rel=0.1)

    def test_rician_k_factor_concentrates_power(self, rng):
        rayleigh_spread = np.var(
            [np.abs(rayleigh_mimo_channel(1, 1, rng)[0, 0]) for _ in range(3000)]
        )
        rician_spread = np.var(
            [np.abs(rician_mimo_channel(1, 1, rng, k_factor_db=10.0)[0, 0]) for _ in range(3000)]
        )
        assert rician_spread < rayleigh_spread

    def test_shapes(self, rng):
        assert rayleigh_mimo_channel(3, 2, rng).shape == (3, 2)
        assert rician_mimo_channel(2, 4, rng).shape == (2, 4)


class TestApplyFlatChannel:
    def test_matrix_multiplication_semantics(self, rng):
        channel = np.array([[1.0, 2.0], [0.5, -1.0]], dtype=complex)
        samples = rng.standard_normal((2, 10)) + 1j * rng.standard_normal((2, 10))
        received = apply_flat_channel(samples, channel)
        assert np.allclose(received, channel @ samples)

    def test_single_antenna_vector_input(self, rng):
        channel = np.array([[0.5 + 0.5j]])
        samples = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        received = apply_flat_channel(samples, channel)
        assert np.allclose(received[0], 0.5 * (1 + 1j) * samples)

    def test_mismatched_antennas_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            apply_flat_channel(np.zeros((3, 5)), np.zeros((2, 2)))
