"""Tests for the synthetic testbed."""

import numpy as np
import pytest

from repro.channel.testbed import Testbed, default_testbed
from repro.exceptions import ConfigurationError


class TestGeometry:
    def test_default_testbed_has_enough_locations(self):
        testbed = default_testbed()
        assert testbed.n_locations >= 15

    def test_distance_is_symmetric(self):
        testbed = default_testbed()
        assert testbed.distance(0, 5) == pytest.approx(testbed.distance(5, 0))

    def test_placements_are_distinct(self, rng):
        testbed = default_testbed()
        placements = testbed.place_nodes(6, rng)
        assert len(set(placements)) == 6

    def test_too_many_nodes_rejected(self, rng):
        testbed = default_testbed()
        with pytest.raises(ConfigurationError):
            testbed.place_nodes(testbed.n_locations + 1, rng)

    def test_needs_at_least_two_locations(self):
        with pytest.raises(ConfigurationError):
            Testbed(locations=[(0.0, 0.0)])


class TestLinkBudget:
    def test_path_loss_increases_with_distance(self):
        testbed = default_testbed()
        near = min(range(1, testbed.n_locations), key=lambda i: testbed.distance(0, i))
        far = max(range(1, testbed.n_locations), key=lambda i: testbed.distance(0, i))
        assert testbed.path_loss_db(0, far) > testbed.path_loss_db(0, near)

    def test_snr_is_clamped_to_operating_range(self, rng):
        testbed = default_testbed()
        for a in range(0, 10, 2):
            for b in range(1, 10, 2):
                if a == b:
                    continue
                snr = testbed.link_snr_db(a, b, rng)
                assert testbed.min_snr_db <= snr <= testbed.max_snr_db

    def test_link_snrs_span_a_wide_range(self, rng):
        """The synthetic deployment must produce both strong and weak links,
        mirroring the 5-30 dB spread of the paper's testbed."""
        testbed = default_testbed()
        snrs = []
        for _ in range(200):
            a, b = testbed.place_nodes(2, rng)
            snrs.append(testbed.link_snr_db(a, b, rng))
        assert min(snrs) < 12.0
        assert max(snrs) > 24.0


class TestLinkGeneration:
    def test_link_shapes_and_snr(self, rng):
        testbed = default_testbed()
        link = testbed.link(0, 7, n_tx=2, n_rx=3, rng=rng)
        assert link.channel.n_tx == 2
        assert link.channel.n_rx == 3
        assert link.frequency_response(64).shape == (64, 3, 2)
        assert testbed.min_snr_db <= link.snr_db <= testbed.max_snr_db

    def test_forced_snr_is_respected(self, rng):
        testbed = default_testbed()
        link = testbed.link(0, 7, n_tx=1, n_rx=1, rng=rng, snr_db=17.0)
        assert link.snr_db == pytest.approx(17.0)

    def test_channel_power_tracks_snr(self, rng):
        testbed = default_testbed()
        gains = []
        for seed in range(200):
            link = testbed.link(0, 9, 1, 1, np.random.default_rng(seed), snr_db=20.0)
            gains.append(np.sum(np.abs(link.channel.taps) ** 2))
        assert 10 * np.log10(np.mean(gains)) == pytest.approx(20.0, abs=1.5)

    def test_link_between_placed_nodes(self, rng):
        testbed = default_testbed()
        placements = testbed.place_nodes(4, rng)
        link = testbed.link_between_placed(placements, 0, 3, n_tx=1, n_rx=2, rng=rng)
        assert link.tx_location == placements[0]
        assert link.rx_location == placements[3]

    def test_taps_respect_cyclic_prefix(self, rng):
        testbed = default_testbed()
        link = testbed.link(0, 5, 2, 2, rng)
        assert link.channel.n_taps <= 16
