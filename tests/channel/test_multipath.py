"""Tests for the tapped-delay-line multipath channel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.multipath import MultipathChannel, exponential_power_delay_profile
from repro.exceptions import ConfigurationError, DimensionError


class TestPowerDelayProfile:
    def test_normalised(self):
        for n_taps in (1, 3, 8):
            assert exponential_power_delay_profile(n_taps).sum() == pytest.approx(1.0)

    def test_monotonically_decaying(self):
        profile = exponential_power_delay_profile(6, decay_samples=2.0)
        assert all(a > b for a, b in zip(profile, profile[1:]))

    def test_zero_taps_rejected(self):
        with pytest.raises(ConfigurationError):
            exponential_power_delay_profile(0)


class TestMultipathChannel:
    def test_random_channel_shapes(self, rng):
        channel = MultipathChannel.random(3, 2, rng, n_taps=4)
        assert channel.n_taps == 4
        assert channel.n_rx == 3
        assert channel.n_tx == 2

    def test_taps_cannot_exceed_cyclic_prefix(self, rng):
        with pytest.raises(ConfigurationError):
            MultipathChannel.random(1, 1, rng, n_taps=17)

    def test_average_gain_controls_power(self, rng):
        gains = []
        for seed in range(300):
            channel = MultipathChannel.random(2, 2, np.random.default_rng(seed), average_gain=10.0)
            gains.append(np.sum(np.abs(channel.taps) ** 2, axis=0).mean())
        assert np.mean(gains) == pytest.approx(10.0, rel=0.15)

    def test_flat_constructor(self):
        matrix = np.array([[1.0, 2.0]])
        channel = MultipathChannel.flat(matrix)
        assert channel.n_taps == 1
        assert np.allclose(channel.average_matrix(), matrix)

    def test_flat_requires_matrix(self):
        with pytest.raises(DimensionError):
            MultipathChannel.flat(np.zeros(3))

    def test_frequency_response_shape(self, rng):
        channel = MultipathChannel.random(2, 3, rng, n_taps=3)
        response = channel.frequency_response(64)
        assert response.shape == (64, 2, 3)

    def test_single_tap_channel_has_flat_response(self, rng):
        matrix = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        response = MultipathChannel.flat(matrix).frequency_response(16)
        for k in range(16):
            assert np.allclose(response[k], matrix)

    def test_apply_is_convolution(self, rng):
        channel = MultipathChannel.random(1, 1, rng, n_taps=3)
        impulse = np.zeros((1, 10), dtype=complex)
        impulse[0, 0] = 1.0
        out = channel.apply(impulse)
        assert np.allclose(out[0, :3], channel.taps[:, 0, 0])
        assert np.allclose(out[0, 3:], 0)

    def test_apply_preserves_length(self, rng):
        channel = MultipathChannel.random(2, 2, rng, n_taps=4)
        samples = rng.standard_normal((2, 500)) + 1j * rng.standard_normal((2, 500))
        assert channel.apply(samples).shape == (2, 500)

    def test_apply_rejects_wrong_antenna_count(self, rng):
        channel = MultipathChannel.random(2, 2, rng)
        with pytest.raises(DimensionError):
            channel.apply(np.zeros((3, 10)))

    def test_scaled_changes_power(self, rng):
        channel = MultipathChannel.random(1, 1, rng)
        scaled = channel.scaled(4.0)
        assert np.allclose(np.abs(scaled.taps) ** 2, 4.0 * np.abs(channel.taps) ** 2)

    def test_parseval_consistency(self, rng):
        """Average frequency-domain power equals total tap power."""
        channel = MultipathChannel.random(1, 1, rng, n_taps=5)
        response = channel.frequency_response(64)[:, 0, 0]
        tap_power = np.sum(np.abs(channel.taps[:, 0, 0]) ** 2)
        assert np.mean(np.abs(response) ** 2) == pytest.approx(tap_power, rel=1e-6)

    @given(n_rx=st.integers(1, 3), n_tx=st.integers(1, 3), seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_frequency_response_matches_fft_of_taps(self, n_rx, n_tx, seed):
        rng = np.random.default_rng(seed)
        channel = MultipathChannel.random(n_rx, n_tx, rng, n_taps=4)
        response = channel.frequency_response(64)
        manual = np.fft.fft(
            np.concatenate([channel.taps, np.zeros((60, n_rx, n_tx))], axis=0), axis=0
        )
        assert np.allclose(response, manual, atol=1e-10)
