"""Tests for the batched round pipeline.

The load-bearing guarantees:

* the batched pipeline produces metrics bit-identical to the per-agent
  reference pipeline (and to the condensed slot-polling loop) for
  saturated and bursty traffic, on the paper topologies and dense LANs;
* the batched ``has_traffic`` / ``next_traffic_time_us`` / join-eligibility
  masks agree with the per-agent methods at every round of a real run
  (checked by a cross-checking loop subclass);
* results do not depend on the order the agents were built in (shuffled
  pair order, same network, same metrics);
* the vectorised idle-gap computation reproduces the kept slot-stepping
  reference loop bit for bit.
"""

import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.runner import (
    SimulationConfig,
    _BatchedEventDrivenLoop,
    _ESTIMATION_STREAM_TAG,
    _EventDrivenLoop,
    _run_simulation_condensed_reference,
    _slot_aligned_idle_end,
    _slot_aligned_idle_end_reference,
    build_network,
    run_simulation,
)
from repro.sim.scenarios import (
    Scenario,
    dense_lan_scenario,
    scenario_factory,
    three_pair_scenario,
)

FAST = SimulationConfig(duration_us=10_000.0, n_subcarriers=8)


class TestPipelineEquivalence:
    """batched == per-agent == condensed, bit for bit."""

    @pytest.mark.parametrize("protocol", ["802.11n", "n+", "beamforming"])
    def test_three_pair_all_protocols(self, protocol):
        batched = run_simulation(
            three_pair_scenario(), protocol, seed=11, config=FAST, pipeline="batched"
        )
        per_agent = run_simulation(
            three_pair_scenario(), protocol, seed=11, config=FAST, pipeline="per-agent"
        )
        condensed = _run_simulation_condensed_reference(
            three_pair_scenario(), protocol, seed=11, config=FAST
        )
        assert batched.to_dict() == per_agent.to_dict() == condensed.to_dict()

    @pytest.mark.parametrize("name", ["dense-lan-20", "dense-lan-30", "dense-lan-50"])
    def test_dense_lans(self, name):
        scenario = scenario_factory(name)()
        config = SimulationConfig(duration_us=4_000.0, n_subcarriers=8)
        batched = run_simulation(scenario, "n+", seed=3, config=config, pipeline="batched")
        per_agent = run_simulation(
            scenario, "n+", seed=3, config=config, pipeline="per-agent"
        )
        assert batched.to_dict() == per_agent.to_dict()

    @pytest.mark.parametrize("rate_pps", [60.0, 300.0])
    def test_bursty_traffic(self, rate_pps):
        config = SimulationConfig(
            duration_us=25_000.0, n_subcarriers=8, packet_rate_pps=rate_pps
        )
        batched = run_simulation(
            three_pair_scenario(), "n+", seed=5, config=config, pipeline="batched"
        )
        per_agent = run_simulation(
            three_pair_scenario(), "n+", seed=5, config=config, pipeline="per-agent"
        )
        condensed = _run_simulation_condensed_reference(
            three_pair_scenario(), "n+", seed=5, config=config
        )
        assert batched.to_dict() == per_agent.to_dict() == condensed.to_dict()

    def test_bursty_dense_lan(self):
        scenario = scenario_factory("dense-lan-20-bursty")()
        config = SimulationConfig(duration_us=6_000.0, n_subcarriers=8)
        batched = run_simulation(scenario, "n+", seed=2, config=config, pipeline="batched")
        per_agent = run_simulation(
            scenario, "n+", seed=2, config=config, pipeline="per-agent"
        )
        assert batched.to_dict() == per_agent.to_dict()

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simulation(three_pair_scenario(), "n+", config=FAST, pipeline="turbo")


class _CheckedBatchedLoop(_BatchedEventDrivenLoop):
    """Batched loop that cross-checks every batched query against the
    per-agent computation, mid-run, on live simulation state.

    The cross-checks are side-effect-free: the per-agent scans re-refill
    agents the batched path already refilled (or skipped as provable
    no-ops), so the simulation trajectory is untouched -- which the tests
    confirm by comparing the final metrics against an unchecked run.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.checked_contention_rounds = 0
        self.checked_join_rounds = 0

    def _contending_agents(self, now):
        batched = super()._contending_agents(now)
        reference = [a for a in self.agents.values() if a.has_traffic(now)]
        assert [a.node_id for a in batched] == sorted(a.node_id for a in reference)
        self.checked_contention_rounds += 1
        return batched

    def _next_traffic_time_us(self, now):
        batched = super()._next_traffic_time_us(now)
        reference = _EventDrivenLoop._next_traffic_time_us(self, now)
        assert batched == reference
        return batched

    def _join_eligible(self, now, exhausted):
        batched = super()._join_eligible(now, exhausted)
        reference = _EventDrivenLoop._join_eligible(self, now, exhausted)
        assert [a.node_id for a in batched] == sorted(a.node_id for a in reference)
        self.checked_join_rounds += 1
        return batched


def _run_checked(scenario, seed, config):
    network = build_network(scenario, seed, config)
    network.reseed_estimation_noise((seed, _ESTIMATION_STREAM_TAG))
    loop = _CheckedBatchedLoop(
        scenario, "n+", np.random.default_rng(seed), config, network, seed=seed
    )
    return loop, loop.run()


class TestMaskEquivalence:
    """The batched masks vs per-agent ``has_traffic``/``can_join``, checked
    at every single round of live dense-LAN runs."""

    @pytest.mark.parametrize("name", ["dense-lan-20", "dense-lan-30", "dense-lan-50"])
    def test_masks_on_saturated_dense_lans(self, name):
        scenario = scenario_factory(name)()
        config = SimulationConfig(duration_us=3_000.0, n_subcarriers=8)
        loop, metrics = _run_checked(scenario, 7, config)
        assert loop.checked_contention_rounds > 0
        if name == "dense-lan-20":
            # The denser LANs are collision-bound in a short window; the
            # join phase (and its mask check) only runs after a clean win.
            assert loop.checked_join_rounds > 0
        # The cross-checking did not perturb the simulation.
        unchecked = run_simulation(
            scenario,
            "n+",
            seed=7,
            config=config,
            network=build_network(scenario, 7, config),
        )
        assert metrics.to_dict() == unchecked.to_dict()

    def test_masks_on_bursty_dense_lan(self):
        scenario = scenario_factory("dense-lan-20-bursty")()
        config = SimulationConfig(duration_us=6_000.0, n_subcarriers=8)
        loop, metrics = _run_checked(scenario, 9, config)
        assert loop.checked_contention_rounds > 0

    def test_traffic_arrays_are_sorted_and_static_columns_match(self):
        scenario = scenario_factory("dense-lan-20")()
        config = SimulationConfig(duration_us=1_000.0, n_subcarriers=8)
        network = build_network(scenario, 1, config)
        loop = _BatchedEventDrivenLoop(
            scenario, "n+", np.random.default_rng(1), config, network, seed=1
        )
        arrays = loop.arrays
        assert list(arrays.node_ids) == sorted(arrays.node_ids)
        by_id = {agent.node_id: agent for agent in loop.agents.values()}
        for row, node_id in enumerate(arrays.node_ids):
            agent = by_id[int(node_id)]
            assert arrays.n_antennas[row] == agent.n_antennas
            assert arrays.supports_joining[row] == agent.supports_joining
        # Saturated scenario: after the first round's refills everyone is
        # backlogged and nobody has a pending arrival to poll for.
        loop._contending_agents(0.0)
        assert arrays.backlogged.all()
        assert np.isinf(arrays.next_arrival_us).all()


class TestShuffledAgentOrderDeterminism:
    """Metrics are a function of the topology, not of agent build order."""

    @pytest.mark.parametrize("pipeline", ["batched", "per-agent"])
    @pytest.mark.parametrize("rate_pps", [None, 250.0])
    def test_reversed_pair_order_is_identical(self, pipeline, rate_pps):
        scenario = dense_lan_scenario(n_pairs=6, seed=9, packet_rate_pps=rate_pps)
        shuffled = Scenario(
            scenario.name,
            scenario.stations,
            list(reversed(scenario.pairs)),
            testbed_factory=scenario.testbed_factory,
            packet_rate_pps=scenario.packet_rate_pps,
        )
        config = SimulationConfig(duration_us=6_000.0, n_subcarriers=8)
        network = build_network(scenario, 4, config)
        forward = run_simulation(
            scenario, "n+", seed=4, config=config, network=network, pipeline=pipeline
        )
        reversed_order = run_simulation(
            shuffled, "n+", seed=4, config=config, network=network, pipeline=pipeline
        )
        assert forward.to_dict() == reversed_order.to_dict()


class TestSlotAlignedIdleEnd:
    """The vectorised idle-gap computation vs the kept stepping loop."""

    def test_matches_reference_on_random_gaps(self):
        rng = np.random.default_rng(0)
        for _ in range(300):
            now = float(rng.uniform(0.0, 1e6))
            arrival = now + float(rng.uniform(0.0, 2e5))
            duration = float(rng.uniform(0.0, 1e6))
            fast = _slot_aligned_idle_end(now, arrival, duration)
            reference = _slot_aligned_idle_end_reference(now, arrival, duration)
            assert fast == reference

    def test_immediate_cases(self):
        assert _slot_aligned_idle_end(100.0, 50.0, 1e6) == (
            _slot_aligned_idle_end_reference(100.0, 50.0, 1e6)
        )
        assert _slot_aligned_idle_end(100.0, float("inf"), 90.0) == (
            _slot_aligned_idle_end_reference(100.0, float("inf"), 90.0)
        )

    def test_infinite_arrival_stops_at_window_end(self):
        fast = _slot_aligned_idle_end(0.0, float("inf"), 5_000.0)
        reference = _slot_aligned_idle_end_reference(0.0, float("inf"), 5_000.0)
        assert fast == reference

    def test_gap_longer_than_one_chunk(self):
        """A gap of ~70k slots spans several 64k-element cumsum chunks."""
        now = 123.456
        arrival = now + 70_000 * 9.0 + 1.0
        fast = _slot_aligned_idle_end(now, arrival, 1e9)
        reference = _slot_aligned_idle_end_reference(now, arrival, 1e9)
        assert fast == reference


class TestDenseLan100:
    def test_new_scenarios_are_registered(self):
        from repro.sim.scenarios import available_scenarios

        names = available_scenarios()
        for name in (
            "dense-lan-100",
            "dense-lan-200",
            "dense-lan-100-bursty",
            "dense-lan-200-bursty",
        ):
            assert name in names
        assert len(scenario_factory("dense-lan-100")().stations) == 100
        assert len(scenario_factory("dense-lan-200")().stations) == 200
        assert scenario_factory("dense-lan-100-bursty")().packet_rate_pps == 150.0

    def test_dense_lan_100_smoke(self):
        """A dense-lan-100 run completes end to end on the batched
        pipeline (shrunk under REPRO_QUICK, default-duration otherwise)."""
        scenario = scenario_factory("dense-lan-100")()
        duration = 20_000.0 if os.environ.get("REPRO_QUICK") else 100_000.0
        config = SimulationConfig(duration_us=duration, n_subcarriers=8)
        metrics = run_simulation(scenario, "n+", seed=1, config=config)
        assert len(metrics.links) == 50
        assert metrics.elapsed_us >= duration
