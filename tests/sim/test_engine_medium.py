"""Tests for the event scheduler and the medium bookkeeping."""

import numpy as np
import pytest

from repro.exceptions import MediumAccessError, SimulationError
from repro.phy.rates import MCS_TABLE
from repro.sim.engine import EventScheduler
from repro.sim.medium import Medium, ScheduledStream


class TestEventScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(30.0, lambda: order.append("late"))
        scheduler.schedule_at(10.0, lambda: order.append("early"))
        scheduler.schedule_at(20.0, lambda: order.append("middle"))
        scheduler.run_all()
        assert order == ["early", "middle", "late"]

    def test_ties_run_in_scheduling_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(5.0, lambda: order.append("first"))
        scheduler.schedule_at(5.0, lambda: order.append("second"))
        scheduler.run_all()
        assert order == ["first", "second"]

    def test_now_advances(self):
        scheduler = EventScheduler()
        scheduler.schedule_in(42.0, lambda: None)
        scheduler.run_all()
        assert scheduler.now_us == pytest.approx(42.0)

    def test_run_until_stops_at_time(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(10.0, lambda: fired.append(10))
        scheduler.schedule_at(50.0, lambda: fired.append(50))
        scheduler.run_until(20.0)
        assert fired == [10]
        assert scheduler.pending == 1

    def test_cancelled_events_do_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_at(10.0, lambda: fired.append(1))
        scheduler.cancel(event)
        scheduler.run_all()
        assert fired == []

    def test_events_can_schedule_more_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain():
            fired.append(scheduler.now_us)
            if len(fired) < 3:
                scheduler.schedule_in(5.0, chain)

        scheduler.schedule_in(5.0, chain)
        scheduler.run_all()
        assert fired == [5.0, 10.0, 15.0]

    def test_scheduling_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(10.0, lambda: None)
        scheduler.run_all()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_in(-1.0, lambda: None)

    def test_event_budget_guard(self):
        scheduler = EventScheduler()

        def forever():
            scheduler.schedule_in(1.0, forever)

        scheduler.schedule_in(1.0, forever)
        with pytest.raises(SimulationError):
            scheduler.run_all(max_events=100)


def _stream(medium, tx=1, rx=2, order=0, start=0.0, end=100.0):
    return ScheduledStream(
        stream_id=medium.next_stream_id(),
        transmitter_id=tx,
        receiver_id=rx,
        precoders=np.ones((4, 1), dtype=complex),
        power=1.0,
        mcs=MCS_TABLE[0],
        payload_bits=1000,
        start_us=start,
        end_us=end,
        join_order=order,
    )


class TestMedium:
    def test_add_and_remove_streams(self):
        medium = Medium()
        stream = _stream(medium)
        medium.add_streams([stream])
        assert medium.busy
        assert medium.used_degrees_of_freedom == 1
        medium.remove_streams([stream])
        assert not medium.busy

    def test_stream_ids_are_unique(self):
        medium = Medium()
        ids = {medium.next_stream_id() for _ in range(100)}
        assert len(ids) == 100

    def test_queries(self):
        medium = Medium()
        s1 = _stream(medium, tx=1, rx=2, order=0, end=500.0)
        s2 = _stream(medium, tx=3, rx=4, order=1, end=500.0)
        medium.add_streams([s1, s2])
        assert medium.transmitting_nodes() == [1, 3]
        assert medium.receiving_nodes() == [2, 4]
        assert medium.streams_to(2) == [s1]
        assert medium.streams_from(3) == [s2]
        assert medium.max_join_order() == 1
        assert medium.current_end_us == 500.0

    def test_idle_values(self):
        medium = Medium()
        assert medium.max_join_order() == -1
        assert medium.current_end_us == float("-inf")

    def test_removing_unknown_stream_raises(self):
        medium = Medium()
        stray = _stream(medium)
        with pytest.raises(MediumAccessError):
            medium.remove_streams([stray])

    def test_clear(self):
        medium = Medium()
        medium.add_streams([_stream(medium)])
        medium.clear()
        assert medium.used_degrees_of_freedom == 0

    def test_protects_lookup(self):
        medium = Medium()
        stream = _stream(medium)
        from repro.mimo.dof import InterferenceStrategy

        stream.protected_receivers[9] = InterferenceStrategy.NULL
        assert stream.protects(9)
        assert not stream.protects(2)
