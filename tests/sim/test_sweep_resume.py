"""Checkpoint/resume tests for run_sweep (fast, in-process paths).

The durable-sweep contract: a sweep records its manifest before any
work, an interruption checkpoints a resumable state, and resuming
produces metrics byte-identical to the sweep run uninterrupted.  The
subprocess-driven kill tests (SIGINT/SIGKILL against a real parallel
sweep) live in test_sweep_kill.py behind the slow marker; here the
interruptions are injected deterministically in-process.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.runner import SimulationConfig, placement_seed
from repro.sim.store import ResultsStore
from repro.sim.sweep import run_sweep, sweep_manifest_digest

FAST = SimulationConfig(duration_us=10_000.0, n_subcarriers=8)


def _as_dicts(results):
    return {
        protocol: [m.to_dict() if m is not None else None for m in runs]
        for protocol, runs in results.items()
    }


def _interrupt_on_seed(run_seed):
    """A build_network wrapper that raises KeyboardInterrupt once."""
    from repro.sim import sweep as sweep_module

    real = sweep_module.build_network
    fired = []

    def wrapper(scenario, seed, config):
        if seed == run_seed and not fired:
            fired.append(seed)
            raise KeyboardInterrupt
        return real(scenario, seed, config)

    return wrapper


class TestManifest:
    def test_completed_sweep_records_a_done_manifest(self, tmp_path):
        result = run_sweep(
            "three-pair", ["802.11n", "n+"], n_runs=2, seed=4, config=FAST,
            cache_dir=tmp_path,
        )
        assert result.sweep_id is not None
        record = ResultsStore(tmp_path).get_sweep(result.sweep_id)
        assert record.status == "done"
        assert record.manifest["scenario"] == "three-pair"
        assert record.manifest["protocols"] == ["802.11n", "n+"]
        assert record.manifest["n_runs"] == 2
        assert record.manifest["seed"] == 4
        assert sweep_manifest_digest(record.manifest) == result.sweep_id

    def test_uncached_sweeps_have_no_sweep_id(self):
        result = run_sweep("three-pair", ["n+"], n_runs=1, seed=4, config=FAST)
        assert result.sweep_id is None

    def test_any_grid_change_yields_a_distinct_sweep_id(self, tmp_path):
        base = run_sweep(
            "three-pair", ["n+"], n_runs=1, seed=4, config=FAST, cache_dir=tmp_path
        )
        more_runs = run_sweep(
            "three-pair", ["n+"], n_runs=2, seed=4, config=FAST, cache_dir=tmp_path
        )
        other_seed = run_sweep(
            "three-pair", ["n+"], n_runs=1, seed=5, config=FAST, cache_dir=tmp_path
        )
        assert len({base.sweep_id, more_runs.sweep_id, other_seed.sweep_id}) == 3


class TestResumeValidation:
    def test_resume_requires_a_cache_dir(self):
        with pytest.raises(ConfigurationError, match="resume"):
            run_sweep("three-pair", ["n+"], n_runs=1, config=FAST, resume=True)

    def test_resume_requires_the_sqlite_backend(self, tmp_path):
        with pytest.raises(ConfigurationError, match="sqlite"):
            run_sweep(
                "three-pair", ["n+"], n_runs=1, config=FAST,
                cache_dir=tmp_path, cache_backend="json", resume=True,
            )

    def test_resume_rejects_an_unknown_manifest(self, tmp_path):
        run_sweep(
            "three-pair", ["n+"], n_runs=1, seed=4, config=FAST, cache_dir=tmp_path
        )
        # Same store, different grid: nothing to resume.
        with pytest.raises(ConfigurationError, match="nothing to resume"):
            run_sweep(
                "three-pair", ["n+"], n_runs=3, seed=4, config=FAST,
                cache_dir=tmp_path, resume=True,
            )

    def test_resuming_a_completed_sweep_is_a_cheap_no_op(self, tmp_path):
        first = run_sweep(
            "three-pair", ["n+"], n_runs=2, seed=4, config=FAST, cache_dir=tmp_path
        )
        again = run_sweep(
            "three-pair", ["n+"], n_runs=2, seed=4, config=FAST,
            cache_dir=tmp_path, resume=True,
        )
        assert again.cache_hits == 2 and again.cache_misses == 0
        assert _as_dicts(again.results) == _as_dicts(first.results)


class TestInterruptAndResume:
    def test_interrupted_sweep_checkpoints_and_resumes_byte_identical(
        self, tmp_path, monkeypatch
    ):
        from repro.sim import sweep as sweep_module

        protocols = ["802.11n", "n+"]
        kwargs = dict(n_runs=3, seed=4, config=FAST, cache_dir=tmp_path)

        # Interrupt while computing run 1 (run 0 already stored).
        monkeypatch.setattr(
            sweep_module,
            "build_network",
            _interrupt_on_seed(placement_seed(4, 1)),
        )
        with pytest.raises(KeyboardInterrupt):
            run_sweep("three-pair", protocols, **kwargs)
        monkeypatch.undo()

        store = ResultsStore(tmp_path)
        sweeps = store.sweeps()
        assert len(sweeps) == 1 and sweeps[0].status == "interrupted"
        # The checkpoint left no cell in flight: run 0's cells are done,
        # everything else is pending again.
        assert store.count("running") == 0
        assert store.count("done") == len(protocols)
        assert store.count("pending") == 2 * len(protocols)
        store.close()

        resumed = run_sweep("three-pair", protocols, resume=True, **kwargs)
        assert resumed.cache_hits == len(protocols)
        assert resumed.cache_misses == 2 * len(protocols)
        fresh = run_sweep(
            "three-pair", protocols, n_runs=3, seed=4, config=FAST
        )
        assert _as_dicts(resumed.results) == _as_dicts(fresh.results)
        store = ResultsStore(tmp_path)
        assert store.get_sweep(resumed.sweep_id).status == "done"
        assert store.count("pending") == store.count("running") == 0

    def test_interrupt_before_any_result_still_checkpoints(
        self, tmp_path, monkeypatch
    ):
        from repro.sim import sweep as sweep_module

        monkeypatch.setattr(
            sweep_module,
            "build_network",
            _interrupt_on_seed(placement_seed(4, 0)),
        )
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                "three-pair", ["n+"], n_runs=2, seed=4, config=FAST,
                cache_dir=tmp_path,
            )
        monkeypatch.undo()
        store = ResultsStore(tmp_path)
        assert store.sweeps()[0].status == "interrupted"
        assert store.count("pending") == 2 and store.count("done") == 0
        store.close()
        resumed = run_sweep(
            "three-pair", ["n+"], n_runs=2, seed=4, config=FAST,
            cache_dir=tmp_path, resume=True,
        )
        fresh = run_sweep("three-pair", ["n+"], n_runs=2, seed=4, config=FAST)
        assert _as_dicts(resumed.results) == _as_dicts(fresh.results)

    def test_failed_cells_are_retried_by_a_later_sweep(self, tmp_path, monkeypatch):
        """`failed` rows are misses: re-running the grid recomputes them
        and flips the row to done."""
        import repro.sim.sweep as sweep_module

        real = sweep_module.build_network

        def crash(scenario, seed, config):
            raise RuntimeError("transient")

        monkeypatch.setattr(sweep_module, "build_network", crash)
        first = run_sweep(
            "three-pair", ["n+"], n_runs=1, seed=4, config=FAST,
            cache_dir=tmp_path, retry_backoff_s=0.0,
        )
        assert first.failures
        store = ResultsStore(tmp_path)
        assert store.count("failed") == 1
        store.close()

        monkeypatch.setattr(sweep_module, "build_network", real)
        second = run_sweep(
            "three-pair", ["n+"], n_runs=1, seed=4, config=FAST, cache_dir=tmp_path
        )
        assert not second.failures and second.cache_misses == 1
        store = ResultsStore(tmp_path)
        assert store.count("failed") == 0 and store.count("done") == 1
