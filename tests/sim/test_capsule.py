"""Replayable crash capsules: fault-schedule serialization, capsule
build/write/load, end-to-end capture by the sweep, deterministic
replay, the CLI surface, and the extreme-fade acceptance run."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import cli
from repro.exceptions import ConfigurationError
from repro.mac.nplus import NPlusMac
from repro.mac.variants import _VARIANTS, register_variant
from repro.sim.capsule import (
    CAPSULE_DIRNAME,
    CAPSULE_SCHEMA_VERSION,
    CrashCapsule,
    build_capsule,
    load_capsule,
    replay_capsule,
    write_capsule,
)
from repro.sim.faults import (
    FAULT_PROFILES,
    ChurnEpisode,
    FadeEpisode,
    FaultProfile,
    FaultSchedule,
    LossEpisode,
    register_fault_profile,
)
from repro.sim.runner import SimulationConfig
from repro.sim.scenarios import scenario_factory
from repro.sim.sweep import run_sweep, scenario_digest
from repro.mac.variants import resolve_protocol

FAST = SimulationConfig(duration_us=4000.0, n_subcarriers=4)


class CrashMac(NPlusMac):
    """An n+ agent that dies the moment it wins the floor."""

    protocol_name = "crashy"

    def plan_initial(self, *args, **kwargs):
        raise RuntimeError("injected crash for capsule tests")


@pytest.fixture
def crashy_protocol():
    register_variant("crashy", CrashMac, overwrite=True)
    try:
        yield "crashy"
    finally:
        _VARIANTS.pop("crashy", None)


def _crashy_sweep(tmp_path, **kwargs):
    defaults = dict(
        scenario="three-pair",
        protocols=["crashy"],
        n_runs=1,
        seed=3,
        config=FAST,
        workers=1,
        cache_dir=tmp_path,
        max_retries=0,
    )
    defaults.update(kwargs)
    return run_sweep(**defaults)


class TestFaultScheduleJsonable:
    def test_round_trips_every_episode_type(self):
        schedule = FaultSchedule(
            [
                FadeEpisode(10.0, 500.0, 1, 2, 20.0),
                LossEpisode(50.0, 100.0, 0.25),
                LossEpisode(60.0, 100.0, 0.5, tx_id=3, rx_id=4),
                ChurnEpisode(70.0, 1000.0, 5),
            ]
        )
        data = schedule.to_jsonable()
        json.dumps(data)  # plain JSON, no numpy leakage
        rebuilt = FaultSchedule.from_jsonable(data)
        assert rebuilt.episodes == schedule.episodes

    def test_unknown_episode_type_names_the_index(self):
        with pytest.raises(ConfigurationError, match="episode 1.*martian"):
            FaultSchedule.from_jsonable(
                [
                    {"type": "churn", "start_us": 0.0, "duration_us": 1.0, "node_id": 1},
                    {"type": "martian", "start_us": 0.0},
                ]
            )

    def test_bad_episode_fields_name_the_index(self):
        with pytest.raises(ConfigurationError, match="episode 0"):
            FaultSchedule.from_jsonable([{"type": "fade", "bogus": 1.0}])
        with pytest.raises(ConfigurationError, match="episode 0"):
            FaultSchedule.from_jsonable(["not-a-dict"])


class TestCapsuleRoundTrip:
    def _capsule(self):
        scenario = scenario_factory("three-pair")()
        return build_capsule(
            scenario,
            "three-pair",
            scenario_digest(scenario),
            resolve_protocol("n+"),
            run=2,
            run_seed=2003,
            config=FAST,
            error="RuntimeError: boom",
            traceback_text="Traceback (most recent call last): ...",
            events=[{"round": 9}],
        )

    def test_build_populates_the_cell_coordinate(self):
        capsule = self._capsule()
        assert capsule.scenario == "three-pair"
        assert capsule.protocol == "n+"
        assert (capsule.run, capsule.run_seed) == (2, 2003)
        assert capsule.error_type == "RuntimeError"
        assert capsule.error_message == "boom"
        assert capsule.schema == CAPSULE_SCHEMA_VERSION
        assert capsule.config["duration_us"] == 4000.0
        # three-pair has no fault profile: nothing to replay
        assert capsule.fault_schedule is None

    def test_write_then_load_is_identity(self, tmp_path):
        capsule = self._capsule()
        path = write_capsule(capsule, tmp_path)
        assert path.parent == tmp_path
        assert load_capsule(path) == capsule
        # latest failure wins: same coordinate, same file
        assert write_capsule(capsule, tmp_path) == path

    def test_filename_is_sanitized(self, tmp_path):
        capsule = dataclasses.replace(self._capsule(), protocol="n+[x=1/2]")
        path = write_capsule(capsule, tmp_path)
        assert "/" not in path.name and "[" not in path.name

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("{not json", "capsule"),
            (json.dumps([1, 2]), "capsule"),
            (json.dumps({"schema": 1, "surprise": True}), "unknown"),
            (json.dumps({"schema": CAPSULE_SCHEMA_VERSION + 1}), "newer"),
            (json.dumps({"schema": "one"}), "schema"),
        ],
    )
    def test_load_rejects_malformed_payloads(self, tmp_path, payload, match):
        path = tmp_path / "capsule.json"
        path.write_text(payload)
        with pytest.raises(ConfigurationError, match=match):
            load_capsule(path)

    def test_load_rejects_a_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_capsule(tmp_path / "nope.json")


class TestSweepWritesCapsules:
    def test_failed_cell_carries_a_replayable_capsule(
        self, tmp_path, crashy_protocol
    ):
        result = _crashy_sweep(tmp_path)
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.capsule_path is not None
        assert "injected crash" in failure.traceback
        capsule = load_capsule(failure.capsule_path)
        assert capsule.protocol == "crashy"
        assert capsule.error_type == "RuntimeError"
        assert capsule.traceback == failure.traceback

    def test_capsule_lands_in_the_capsules_dir_next_to_the_store(
        self, tmp_path, crashy_protocol
    ):
        result = _crashy_sweep(tmp_path)
        capsule_dir = tmp_path / CAPSULE_DIRNAME
        assert capsule_dir.is_dir()
        assert str(capsule_dir) in result.failures[0].capsule_path

    def test_store_records_the_capsule_path_and_traceback(
        self, tmp_path, crashy_protocol
    ):
        from repro.sim.store import ResultsStore

        result = _crashy_sweep(tmp_path)
        rows = [r for r in ResultsStore(tmp_path).query() if r.status == "failed"]
        assert len(rows) == 1
        assert rows[0].capsule_path == result.failures[0].capsule_path
        assert "injected crash" in rows[0].traceback

    def test_no_cache_dir_means_no_capsule_but_still_a_traceback(
        self, crashy_protocol
    ):
        result = _crashy_sweep(None, cache_dir=None)
        failure = result.failures[0]
        assert failure.capsule_path is None
        assert "injected crash" in failure.traceback

    def test_crash_is_isolated_to_the_failing_protocol(
        self, tmp_path, crashy_protocol
    ):
        # n+ shares the run's network draw with the crashing protocol
        # but must complete -- and must not get a bogus capsule.
        result = _crashy_sweep(tmp_path, protocols=["n+", "crashy"])
        assert [f.protocol for f in result.failures] == ["crashy"]
        (metrics,) = result.results["n+"]
        assert metrics is not None
        assert result.results["crashy"] == [None]
        outcome = replay_capsule(result.failures[0].capsule_path)
        assert outcome.reproduced

    def test_parallel_workers_ship_traceback_and_replayable_capsule(
        self, tmp_path, crashy_protocol
    ):
        result = _crashy_sweep(
            tmp_path, protocols=["n+", "crashy"], n_runs=2, workers=2
        )
        assert sorted(f.protocol for f in result.failures) == ["crashy", "crashy"]
        for failure in result.failures:
            assert "injected crash" in failure.traceback
            assert replay_capsule(failure.capsule_path).reproduced
        assert all(m is not None for m in result.results["n+"])


class TestReplay:
    def test_replay_reproduces_the_recorded_crash(self, tmp_path, crashy_protocol):
        result = _crashy_sweep(tmp_path)
        path = result.failures[0].capsule_path
        outcome = replay_capsule(path)
        assert outcome.reproduced
        assert outcome.error_type == "RuntimeError"
        assert "injected crash" in outcome.traceback
        assert outcome.fingerprint_matched

    def test_replay_is_deterministic(self, tmp_path, crashy_protocol):
        path = _crashy_sweep(tmp_path).failures[0].capsule_path
        first = replay_capsule(path)
        second = replay_capsule(path)
        assert first.reproduced and second.reproduced
        assert first.error_message == second.error_message

    def test_replay_of_a_fixed_crash_reports_not_reproduced(
        self, tmp_path, crashy_protocol
    ):
        # the "bug" gets fixed: the capsule's protocol now runs clean
        path = _crashy_sweep(tmp_path).failures[0].capsule_path
        register_variant("crashy", NPlusMac, overwrite=True)
        outcome = replay_capsule(path)
        assert not outcome.reproduced
        assert outcome.error_type is None
        assert outcome.metrics is not None
        assert np.isfinite(outcome.metrics.total_throughput_mbps())

    def test_replay_replays_the_recorded_fault_schedule(
        self, tmp_path, crashy_protocol
    ):
        config = dataclasses.replace(FAST, duration_us=20000.0)
        result = _crashy_sweep(
            tmp_path, scenario="dense-lan-20-faulty", config=config
        )
        capsule = load_capsule(result.failures[0].capsule_path)
        assert capsule.fault_schedule  # the faulty profile produced episodes
        outcome = replay_capsule(capsule)
        assert outcome.reproduced


class TestCli:
    def test_sweep_exits_nonzero_and_prints_capsule_paths(
        self, tmp_path, crashy_protocol, capsys
    ):
        rc = cli.main(
            [
                "sweep",
                "--scenario", "three-pair",
                "--protocols", "crashy",
                "--runs", "1",
                "--duration-ms", "4",
                "--subcarriers", "4",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert CAPSULE_DIRNAME in out
        assert "replay" in out

    def test_replay_command_round_trips(self, tmp_path, crashy_protocol, capsys):
        path = _crashy_sweep(tmp_path).failures[0].capsule_path
        rc = cli.main(["replay", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reproduced" in out
        assert "RuntimeError" in out

    def test_replay_of_a_clean_cell_exits_nonzero(
        self, tmp_path, crashy_protocol, capsys
    ):
        path = _crashy_sweep(tmp_path).failures[0].capsule_path
        register_variant("crashy", NPlusMac, overwrite=True)
        rc = cli.main(["replay", path])
        assert rc == 1
        assert "NOT reproduced" in capsys.readouterr().out

    def test_replay_requires_a_capsule_path(self):
        with pytest.raises(ConfigurationError, match="capsule"):
            cli.main(["replay"])

    def test_results_lists_failed_cells(self, tmp_path, crashy_protocol, capsys):
        _crashy_sweep(tmp_path)
        rc = cli.main(["results", "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "crashy" in out
        assert CAPSULE_DIRNAME in out


class TestExtremeFadeAcceptance:
    """ISSUE acceptance: a sweep whose fades drive the channel to ~zero
    completes with zero crashed cells -- the guards degrade, quarantine
    and keep going instead of raising LinAlgError."""

    def test_extreme_fade_sweep_has_zero_failures(self):
        profile = FaultProfile(
            fade_rate_per_s=400.0,
            fade_depth_db=(280.0, 320.0),  # ~1e-15 amplitude scale
            fade_duration_us=(5000.0, 20000.0),
        )
        register_fault_profile("extreme-fade", profile, overwrite=True)
        try:
            config = SimulationConfig(
                duration_us=20000.0,
                n_subcarriers=4,
                fault_profile="extreme-fade",
            )
            result = run_sweep(
                "dense-lan-50-faulty",
                ["n+"],
                n_runs=1,
                seed=11,
                config=config,
                workers=1,
            )
        finally:
            FAULT_PROFILES.pop("extreme-fade", None)
        assert result.failures == []
        (metrics,) = result.results["n+"]
        assert metrics is not None
        assert np.isfinite(metrics.total_throughput_mbps())
        for link in metrics.links.values():
            assert np.isfinite(link.airtime_us)
            assert link.quarantined_rounds >= 0
