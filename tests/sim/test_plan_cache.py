"""Tests for the per-simulation plan cache and the static-channel memo.

The load-bearing guarantees:

* channel estimates are measured once per ``(tx, rx, direction)`` per
  simulation and reused (static-channel invariant), and reseeding the
  estimation stream re-measures;
* with estimates frozen, the planning math is pure, so a simulation with
  the plan cache enabled is *bit-identical* to one that recomputes every
  plan (asserted on the paper topology and on dense bursty LANs, where
  joins exercise the join-plan cache);
* the cache actually hits -- repeated contention configurations become
  dictionary lookups.
"""

import numpy as np
import pytest

from repro.mac.plan import PlanCache, stream_signature
from repro.sim.runner import (
    SimulationConfig,
    _BatchedEventDrivenLoop,
    _ESTIMATION_STREAM_TAG,
    build_network,
    run_simulation,
)
from repro.sim.scenarios import (
    dense_lan_scenario,
    heterogeneous_ap_scenario,
    scenario_factory,
    three_pair_scenario,
)

FAST = SimulationConfig(duration_us=10_000.0, n_subcarriers=8)


class TestEstimatedChannelMemo:
    def test_estimate_is_measured_once(self):
        scenario = three_pair_scenario()
        network = build_network(scenario, 1, FAST)
        network.reseed_estimation_noise(7)
        first = network.estimated_channel(0, 1)
        second = network.estimated_channel(0, 1)
        assert first is second
        assert not first.flags.writeable

    def test_directions_are_estimated_separately(self):
        scenario = three_pair_scenario()
        network = build_network(scenario, 1, FAST)
        network.reseed_estimation_noise(7)
        direct = network.estimated_channel(0, 1)
        reciprocal = network.estimated_channel(0, 1, reciprocity=True)
        assert not np.array_equal(direct, reciprocal)

    def test_reseeding_remeasures(self):
        scenario = three_pair_scenario()
        network = build_network(scenario, 1, FAST)
        network.reseed_estimation_noise(7)
        first = network.estimated_channel(0, 1)
        network.reseed_estimation_noise(8)
        second = network.estimated_channel(0, 1)
        assert not np.array_equal(first, second)
        # Same seed -> same measurement, regardless of what ran between.
        network.reseed_estimation_noise(7)
        assert np.array_equal(network.estimated_channel(0, 1), first)


class TestPlanCacheEquivalence:
    """Cache on == cache off, bit for bit (planning is pure)."""

    @pytest.mark.parametrize("protocol", ["802.11n", "n+", "beamforming"])
    def test_three_pair_all_protocols(self, protocol):
        on = run_simulation(
            three_pair_scenario(), protocol, seed=11, config=FAST, plan_cache=True
        )
        off = run_simulation(
            three_pair_scenario(), protocol, seed=11, config=FAST, plan_cache=False
        )
        assert on.to_dict() == off.to_dict()

    def test_heterogeneous_multi_receiver(self):
        on = run_simulation(
            heterogeneous_ap_scenario(), "n+", seed=4, config=FAST, plan_cache=True
        )
        off = run_simulation(
            heterogeneous_ap_scenario(), "n+", seed=4, config=FAST, plan_cache=False
        )
        assert on.to_dict() == off.to_dict()

    def test_dense_lan_30_bursty(self):
        """The ISSUE's acceptance workload: joins, collisions and idle
        gaps all hit the cache on a dense bursty LAN."""
        scenario = dense_lan_scenario(
            n_pairs=15, seed=30, packet_rate_pps=300.0, name="dense-lan-30-bursty"
        )
        config = SimulationConfig(duration_us=20_000.0, n_subcarriers=8)
        on = run_simulation(scenario, "n+", seed=2, config=config, plan_cache=True)
        off = run_simulation(scenario, "n+", seed=2, config=config, plan_cache=False)
        assert on.to_dict() == off.to_dict()

    @pytest.mark.parametrize("pipeline", ["batched", "per-agent"])
    def test_cache_is_pipeline_independent(self, pipeline):
        on = run_simulation(
            three_pair_scenario(),
            "n+",
            seed=5,
            config=FAST,
            pipeline=pipeline,
            plan_cache=True,
        )
        off = run_simulation(
            three_pair_scenario(),
            "n+",
            seed=5,
            config=FAST,
            pipeline=pipeline,
            plan_cache=False,
        )
        assert on.to_dict() == off.to_dict()


class TestPlanCacheHits:
    def _run_with_cache(self, scenario, seed, config):
        network = build_network(scenario, seed, config)
        network.reseed_estimation_noise((seed, _ESTIMATION_STREAM_TAG))
        cache = PlanCache()
        loop = _BatchedEventDrivenLoop(
            scenario,
            "n+",
            np.random.default_rng(seed),
            config,
            network,
            seed=seed,
            plan_cache=cache,
        )
        metrics = loop.run()
        return cache, metrics

    def test_saturated_topology_mostly_hits(self):
        """On the saturated paper topology the same few contention
        configurations repeat round after round."""
        cache, _ = self._run_with_cache(three_pair_scenario(), 1, FAST)
        assert cache.misses > 0
        assert cache.hits > cache.misses

    def test_join_plans_are_cached(self):
        cache, metrics = self._run_with_cache(three_pair_scenario(), 1, FAST)
        join_keys = [key for key in cache._store if key[0] == "join-plan"]
        assert sum(link.joins for link in metrics.links.values()) > 0
        assert join_keys

    def test_counters_start_at_zero(self):
        cache = PlanCache()
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0
        value = cache.get(("k",), lambda: 41)
        assert value == 41 and cache.misses == 1
        assert cache.get(("k",), lambda: 0) == 41
        assert cache.hits == 1


class TestStreamSignature:
    def test_signature_ignores_ids_and_payloads(self):
        from repro.phy.rates import MCS_TABLE
        from repro.sim.medium import ScheduledStream

        def stream(stream_id, payload, start):
            return ScheduledStream(
                stream_id=stream_id,
                transmitter_id=2,
                receiver_id=3,
                precoders=np.zeros((4, 2), dtype=complex),
                power=0.5,
                mcs=MCS_TABLE[0],
                payload_bits=payload,
                start_us=start,
                end_us=start + 100.0,
                join_order=1,
            )

        a = stream_signature([stream(7, 1000, 0.0), stream(8, 1000, 0.0)])
        b = stream_signature([stream(99, 2400, 50.0), stream(12, 0, 50.0)])
        assert a == b
        assert a == ((2, 3, 1, 0), (2, 3, 1, 1))

    def test_signature_distinguishes_structure(self):
        from repro.phy.rates import MCS_TABLE
        from repro.sim.medium import ScheduledStream

        def stream(tx, rx, order):
            return ScheduledStream(
                stream_id=0,
                transmitter_id=tx,
                receiver_id=rx,
                precoders=np.zeros((4, 2), dtype=complex),
                power=1.0,
                mcs=MCS_TABLE[0],
                payload_bits=0,
                start_us=0.0,
                end_us=1.0,
                join_order=order,
            )

        base = stream_signature([stream(0, 1, 0)])
        assert base != stream_signature([stream(0, 1, 1)])
        assert base != stream_signature([stream(0, 2, 0)])
        assert base != stream_signature([stream(4, 1, 0)])
        assert base != stream_signature([stream(0, 1, 0), stream(0, 1, 0)])
