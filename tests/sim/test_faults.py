"""Tests for the fault-injection layer (:mod:`repro.sim.faults`).

The load-bearing guarantees:

* an **empty** fault schedule is a strict no-op: metrics are
  bit-identical to a run that never imported the fault layer;
* faulted runs are a pure function of the seed (dedicated
  ``(seed, FAULT_STREAM_TAG, ...)`` streams), identical across
  pipelines and across the plan-cache on/off switch -- the epoch-keyed
  caches never serve a stale entry;
* a fade scales both directions of a link in place and an ended fade
  restores the channel **bit-exactly**;
* ``bump_link_epoch`` evicts exactly the bumped link's estimate-memo
  entries -- every other link keeps its measured estimate;
* trace files (JSON and CSV) round-trip into ``LossEpisode`` lists and
  malformed traces are rejected with :class:`ConfigurationError`.
"""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionError
from repro.sim.faults import (
    ChurnEpisode,
    FadeEpisode,
    FaultInjector,
    FaultProfile,
    FaultSchedule,
    LossEpisode,
    available_fault_profiles,
    fault_profile,
    loss_episode_generator,
)
from repro.sim.network import Network
from repro.sim.runner import (
    SimulationConfig,
    _run_simulation_condensed_reference,
    build_fault_schedule,
    build_network,
    effective_fault_profile,
    run_simulation,
)
from repro.sim.scenarios import (
    custom_pairs_scenario,
    dense_lan_scenario,
    scenario_factory,
    three_pair_scenario,
)

FAST = SimulationConfig(duration_us=10_000.0, n_subcarriers=8)
FAULTY = scenario_factory("dense-lan-20-faulty")


def _network(seed=3, antenna_counts=(1, 2, 3, 2)):
    scenario = custom_pairs_scenario(list(antenna_counts))
    return Network(
        scenario.stations,
        scenario.pairs,
        np.random.default_rng(seed),
        n_subcarriers=8,
    )


class TestStrictNoOp:
    """Empty schedule == the fault layer was never there."""

    @pytest.mark.parametrize("protocol", ["802.11n", "n+", "beamforming"])
    def test_empty_schedule_is_bit_identical(self, protocol):
        plain = run_simulation(three_pair_scenario(), protocol, seed=11, config=FAST)
        empty = run_simulation(
            three_pair_scenario(),
            protocol,
            seed=11,
            config=FAST,
            fault_schedule=FaultSchedule(),
        )
        assert plain.to_dict() == empty.to_dict()

    def test_none_profile_disables_a_faulty_scenario(self):
        """``fault_profile='none'`` is the off switch for *-faulty."""
        config = SimulationConfig(
            duration_us=10_000.0, n_subcarriers=8, fault_profile="none"
        )
        off = run_simulation(FAULTY(), "n+", seed=2, config=config)
        empty = run_simulation(
            FAULTY(), "n+", seed=2, config=config, fault_schedule=FaultSchedule()
        )
        assert off.to_dict() == empty.to_dict()

    def test_empty_profile_resolves_to_no_schedule(self):
        assert FaultProfile().is_empty
        config = SimulationConfig(duration_us=10_000.0, fault_profile="none")
        assert build_fault_schedule(three_pair_scenario(), config, 0) is None
        assert build_fault_schedule(three_pair_scenario(), FAST, 0) is None


class TestFaultResolution:
    def test_config_beats_scenario_hint(self):
        scenario = FAULTY()
        assert scenario.fault_profile == "mixed"
        assert effective_fault_profile(scenario, FAST) == "mixed"
        override = SimulationConfig(fault_profile="deep-fades")
        assert effective_fault_profile(scenario, override) == "deep-fades"
        for off in ("none", ""):
            config = SimulationConfig(fault_profile=off)
            assert effective_fault_profile(scenario, config) is None

    def test_unknown_profile_name_raises(self):
        with pytest.raises(ConfigurationError):
            fault_profile("does-not-exist")

    def test_builtin_profiles_are_registered(self):
        names = available_fault_profiles()
        for name in ("deep-fades", "bursty-loss", "churn", "mixed"):
            assert name in names
            assert not fault_profile(name).is_empty

    def test_trace_episodes_are_appended(self, tmp_path):
        trace = tmp_path / "loss.json"
        trace.write_text(
            json.dumps([{"start_us": 100.0, "duration_us": 500.0, "loss_rate": 0.5}])
        )
        config = SimulationConfig(
            duration_us=10_000.0, fault_profile="none", fault_trace=str(trace)
        )
        schedule = build_fault_schedule(three_pair_scenario(), config, 0)
        assert schedule is not None
        assert schedule.losses == [LossEpisode(100.0, 500.0, 0.5)]


class TestFaultedDeterminism:
    def test_same_seed_is_bit_identical(self):
        first = run_simulation(FAULTY(), "n+", seed=7, config=FAST)
        second = run_simulation(FAULTY(), "n+", seed=7, config=FAST)
        assert first.to_dict() == second.to_dict()

    def test_faults_change_the_metrics(self):
        """Sanity: the mixed profile actually does something."""
        long = SimulationConfig(duration_us=20_000.0, n_subcarriers=8)
        off = SimulationConfig(
            duration_us=20_000.0, n_subcarriers=8, fault_profile="none"
        )
        faulty = run_simulation(FAULTY(), "n+", seed=7, config=long)
        clean = run_simulation(FAULTY(), "n+", seed=7, config=off)
        assert faulty.to_dict() != clean.to_dict()

    def test_pipelines_agree_under_faults(self):
        batched = run_simulation(FAULTY(), "n+", seed=3, config=FAST, pipeline="batched")
        per_agent = run_simulation(
            FAULTY(), "n+", seed=3, config=FAST, pipeline="per-agent"
        )
        assert batched.to_dict() == per_agent.to_dict()

    def test_schedule_is_a_pure_function_of_the_seed(self):
        profile = fault_profile("mixed")
        scenario = FAULTY()
        a = FaultSchedule.from_profile(profile, scenario, 5, 50_000.0)
        b = FaultSchedule.from_profile(profile, scenario, 5, 50_000.0)
        c = FaultSchedule.from_profile(profile, scenario, 6, 50_000.0)
        assert a.episodes == b.episodes
        assert a.episodes != c.episodes
        assert a.episodes  # mixed at 50 ms on 20 stations generates episodes

    def test_condensed_reference_refuses_faults(self):
        with pytest.raises(ConfigurationError):
            _run_simulation_condensed_reference(FAULTY(), "n+", seed=1, config=FAST)

    def test_condensed_reference_runs_with_faults_disabled(self):
        config = SimulationConfig(
            duration_us=10_000.0, n_subcarriers=8, fault_profile="none"
        )
        metrics = _run_simulation_condensed_reference(FAULTY(), "n+", seed=1, config=config)
        assert metrics.total_throughput_mbps() >= 0.0


class TestEpochInvalidation:
    """Exact invalidation: a fade re-measures its link, nothing else."""

    def test_plan_cache_is_transparent_under_faults(self):
        """The property test of the epoch-keyed caches: cached and
        uncached faulted runs are bit-identical, i.e. every served
        cache entry equals a cold recompute."""
        cached = run_simulation(FAULTY(), "n+", seed=9, config=FAST, plan_cache=True)
        cold = run_simulation(FAULTY(), "n+", seed=9, config=FAST, plan_cache=False)
        assert cached.to_dict() == cold.to_dict()

    def test_bump_evicts_only_the_bumped_link(self):
        network = _network()
        faded = network.estimated_channel(0, 3)
        kept = network.estimated_channel(2, 5)
        reverse_kept = network.estimated_channel(5, 2, reciprocity=True)
        network.fade_link(0, 3, depth_db=20.0)
        # the bumped link re-measures (new noise draw on a new channel)...
        assert not np.array_equal(network.estimated_channel(0, 3), faded)
        # ...while every other memo entry survives as the same object.
        assert network.estimated_channel(2, 5) is kept
        assert network.estimated_channel(5, 2, reciprocity=True) is reverse_kept

    def test_epoch_signature_fast_path_and_scoping(self):
        network = _network()
        assert network.epoch_signature([0, 3, 5]) == ()
        network.fade_link(0, 3, depth_db=10.0)
        assert network.link_epoch(0, 3) == 1
        assert network.link_epoch(3, 0) == 1  # canonical pair
        assert network.epoch_signature([0, 3]) == (((0, 3), 1),)
        # links outside the node set do not leak into the signature
        assert network.epoch_signature([2, 5]) == ()
        network.fade_link(0, 3, depth_db=5.0)
        assert network.epoch_signature([0, 3, 5]) == (((0, 3), 2),)

    def test_fade_and_restore_are_bit_exact(self):
        network = _network()
        before = network.true_channel(0, 3).copy()
        before_rev = network.true_channel(3, 0).copy()
        snr_before = network.channels.snr_db(0, 3)
        response, snr = network.snapshot_link(0, 3)
        network.fade_link(0, 3, depth_db=20.0)
        scale = 10.0 ** (-20.0 / 20.0)
        assert np.allclose(network.true_channel(0, 3), before * scale)
        # reciprocity: the reverse direction fades with it
        assert np.allclose(network.true_channel(3, 0), before_rev * scale)
        assert network.channels.snr_db(0, 3) == pytest.approx(snr_before - 20.0)
        network.restore_link(0, 3, response, snr)
        assert np.array_equal(network.true_channel(0, 3), before)
        assert np.array_equal(network.true_channel(3, 0), before_rev)
        assert network.channels.snr_db(0, 3) == snr_before
        assert network.link_epoch(0, 3) == 2  # fade + restore


class TestChannelBankKernels:
    def test_scale_links_is_in_place_and_grouped(self):
        network = _network()
        bank = network.channels
        links = [(0, 3), (2, 5)]
        before = [bank.channel(*link).copy() for link in links]
        snrs = [bank.snr_db(*link) for link in links]
        bank.scale_links(links, 0.5, snr_delta_db=-6.0)
        for link, old, snr in zip(links, before, snrs):
            assert np.array_equal(bank.channel(*link), old * 0.5)
            assert bank.snr_db(*link) == pytest.approx(snr - 6.0)

    def test_update_links_handles_the_reciprocal_direction(self):
        """An update addressed via the non-canonical direction is
        transposed into the stored orientation."""
        network = _network()
        bank = network.channels
        _, _, transposed = bank.lookup(3, 0)
        assert transposed  # (0, 3) is stored; (3, 0) is the view
        response = bank.channel(3, 0) * 2.0
        bank.update_links([(3, 0, response, 1.5)])
        assert np.array_equal(bank.channel(3, 0), response)
        assert np.array_equal(bank.channel(0, 3), response.transpose(0, 2, 1))
        assert bank.snr_db(0, 3) == 1.5

    def test_update_links_rejects_a_shape_mismatch(self):
        network = _network()
        bank = network.channels
        with pytest.raises(DimensionError):
            bank.update_links([(0, 3, np.zeros((8, 9, 9), dtype=complex), 0.0)])

    def test_kernels_keep_the_stacks_read_only(self):
        network = _network()
        bank = network.channels
        view = bank.channel(0, 3)
        bank.scale_links([(0, 3)], 0.5)
        snapshot = bank.snapshot_links([(0, 3)])
        bank.update_links([(0, 3, snapshot[0][0], snapshot[0][1])])
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0, 0] = 1.0 + 0.0j

    def test_snapshot_update_round_trip_is_bit_exact(self):
        network = _network()
        bank = network.channels
        links = [(0, 3), (2, 5)]
        before = [bank.channel(*link).copy() for link in links]
        snapshots = bank.snapshot_links(links)
        bank.scale_links(links, 0.25, snr_delta_db=-12.0)
        bank.update_links(
            [(tx, rx, resp, snr) for (tx, rx), (resp, snr) in zip(links, snapshots)]
        )
        for link, old in zip(links, before):
            assert np.array_equal(bank.channel(*link), old)


class TestScheduleGenerators:
    def test_loss_generator_is_deterministic(self):
        a = list(loss_episode_generator(3, 100_000.0, 50.0))
        b = list(loss_episode_generator(3, 100_000.0, 50.0))
        c = list(loss_episode_generator(4, 100_000.0, 50.0))
        assert a == b
        assert a != c
        assert a  # 50 episodes/s over 100 ms: effectively never empty

    def test_loss_generator_episodes_are_in_window_and_bounded(self):
        for start, duration, rate in loss_episode_generator(
            9, 50_000.0, 80.0, (500.0, 2_000.0), (0.2, 0.9)
        ):
            assert 0.0 <= start < 50_000.0
            assert 500.0 <= duration <= 2_000.0
            assert 0.2 <= rate <= 0.9

    def test_per_entity_episodes_never_overlap(self):
        """The renewal process draws the next gap from the episode end."""
        profile = FaultProfile(fade_rate_per_s=200.0, fade_duration_us=(500.0, 3_000.0))
        schedule = FaultSchedule.from_profile(
            profile, three_pair_scenario(), 1, 100_000.0
        )
        by_link = {}
        for episode in schedule.fades:
            by_link.setdefault((episode.tx_id, episode.rx_id), []).append(episode)
        assert by_link
        for episodes in by_link.values():
            episodes.sort(key=lambda e: e.start_us)
            for prev, cur in zip(episodes, episodes[1:]):
                assert cur.start_us >= prev.end_us

    def test_zero_rate_generates_nothing(self):
        assert list(loss_episode_generator(0, 100_000.0, 0.0)) == []
        schedule = FaultSchedule.from_profile(
            FaultProfile(), three_pair_scenario(), 0, 100_000.0
        )
        assert schedule.empty


class TestTraces:
    def test_json_trace_round_trip(self, tmp_path):
        episodes = [
            {"start_us": 0.0, "duration_us": 100.0, "loss_rate": 0.25},
            {"start_us": 50.0, "duration_us": 10.0, "loss_rate": 1.0, "tx_id": 0, "rx_id": 3},
        ]
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(episodes))
        schedule = FaultSchedule.from_trace(path)
        assert schedule.losses == [
            LossEpisode(0.0, 100.0, 0.25),
            LossEpisode(50.0, 10.0, 1.0, tx_id=0, rx_id=3),
        ]

    def test_json_trace_accepts_the_wrapped_form(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(
            json.dumps({"episodes": [{"start_us": 1.0, "duration_us": 2.0, "loss_rate": 0.5}]})
        )
        assert FaultSchedule.from_trace(path).losses == [LossEpisode(1.0, 2.0, 0.5)]

    def test_csv_trace_skips_header_and_comments(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "# LinkGuardian-style loss trace\n"
            "start_us,duration_us,loss_rate,tx_id,rx_id\n"
            "100.0,50.0,0.3,,\n"
            "200.0,25.0,0.8,1,4\n"
        )
        schedule = FaultSchedule.from_trace(path)
        assert schedule.losses == [
            LossEpisode(100.0, 50.0, 0.3),
            LossEpisode(200.0, 25.0, 0.8, tx_id=1, rx_id=4),
        ]

    def test_invalid_traces_are_rejected(self, tmp_path):
        bad_duration = tmp_path / "bad1.csv"
        bad_duration.write_text("10.0,0.0,0.5\n")
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_trace(bad_duration)
        bad_rate = tmp_path / "bad2.csv"
        bad_rate.write_text("10.0,5.0,1.5\n")
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_trace(bad_rate)
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_trace(tmp_path / "missing.csv")


class TestInjector:
    def test_fades_apply_and_finalize_restores(self):
        scenario = three_pair_scenario()
        network = build_network(scenario, 4, FAST)
        before = network.true_channel(0, 1).copy()
        schedule = FaultSchedule(
            [FadeEpisode(start_us=100.0, duration_us=2_000.0, tx_id=0, rx_id=1, depth_db=20.0)]
        )
        injector = FaultInjector(schedule, network, seed=4)
        injector.advance(50.0)
        assert np.array_equal(network.true_channel(0, 1), before)
        injector.advance(150.0)
        assert injector.fades_applied == 1
        assert not np.array_equal(network.true_channel(0, 1), before)
        # the run ends mid-fade: finalize restores the shared network
        injector.finalize()
        assert np.array_equal(network.true_channel(0, 1), before)

    def test_expiry_restores_bit_exactly(self):
        scenario = three_pair_scenario()
        network = build_network(scenario, 4, FAST)
        before = network.true_channel(0, 1).copy()
        schedule = FaultSchedule(
            [FadeEpisode(start_us=100.0, duration_us=200.0, tx_id=0, rx_id=1, depth_db=17.0)]
        )
        injector = FaultInjector(schedule, network, seed=4)
        injector.advance(400.0)  # start and end both applied, in order
        assert np.array_equal(network.true_channel(0, 1), before)
        assert network.link_epoch(0, 1) == 2

    def test_churn_marks_nodes_away(self):
        scenario = three_pair_scenario()
        network = build_network(scenario, 4, FAST)
        schedule = FaultSchedule([ChurnEpisode(start_us=10.0, duration_us=100.0, node_id=2)])
        injector = FaultInjector(schedule, network, seed=0)
        assert injector.node_active(2)
        injector.advance(20.0)
        assert not injector.node_active(2)
        assert injector.node_active(0)
        injector.advance(200.0)
        assert injector.node_active(2)

    def test_next_boundary_us(self):
        scenario = three_pair_scenario()
        network = build_network(scenario, 4, FAST)
        schedule = FaultSchedule([ChurnEpisode(start_us=500.0, duration_us=100.0, node_id=2)])
        injector = FaultInjector(schedule, network, seed=0)
        assert injector.next_boundary_us(0.0) == 500.0
        injector.advance(510.0)
        assert injector.next_boundary_us(510.0) == 600.0
        injector.advance(700.0)
        assert injector.next_boundary_us(700.0) == float("inf")

    def test_loss_rate_combines_overlapping_episodes(self):
        scenario = three_pair_scenario()
        network = build_network(scenario, 4, FAST)
        schedule = FaultSchedule(
            [
                LossEpisode(0.0, 1_000.0, 0.5),
                LossEpisode(500.0, 1_000.0, 0.5),
                LossEpisode(0.0, 1_000.0, 0.9, tx_id=0, rx_id=1),
            ]
        )
        injector = FaultInjector(schedule, network, seed=0)
        # only the first network-wide episode overlaps [0, 400]
        assert injector.loss_rate(2, 3, 0.0, 400.0) == pytest.approx(0.5)
        # both network-wide episodes overlap [600, 900]
        assert injector.loss_rate(2, 3, 600.0, 900.0) == pytest.approx(0.75)
        # the scoped episode only hits its own link
        assert injector.loss_rate(0, 1, 0.0, 400.0) == pytest.approx(1 - 0.5 * 0.1)
        # outside every window
        assert injector.loss_rate(2, 3, 2_000.0, 2_100.0) == 0.0


class TestFaultyScenarios:
    def test_faulty_variants_are_registered(self):
        for name in ("dense-lan-20-faulty", "dense-lan-50-faulty", "dense-lan-100-faulty"):
            scenario = scenario_factory(name)()
            assert scenario.fault_profile == "mixed"
            assert scenario.packet_rate_pps and scenario.packet_rate_pps > 0

    def test_dense_lan_scenario_accepts_a_profile(self):
        scenario = dense_lan_scenario(n_pairs=2, seed=1, fault_profile="deep-fades")
        assert scenario.fault_profile == "deep-fades"

    @pytest.mark.parametrize("protocol", ["802.11n", "n+", "beamforming"])
    def test_faulty_smoke(self, protocol):
        """Tier-1 smoke: every protocol survives the mixed profile."""
        config = SimulationConfig(duration_us=5_000.0, n_subcarriers=8)
        metrics = run_simulation(FAULTY(), protocol, seed=1, config=config)
        assert metrics.elapsed_us > 0
        assert all(link.packets_dropped >= 0 for link in metrics.links.values())


class TestGoldenFaultedSnapshot:
    """Seeded end-to-end snapshot of one faulty scenario.

    Pins the faulted metrics of ``dense-lan-20-faulty`` under n+ for one
    seed.  Any change to the fault streams, the episode application
    order, the epoch-keyed caches or the retransmission accounting moves
    these numbers -- an intentional change must update them alongside a
    ``CACHE_SCHEMA_VERSION`` bump in :mod:`repro.sim.sweep`.
    """

    CONFIG = SimulationConfig(duration_us=20_000.0, n_subcarriers=8)

    def test_golden_metrics(self):
        metrics = run_simulation(FAULTY(), "n+", seed=7, config=self.CONFIG)
        assert metrics.elapsed_us == GOLDEN_ELAPSED_US
        assert metrics.total_throughput_mbps() == GOLDEN_TOTAL_MBPS
        assert metrics.per_link_throughputs() == GOLDEN_LINK_MBPS


# Golden values, regenerated by running TestGoldenFaultedSnapshot.CONFIG
# through run_simulation (see the class docstring before changing them).
GOLDEN_ELAPSED_US = 21972.0
GOLDEN_TOTAL_MBPS = 3.8492626979792464
GOLDEN_LINK_MBPS = {
    "tx1->rx1": 1.6384489350081923,
    "tx2->rx2": 0.0,
    "tx3->rx3": 0.0,
    "tx4->rx4": 0.0,
    "tx5->rx5": 0.03932277444019661,
    "tx6->rx6": 0.0,
    "tx7->rx7": 0.5461496450027308,
    "tx8->rx8": 1.0922992900054616,
    "tx9->rx9": 0.0,
    "tx10->rx10": 0.5330420535226652,
}


class TestTraceValidation:
    """Malformed traces raise ConfigurationError (a ValueError) naming
    the offending row and field -- never a raw KeyError/TypeError."""

    def test_configuration_error_is_a_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_json_trace_missing_field_names_row_and_field(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps([
            {"start_us": 0.0, "duration_us": 10.0, "loss_rate": 0.5},
            {"start_us": 5.0, "loss_rate": 0.5},
        ]))
        with pytest.raises(ConfigurationError, match=r"episode 1.*duration_us"):
            FaultSchedule.from_trace(path)

    def test_json_trace_non_numeric_field_names_row_and_field(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(
            [{"start_us": "soon", "duration_us": 10.0, "loss_rate": 0.5}]
        ))
        with pytest.raises(ConfigurationError, match=r"episode 0.*start_us.*'soon'"):
            FaultSchedule.from_trace(path)

    def test_json_trace_non_integer_node_id_is_rejected(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps([
            {"start_us": 0.0, "duration_us": 10.0, "loss_rate": 0.5,
             "tx_id": "ap", "rx_id": 1},
        ]))
        with pytest.raises(ConfigurationError, match=r"tx_id.*must be an integer"):
            FaultSchedule.from_trace(path)

    def test_json_trace_rejects_invalid_json_and_shapes(self, tmp_path):
        invalid = tmp_path / "bad.json"
        invalid.write_text("{ not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultSchedule.from_trace(invalid)
        scalar = tmp_path / "scalar.json"
        scalar.write_text("42")
        with pytest.raises(ConfigurationError, match="must be a JSON list"):
            FaultSchedule.from_trace(scalar)
        entries = tmp_path / "entries.json"
        entries.write_text(json.dumps([["positional", "row"]]))
        with pytest.raises(ConfigurationError, match=r"episode 0.*expected an\s+object"):
            FaultSchedule.from_trace(entries)

    def test_csv_trace_short_row_names_line(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("start_us,duration_us,loss_rate\n100.0,50.0\n")
        with pytest.raises(ConfigurationError, match=r"line 2.*at least\s+3 fields"):
            FaultSchedule.from_trace(path)

    def test_csv_trace_bad_field_names_line_and_field(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("100.0,fifty,0.3\n")
        with pytest.raises(
            ConfigurationError, match=r"line 1.*duration_us.*'fifty'"
        ):
            FaultSchedule.from_trace(path)
