"""The batched link abstraction must reproduce the per-subcarrier
reference formulation (effective columns, announced subspaces, SNRs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mimo.decoder import post_projection_snr_db
from repro.mimo.dof import InterferenceStrategy
from repro.phy.rates import MCS_TABLE
from repro.sim.link_abstraction import (
    _announced_subspace_reference,
    _effective_column,
    announced_decoding_subspace,
    interference_directions_at,
    receiver_stream_snrs,
    unprotected_interference_power,
    unprotected_interference_power_batch,
)
from repro.sim.medium import Medium, ScheduledStream
from repro.sim.network import Network
from repro.sim.scenarios import three_pair_scenario

N_SUB = 8


@pytest.fixture
def network(rng):
    scenario = three_pair_scenario()
    return Network(scenario.stations, scenario.pairs, rng, n_subcarriers=N_SUB)


def _stream(medium, network, tx, rx, order=0, power=1.0, protected=None, seed=0):
    n_tx = network.station(tx).n_antennas
    rng = np.random.default_rng(1000 + seed)
    precoders = rng.standard_normal((N_SUB, n_tx)) + 1j * rng.standard_normal((N_SUB, n_tx))
    precoders /= np.linalg.norm(precoders, axis=1, keepdims=True)
    return ScheduledStream(
        stream_id=medium.next_stream_id(),
        transmitter_id=tx,
        receiver_id=rx,
        precoders=precoders,
        power=power,
        mcs=MCS_TABLE[0],
        payload_bits=12000,
        start_us=0.0,
        end_us=1000.0,
        join_order=order,
        protected_receivers=dict(protected or {}),
    )


class TestEffectiveColumns:
    def test_interference_directions_match_per_subcarrier(self, network):
        medium = Medium()
        streams = [
            _stream(medium, network, tx=2, rx=3, seed=1),
            _stream(medium, network, tx=4, rx=5, seed=2),
        ]
        directions = interference_directions_at(network, 3, streams)
        for index, stream in enumerate(streams):
            channel = network.true_channel(stream.transmitter_id, 3)
            for k in range(N_SUB):
                reference = _effective_column(channel, stream, k)
                assert np.allclose(directions[k, :, index], reference)

    def test_unprotected_power_matches_per_subcarrier(self, network):
        medium = Medium()
        stream = _stream(medium, network, tx=4, rx=5, power=0.7)
        channel = network.true_channel(4, 1)
        batched = unprotected_interference_power_batch(channel, stream)
        for k in range(N_SUB):
            assert batched[k] == pytest.approx(
                unprotected_interference_power(channel, stream, k)
            )


class TestAnnouncedSubspace:
    def test_matches_reference_without_interference(self, network):
        medium = Medium()
        wanted = [_stream(medium, network, tx=2, rx=3, seed=3)]
        batched = announced_decoding_subspace(network, 3, wanted, [])
        wanted_dirs = interference_directions_at(network, 3, wanted)
        reference = _announced_subspace_reference(wanted_dirs, None, 1)
        assert np.allclose(batched, reference)

    def test_matches_reference_with_interference(self, network):
        medium = Medium()
        wanted = [_stream(medium, network, tx=2, rx=3, seed=4)]
        interference = [_stream(medium, network, tx=4, rx=5, seed=5)]
        batched = announced_decoding_subspace(network, 3, wanted, interference)
        wanted_dirs = interference_directions_at(network, 3, wanted)
        interference_dirs = interference_directions_at(network, 3, interference)
        reference = _announced_subspace_reference(wanted_dirs, interference_dirs, 1)
        assert np.allclose(batched, reference)

    def test_joiner_orthogonal_to_subspace_is_harmless(self, network):
        medium = Medium()
        wanted = [_stream(medium, network, tx=2, rx=3, seed=6)]
        subspace = announced_decoding_subspace(network, 3, wanted, [])
        # Columns are orthonormal per subcarrier.
        gram = subspace.conj().transpose(0, 2, 1) @ subspace
        assert np.allclose(gram, np.broadcast_to(np.eye(1), (N_SUB, 1, 1)))


def _reference_snrs(network, receiver_id, wanted, projection, residual_power):
    """Per-subcarrier SNR loop mirroring the seed implementation."""
    channels = {
        s.transmitter_id: network.true_channel(s.transmitter_id, receiver_id)
        for s in wanted + projection
    }
    noise = network.noise_power
    out = {s.stream_id: [] for s in wanted}
    for k in range(N_SUB):
        wanted_matrix = np.stack(
            [_effective_column(channels[s.transmitter_id], s, k) for s in wanted], axis=1
        )
        interference = (
            np.stack(
                [_effective_column(channels[s.transmitter_id], s, k) for s in projection],
                axis=1,
            )
            if projection
            else None
        )
        per_stream = post_projection_snr_db(
            wanted_matrix,
            interference,
            noise_power=noise,
            signal_power=1.0,
            residual_interference_power=float(residual_power[k]),
        )
        for index, stream in enumerate(wanted):
            out[stream.stream_id].append(float(per_stream[index]))
    return {stream_id: np.asarray(values) for stream_id, values in out.items()}


class TestReceiverStreamSnrs:
    def test_matches_reference_loop_with_projection(self, network):
        medium = Medium()
        wanted = [_stream(medium, network, tx=2, rx=3, order=1, seed=7)]
        earlier = _stream(medium, network, tx=0, rx=1, order=0, seed=8)
        batched = receiver_stream_snrs(network, 3, wanted, wanted + [earlier])
        reference = _reference_snrs(network, 3, wanted, [earlier], np.zeros(N_SUB))
        for stream_id, values in reference.items():
            assert np.allclose(batched[stream_id], values)

    def test_matches_reference_loop_with_residuals(self, network):
        medium = Medium()
        wanted = [_stream(medium, network, tx=0, rx=1, order=0, seed=9)]
        joiner = _stream(
            medium,
            network,
            tx=2,
            rx=3,
            order=1,
            protected={1: InterferenceStrategy.NULL},
            seed=10,
        )
        rogue = _stream(medium, network, tx=4, rx=5, order=2, seed=11)
        batched = receiver_stream_snrs(network, 1, wanted, wanted + [joiner, rogue])
        residual = network.hardware.residual_interference_power_batch(
            unprotected_interference_power_batch(network.true_channel(2, 1), joiner),
            aligned=False,
        ) + unprotected_interference_power_batch(network.true_channel(4, 1), rogue)
        reference = _reference_snrs(network, 1, wanted, [], residual)
        for stream_id, values in reference.items():
            assert np.allclose(batched[stream_id], values)

    def test_seeded_jitter_is_reproducible(self, network):
        medium = Medium()
        wanted = [_stream(medium, network, tx=0, rx=1, order=0, seed=12)]
        joiner = _stream(
            medium,
            network,
            tx=2,
            rx=3,
            order=1,
            protected={1: InterferenceStrategy.ALIGN},
            seed=13,
        )
        first = receiver_stream_snrs(
            network, 1, wanted, wanted + [joiner], rng=np.random.default_rng(42)
        )
        second = receiver_stream_snrs(
            network, 1, wanted, wanted + [joiner], rng=np.random.default_rng(42)
        )
        for stream_id in first:
            assert np.array_equal(first[stream_id], second[stream_id])
        # The jittered residual must differ from the deterministic one.
        deterministic = receiver_stream_snrs(network, 1, wanted, wanted + [joiner])
        assert not np.allclose(first[wanted[0].stream_id], deterministic[wanted[0].stream_id])
