"""Tests for the scenario builders and the simulation runner."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.network import Network
from repro.sim.runner import SimulationConfig, mac_factory, run_many, run_simulation
from repro.sim.scenarios import (
    custom_pairs_scenario,
    heterogeneous_ap_scenario,
    three_pair_scenario,
    two_pair_scenario,
)

FAST = SimulationConfig(duration_us=15_000.0, n_subcarriers=8)


class TestScenarios:
    def test_three_pair_scenario_shape(self):
        scenario = three_pair_scenario()
        assert len(scenario.stations) == 6
        assert [p.transmitter.n_antennas for p in scenario.pairs] == [1, 2, 3]
        assert scenario.max_antennas == 3

    def test_two_pair_scenario(self):
        scenario = two_pair_scenario()
        assert [p.transmitter.n_antennas for p in scenario.pairs] == [1, 2]

    def test_heterogeneous_scenario(self):
        scenario = heterogeneous_ap_scenario()
        ap2_pair = scenario.pairs[1]
        assert ap2_pair.transmitter.n_antennas == 3
        assert len(ap2_pair.receivers) == 2
        assert scenario.station_by_name("c1").n_antennas == 1

    def test_station_lookup_failure(self):
        with pytest.raises(KeyError):
            three_pair_scenario().station_by_name("nobody")

    def test_custom_scenario(self):
        scenario = custom_pairs_scenario([2, 2, 4])
        assert len(scenario.pairs) == 3
        assert scenario.max_antennas == 4


class TestMacFactory:
    def test_known_protocols(self):
        assert mac_factory("802.11n").protocol_name == "802.11n"
        assert mac_factory("n+").protocol_name == "n+"
        assert mac_factory("beamforming").protocol_name == "beamforming"

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            mac_factory("aloha")


class TestRunSimulation:
    @pytest.mark.parametrize("protocol", ["802.11n", "n+", "beamforming"])
    def test_protocols_deliver_traffic(self, protocol):
        metrics = run_simulation(three_pair_scenario(), protocol, seed=1, config=FAST)
        assert metrics.elapsed_us >= FAST.duration_us
        assert metrics.total_throughput_mbps() > 1.0

    def test_all_pairs_get_service_in_802_11n(self):
        metrics = run_simulation(three_pair_scenario(), "802.11n", seed=3, config=FAST)
        for name, value in metrics.per_link_throughputs().items():
            assert value >= 0.0
        assert sum(l.transmissions for l in metrics.links.values()) > 5

    def test_nplus_records_joins(self):
        metrics = run_simulation(three_pair_scenario(), "n+", seed=5, config=FAST)
        total_joins = sum(l.joins for l in metrics.links.values())
        assert total_joins > 0

    def test_dot11n_never_joins(self):
        metrics = run_simulation(three_pair_scenario(), "802.11n", seed=5, config=FAST)
        assert sum(l.joins for l in metrics.links.values()) == 0

    def test_single_antenna_pair_never_joins_in_nplus(self):
        metrics = run_simulation(three_pair_scenario(), "n+", seed=7, config=FAST)
        assert metrics.links["tx1->rx1"].joins == 0

    def test_same_seed_is_reproducible(self):
        a = run_simulation(three_pair_scenario(), "n+", seed=11, config=FAST)
        b = run_simulation(three_pair_scenario(), "n+", seed=11, config=FAST)
        assert a.per_link_throughputs() == b.per_link_throughputs()

    def test_different_seeds_differ(self):
        a = run_simulation(three_pair_scenario(), "n+", seed=11, config=FAST)
        b = run_simulation(three_pair_scenario(), "n+", seed=12, config=FAST)
        assert a.per_link_throughputs() != b.per_link_throughputs()

    def test_network_reuse_keeps_channels_fixed(self, rng):
        scenario = three_pair_scenario()
        network = Network(scenario.stations, scenario.pairs, rng, n_subcarriers=8)
        baseline = run_simulation(scenario, "802.11n", seed=2, config=FAST, network=network)
        nplus = run_simulation(scenario, "n+", seed=2, config=FAST, network=network)
        assert baseline.elapsed_us > 0 and nplus.elapsed_us > 0

    def test_heterogeneous_scenario_runs_all_protocols(self):
        for protocol in ("802.11n", "beamforming", "n+"):
            metrics = run_simulation(heterogeneous_ap_scenario(), protocol, seed=4, config=FAST)
            assert metrics.total_throughput_mbps() > 0.5


class TestRunMany:
    def test_structure_of_results(self):
        results = run_many(
            three_pair_scenario, ["802.11n", "n+"], n_runs=2, seed=0, config=FAST
        )
        assert set(results) == {"802.11n", "n+"}
        assert len(results["n+"]) == 2

    def test_nplus_beats_baseline_on_average(self):
        """The headline result: n+ delivers more total throughput than
        802.11n over a handful of runs (even short ones)."""
        config = SimulationConfig(duration_us=40_000.0, n_subcarriers=8)
        results = run_many(three_pair_scenario, ["802.11n", "n+"], n_runs=4, seed=3, config=config)
        baseline = np.mean([m.total_throughput_mbps() for m in results["802.11n"]])
        nplus = np.mean([m.total_throughput_mbps() for m in results["n+"]])
        assert nplus > baseline
