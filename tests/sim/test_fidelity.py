"""The two-fidelity PHY layer (repro.sim.fidelity).

Four contracts under test:

* ``fidelity="abstraction"`` (the default) is a strict no-op -- existing
  golden seeded metrics are reproduced bit-for-bit;
* ``fidelity="auto"``/``"full"`` results are a pure function of the seed
  across pipelines, plan-cache settings and sweep worker counts, with
  escalated verdicts memoized per (link epoch, stream signature);
* the cross-fidelity validation harness agrees with the abstraction
  outside the uncertainty band at a pinned rate (and its disagreements
  inside the band are what justify the band);
* the fidelity knobs are part of both sweep digests.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.fidelity import (
    DEFAULT_BAND_DB,
    FidelityEngine,
    LinkCheck,
    _link_precoders,
    cross_validate_links,
    phy_stream_rng,
    simulate_probe_delivery,
)
from repro.sim.medium import ScheduledStream
from repro.phy.rates import MCS_TABLE
from repro.sim.link_abstraction import receiver_stream_snrs
from repro.sim.runner import (
    SimulationConfig,
    _run_simulation_condensed_reference,
    build_network,
    effective_fidelity,
    effective_fidelity_band_db,
    run_simulation,
)
from repro.sim.scenarios import dense_lan_scenario, scenario_factory, three_pair_scenario
from repro.sim.sweep import config_digest, run_sweep, scenario_digest

AUTO = SimulationConfig(duration_us=30_000.0, n_subcarriers=8, fidelity="auto")


def _dicts(metrics):
    return metrics.to_dict()


class TestResolution:
    def test_default_is_abstraction(self):
        config = SimulationConfig()
        assert config.fidelity is None and config.fidelity_band_db is None
        assert effective_fidelity(three_pair_scenario(), config) == "abstraction"
        assert effective_fidelity_band_db(three_pair_scenario(), config) == DEFAULT_BAND_DB

    def test_config_beats_scenario_hint(self):
        scenario = dataclasses.replace(
            three_pair_scenario(), fidelity="auto", fidelity_band_db=1.5
        )
        assert effective_fidelity(scenario, SimulationConfig()) == "auto"
        assert effective_fidelity_band_db(scenario, SimulationConfig()) == 1.5
        override = SimulationConfig(fidelity="abstraction", fidelity_band_db=4.0)
        assert effective_fidelity(scenario, override) == "abstraction"
        assert effective_fidelity_band_db(scenario, override) == 4.0

    def test_unknown_fidelity_rejected(self):
        config = SimulationConfig(fidelity="magic")
        with pytest.raises(ConfigurationError):
            effective_fidelity(three_pair_scenario(), config)

    def test_condensed_reference_refuses_escalating_configs(self):
        with pytest.raises(ConfigurationError):
            _run_simulation_condensed_reference(
                three_pair_scenario(),
                "n+",
                seed=0,
                config=SimulationConfig(duration_us=5_000.0, fidelity="auto"),
            )


class TestAbstractionBitIdentical:
    """``fidelity="abstraction"`` must not move a single bit."""

    def test_explicit_abstraction_equals_default(self):
        scenario = scenario_factory("three-pair")()
        base = SimulationConfig(duration_us=20_000.0, n_subcarriers=8)
        explicit = dataclasses.replace(base, fidelity="abstraction")
        assert _dicts(
            run_simulation(scenario, "n+", seed=3, config=base)
        ) == _dicts(run_simulation(scenario, "n+", seed=3, config=explicit))

    def test_existing_golden_snapshot_unchanged(self):
        # The same seeded numbers test_grouped_draws.py pins for the
        # pre-fidelity default -- an explicit "abstraction" run must
        # reproduce them exactly.
        config = SimulationConfig(
            duration_us=20_000.0,
            n_subcarriers=8,
            channel_draws="grouped",
            fidelity="abstraction",
        )
        metrics = run_simulation(three_pair_scenario(), "n+", seed=42, config=config)
        assert metrics.elapsed_us == pytest.approx(20574.0, rel=1e-9)
        assert metrics.total_throughput_mbps() == pytest.approx(
            29.138524351122776, rel=1e-6
        )


class TestAutoGoldenSnapshot:
    """Seeded ``fidelity="auto"`` results, frozen.

    A change here means the escalation classification, the probe chain or
    the PHY stream seeding drifted -- which is only legitimate alongside a
    CACHE_SCHEMA_VERSION bump and a refreshed snapshot.
    """

    def test_dense_lan_20_bursty_auto_snapshot(self):
        scenario = scenario_factory("dense-lan-20-bursty")()
        metrics = run_simulation(scenario, "n+", seed=7, config=AUTO)
        assert metrics.elapsed_us == pytest.approx(30671.0, rel=1e-9)
        assert metrics.total_throughput_mbps() == pytest.approx(
            3.529849043070001, rel=1e-6
        )
        links = metrics.to_dict()["links"]
        assert links["tx1->rx1"]["delivered_bits"] == 24000
        assert links["tx1->rx1"]["packets_failed"] == 3
        assert links["tx8->rx8"]["delivered_bits"] == 41040
        assert links["tx9->rx9"]["delivered_bits"] == 0

    def test_auto_differs_from_abstraction(self):
        # The override actually changes outcomes for this seed -- the
        # fidelity layer is not a silent no-op under "auto".
        scenario = scenario_factory("dense-lan-20-bursty")()
        abstraction = dataclasses.replace(AUTO, fidelity="abstraction")
        assert _dicts(
            run_simulation(scenario, "n+", seed=7, config=AUTO)
        ) != _dicts(run_simulation(scenario, "n+", seed=7, config=abstraction))


class TestAutoDeterminism:
    """Escalated verdicts are a pure function of the seed."""

    def test_pipelines_and_plan_cache_bit_identical(self):
        scenario = scenario_factory("dense-lan-20-bursty")()
        reference = _dicts(run_simulation(scenario, "n+", seed=7, config=AUTO))
        for kwargs in (
            dict(pipeline="per-agent"),
            dict(plan_cache=False),
            dict(pipeline="per-agent", plan_cache=False),
        ):
            assert (
                _dicts(run_simulation(scenario, "n+", seed=7, config=AUTO, **kwargs))
                == reference
            ), kwargs

    def test_sweep_workers_bit_identical(self):
        config = SimulationConfig(
            duration_us=15_000.0, n_subcarriers=8, fidelity="auto"
        )
        serial = run_sweep(
            "dense-lan-20-bursty", ["n+"], n_runs=2, seed=5, config=config, workers=1
        )
        parallel = run_sweep(
            "dense-lan-20-bursty", ["n+"], n_runs=2, seed=5, config=config, workers=2
        )
        assert [
            m.to_dict() for m in serial.results["n+"]
        ] == [m.to_dict() for m in parallel.results["n+"]]


def _single_stream(network, tx, rx):
    return ScheduledStream(
        stream_id=0,
        transmitter_id=tx,
        receiver_id=rx,
        precoders=_link_precoders(network, tx, rx),
        power=1.0,
        mcs=MCS_TABLE[0],
        payload_bits=1024,
        start_us=0.0,
        end_us=100.0,
    )


class TestFidelityEngine:
    CONFIG = SimulationConfig(n_subcarriers=8)

    def _engine_and_stream(self, mode="auto", band_db=DEFAULT_BAND_DB, seed=1):
        scenario = three_pair_scenario()
        network = build_network(scenario, seed, self.CONFIG)
        engine = FidelityEngine(network, seed, mode=mode, band_db=band_db)
        pair = scenario.pairs[0]
        stream = _single_stream(
            network, pair.transmitter.node_id, pair.receivers[0].node_id
        )
        snrs = receiver_stream_snrs(
            network, stream.receiver_id, [stream], [stream], rng=None
        )
        return engine, stream, snrs

    def test_classification_uses_the_band(self):
        engine, _, _ = self._engine_and_stream(band_db=3.0)
        mcs = MCS_TABLE[4]
        # Flat channel: esnr == snr, margin = snr - threshold + 2.5.
        at_threshold = np.full(8, mcs.min_esnr_db)
        assert engine.in_band(at_threshold, mcs)  # margin +2.5, inside
        far_above = np.full(8, mcs.min_esnr_db + 10.0)
        assert not engine.in_band(far_above, mcs)  # margin +12.5, outside
        far_below = np.full(8, mcs.min_esnr_db - 10.0)
        assert not engine.in_band(far_below, mcs)

    def test_full_mode_escalates_everything(self):
        engine, stream, snrs = self._engine_and_stream(mode="full")
        verdict = engine.override_verdict(
            stream.transmitter_id, stream.receiver_id, [stream], [stream], snrs
        )
        assert verdict is not None
        assert engine.escalations == 1

    def test_out_of_band_defers_to_the_abstraction(self):
        # A vanishing band means nothing is uncertain: "auto" never
        # escalates and the abstraction's verdict always stands.
        engine, stream, snrs = self._engine_and_stream(band_db=0.0)
        assert (
            engine.override_verdict(
                stream.transmitter_id, stream.receiver_id, [stream], [stream], snrs
            )
            is None
        )
        assert engine.escalations == 0

    def test_escalated_verdict_is_memoized(self):
        engine, stream, snrs = self._engine_and_stream(mode="full")
        args = (stream.transmitter_id, stream.receiver_id, [stream], [stream], snrs)
        first = engine.override_verdict(*args)
        second = engine.override_verdict(*args)
        assert first == second
        assert engine.escalations == 2 and engine.memo_hits == 1
        assert len(engine._memo) == 1

    def test_epoch_bump_invalidates_exactly(self):
        engine, stream, snrs = self._engine_and_stream(mode="full")
        args = (stream.transmitter_id, stream.receiver_id, [stream], [stream], snrs)
        engine.override_verdict(*args)
        engine.network.bump_link_epoch(stream.transmitter_id, stream.receiver_id)
        engine.override_verdict(*args)
        # The bumped epoch changed the key: a fresh entry, no memo hit.
        assert engine.memo_hits == 0
        assert len(engine._memo) == 2

    def test_verdict_is_a_pure_function_of_the_seed(self):
        first, stream, snrs = self._engine_and_stream(mode="full", seed=9)
        again, stream2, snrs2 = self._engine_and_stream(mode="full", seed=9)
        assert first.override_verdict(
            stream.transmitter_id, stream.receiver_id, [stream], [stream], snrs
        ) == again.override_verdict(
            stream2.transmitter_id, stream2.receiver_id, [stream2], [stream2], snrs2
        )

    def test_probe_rng_is_order_independent(self):
        rng_a = phy_stream_rng(3, 0, 1, ("key",))
        rng_b = phy_stream_rng(3, 0, 1, ("key",))
        assert np.array_equal(rng_a.integers(0, 2, 64), rng_b.integers(0, 2, 64))
        assert not np.array_equal(
            phy_stream_rng(3, 0, 1, ("key",)).integers(0, 2, 64),
            phy_stream_rng(3, 0, 1, ("other",)).integers(0, 2, 64),
        )

    def test_abstraction_mode_rejected(self):
        network = build_network(three_pair_scenario(), 1, self.CONFIG)
        with pytest.raises(ConfigurationError):
            FidelityEngine(network, 1, mode="abstraction")


class TestProbeChain:
    def test_probe_cliff(self):
        # Far above the MCS threshold the real chain always delivers;
        # far below it never does -- the calibration the band relies on.
        mcs = MCS_TABLE[4]
        rng = np.random.default_rng(0)
        high = np.full(8, mcs.min_esnr_db + 6.0)
        low = np.full(8, mcs.min_esnr_db - 8.0)
        assert all(simulate_probe_delivery(high, mcs, rng) for _ in range(3))
        assert not any(simulate_probe_delivery(low, mcs, rng) for _ in range(3))

    def test_empty_snrs_never_deliver(self):
        assert not simulate_probe_delivery([], MCS_TABLE[0], np.random.default_rng(0))


class TestCrossValidation:
    """The standing seeded agreement table (ISSUE 7's headline artifact)."""

    #: Agreement outside the band must exceed this rate.  The sampled
    #: seeds below all sit at 1.0; the pin leaves room for float drift
    #: but would catch any real calibration regression.
    PINNED_OUTSIDE_AGREEMENT = 0.9

    def test_three_pair_agreement(self):
        report = cross_validate_links("three-pair", seed=0, n_links=3)
        assert report.checks and report.outside_band
        assert report.agreement_outside_band >= self.PINNED_OUTSIDE_AGREEMENT

    def test_dense_lan_20_agreement_and_band_justification(self):
        report = cross_validate_links("dense-lan-20", seed=0, n_links=6)
        assert report.agreement_outside_band >= self.PINNED_OUTSIDE_AGREEMENT
        # This seed lands links inside the band whose PHY verdict differs
        # from the abstraction's -- the disagreements the band exists to
        # catch.  (Seeded, so this is a stable property, not luck.)
        assert report.inside_band
        assert report.agreement_inside_band < 1.0

    def test_report_is_a_pure_function(self):
        first = cross_validate_links("three-pair", seed=2, n_links=3)
        second = cross_validate_links("three-pair", seed=2, n_links=3)
        assert [dataclasses.asdict(c) for c in first.checks] == [
            dataclasses.asdict(c) for c in second.checks
        ]

    def test_format_table_mentions_every_check(self):
        report = cross_validate_links("three-pair", seed=0, n_links=2)
        table = report.format_table()
        assert "agreement outside band" in table
        assert len(table.splitlines()) == len(report.checks) + 3

    @pytest.mark.slow
    def test_deep_sweep_agreement(self):
        # The expensive standing sweep: more links, more scenarios, more
        # probe trials per verdict.
        for name in ("dense-lan-30", "dense-lan-50"):
            report = cross_validate_links(name, seed=0, n_links=10, trials=5)
            assert report.agreement_outside_band >= self.PINNED_OUTSIDE_AGREEMENT, (
                name,
                report.format_table(),
            )


class TestDigests:
    def test_config_digest_covers_fidelity_knobs(self):
        base = config_digest(SimulationConfig())
        assert config_digest(SimulationConfig(fidelity="auto")) != base
        assert config_digest(SimulationConfig(fidelity_band_db=2.0)) != base

    def test_scenario_digest_covers_fidelity_hints(self):
        scenario = three_pair_scenario()
        base = scenario_digest(scenario)
        assert (
            scenario_digest(dataclasses.replace(scenario, fidelity="auto")) != base
        )
        assert (
            scenario_digest(dataclasses.replace(scenario, fidelity_band_db=1.0))
            != base
        )
