"""Tests for traffic sources, metrics and station dataclasses."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.metrics import LinkMetrics, NetworkMetrics, empirical_cdf, jain_fairness_index
from repro.sim.node import Station, TrafficPair
from repro.sim.traffic import PoissonSource, SaturatedSource


class TestStation:
    def test_defaults(self):
        station = Station(3, 2)
        assert station.name == "node3"
        assert station.location is None

    def test_zero_antennas_rejected(self):
        with pytest.raises(ConfigurationError):
            Station(0, 0)


class TestTrafficPair:
    def test_default_stream_allocation(self):
        tx = Station(0, 3, "tx")
        rx = Station(1, 2, "rx")
        pair = TrafficPair(tx, [rx])
        assert pair.streams_per_receiver == [2]
        assert pair.n_streams == 2
        assert pair.name == "tx->rx"

    def test_multi_receiver_default_split(self):
        ap = Station(0, 3, "AP")
        c1 = Station(1, 2, "c1")
        c2 = Station(2, 2, "c2")
        pair = TrafficPair(ap, [c1, c2])
        assert sum(pair.streams_per_receiver) <= 3

    def test_stream_count_cannot_exceed_antennas(self):
        with pytest.raises(ConfigurationError):
            TrafficPair(Station(0, 2), [Station(1, 2)], streams_per_receiver=[3])

    def test_receiver_list_required(self):
        with pytest.raises(ConfigurationError):
            TrafficPair(Station(0, 2), [])

    def test_mismatched_allocation_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficPair(Station(0, 2), [Station(1, 1)], streams_per_receiver=[1, 1])


class TestTrafficSources:
    def test_saturated_source_always_has_packets(self):
        source = SaturatedSource(0, 1)
        assert source.has_packet(0.0)
        first = source.next_packet(0.0)
        second = source.next_packet(10.0)
        assert first.packet_id != second.packet_id
        assert first.destination == 1

    def test_poisson_interarrival_times(self, rng):
        source = PoissonSource(0, 1, rate_packets_per_second=10_000.0, rng=rng)
        arrivals = []
        now = 0.0
        for _ in range(200):
            while not source.has_packet(now):
                now += 10.0
            packet = source.next_packet(now)
            arrivals.append(packet.created_us)
        gaps = np.diff(arrivals)
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.3)

    def test_poisson_no_packet_before_first_arrival(self, rng):
        source = PoissonSource(0, 1, rate_packets_per_second=1.0, rng=rng)
        assert not source.has_packet(0.0)


class TestMetrics:
    def test_throughput_computation(self):
        metrics = NetworkMetrics(elapsed_us=1_000_000.0)
        link = metrics.link("a->b")
        link.delivered_bits = 5_000_000
        assert metrics.throughput_mbps("a->b") == pytest.approx(5.0)
        assert metrics.total_throughput_mbps() == pytest.approx(5.0)

    def test_delivery_ratio(self):
        link = LinkMetrics("x")
        link.attempted_bits = 1000
        link.delivered_bits = 900
        assert link.delivery_ratio == pytest.approx(0.9)
        assert LinkMetrics("y").delivery_ratio == 0.0

    def test_zero_elapsed_time(self):
        metrics = NetworkMetrics()
        metrics.link("a")
        assert metrics.total_throughput_mbps() == 0.0

    def test_empirical_cdf(self):
        values, probabilities = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert probabilities[-1] == pytest.approx(1.0)

    def test_empirical_cdf_empty(self):
        values, probabilities = empirical_cdf([])
        assert values.size == 0 and probabilities.size == 0

    def test_jain_index_equal_shares(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_jain_index_single_hog(self):
        assert jain_fairness_index([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_fairness_of_network_metrics(self):
        metrics = NetworkMetrics(elapsed_us=1e6)
        metrics.link("a").delivered_bits = 1_000_000
        metrics.link("b").delivered_bits = 1_000_000
        assert metrics.fairness_index() == pytest.approx(1.0)

    def test_read_paths_do_not_create_links(self):
        """Regression: querying a pair that never transmitted must not
        mutate the metrics (it used to create a zero-valued LinkMetrics,
        silently shifting the Jain-index denominator)."""
        metrics = NetworkMetrics(elapsed_us=1e6)
        metrics.link("a->b").delivered_bits = 1_000_000
        metrics.link("c->d").delivered_bits = 1_000_000
        fairness_before = metrics.fairness_index()
        serialised_before = metrics.to_dict()

        assert metrics.throughput_mbps("nobody->nowhere") == 0.0
        assert metrics.throughput_mbps("also->missing") == 0.0

        assert set(metrics.links) == {"a->b", "c->d"}
        assert metrics.fairness_index() == fairness_before
        assert metrics.to_dict() == serialised_before

    def test_throughput_query_of_recorded_pair_still_works(self):
        metrics = NetworkMetrics(elapsed_us=1_000_000.0)
        metrics.link("a->b").delivered_bits = 2_000_000
        assert metrics.throughput_mbps("a->b") == pytest.approx(2.0)
