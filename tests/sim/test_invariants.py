"""The runtime invariant layer: mode resolution, checker registry,
violation reporting, and the strict-no-op guarantee of ``"off"``."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError, InvariantViolation
from repro.sim.invariants import (
    VALIDATION_MODES,
    InvariantSuite,
    effective_validation,
    invariant,
    registered_invariants,
    _REGISTRY,
)
from repro.sim.metrics import LinkMetrics, NetworkMetrics
from repro.sim.runner import (
    SimulationConfig,
    _run_simulation_condensed_reference,
    run_simulation,
)
from repro.sim.scenarios import scenario_factory

FAST = SimulationConfig(duration_us=4000.0, n_subcarriers=4)


def THREE_PAIR():
    return scenario_factory("three-pair")()


def FAULTY():
    return scenario_factory("dense-lan-20-faulty")()


class _StubScheduler:
    def __init__(self, now_us=0.0):
        self.now_us = now_us


class _StubNetwork:
    def __init__(self, epochs=None):
        self.link_epochs = dict(epochs or {})


class _StubLoop:
    """The duck-typed slice of the event loop the checkers read."""

    def __init__(self, links=None, now_us=0.0, epochs=None):
        self.metrics = NetworkMetrics()
        self.metrics.links.update(links or {})
        self.scheduler = _StubScheduler(now_us)
        self.network = _StubNetwork(epochs)
        self.agents = {}
        self.rounds = 7


class TestEffectiveValidation:
    def test_defaults_to_off(self):
        assert effective_validation(THREE_PAIR(), SimulationConfig()) == "off"

    def test_config_selects_the_mode(self):
        config = SimulationConfig(validation="cheap")
        assert effective_validation(THREE_PAIR(), config) == "cheap"

    def test_unknown_mode_is_rejected(self):
        config = SimulationConfig(validation="paranoid")
        with pytest.raises(ConfigurationError, match="unknown validation mode"):
            effective_validation(THREE_PAIR(), config)

    def test_modes_constant_matches_registry_scopes(self):
        assert VALIDATION_MODES == ("off", "cheap", "full")
        assert registered_invariants("off") == []
        cheap = set(registered_invariants("cheap"))
        full = set(registered_invariants("full"))
        assert cheap < full


class TestRegistry:
    def test_expected_checkers_are_registered(self):
        names = set(registered_invariants("full"))
        assert {
            "delivered-within-attempted",
            "recovered-within-delivered",
            "finite-metrics",
            "clock-monotone",
            "epoch-monotone",
            "per-link-conservation",
            "per-link-counters",
            "queue-drops-monotone",
        } <= names

    def test_bad_scope_is_rejected(self):
        with pytest.raises(ConfigurationError, match="scope"):
            invariant("bogus", scope="sometimes")

    def test_suite_rejects_off(self):
        with pytest.raises(ConfigurationError, match="'cheap' or 'full'"):
            InvariantSuite("off")

    def test_cheap_suite_skips_full_checkers(self):
        cheap = {name for name, _ in InvariantSuite("cheap").checkers}
        full = {name for name, _ in InvariantSuite("full").checkers}
        assert "per-link-conservation" in full - cheap


class TestCheckers:
    def test_clean_stub_passes_all_checkers(self):
        loop = _StubLoop(
            links={"1->2": LinkMetrics("1->2", delivered_bits=10, attempted_bits=20)}
        )
        suite = InvariantSuite("full")
        suite.check_round(loop)
        assert suite.rounds_checked == 1

    def test_delivered_beyond_attempted_raises(self):
        loop = _StubLoop(
            links={"1->2": LinkMetrics("1->2", delivered_bits=30, attempted_bits=20)}
        )
        with pytest.raises(InvariantViolation) as err:
            InvariantSuite("cheap").check_round(loop)
        assert err.value.checker == "delivered-within-attempted"
        assert err.value.round == 7

    def test_per_link_violation_names_the_link(self):
        # aggregates balance (the surplus on one link hides behind the
        # other), so only the full per-link checker can catch it
        loop = _StubLoop(
            links={
                "1->2": LinkMetrics("1->2", delivered_bits=30, attempted_bits=20),
                "3->4": LinkMetrics("3->4", delivered_bits=0, attempted_bits=20),
            }
        )
        InvariantSuite("cheap").check_round(loop)  # passes: sums balance
        with pytest.raises(InvariantViolation) as err:
            InvariantSuite("full").check_round(loop)
        assert err.value.checker == "per-link-conservation"
        assert "1->2" in err.value.links
        assert "1->2" in str(err.value)

    def test_nonfinite_airtime_raises(self):
        loop = _StubLoop(links={"1->2": LinkMetrics("1->2", airtime_us=math.nan)})
        with pytest.raises(InvariantViolation) as err:
            InvariantSuite("cheap").check_round(loop)
        assert err.value.checker == "finite-metrics"

    def test_clock_running_backwards_raises(self):
        suite = InvariantSuite("cheap")
        suite.check_round(_StubLoop(now_us=100.0))
        with pytest.raises(InvariantViolation) as err:
            suite.check_round(_StubLoop(now_us=50.0))
        assert err.value.checker == "clock-monotone"

    def test_epoch_regression_raises(self):
        suite = InvariantSuite("cheap")
        suite.check_round(_StubLoop(epochs={(1, 2): 3}))
        with pytest.raises(InvariantViolation) as err:
            suite.check_round(_StubLoop(epochs={(1, 2): 2}))
        assert err.value.checker == "epoch-monotone"

    def test_negative_counter_raises_under_full(self):
        loop = _StubLoop(links={"1->2": LinkMetrics("1->2", quarantined_rounds=-1)})
        InvariantSuite("cheap").check_round(loop)
        with pytest.raises(InvariantViolation) as err:
            InvariantSuite("full").check_round(loop)
        assert err.value.checker == "per-link-counters"


class TestRunnerIntegration:
    def test_validating_runs_match_the_unvalidated_metrics(self):
        baseline = run_simulation(THREE_PAIR(), "n+", seed=3, config=FAST)
        for mode in ("cheap", "full"):
            config = SimulationConfig(
                duration_us=4000.0, n_subcarriers=4, validation=mode
            )
            validated = run_simulation(THREE_PAIR(), "n+", seed=3, config=config)
            assert validated.to_dict() == baseline.to_dict()

    def test_faulty_scenario_passes_full_validation(self):
        config = SimulationConfig(
            duration_us=4000.0, n_subcarriers=4, validation="full"
        )
        metrics = run_simulation(FAULTY(), "n+", seed=7, config=config)
        assert metrics.elapsed_us > 0

    def test_checkers_actually_run_during_a_simulation(self):
        calls = {"n": 0}

        @invariant("test-probe")
        def _probe(suite, loop):
            calls["n"] += 1

        try:
            config = SimulationConfig(
                duration_us=4000.0, n_subcarriers=4, validation="cheap"
            )
            run_simulation(THREE_PAIR(), "n+", seed=3, config=config)
        finally:
            _REGISTRY.pop("test-probe", None)
        assert calls["n"] > 0

    def test_off_mode_does_not_touch_the_registry(self):
        calls = {"n": 0}

        @invariant("test-probe-off")
        def _probe(suite, loop):
            calls["n"] += 1

        try:
            run_simulation(THREE_PAIR(), "n+", seed=3, config=FAST)
        finally:
            _REGISTRY.pop("test-probe-off", None)
        assert calls["n"] == 0

    def test_condensed_reference_refuses_validation(self):
        config = SimulationConfig(
            duration_us=4000.0, n_subcarriers=4, validation="cheap"
        )
        with pytest.raises(ConfigurationError, match="invariant layer"):
            _run_simulation_condensed_reference(
                THREE_PAIR(), "n+", seed=3, config=config
            )


class TestInvariantViolation:
    def test_message_names_checker_round_and_links(self):
        err = InvariantViolation(
            "finite-metrics", 12, links=("1->2",), detail="airtime_us=nan"
        )
        assert err.checker == "finite-metrics"
        assert err.round == 12
        assert err.links == ("1->2",)
        message = str(err)
        assert "finite-metrics" in message
        assert "12" in message
        assert "1->2" in message
        assert "airtime_us=nan" in message
